#!/usr/bin/env bash
# End-to-end smoke test for the serving layer: build release, boot
# `subrank serve` on a generated graph, exercise the endpoints, put it
# under a brief Zipf load, and assert a graceful SIGINT drain.
#
# Exits nonzero on any non-200 answer, on a bit-mismatch between a
# served /rank and the offline CLI, or if the server fails to drain.
set -euo pipefail

PORT="${SMOKE_PORT:-7878}"
ADDR="127.0.0.1:${PORT}"
WORKDIR="$(mktemp -d)"
trap 'kill "${SERVER_PID:-}" 2>/dev/null || true; rm -rf "${WORKDIR}"' EXIT

say() { printf '== %s\n' "$*"; }

say "building release binaries"
cargo build --release -p approxrank-cli -p approxrank-bench

SUBRANK=target/release/subrank
LOADGEN=target/release/loadgen

say "generating a graph"
"${SUBRANK}" gen --dataset au --pages 20000 --out "${WORKDIR}/web.edges" >/dev/null

say "booting subrank serve on ${ADDR}"
"${SUBRANK}" serve --graph "${WORKDIR}/web.edges" --addr "${ADDR}" --threads 4 \
  >"${WORKDIR}/serve.out" 2>"${WORKDIR}/serve.err" &
SERVER_PID=$!

say "waiting for /healthz"
for _ in $(seq 1 100); do
  if curl -sf "http://${ADDR}/healthz" >/dev/null 2>&1; then
    break
  fi
  if ! kill -0 "${SERVER_PID}" 2>/dev/null; then
    echo "server died during startup" >&2
    cat "${WORKDIR}/serve.err" >&2
    exit 1
  fi
  sleep 0.1
done
curl -sf "http://${ADDR}/healthz" >/dev/null

say "POST /rank answers 200 and matches the offline CLI"
BODY='{"members":[0,1,2,3,4,5,6,7,8,9]}'
curl -sf -X POST "http://${ADDR}/rank" -d "${BODY}" >"${WORKDIR}/served.json"
grep -q '"scores"' "${WORKDIR}/served.json"
# The same query twice must be a cache hit.
curl -sf -X POST "http://${ADDR}/rank" -d "${BODY}" | grep -q '"cached":true'
# Served scores must agree with the offline CLI at the CLI's full
# printed precision (10 significant digits). The stronger bitwise
# assertion runs in-process in crates/serve's unit and integration
# tests, where both f64s are available unformatted.
printf '0 1 2 3 4 5 6 7 8 9\n' >"${WORKDIR}/mine.txt"
"${SUBRANK}" rank --graph "${WORKDIR}/web.edges" --subgraph "${WORKDIR}/mine.txt" --quiet \
  >"${WORKDIR}/offline.tsv"
python3 - "$WORKDIR" <<'PY'
import json, sys
workdir = sys.argv[1]
served = json.load(open(f"{workdir}/served.json"))
offline = {}
for line in open(f"{workdir}/offline.tsv"):
    if line.startswith("page"):
        continue
    page, score = line.split()
    offline[int(page)] = float(score)
assert len(served["scores"]) == len(offline)
for entry in served["scores"]:
    page, score = entry["page"], entry["score"]
    assert f"{score:.9e}" == f"{offline[page]:.9e}", \
        f"page {page}: served {score!r} != offline {offline[page]!r}"
print(f"   {len(served['scores'])} scores identical at CLI precision")
PY

say "GET /metrics exposes request and pool telemetry"
curl -sf "http://${ADDR}/metrics" >"${WORKDIR}/metrics.txt"
grep -q '^approxrank_requests_total' "${WORKDIR}/metrics.txt"
grep -q '^pool_threads' "${WORKDIR}/metrics.txt"
grep -q '^approxrank_cache_hits_total' "${WORKDIR}/metrics.txt"

say "error paths answer with 4xx, not a crash"
test "$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://${ADDR}/rank" -d '{bad json')" = 400
test "$(curl -s -o /dev/null -w '%{http_code}' "http://${ADDR}/nonexistent")" = 404

say "brief Zipf load via loadgen (cache hit rate must be nonzero)"
"${LOADGEN}" --addr "${ADDR}" --clients 4 --requests 100 --keys 16 | tee "${WORKDIR}/loadgen.out"
grep -Eq 'cache +[1-9][0-9]* hits' "${WORKDIR}/loadgen.out"

say "SIGINT drains gracefully"
kill -INT "${SERVER_PID}"
for _ in $(seq 1 100); do
  kill -0 "${SERVER_PID}" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "${SERVER_PID}" 2>/dev/null; then
  echo "server did not exit within 10s of SIGINT" >&2
  exit 1
fi
wait "${SERVER_PID}" && STATUS=0 || STATUS=$?
test "${STATUS}" = 0 || { echo "server exited with ${STATUS}" >&2; exit 1; }
grep -q 'served .* requests' "${WORKDIR}/serve.out"
if grep -qi 'panicked' "${WORKDIR}/serve.err"; then
  echo "server logged a panic:" >&2
  cat "${WORKDIR}/serve.err" >&2
  exit 1
fi

say "smoke OK: $(cat "${WORKDIR}/serve.out")"
