#!/usr/bin/env bash
# Sharded-serving smoke test: build release, generate a graph, boot the
# same graph twice — once unsharded, once with `--shards 2` — and assert
# that shard-resident /rank answers are byte-identical across the two
# deployments (the routing tier must be invisible for memberships that
# fit one shard). Cross-shard requests must answer 200 with a
# probability-mass-sane merged mixture and `"shards":2`, global-state
# algorithms spanning shards must be refused with 400, and /metrics must
# expose the shard_* telemetry.
#
# Exits nonzero on any body mismatch, bad status, or missing metric.
set -euo pipefail

PORT_A="${SHARD_SMOKE_PORT_A:-7891}"
PORT_B="${SHARD_SMOKE_PORT_B:-7892}"
ADDR_A="127.0.0.1:${PORT_A}"
ADDR_B="127.0.0.1:${PORT_B}"
WORKDIR="$(mktemp -d)"
trap 'kill -9 "${PID_A:-}" "${PID_B:-}" 2>/dev/null || true; rm -rf "${WORKDIR}"' EXIT

say() { printf '== %s\n' "$*"; }

boot() { # boot <name> <addr> <extra flags...>
  local name="$1" addr="$2"
  shift 2
  "${SUBRANK}" serve --graph "${WORKDIR}/web.edges" --addr "${addr}" --threads 4 "$@" \
    >"${WORKDIR}/serve.${name}.out" 2>"${WORKDIR}/serve.${name}.err" &
  local pid=$!
  for _ in $(seq 1 100); do
    if curl -sf "http://${addr}/healthz" >/dev/null 2>&1; then
      echo "${pid}"
      return 0
    fi
    if ! kill -0 "${pid}" 2>/dev/null; then
      echo "server ${name} died during startup" >&2
      cat "${WORKDIR}/serve.${name}.err" >&2
      exit 1
    fi
    sleep 0.1
  done
  curl -sf "http://${addr}/healthz" >/dev/null
  echo "${pid}"
}

say "building release binaries"
cargo build --release -p approxrank-cli

SUBRANK=target/release/subrank

say "generating a graph"
"${SUBRANK}" gen --dataset au --pages 20000 --out "${WORKDIR}/web.edges" >/dev/null

say "booting single-shard and 2-shard servers on the same graph"
PID_A="$(boot single "${ADDR_A}")"
PID_B="$(boot sharded "${ADDR_B}" --shards 2)"
grep -q '2 shards (range partitioning)' "${WORKDIR}/serve.sharded.err"

say "shard-resident /rank answers must be byte-identical"
# Range partitioning of 20000 nodes: shard 0 owns 0..10000, shard 1 the
# rest. One membership per shard, plus one with non-default options.
BODIES=(
  '{"members":[5,6,7,8,9,10,11,12],"tolerance":1e-8}'
  '{"members":[15000,15001,15002,15003],"tolerance":1e-8}'
  '{"members":[400,401,402],"damping":0.9,"top":2}'
)
for i in "${!BODIES[@]}"; do
  body="${BODIES[$i]}"
  curl -sf -X POST "http://${ADDR_A}/rank" -d "${body}" >"${WORKDIR}/single.${i}.json"
  curl -sf -X POST "http://${ADDR_B}/rank" -d "${body}" >"${WORKDIR}/sharded.${i}.json"
  cmp "${WORKDIR}/single.${i}.json" "${WORKDIR}/sharded.${i}.json" \
    || { echo "resident body ${i} differs across deployments" >&2; exit 1; }
  grep -q '"shards":1' "${WORKDIR}/sharded.${i}.json"
done

say "cross-shard /rank must merge (200, shards=2, mass ~ 1)"
curl -sf -X POST "http://${ADDR_B}/rank" \
  -d '{"members":[9998,9999,10000,10001],"tolerance":1e-8}' >"${WORKDIR}/cross.json"
grep -q '"shards":2' "${WORKDIR}/cross.json"
python3 - "${WORKDIR}/cross.json" <<'PY'
import json, sys
v = json.load(open(sys.argv[1]))
assert v["shards"] == 2, v["shards"]
mass = sum(s["score"] for s in v["scores"]) + v["lambda"]
assert abs(mass - 1.0) < 1e-9, f"mixture mass {mass}"
assert len(v["scores"]) == 4, v["scores"]
PY

say "global-state algorithms spanning shards must be refused"
STATUS="$(curl -s -o "${WORKDIR}/span.json" -w '%{http_code}' -X POST "http://${ADDR_B}/rank" \
  -d '{"members":[9999,10001],"algorithm":"sc"}')"
test "${STATUS}" = "400" || { echo "expected 400, got ${STATUS}" >&2; exit 1; }
grep -q 'span' "${WORKDIR}/span.json"

say "sessions pin to one shard"
curl -sf -X POST "http://${ADDR_B}/session" -d '{"members":[15000,15001]}' >"${WORKDIR}/sess.json"
grep -q '"id":2' "${WORKDIR}/sess.json"  # shard 1 strides ids 2, 4, …
STATUS="$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://${ADDR_B}/session" \
  -d '{"members":[9999,10001]}')"
test "${STATUS}" = "400" || { echo "spanning session accepted (${STATUS})" >&2; exit 1; }

say "shard_* metrics are exposed"
curl -sf "http://${ADDR_B}/metrics" >"${WORKDIR}/metrics.txt"
grep -q '^shard_count 2$' "${WORKDIR}/metrics.txt"
grep -q '^shard_rank_requests{shard="0"} ' "${WORKDIR}/metrics.txt"
grep -q '^shard_rank_requests{shard="1"} ' "${WORKDIR}/metrics.txt"
grep -q '^shard_sessions_open{shard="1"} 1$' "${WORKDIR}/metrics.txt"
grep -q '^shard_cross_rank_requests ' "${WORKDIR}/metrics.txt"

say "no panics in either server log"
! grep -i 'panic' "${WORKDIR}/serve.single.err" "${WORKDIR}/serve.sharded.err"

say "shard smoke OK"
