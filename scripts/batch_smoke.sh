#!/usr/bin/env bash
# Batched-solving + multi-tenancy smoke test: build release, generate a
# graph, and assert the whole ISSUE-10 surface end to end:
#
#   1. `subrank keyword` (offline CLI) answers byte-identical bodies to
#      `POST /keyword` on a live server — for both an explicit --base
#      set and a --keyword resolved against generated labels.
#   2. A 2-shard server answers shard-resident /keyword byte-identically
#      to the single-shard deployment (routing stays invisible).
#   3. A concurrent burst of distinct-base /keyword queries against a
#      wide gather window is coalesced into multi-column solves
#      (batch_keyword_coalesced_total > 0, columns > solves), and every
#      coalesced answer is byte-identical to the singleton CLI answer.
#   4. Tenant admission: with --tenant-quota 1 --tenant-queue 0, a
#      barrage of simultaneous same-tenant requests sheds with 429 +
#      Retry-After; loadgen --tenants accounts sheds apart from errors
#      and an in-quota tenant finishes with zero sheds and zero errors.
#   5. /metrics exposes the batch_* and per-tenant tenant_* telemetry.
#   6. SIGINT still drains cleanly and no server logs a panic.
#
# Exits nonzero on any body mismatch, bad status, or missing metric.
set -euo pipefail

PORT_A="${BATCH_SMOKE_PORT_A:-7894}"
PORT_B="${BATCH_SMOKE_PORT_B:-7895}"
PORT_C="${BATCH_SMOKE_PORT_C:-7896}"
ADDR_A="127.0.0.1:${PORT_A}"
ADDR_B="127.0.0.1:${PORT_B}"
ADDR_C="127.0.0.1:${PORT_C}"
WORKDIR="$(mktemp -d)"
trap 'kill -9 "${PID_A:-}" "${PID_B:-}" "${PID_C:-}" 2>/dev/null || true; rm -rf "${WORKDIR}"' EXIT

say() { printf '== %s\n' "$*"; }

boot() { # boot <name> <addr> <extra flags...>
  local name="$1" addr="$2"
  shift 2
  "${SUBRANK}" serve --graph "${WORKDIR}/web.edges" --addr "${addr}" --threads 4 "$@" \
    >"${WORKDIR}/serve.${name}.out" 2>"${WORKDIR}/serve.${name}.err" &
  local pid=$!
  for _ in $(seq 1 100); do
    if curl -sf "http://${addr}/healthz" >/dev/null 2>&1; then
      echo "${pid}"
      return 0
    fi
    if ! kill -0 "${pid}" 2>/dev/null; then
      echo "server ${name} died during startup" >&2
      cat "${WORKDIR}/serve.${name}.err" >&2
      exit 1
    fi
    sleep 0.1
  done
  curl -sf "http://${addr}/healthz" >/dev/null
  echo "${pid}"
}

say "building release binaries"
cargo build --release -p approxrank-cli -p approxrank-bench

SUBRANK=target/release/subrank
LOADGEN=target/release/loadgen

say "generating a graph"
"${SUBRANK}" gen --dataset au --pages 20000 --out "${WORKDIR}/web.edges" >/dev/null

# Shard-0-resident membership (range partitioning: shard 0 owns 0..10000).
seq 100 131 >"${WORKDIR}/members.txt"

say "booting single-shard, 2-shard (wide gather window), and quota'd servers"
PID_A="$(boot single "${ADDR_A}")"
PID_B="$(boot sharded "${ADDR_B}" --shards 2 --batch-window-ms 40)"
PID_C="$(boot quota "${ADDR_C}" --tenant-quota 1 --tenant-queue 0)"

say "CLI 'subrank keyword' is byte-identical to served POST /keyword"
# The CLI serializes damping/tolerance as 8.5e-1 / 1e-5; the literals
# below parse to the same f64s, so the solves share one cache key shape.
BASE_BODY='{"members":[100,101,102,103,104,105,106,107,108,109,110,111,112,113,114,115,116,117,118,119,120,121,122,123,124,125,126,127,128,129,130,131],"base":[4242],"damping":0.85,"tolerance":1e-5,"top":0}'
KW_BODY='{"members":[100,101,102,103,104,105,106,107,108,109,110,111,112,113,114,115,116,117,118,119,120,121,122,123,124,125,126,127,128,129,130,131],"keyword":"page-77","damping":0.85,"tolerance":1e-5,"top":0}'
"${SUBRANK}" keyword --graph "${WORKDIR}/web.edges" --subgraph "${WORKDIR}/members.txt" \
  --base 4242 >"${WORKDIR}/cli.base.json"
"${SUBRANK}" keyword --graph "${WORKDIR}/web.edges" --subgraph "${WORKDIR}/members.txt" \
  --keyword page-77 >"${WORKDIR}/cli.kw.json"
for pair in "base ${ADDR_A}" "kw ${ADDR_A}" "base ${ADDR_B}" "kw ${ADDR_B}"; do
  read -r which addr <<<"${pair}"
  body_var="BASE_BODY"; [ "${which}" = "kw" ] && body_var="KW_BODY"
  curl -sf -X POST "http://${addr}/keyword" -d "${!body_var}" >"${WORKDIR}/http.json"
  printf '\n' >>"${WORKDIR}/http.json"
  cmp "${WORKDIR}/cli.${which}.json" "${WORKDIR}/http.json" \
    || { echo "CLI/${which} body differs from served answer at ${addr}" >&2; exit 1; }
done
grep -q '"base_pages":1' "${WORKDIR}/cli.base.json"
grep -q '"keyword":"page-77"' "${WORKDIR}/cli.kw.json"
grep -q '"shards":1' "${WORKDIR}/cli.kw.json"

say "concurrent distinct-base burst coalesces into multi-column solves"
python3 - "${ADDR_B}" "${WORKDIR}" <<'PY'
import json, sys, threading, urllib.request

addr, workdir = sys.argv[1], sys.argv[2]
members = list(range(100, 132))
bursts = 10
barrier = threading.Barrier(bursts)
failures = []

def fire(i):
    body = json.dumps({"members": members, "base": [7000 + 7 * i],
                       "damping": 0.85, "tolerance": 1e-5, "top": 0})
    barrier.wait()
    try:
        with urllib.request.urlopen(
                urllib.request.Request(f"http://{addr}/keyword",
                                       data=body.encode(), method="POST"),
                timeout=30) as r:
            assert r.status == 200, r.status
            open(f"{workdir}/burst.{i}.json", "wb").write(r.read())
    except Exception as e:  # noqa: BLE001 — report, don't hang the join
        failures.append(f"burst {i}: {e}")

threads = [threading.Thread(target=fire, args=(i,)) for i in range(bursts)]
for t in threads: t.start()
for t in threads: t.join()
assert not failures, failures
PY
curl -sf "http://${ADDR_B}/metrics" >"${WORKDIR}/metrics.b.txt"
python3 - "${WORKDIR}/metrics.b.txt" <<'PY'
import sys
m = {}
for line in open(sys.argv[1]):
    parts = line.split()
    if len(parts) == 2:
        try: m[parts[0]] = float(parts[1])
        except ValueError: pass
solves, columns = m["batch_keyword_solves_total"], m["batch_keyword_columns_total"]
coalesced = m["batch_keyword_coalesced_total"]
assert coalesced >= 1, f"no coalescing observed (solves={solves} columns={columns})"
assert columns > solves, f"columns {columns} should exceed solves {solves}"
PY

say "coalesced answers are byte-identical to singleton CLI answers"
for i in 0 4 9; do
  printf '\n' >>"${WORKDIR}/burst.${i}.json"
  "${SUBRANK}" keyword --graph "${WORKDIR}/web.edges" --subgraph "${WORKDIR}/members.txt" \
    --base "$((7000 + 7 * i))" >"${WORKDIR}/cli.burst.${i}.json"
  cmp "${WORKDIR}/cli.burst.${i}.json" "${WORKDIR}/burst.${i}.json" \
    || { echo "coalesced burst answer ${i} differs from singleton CLI" >&2; exit 1; }
done

say "same-tenant barrage sheds with 429 + Retry-After"
python3 - "${ADDR_C}" <<'PY'
import json, sys, threading, urllib.error, urllib.request

addr = sys.argv[1]
n = 8
barrier = threading.Barrier(n)
results, failures = [], []

def fire(i):
    # Distinct cold memberships, large and tightly toleranced so every
    # admitted request solves for tens of milliseconds (holding its
    # in-flight slot) — the stragglers must arrive while it runs.
    body = json.dumps({"members": list(range(1000 * i, 1000 * i + 3000)),
                       "tolerance": 1e-12})
    req = urllib.request.Request(f"http://{addr}/rank", data=body.encode(),
                                 method="POST", headers={"X-Tenant": "hog"})
    barrier.wait()
    try:
        with urllib.request.urlopen(req, timeout=60) as r:
            results.append((r.status, None))
    except urllib.error.HTTPError as e:
        results.append((e.code, e.headers.get("Retry-After")))
    except Exception as e:  # noqa: BLE001
        failures.append(f"request {i}: {e}")

threads = [threading.Thread(target=fire, args=(i,)) for i in range(n)]
for t in threads: t.start()
for t in threads: t.join()
assert not failures, failures
sheds = [r for r in results if r[0] == 429]
oks = [r for r in results if r[0] == 200]
assert oks, results
assert sheds, f"quota 1 / queue 0 never shed across {n} simultaneous requests"
for status, retry_after in sheds:
    assert retry_after is not None and int(retry_after) >= 1, \
        f"429 without a usable Retry-After: {retry_after!r}"
PY

say "tenant_* metrics are exposed per tenant"
curl -sf "http://${ADDR_C}/metrics" >"${WORKDIR}/metrics.c.txt"
grep -q '^tenant_requests_total{tenant="hog"} ' "${WORKDIR}/metrics.c.txt"
grep -Eq '^tenant_shed_total\{tenant="hog"\} [1-9]' "${WORKDIR}/metrics.c.txt"
grep -q '^tenant_in_flight{tenant="hog"} ' "${WORKDIR}/metrics.c.txt"
grep -q '^tenant_queue_depth{tenant="hog"} ' "${WORKDIR}/metrics.c.txt"
grep -q '^batch_keyword_occupancy ' "${WORKDIR}/metrics.b.txt"

say "loadgen --tenants: sheds are accounted apart from errors"
# Round-robin stream→tenant: with 3 clients over 2 tenants, tenant-0
# carries two concurrent streams (sheds against quota 1), tenant-1 one
# sequential stream (can never exceed the quota → zero sheds).
"${LOADGEN}" --addr "${ADDR_C}" --clients 3 --requests 40 --keys 64 \
  --tenants 2 | tee "${WORKDIR}/loadgen.tenants.out"
grep -Eq 'requests +[0-9]+ ok, [0-9]+ shed, 0 errors' "${WORKDIR}/loadgen.tenants.out"
grep -Eq 'tenant +tenant-0 +[0-9]+ ok +[0-9]+ shed +0 errors' "${WORKDIR}/loadgen.tenants.out"
grep -Eq 'tenant +tenant-1 +[0-9]+ ok +0 shed +0 errors' "${WORKDIR}/loadgen.tenants.out"

say "loadgen --keyword-rate: split per-endpoint percentiles, zero errors"
"${LOADGEN}" --addr "${ADDR_A}" --clients 4 --requests 40 --keys 16 \
  --keyword-rate 0.25 | tee "${WORKDIR}/loadgen.kw.out"
grep -Eq 'requests +[0-9]+ ok, 0 errors' "${WORKDIR}/loadgen.kw.out"
grep -Eq '^rank ' "${WORKDIR}/loadgen.kw.out"
grep -Eq '^keyword ' "${WORKDIR}/loadgen.kw.out"

say "SIGINT drains gracefully"
for pid in "${PID_A}" "${PID_B}" "${PID_C}"; do
  kill -INT "${pid}"
done
# The servers were spawned inside boot()'s command substitution, so
# they are not children of this shell: confirm exit via kill -0 and the
# drain summary each one prints on the way out, not via `wait`.
for pid in "${PID_A}" "${PID_B}" "${PID_C}"; do
  for _ in $(seq 1 100); do
    kill -0 "${pid}" 2>/dev/null || break
    sleep 0.1
  done
  if kill -0 "${pid}" 2>/dev/null; then
    echo "server ${pid} did not exit within 10s of SIGINT" >&2
    exit 1
  fi
done
for name in single sharded quota; do
  grep -q 'served .* requests' "${WORKDIR}/serve.${name}.out" \
    || { echo "server ${name} exited without its drain summary" >&2; exit 1; }
done

say "no panics in any server log"
! grep -i 'panic' "${WORKDIR}"/serve.*.err

say "batch smoke OK"
