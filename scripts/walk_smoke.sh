#!/usr/bin/env bash
# End-to-end smoke test for the estimator tier: build release, boot
# `subrank serve` on a generated graph, and assert that
#   1. `/rank` with `"algorithm":"mc"` answers an `estimate` block and
#      lands within the declared epsilon of the exact ApproxRank answer
#      (L1 over the subgraph, top-5 pages recovered);
#   2. a warm MC session update re-walks fewer sources than the cold
#      build, observed through the `walk_*` /metrics counters.
#
# Exits nonzero on any non-200 answer or any assertion failure.
set -euo pipefail

PORT="${SMOKE_PORT:-7879}"
ADDR="127.0.0.1:${PORT}"
WORKDIR="$(mktemp -d)"
trap 'kill "${SERVER_PID:-}" 2>/dev/null || true; rm -rf "${WORKDIR}"' EXIT

say() { printf '== %s\n' "$*"; }

say "building release binaries"
cargo build --release -p approxrank-cli

SUBRANK=target/release/subrank

say "generating a graph"
"${SUBRANK}" gen --dataset au --pages 20000 --out "${WORKDIR}/web.edges" >/dev/null

say "booting subrank serve on ${ADDR}"
"${SUBRANK}" serve --graph "${WORKDIR}/web.edges" --addr "${ADDR}" --threads 4 \
  >"${WORKDIR}/serve.out" 2>"${WORKDIR}/serve.err" &
SERVER_PID=$!

say "waiting for /healthz"
for _ in $(seq 1 100); do
  if curl -sf "http://${ADDR}/healthz" >/dev/null 2>&1; then
    break
  fi
  if ! kill -0 "${SERVER_PID}" 2>/dev/null; then
    echo "server died during startup" >&2
    cat "${WORKDIR}/serve.err" >&2
    exit 1
  fi
  sleep 0.1
done
curl -sf "http://${ADDR}/healthz" >/dev/null

MEMBERS='[0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15]'

say "exact and MC answers for the same membership"
curl -sf -X POST "http://${ADDR}/rank" -d "{\"members\":${MEMBERS}}" \
  >"${WORKDIR}/exact.json"
# A generous walk budget and a declared epsilon with real margin: the
# assertion below holds the estimate to the epsilon the server echoes.
MC_BODY="{\"members\":${MEMBERS},\"algorithm\":\"mc\",\"walks\":1024,\"epsilon\":0.05,\"seed\":7}"
curl -sf -X POST "http://${ADDR}/rank" -d "${MC_BODY}" >"${WORKDIR}/mc.json"
grep -q '"estimate"' "${WORKDIR}/mc.json"
# The identical estimator query must be a cache hit (estimator knobs are
# part of the cache key).
curl -sf -X POST "http://${ADDR}/rank" -d "${MC_BODY}" | grep -q '"cached":true'

say "MC estimate within declared epsilon, top-5 recovered"
python3 - "$WORKDIR" <<'PY'
import json, sys
workdir = sys.argv[1]
exact = json.load(open(f"{workdir}/exact.json"))
mc = json.load(open(f"{workdir}/mc.json"))
est = mc["estimate"]
assert est["walks"] > 0 and est["epsilon"] > 0 and est["residual"] > 0, est
ex = {e["page"]: e["score"] for e in exact["scores"]}
ap = {e["page"]: e["score"] for e in mc["scores"]}
assert set(ex) == set(ap), "memberships diverged"
l1 = sum(abs(ex[p] - ap[p]) for p in ex)
assert l1 <= est["epsilon"], f"L1 {l1:.4f} exceeds declared epsilon {est['epsilon']}"
top = lambda scores: [p for p, _ in sorted(scores.items(), key=lambda kv: -kv[1])[:5]]
assert set(top(ex)) == set(top(ap)), f"top-5 diverged: {top(ex)} vs {top(ap)}"
print(f"   L1 {l1:.2e} <= epsilon {est['epsilon']}; top-5 identical; "
      f"{est['walks']} walks, residual {est['residual']:.2e}")
PY

say "warm MC session update re-walks fewer sources than the cold build"
curl -sf -X POST "http://${ADDR}/session" \
  -d "{\"members\":${MEMBERS},\"algorithm\":\"mc\",\"walks\":1024,\"seed\":7}" \
  >"${WORKDIR}/session.json"
grep -q '"algorithm":"mc"' "${WORKDIR}/session.json"
SID=$(python3 -c "import json,sys; print(json.load(open(sys.argv[1]))['id'])" \
  "${WORKDIR}/session.json")
curl -sf -X POST "http://${ADDR}/session/${SID}/update" -d '{"add":[16]}' \
  >"${WORKDIR}/update.json"
grep -q '"estimate"' "${WORKDIR}/update.json"

curl -sf "http://${ADDR}/metrics" >"${WORKDIR}/metrics.txt"
grep -q '^walk_sources_walked ' "${WORKDIR}/metrics.txt"
grep -q '^walk_sources_rewalked ' "${WORKDIR}/metrics.txt"
python3 - "$WORKDIR" <<'PY'
import sys
workdir = sys.argv[1]
counters = {}
for line in open(f"{workdir}/metrics.txt"):
    parts = line.split()
    if len(parts) == 2 and parts[0].startswith("walk_"):
        counters[parts[0]] = float(parts[1])
walked = counters["walk_sources_walked"]
rewalked = counters["walk_sources_rewalked"]
assert walked > 0, counters
assert 0 < rewalked < walked, \
    f"warm update re-walked {rewalked} of {walked} sources (expected a strict subset)"
assert counters.get("walk_walks", 0) > 0, counters
print(f"   warm update re-walked {rewalked:.0f} of {walked:.0f} sources; "
      f"reused {counters.get('walk_sources_reused', 0):.0f}")
PY

say "SIGINT drains gracefully"
kill -INT "${SERVER_PID}"
for _ in $(seq 1 100); do
  kill -0 "${SERVER_PID}" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "${SERVER_PID}" 2>/dev/null; then
  echo "server did not exit within 10s of SIGINT" >&2
  exit 1
fi
wait "${SERVER_PID}" && STATUS=0 || STATUS=$?
test "${STATUS}" = 0 || { echo "server exited with ${STATUS}" >&2; exit 1; }
if grep -qi 'panicked' "${WORKDIR}/serve.err"; then
  echo "server logged a panic:" >&2
  cat "${WORKDIR}/serve.err" >&2
  exit 1
fi

say "walk smoke OK"
