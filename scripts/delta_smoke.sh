#!/usr/bin/env bash
# End-to-end smoke test for live graph mutation: build release, boot a
# 2-shard `subrank serve --data-dir --fsync always`, and assert
#   1. a `POST /graph/edges` batch answers 200, bumps the graph epoch in
#      /stats and /metrics, and is non-structural by construction (the
#      preflight picks an edge swap that cannot change the dangling set);
#   2. incremental repair: the open MC session re-walks strictly fewer
#      sources than its cold build (walk_sources_* /metrics counters),
#      and an untouched shard-1 cache entry is still served cached while
#      the touched one re-solves — strictly fewer invalidations than a
#      rebuild;
#   3. kill -9 + restart on the same data dir replays the mutation WAL to
#      the same epoch and answers the post-mutation /rank byte-identically;
#   4. `loadgen --mutate-rate` drives a mixed read/write workload against
#      the recovered server with zero errors and a split `writes` line.
#
# Exits nonzero on any non-200 answer or any assertion failure.
set -euo pipefail

PORT="${SMOKE_PORT:-7879}"
ADDR="127.0.0.1:${PORT}"
WORKDIR="$(mktemp -d)"
trap 'kill -9 "${SERVER_PID:-}" 2>/dev/null || true; rm -rf "${WORKDIR}"' EXIT

say() { printf '== %s\n' "$*"; }

boot() {
  "${SUBRANK}" serve --graph "${WORKDIR}/web.edges" --addr "${ADDR}" --threads 4 \
    --shards 2 --data-dir "${WORKDIR}/data" --fsync always \
    >"${WORKDIR}/serve.$1.out" 2>"${WORKDIR}/serve.$1.err" &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    if curl -sf "http://${ADDR}/healthz" >/dev/null 2>&1; then
      return 0
    fi
    if ! kill -0 "${SERVER_PID}" 2>/dev/null; then
      echo "server died during startup" >&2
      cat "${WORKDIR}/serve.$1.err" >&2
      exit 1
    fi
    sleep 0.1
  done
  curl -sf "http://${ADDR}/healthz" >/dev/null
}

say "building release binaries"
cargo build --release -p approxrank-cli -p approxrank-bench

SUBRANK=target/release/subrank
LOADGEN=target/release/loadgen

say "generating a graph"
"${SUBRANK}" gen --dataset au --pages 20000 --out "${WORKDIR}/web.edges" >/dev/null

say "preflight: picking a guaranteed non-structural edge swap"
# u: a shard-0 page with >= 2 out-links, all inside shard 0 (so the
# widened touched set cannot reach the far window); v: one real
# out-neighbor to delete; w: a fresh target to insert. Deleting (u,v)
# leaves u with out-links and inserting (u,w) only adds an in-link to w,
# so the batch cannot change the dangling set => non-structural.
python3 - "${WORKDIR}" <<'PY'
import sys
workdir = sys.argv[1]
out = {}
for line in open(f"{workdir}/web.edges"):
    parts = line.split()
    if len(parts) != 2 or not parts[0].isdigit():
        continue
    s, t = int(parts[0]), int(parts[1])
    out.setdefault(s, []).append(t)
for u in sorted(out):
    row = out[u]
    if u < 5000 and len(row) >= 2 and all(t < 10000 for t in row):
        v = row[0]
        w = next(x for x in range(10000) if x != u and x not in row)
        near = sorted(set([u] + list(range(max(0, u - 4), u + 12))))[:16]
        assert max(near) < 10000
        with open(f"{workdir}/edge.env", "w") as f:
            f.write(f"U={u}\nV={v}\nW={w}\n")
            f.write("NEAR=[" + ",".join(map(str, near)) + "]\n")
        print(f"   swap: delete ({u},{v}), insert ({u},{w})")
        break
else:
    sys.exit("no suitable page found")
PY
# shellcheck disable=SC1091
source "${WORKDIR}/edge.env"
FAR='[15000,15001,15002,15003,15004,15005,15006,15007]'

say "booting 2-shard subrank serve with --data-dir --fsync always"
boot first

say "warming one near (shard 0) and one far (shard 1) cache entry"
curl -sf -X POST "http://${ADDR}/rank" -d "{\"members\":${NEAR}}" \
  >"${WORKDIR}/near.before.json"
grep -q '"cached":false' "${WORKDIR}/near.before.json"
curl -sf -X POST "http://${ADDR}/rank" -d "{\"members\":${FAR}}" \
  >"${WORKDIR}/far.before.json"
grep -q '"cached":false' "${WORKDIR}/far.before.json"

say "opening an MC session over the near membership"
curl -sf -X POST "http://${ADDR}/session" \
  -d "{\"members\":${NEAR},\"algorithm\":\"mc\",\"walks\":512,\"seed\":7}" \
  >"${WORKDIR}/session.json"
grep -q '"algorithm":"mc"' "${WORKDIR}/session.json"
curl -sf "http://${ADDR}/metrics" >"${WORKDIR}/metrics.before.txt"

say "applying the mutation batch through POST /graph/edges"
curl -sf -X POST "http://${ADDR}/graph/edges" \
  -d "{\"insert\":[[${U},${W}]],\"delete\":[[${U},${V}]]}" \
  >"${WORKDIR}/mutate.json"
cat "${WORKDIR}/mutate.json"; echo
grep -q '"epoch":1' "${WORKDIR}/mutate.json"
grep -q '"inserted":1' "${WORKDIR}/mutate.json"
grep -q '"deleted":1' "${WORKDIR}/mutate.json"
grep -q '"structural":false' "${WORKDIR}/mutate.json"

say "epoch visible in /stats and /metrics"
curl -sf "http://${ADDR}/stats" >"${WORKDIR}/stats.json"
python3 - "${WORKDIR}" <<'PY'
import json, sys
stats = json.load(open(f"{sys.argv[1]}/stats.json"))
assert stats["graph"]["epoch"] == 1, stats["graph"]
assert stats["graph"]["mutations"] == 1, stats["graph"]
PY
curl -sf "http://${ADDR}/metrics" >"${WORKDIR}/metrics.after.txt"
grep -q '^approxrank_graph_epoch 1$' "${WORKDIR}/metrics.after.txt"
grep -q '^approxrank_graph_mutations_total 1$' "${WORKDIR}/metrics.after.txt"
grep -q '^approxrank_cache_stale_evictions_total ' "${WORKDIR}/metrics.after.txt"

say "MC repair re-walked strictly fewer sources than the cold build"
python3 - "${WORKDIR}" <<'PY'
import sys
workdir = sys.argv[1]
def counters(path):
    # The bare walk_sources_* rows are last-solve gauges; the _sum rows
    # are cumulative across solves, which is what a delta needs.
    vals = {}
    for line in open(path):
        parts = line.split()
        if len(parts) == 2 and parts[0].startswith("walk_sources_"):
            vals[parts[0]] = float(parts[1])
    return vals
before = counters(f"{workdir}/metrics.before.txt")
after = counters(f"{workdir}/metrics.after.txt")
rewalked = after["walk_sources_rewalked_sum"] - before.get("walk_sources_rewalked_sum", 0)
reused = after["walk_sources_reused_sum"] - before.get("walk_sources_reused_sum", 0)
walked = after["walk_sources_walked_sum"] - before.get("walk_sources_walked_sum", 0)
assert walked > 0, (before, after)
assert 0 < rewalked < walked, \
    f"repair re-walked {rewalked:.0f} of {walked:.0f} sources (expected a strict subset)"
assert reused > 0, f"repair reused no walk rows ({before} -> {after})"
print(f"   repair re-walked {rewalked:.0f} of {walked:.0f} sources; reused {reused:.0f}")
PY

say "touched entry re-solves; untouched entry is still cached"
curl -sf -X POST "http://${ADDR}/rank" -d "{\"members\":${NEAR}}" \
  >"${WORKDIR}/near.after.json"
grep -q '"cached":false' "${WORKDIR}/near.after.json"
curl -sf -X POST "http://${ADDR}/rank" -d "{\"members\":${FAR}}" \
  | grep -q '"cached":true'
python3 - "${WORKDIR}" <<'PY'
import json, sys
workdir = sys.argv[1]
before = json.load(open(f"{workdir}/near.before.json"))
after = json.load(open(f"{workdir}/near.after.json"))
b = {e["page"]: e["score"] for e in before["scores"]}
a = {e["page"]: e["score"] for e in after["scores"]}
assert set(a) == set(b)
assert any(a[p] != b[p] for p in a), "mutation did not change the near answer"
PY

say "SIGKILL (no drain, no final snapshot)"
kill -9 "${SERVER_PID}"
wait "${SERVER_PID}" 2>/dev/null || true

say "restarting on the same data dir: WAL replay must reach epoch 1"
boot second
curl -sf "http://${ADDR}/stats" >"${WORKDIR}/stats.recovered.json"
python3 - "${WORKDIR}" <<'PY'
import json, sys
stats = json.load(open(f"{sys.argv[1]}/stats.recovered.json"))
assert stats["graph"]["epoch"] == 1, stats["graph"]
PY

say "post-restart /rank is byte-identical to the post-mutation answer"
curl -sf -X POST "http://${ADDR}/rank" -d "{\"members\":${NEAR}}" \
  >"${WORKDIR}/near.recovered.json"
cmp "${WORKDIR}/near.after.json" "${WORKDIR}/near.recovered.json"

say "mixed read/write workload via loadgen --mutate-rate"
"${LOADGEN}" --addr "${ADDR}" --clients 2 --requests 20 --keys 8 \
  --mutate-rate 0.25 | tee "${WORKDIR}/loadgen.out"
grep -q '^writes ' "${WORKDIR}/loadgen.out"
grep -q ' 0 errors ' "${WORKDIR}/loadgen.out"

say "SIGINT drains gracefully"
kill -INT "${SERVER_PID}"
for _ in $(seq 1 100); do
  kill -0 "${SERVER_PID}" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "${SERVER_PID}" 2>/dev/null; then
  echo "server did not exit within 10s of SIGINT" >&2
  exit 1
fi
wait "${SERVER_PID}" && STATUS=0 || STATUS=$?
test "${STATUS}" = 0 || { echo "server exited with ${STATUS}" >&2; exit 1; }
for phase in first second; do
  if grep -qi 'panicked' "${WORKDIR}/serve.${phase}.err"; then
    echo "server logged a panic (${phase} boot):" >&2
    cat "${WORKDIR}/serve.${phase}.err" >&2
    exit 1
  fi
done

say "delta smoke OK"
