#!/usr/bin/env bash
# Observability smoke test: build release, boot a 2-shard durable server
# with `--slow-ms 0` (capture every request), and assert the tracing
# pipeline end to end:
#
#   - an inbound `X-Request-Id` is adopted and echoed back on the response;
#   - a boundary-straddling /rank produces ONE trace whose span tree
#     covers router dispatch, both shard engines (cache probe + solve),
#     and the cross-shard merge;
#   - a session create reaches the WAL (a `store.wal_append` span);
#   - `GET /debug/requests` serves a non-empty ring of well-formed traces;
#   - the slow-query JSONL parses (via `subrank report --requests`);
#   - `/metrics` exposes the per-layer histograms;
#   - error envelopes carry a `trace_id`;
#   - `loadgen --capture` prints a server-side layer breakdown.
#
# Exits nonzero on any missing span, header, metric, or parse failure.
set -euo pipefail

PORT="${OBS_SMOKE_PORT:-7893}"
ADDR="127.0.0.1:${PORT}"
WORKDIR="$(mktemp -d)"
trap 'kill -9 "${PID:-}" 2>/dev/null || true; rm -rf "${WORKDIR}"' EXIT

say() { printf '== %s\n' "$*"; }

say "building release binaries"
cargo build --release -p approxrank-cli -p approxrank-bench

SUBRANK=target/release/subrank
LOADGEN=target/release/loadgen

say "generating a graph"
"${SUBRANK}" gen --dataset au --pages 2000 --out "${WORKDIR}/web.edges" >/dev/null

say "booting a 2-shard durable server with --slow-ms 0"
"${SUBRANK}" serve --graph "${WORKDIR}/web.edges" --addr "${ADDR}" --threads 4 \
  --shards 2 --data-dir "${WORKDIR}/data" --fsync always --slow-ms 0 \
  >"${WORKDIR}/serve.out" 2>"${WORKDIR}/serve.err" &
PID=$!
for _ in $(seq 1 100); do
  if curl -sf "http://${ADDR}/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "${PID}" 2>/dev/null; then
    echo "server died during startup" >&2
    cat "${WORKDIR}/serve.err" >&2
    exit 1
  fi
  sleep 0.1
done
curl -sf "http://${ADDR}/healthz" >/dev/null

say "inbound X-Request-Id must be adopted and echoed back"
# Range partitioning of 2000 nodes puts the shard boundary at 1000; this
# membership straddles it, so the request fans out to both engines.
TRACE_ID="obsmoke-cross-rank"
curl -sfD "${WORKDIR}/rank.headers" -o "${WORKDIR}/rank.json" \
  -H "X-Request-Id: ${TRACE_ID}" \
  -X POST "http://${ADDR}/rank" -d '{"members":[998,999,1000,1001]}'
grep -qi "^x-request-id: ${TRACE_ID}" "${WORKDIR}/rank.headers"
grep -q '"shards":2' "${WORKDIR}/rank.json"

say "a session create must reach the WAL"
curl -sf -X POST "http://${ADDR}/session" -d '{"members":[1500,1501,1502]}' >/dev/null

say "/debug/requests serves well-formed traces covering every layer"
curl -sf "http://${ADDR}/debug/requests" >"${WORKDIR}/requests.json"
python3 - "${WORKDIR}/requests.json" "${TRACE_ID}" <<'PY'
import json, sys

traces = json.load(open(sys.argv[1]))
assert traces, "trace ring is empty"

def walk(node, depth=0):
    assert isinstance(node["name"], str) and node["name"], node
    assert node["elapsed_ns"] >= 1, node
    for child in node["children"]:
        yield from walk(child, depth + 1)
    yield node["name"]

for t in traces:
    assert t["trace_id"] and t["method"] and t["path"], t
    assert t["status"] >= 200, t
    list(walk(t["root"]))  # well-formed span tree, no crash

cross = [t for t in traces if t["trace_id"] == sys.argv[2]]
assert len(cross) == 1, f"expected one adopted-id trace, got {len(cross)}"
spans = list(walk(cross[0]["root"]))
for needed in ["router.dispatch", "router.shard0", "router.shard1", "router.merge"]:
    assert needed in spans, f"missing {needed} in {spans}"
assert spans.count("engine.cache_probe") >= 2, spans  # both shard engines
assert spans.count("engine.solve") >= 2, spans

wal = [t for t in traces if "store.wal_append" in list(walk(t["root"]))]
assert wal, "no trace reached the WAL"
print(f"   {len(traces)} traces; cross-shard trace has {len(spans)} spans")
PY

say "slow-query log captures every request and parses"
test -s "${WORKDIR}/data/slow_requests.jsonl"
"${SUBRANK}" report --requests "${WORKDIR}/data/slow_requests.jsonl" >"${WORKDIR}/report.txt"
grep -q 'time by layer' "${WORKDIR}/report.txt"
grep -q 'engine' "${WORKDIR}/report.txt"
grep -q "${TRACE_ID}" "${WORKDIR}/data/slow_requests.jsonl"

say "per-layer histograms are exposed in /metrics"
curl -sf "http://${ADDR}/metrics" >"${WORKDIR}/metrics.txt"
grep -q '^engine_cache_probe_us_count ' "${WORKDIR}/metrics.txt"
grep -q '^engine_cache_probe_us_bucket{le="+Inf"} ' "${WORKDIR}/metrics.txt"
grep -q '^store_fsync_us_count ' "${WORKDIR}/metrics.txt"
grep -q '^solve_iterations_count ' "${WORKDIR}/metrics.txt"
grep -Eq '^engine_cache_probe_us_slowest\{trace_id="[^"]+"\} ' "${WORKDIR}/metrics.txt"
grep -Eq '^approxrank_slow_requests_total [1-9]' "${WORKDIR}/metrics.txt"

say "error envelopes carry a trace_id"
STATUS="$(curl -s -o "${WORKDIR}/err.json" -w '%{http_code}' "http://${ADDR}/session/999999")"
test "${STATUS}" = "404" || { echo "expected 404, got ${STATUS}" >&2; exit 1; }
grep -q '"trace_id":' "${WORKDIR}/err.json"

say "loadgen --capture prints a server-side layer breakdown"
"${LOADGEN}" --addr "${ADDR}" --clients 2 --requests 10 --keys 4 --members 8 \
  --capture --capture-out "${WORKDIR}/capture.jsonl" >"${WORKDIR}/loadgen.txt"
grep -q 'server-side traces via /debug/requests' "${WORKDIR}/loadgen.txt"
grep -q 'engine' "${WORKDIR}/loadgen.txt"
test -s "${WORKDIR}/capture.jsonl"
"${SUBRANK}" report --requests "${WORKDIR}/capture.jsonl" --top 2 >"${WORKDIR}/report2.txt"
grep -q 'slowest 2 requests' "${WORKDIR}/report2.txt"

say "structured log lines carry trace ids"
grep -q '"level":"info"' "${WORKDIR}/serve.err"

say "no panics in the server log"
! grep -i 'panic' "${WORKDIR}/serve.err"

say "observability smoke OK"
