#!/usr/bin/env bash
# Crash-recovery smoke test for the durable session store: build
# release, boot `subrank serve --data-dir` on a generated graph, open
# sessions and put them under loadgen's session workload, capture their
# GET /session/{id} answers, kill the server with SIGKILL (no graceful
# drain, no final snapshot), restart on the same data dir, and assert
# the recovered answers match the pre-kill ones at printed precision.
#
# Exits nonzero if any session is lost, any score drifts, or either
# boot logs a panic.
set -euo pipefail

PORT="${SMOKE_PORT:-7879}"
ADDR="127.0.0.1:${PORT}"
WORKDIR="$(mktemp -d)"
trap 'kill -9 "${SERVER_PID:-}" 2>/dev/null || true; rm -rf "${WORKDIR}"' EXIT

say() { printf '== %s\n' "$*"; }

boot() {
  "${SUBRANK}" serve --graph "${WORKDIR}/web.edges" --addr "${ADDR}" --threads 4 \
    --data-dir "${WORKDIR}/data" --fsync always \
    >"${WORKDIR}/serve.$1.out" 2>"${WORKDIR}/serve.$1.err" &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    if curl -sf "http://${ADDR}/healthz" >/dev/null 2>&1; then
      return 0
    fi
    if ! kill -0 "${SERVER_PID}" 2>/dev/null; then
      echo "server died during startup" >&2
      cat "${WORKDIR}/serve.$1.err" >&2
      exit 1
    fi
    sleep 0.1
  done
  curl -sf "http://${ADDR}/healthz" >/dev/null
}

say "building release binaries"
cargo build --release -p approxrank-cli -p approxrank-bench

SUBRANK=target/release/subrank
LOADGEN=target/release/loadgen

say "generating a graph"
"${SUBRANK}" gen --dataset au --pages 20000 --out "${WORKDIR}/web.edges" >/dev/null

say "booting subrank serve with --data-dir --fsync always"
boot first

say "opening sessions and driving warm updates under loadgen"
curl -sf -X POST "http://${ADDR}/session" -d '{"members":[0,1,2,3,4,5,6,7]}' >/dev/null
curl -sf -X POST "http://${ADDR}/session" -d '{"members":[100,101,102],"damping":0.9}' >/dev/null
curl -sf -X POST "http://${ADDR}/session/1/update" -d '{"add":[8,9],"remove":[2]}' >/dev/null
"${LOADGEN}" --addr "${ADDR}" --clients 2 --requests 20 --keys 8 --sessions 2 \
  | tee "${WORKDIR}/loadgen.out"
grep -q '^sessions ' "${WORKDIR}/loadgen.out"

say "capturing pre-kill session answers"
SESSION_IDS="1 2 3 4"
for id in ${SESSION_IDS}; do
  curl -sf "http://${ADDR}/session/${id}" >"${WORKDIR}/before.${id}.json"
  grep -q '"scores"' "${WORKDIR}/before.${id}.json"
done

say "SIGKILL (no drain, no final snapshot)"
kill -9 "${SERVER_PID}"
wait "${SERVER_PID}" 2>/dev/null || true

say "restarting on the same data dir"
boot second
grep -q 'durable sessions in .* (4 recovered)' "${WORKDIR}/serve.second.err"

say "recovered answers must match pre-kill at printed precision"
for id in ${SESSION_IDS}; do
  curl -sf "http://${ADDR}/session/${id}" >"${WORKDIR}/after.${id}.json"
done
python3 - "$WORKDIR" "$SESSION_IDS" <<'PY'
import json, sys
workdir, ids = sys.argv[1], sys.argv[2].split()
for sid in ids:
    before = json.load(open(f"{workdir}/before.{sid}.json"))
    after = json.load(open(f"{workdir}/after.{sid}.json"))
    assert before["members"] == after["members"], f"session {sid}: membership changed"
    assert before["damping"] == after["damping"], f"session {sid}: damping changed"
    b, a = before["scores"], after["scores"]
    assert len(b) == len(a) > 0, f"session {sid}: score count {len(b)} -> {len(a)}"
    for x, y in zip(b, a):
        assert x["page"] == y["page"], f"session {sid}: page order changed"
        assert f'{x["score"]:.12e}' == f'{y["score"]:.12e}', \
            f"session {sid} page {x['page']}: {x['score']!r} != {y['score']!r}"
    assert f'{before["lambda"]:.12e}' == f'{after["lambda"]:.12e}', f"session {sid}: lambda"
print(f"   {len(ids)} sessions recovered with identical scores")
PY

say "recovered sessions keep serving warm updates"
curl -sf -X POST "http://${ADDR}/session/1/update" -d '{"add":[20]}' | grep -q '"scores"'

say "store metrics are exposed"
curl -sf "http://${ADDR}/metrics" >"${WORKDIR}/metrics.txt"
grep -q '^store_wal_appends' "${WORKDIR}/metrics.txt"
grep -Eq '^store_recovered_sessions 4' "${WORKDIR}/metrics.txt"
grep -q '^store_truncated_records' "${WORKDIR}/metrics.txt"

say "clean shutdown of the second instance"
kill -INT "${SERVER_PID}"
for _ in $(seq 1 100); do
  kill -0 "${SERVER_PID}" 2>/dev/null || break
  sleep 0.1
done
for boot_tag in first second; do
  if grep -qi 'panicked' "${WORKDIR}/serve.${boot_tag}.err"; then
    echo "server (${boot_tag} boot) logged a panic:" >&2
    cat "${WORKDIR}/serve.${boot_tag}.err" >&2
    exit 1
  fi
done

say "store smoke OK"
