#!/usr/bin/env bash
# Remote-serving smoke test: build release, generate a graph, boot two
# RPC shard servers (shard 0 with TWO replicas) plus an HTTP router
# fronting them, and a plain 1-shard local server on the same graph.
#
# Asserts that:
#   - shard-resident /rank answers from the remote deployment are
#     byte-identical to the 1-shard local server (each body is sent
#     exactly once per deployment — a repeat would flip `"cached"`);
#   - cross-shard /rank merges remotely exactly as it does locally;
#   - a trace id sent to the router propagates over the wire into the
#     shard server's logs;
#   - killing one replica of shard 0 in the middle of a loadgen run
#     causes zero failed requests (loadgen exits nonzero on any);
#   - /metrics exposes the rpc_* transport telemetry and records the
#     replica as down.
#
# Exits nonzero on any body mismatch, failed request, or missing metric.
set -euo pipefail

PORT_ROUTER="${REMOTE_SMOKE_PORT_ROUTER:-7893}"
PORT_SINGLE="${REMOTE_SMOKE_PORT_SINGLE:-7894}"
PORT_S0A="${REMOTE_SMOKE_PORT_S0A:-7895}"
PORT_S0B="${REMOTE_SMOKE_PORT_S0B:-7896}"
PORT_S1="${REMOTE_SMOKE_PORT_S1:-7897}"
ADDR_ROUTER="127.0.0.1:${PORT_ROUTER}"
ADDR_SINGLE="127.0.0.1:${PORT_SINGLE}"
ADDR_S0A="127.0.0.1:${PORT_S0A}"
ADDR_S0B="127.0.0.1:${PORT_S0B}"
ADDR_S1="127.0.0.1:${PORT_S1}"
WORKDIR="$(mktemp -d)"
trap 'kill -9 "${PID_ROUTER:-}" "${PID_SINGLE:-}" "${PID_S0A:-}" "${PID_S0B:-}" "${PID_S1:-}" 2>/dev/null || true; rm -rf "${WORKDIR}"' EXIT

say() { printf '== %s\n' "$*"; }

wait_port() { # wait_port <host:port> <name> <pid>
  local addr="$1" name="$2" pid="$3" host port
  host="${addr%:*}"
  port="${addr#*:}"
  for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/${host}/${port}") 2>/dev/null; then
      exec 3>&- 3<&- || true
      return 0
    fi
    if ! kill -0 "${pid}" 2>/dev/null; then
      echo "${name} died during startup" >&2
      cat "${WORKDIR}/${name}.err" >&2
      exit 1
    fi
    sleep 0.1
  done
  echo "${name} never opened ${addr}" >&2
  exit 1
}

boot_shard() { # boot_shard <name> <addr> <shard index>
  local name="$1" addr="$2" k="$3"
  "${SUBRANK}" serve --graph "${WORKDIR}/web.edges" --addr "${addr}" \
    --shards 2 --shard-server "${k}" --log-level debug \
    >"${WORKDIR}/${name}.out" 2>"${WORKDIR}/${name}.err" &
  local pid=$!
  wait_port "${addr}" "${name}" "${pid}"
  echo "${pid}"
}

boot_http() { # boot_http <name> <addr> <extra flags...>
  local name="$1" addr="$2"
  shift 2
  "${SUBRANK}" serve --graph "${WORKDIR}/web.edges" --addr "${addr}" --threads 4 "$@" \
    >"${WORKDIR}/${name}.out" 2>"${WORKDIR}/${name}.err" &
  local pid=$!
  for _ in $(seq 1 100); do
    if curl -sf "http://${addr}/healthz" >/dev/null 2>&1; then
      echo "${pid}"
      return 0
    fi
    if ! kill -0 "${pid}" 2>/dev/null; then
      echo "server ${name} died during startup" >&2
      cat "${WORKDIR}/${name}.err" >&2
      exit 1
    fi
    sleep 0.1
  done
  curl -sf "http://${addr}/healthz" >/dev/null
  echo "${pid}"
}

say "building release binaries"
cargo build --release -p approxrank-cli -p approxrank-bench

SUBRANK=target/release/subrank
LOADGEN=target/release/loadgen

say "generating a graph"
"${SUBRANK}" gen --dataset au --pages 20000 --out "${WORKDIR}/web.edges" >/dev/null

say "booting shard servers (shard 0 twice, shard 1 once)"
PID_S0A="$(boot_shard s0a "${ADDR_S0A}" 0)"
PID_S0B="$(boot_shard s0b "${ADDR_S0B}" 0)"
PID_S1="$(boot_shard s1 "${ADDR_S1}" 1)"
grep -q 'shard 0/2' "${WORKDIR}/s0a.err"
grep -q 'shard 1/2' "${WORKDIR}/s1.err"

say "booting the remote router and a 1-shard local server"
PID_ROUTER="$(boot_http router "${ADDR_ROUTER}" \
  --remote-shard "${ADDR_S0A},${ADDR_S0B}" --remote-shard "${ADDR_S1}")"
PID_SINGLE="$(boot_http single "${ADDR_SINGLE}")"
grep -q 'routing to 2 remote shards' "${WORKDIR}/router.err"

say "shard-resident /rank answers must be byte-identical to 1-shard local"
# Range partitioning of 20000 nodes: shard 0 owns 0..10000, shard 1 the
# rest. One membership per shard, plus one with non-default options.
# Each body is sent exactly once per deployment.
BODIES=(
  '{"members":[5,6,7,8,9,10,11,12],"tolerance":1e-8}'
  '{"members":[15000,15001,15002,15003],"tolerance":1e-8}'
  '{"members":[400,401,402],"damping":0.9,"top":2}'
)
for i in "${!BODIES[@]}"; do
  body="${BODIES[$i]}"
  curl -sf -X POST "http://${ADDR_SINGLE}/rank" -d "${body}" >"${WORKDIR}/single.${i}.json"
  curl -sf -X POST "http://${ADDR_ROUTER}/rank" -d "${body}" >"${WORKDIR}/remote.${i}.json"
  cmp "${WORKDIR}/single.${i}.json" "${WORKDIR}/remote.${i}.json" \
    || { echo "resident body ${i} differs between remote and local" >&2; exit 1; }
done

say "cross-shard /rank must merge remotely (200, shards=2, mass ~ 1)"
curl -sf -X POST "http://${ADDR_ROUTER}/rank" \
  -d '{"members":[9998,9999,10000,10001],"tolerance":1e-8}' >"${WORKDIR}/cross.json"
grep -q '"shards":2' "${WORKDIR}/cross.json"
python3 - "${WORKDIR}/cross.json" <<'PY'
import json, sys
v = json.load(open(sys.argv[1]))
assert v["shards"] == 2, v["shards"]
mass = sum(s["score"] for s in v["scores"]) + v["lambda"]
assert abs(mass - 1.0) < 1e-9, f"mixture mass {mass}"
PY

say "a trace id sent to the router must reach the shard server's logs"
TRACE_ID="remotesmoke-$$"
curl -sf -X POST "http://${ADDR_ROUTER}/rank" -H "X-Request-Id: ${TRACE_ID}" \
  -d '{"members":[42,43,44]}' >/dev/null
grep -q "${TRACE_ID}" "${WORKDIR}/s0a.err" "${WORKDIR}/s0b.err" 2>/dev/null \
  || { echo "trace id ${TRACE_ID} never reached a shard-0 replica log" >&2; exit 1; }

say "sessions work end to end over RPC"
curl -sf -X POST "http://${ADDR_ROUTER}/session" -d '{"members":[15000,15001]}' >"${WORKDIR}/sess.json"
grep -q '"id":2' "${WORKDIR}/sess.json"  # shard 1 strides ids 2, 4, …
curl -sf "http://${ADDR_ROUTER}/session/2" >/dev/null
curl -sf -X DELETE "http://${ADDR_ROUTER}/session/2" >/dev/null

say "killing replica s0a mid-loadgen must cause zero failed requests"
"${LOADGEN}" --addr "${ADDR_ROUTER}" --clients 4 --requests 150 --keys 16 --shards 2 \
  >"${WORKDIR}/loadgen.out" 2>&1 &
LOADGEN_PID=$!
sleep 0.5
kill -9 "${PID_S0A}"
PID_S0A=""
wait "${LOADGEN_PID}" || { echo "loadgen saw failed requests after the replica kill" >&2; cat "${WORKDIR}/loadgen.out" >&2; exit 1; }
grep -q ' 0 errors' "${WORKDIR}/loadgen.out"

say "rpc_* metrics are exposed and record the down replica"
sleep 2  # give the health checker a probe cycle
curl -sf "http://${ADDR_ROUTER}/metrics" >"${WORKDIR}/metrics.txt"
grep -q '^rpc_requests_total ' "${WORKDIR}/metrics.txt"
grep -q '^rpc_health_probes_total ' "${WORKDIR}/metrics.txt"
grep -q '^rpc_unavailable_total 0$' "${WORKDIR}/metrics.txt"
grep -q '^rpc_replicas{shard="0"} 2$' "${WORKDIR}/metrics.txt"
grep -q '^rpc_replicas_healthy{shard="0"} 1$' "${WORKDIR}/metrics.txt"
grep -q '^rpc_replicas_healthy{shard="1"} 1$' "${WORKDIR}/metrics.txt"

say "no panics in any server log"
! grep -i 'panic' "${WORKDIR}/router.err" "${WORKDIR}/single.err" \
    "${WORKDIR}/s0b.err" "${WORKDIR}/s1.err"

say "remote smoke OK"
