//! Property-based tests for the engine layer.
//!
//! The load-bearing invariant of the sharded design: for *any* graph and
//! *any* membership resident on one shard, a shard engine's ApproxRank
//! solve is bit-identical to a global engine's — same scores, same Λ,
//! same iteration count. The Λ-collapse only consumes two global scalars
//! (node count and dangling count), which every shard carries, so nothing
//! about the answer may depend on which backend solved it.

use std::sync::Arc;

use approxrank_engine::{Algorithm, Engine, EngineConfig, EstimatorOptions, RankRequest};
use approxrank_graph::{DiGraph, PartitionStrategy, PartitionedGraph};
use approxrank_trace::null;
use proptest::prelude::*;

/// Arbitrary graphs over 8..80 nodes with a connecting ring (so solves
/// are non-trivial) plus random extra edges.
fn graph_strategy() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (8usize..80).prop_flat_map(|n| {
        let edge = (0u32..n as u32, 0u32..n as u32);
        proptest::collection::vec(edge, 0..160).prop_map(move |mut es| {
            for i in 0..n as u32 {
                es.push((i, (i + 1) % n as u32));
            }
            (n, es)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn shard_resident_solve_is_bit_identical_to_global(
        (n, edges) in graph_strategy(),
        pick in proptest::collection::vec(any::<bool>(), 80),
        strategy_idx in 0usize..3,
    ) {
        let strategy = [
            PartitionStrategy::Range,
            PartitionStrategy::Scc,
            PartitionStrategy::Hash,
        ][strategy_idx];
        let g = DiGraph::from_edges(n, &edges);
        let pg = PartitionedGraph::build(&g, 2, strategy);
        let assignment = pg.assignment().to_vec();
        let global = Engine::new_global(Arc::new(g), EngineConfig::default());
        let shards: Vec<Engine> = pg
            .into_shards()
            .into_iter()
            .map(|s| Engine::new_shard(Arc::new(s), EngineConfig::default()))
            .collect();

        for shard_id in 0..2u32 {
            // A random, non-empty, proper-subset membership resident on
            // this shard (skip shards the strategy left too small).
            let resident: Vec<u32> = (0..n as u32)
                .filter(|&v| assignment[v as usize] == shard_id)
                .collect();
            let members: Vec<u32> = resident
                .iter()
                .zip(&pick)
                .filter(|&(_, &take)| take)
                .map(|(&v, _)| v)
                .collect();
            if members.is_empty() || members.len() >= n {
                continue;
            }
            let req = RankRequest {
                members,
                algorithm: Algorithm::ApproxRank,
                damping: 0.85,
                tolerance: 1e-8,
                estimator: EstimatorOptions::default(),
            };
            let a = global.rank(&req, null()).unwrap();
            let b = shards[shard_id as usize].rank(&req, null()).unwrap();
            prop_assert_eq!(a.result.scores.len(), b.result.scores.len());
            for ((pa, sa), (pb, sb)) in a.result.scores.iter().zip(b.result.scores.iter()) {
                prop_assert_eq!(pa, pb);
                prop_assert_eq!(sa.to_bits(), sb.to_bits(), "page {} differs", pa);
            }
            prop_assert_eq!(
                a.result.lambda.unwrap().to_bits(),
                b.result.lambda.unwrap().to_bits()
            );
            prop_assert_eq!(a.result.iterations, b.result.iterations);
            prop_assert_eq!(a.result.converged, b.result.converged);
        }
    }
}
