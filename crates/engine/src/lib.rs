//! `approxrank-engine`: the reusable per-graph ranking engine.
//!
//! Everything a ranking service keeps *per graph* — the cold-solve result
//! cache, the warm [`approxrank_core::SubgraphSession`] table, lazily
//! computed global PageRank scores for IdealRank, and the durable-store
//! glue — extracted behind one type, [`Engine`], so the HTTP service, the
//! CLI, and the bench harness all drive the same object instead of each
//! reimplementing the stack.
//!
//! An engine runs over one of three backends:
//!
//! * **Global** — the whole graph behind a live
//!   [`approxrank_delta::DeltaGraph`] overlay. Every algorithm of the
//!   paper's evaluation is available, answers are bit-identical to the
//!   offline `subrank rank` CLI, and [`Engine::mutate_graph`] applies
//!   edge batches with incremental rank maintenance.
//! * **Shard** — one static [`approxrank_graph::Shard`] of a partitioned
//!   graph. Only ApproxRank (plus its estimators) is available (the
//!   Λ-collapse is the one algorithm whose global inputs reduce to two
//!   scalars, see [`approxrank_core::GlobalAggregates`]), and solves for
//!   shard-resident subgraphs are bit-identical to the global backend —
//!   the property the serving layer's shard router builds on.
//! * **DeltaShard** — one shard view over a *shared* live `DeltaGraph`:
//!   the same restriction as Shard, but a mutation applied to the shared
//!   delta propagates to every engine built over it.
//!
//! Session ids are allocated on a stride so `S` engines behind one router
//! hand out disjoint ids: engine `k` of `S` allocates `k+1`, `k+1+S`,
//! `k+1+2S`, … and a router recovers the owning engine as `(id-1) % S`.
//! The single-engine default (`first = 1`, `stride = 1`) degenerates to
//! the classic `1, 2, 3, …`.

#![deny(missing_docs)]

pub mod algorithm;
pub mod batch;
pub mod cache;
mod engine;
mod handle;
pub mod lru;
mod persist;

pub use algorithm::Algorithm;
pub use approxrank_core::Estimate;
pub use approxrank_delta::{DeltaGraph, DeltaShardView, MutationSummary};
pub use batch::{BatchConfig, BatchStats};
pub use cache::{cache_key, estimator_bits, CacheKey, CacheStats, CachedResult, ShardedCache};
pub use engine::{
    Engine, EngineConfig, EngineError, EngineSession, EstimatorOptions, KeywordRequest,
    MutationOutcome, RankOutcome, RankRequest, SessionSolver, SessionView,
};
pub use handle::EngineHandle;
pub use persist::RecoverySummary;
