//! [`EngineHandle`]: the dispatch seam between a router and an engine.
//!
//! A routing tier does not care where an engine lives. The in-process
//! [`Engine`] implements this trait directly; a remote engine (an RPC
//! client fronting a `subrank serve --shard-server` process on another
//! host) implements the same trait, so one router can front any mix of
//! local and remote shards without branching at call sites.
//!
//! Every fallible operation returns [`EngineError`]; transport failures
//! surface as [`EngineError::Unavailable`], which an in-process engine
//! never produces. The two lookup-shaped operations
//! ([`session_view`](EngineHandle::session_view) and
//! [`session_delete`](EngineHandle::session_delete)) distinguish "the
//! session does not exist" (`Ok(None)` / `Ok(false)`) from "I could not
//! ask" (`Err`), so a replica outage never masquerades as a 404.

use approxrank_trace::Observer;

use crate::batch::BatchStats;
use crate::cache::{CacheStats, CachedResult};
use crate::engine::{
    Engine, EngineError, KeywordRequest, MutationOutcome, RankOutcome, RankRequest, SessionView,
};

/// The engine surface a router dispatches to, location-blind.
///
/// Telemetry accessors ([`cache_stats`](EngineHandle::cache_stats),
/// [`session_count`](EngineHandle::session_count),
/// [`wal_errors`](EngineHandle::wal_errors)) are best-effort: a remote
/// implementation returns zeros when its replicas are unreachable rather
/// than failing a metrics scrape.
pub trait EngineHandle: Send + Sync {
    /// Ranks a member list (cache-aside on the engine's side).
    fn rank(&self, params: &RankRequest, obs: &dyn Observer) -> Result<RankOutcome, EngineError>;

    /// Ranks a member list under a keyword (base-set) personalization —
    /// ObjectRank's teleport over ApproxRank's Λ-collapse. Engines batch
    /// concurrent keyword queries into one multi-vector solve; see
    /// [`Engine::keyword_rank`].
    fn keyword_rank(
        &self,
        params: &KeywordRequest,
        obs: &dyn Observer,
    ) -> Result<CachedResult, EngineError>;

    /// Batch-scheduler counters (best-effort: remote implementations
    /// report zeros rather than fail a metrics scrape — the remote
    /// process exports its own `batch_*` counters).
    fn batch_stats(&self) -> BatchStats {
        BatchStats::default()
    }

    /// Opens a warm session and returns its id plus the first solution.
    /// The request's algorithm selects the solver (`approxrank` exact or
    /// `mc` estimator); other algorithms are rejected.
    fn session_create(
        &self,
        params: &RankRequest,
        obs: &dyn Observer,
    ) -> Result<(u64, CachedResult), EngineError>;

    /// Applies a membership edit and warm-start re-solves.
    fn session_update(
        &self,
        id: u64,
        add: &[u32],
        remove: &[u32],
        obs: &dyn Observer,
    ) -> Result<(Vec<u32>, CachedResult), EngineError>;

    /// A read-only snapshot of session `id`; `Ok(None)` when it does not
    /// exist, `Err` when the engine could not be asked.
    fn session_view(&self, id: u64) -> Result<Option<SessionView>, EngineError>;

    /// Closes session `id`; `Ok(false)` when it did not exist.
    fn session_delete(&self, id: u64, obs: &dyn Observer) -> Result<bool, EngineError>;

    /// Applies an edge-mutation batch to the engine's live graph,
    /// repairing intersecting warm sessions. Static shard engines reject
    /// with `BadRequest`.
    fn mutate_graph(
        &self,
        insert: &[(u32, u32)],
        delete: &[(u32, u32)],
        obs: &dyn Observer,
    ) -> Result<MutationOutcome, EngineError>;

    /// The engine's current graph epoch (0 for static engines;
    /// best-effort for remote implementations).
    fn graph_epoch(&self) -> u64;

    /// Open session count (best-effort for remote implementations).
    fn session_count(&self) -> usize;

    /// Result-cache counters (best-effort for remote implementations).
    fn cache_stats(&self) -> CacheStats;

    /// WAL append failures (best-effort for remote implementations).
    fn wal_errors(&self) -> u64;
}

impl EngineHandle for Engine {
    fn rank(&self, params: &RankRequest, obs: &dyn Observer) -> Result<RankOutcome, EngineError> {
        Engine::rank(self, params, obs)
    }

    fn keyword_rank(
        &self,
        params: &KeywordRequest,
        obs: &dyn Observer,
    ) -> Result<CachedResult, EngineError> {
        Engine::keyword_rank(self, params, obs)
    }

    fn batch_stats(&self) -> BatchStats {
        Engine::batch_stats(self)
    }

    fn session_create(
        &self,
        params: &RankRequest,
        obs: &dyn Observer,
    ) -> Result<(u64, CachedResult), EngineError> {
        Engine::session_create(self, params, obs)
    }

    fn session_update(
        &self,
        id: u64,
        add: &[u32],
        remove: &[u32],
        obs: &dyn Observer,
    ) -> Result<(Vec<u32>, CachedResult), EngineError> {
        Engine::session_update(self, id, add, remove, obs)
    }

    fn session_view(&self, id: u64) -> Result<Option<SessionView>, EngineError> {
        Ok(Engine::session_view(self, id))
    }

    fn session_delete(&self, id: u64, obs: &dyn Observer) -> Result<bool, EngineError> {
        Ok(Engine::session_delete(self, id, obs))
    }

    fn mutate_graph(
        &self,
        insert: &[(u32, u32)],
        delete: &[(u32, u32)],
        obs: &dyn Observer,
    ) -> Result<MutationOutcome, EngineError> {
        Engine::mutate_graph(self, insert, delete, obs)
    }

    fn graph_epoch(&self) -> u64 {
        Engine::graph_epoch(self)
    }

    fn session_count(&self) -> usize {
        Engine::session_count(self)
    }

    fn cache_stats(&self) -> CacheStats {
        Engine::cache_stats(self)
    }

    fn wal_errors(&self) -> u64 {
        Engine::wal_errors(self)
    }
}
