//! The sharded result cache.
//!
//! `/rank` answers are memoized keyed by (algorithm, solver options,
//! membership). The map is split into shards, each behind its own mutex,
//! so concurrent workers rarely contend; each shard is an O(1)
//! [`Lru`]. Hit/miss/eviction/invalidation counters are
//! lock-free and feed `/metrics`.
//!
//! Entries store the *full* key, not just its hash — a 64-bit collision
//! must never serve one subgraph's scores for another.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::lru::Lru;

/// Identifies one cacheable ranking computation.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Algorithm discriminant (see [`crate::Algorithm::code`]).
    pub algorithm: u8,
    /// The graph epoch the answer was computed under (see
    /// [`approxrank_delta::DeltaGraph::effective_epoch`]): the max of the
    /// structural epoch and the page epochs of the member set. A mutation
    /// that touches any member bumps this, so stale entries simply stop
    /// being addressable and age out of the LRU — lazy invalidation,
    /// counted by [`CacheStats::stale_evictions`] when they finally fall
    /// out. Static (non-delta) engines pin it at 0.
    pub epoch: u64,
    /// `f64::to_bits` of the damping factor.
    pub damping_bits: u64,
    /// `f64::to_bits` of the tolerance.
    pub tolerance_bits: u64,
    /// Estimator-parameter fingerprint: 0 for exact algorithms; for the
    /// Monte-Carlo and push estimators a mix of their walk budget, seed,
    /// and epsilon (see [`estimator_bits`]) so results computed under
    /// different sampling parameters never alias.
    pub estimator_bits: u64,
    /// Sorted, deduplicated member ids. `Arc` keeps key clones cheap —
    /// the key is cloned into the shard on insert.
    pub members: Arc<[u32]>,
}

/// A memoized ranking answer.
#[derive(Clone, Debug, PartialEq)]
pub struct CachedResult {
    /// `(global page id, score)` in member order.
    pub scores: Arc<Vec<(u32, f64)>>,
    /// The external node Λ's score, when the algorithm has one.
    pub lambda: Option<f64>,
    /// Iterations the solve took (for estimators: sources walked or
    /// pushes performed).
    pub iterations: usize,
    /// Whether the solve converged.
    pub converged: bool,
    /// Present when the scores are an estimate rather than a converged
    /// solve: the walk count, accuracy target, and residual behind them.
    pub estimate: Option<approxrank_core::Estimate>,
}

/// Point-in-time counters for `/stats` and `/metrics`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries displaced by LRU pressure.
    pub evictions: u64,
    /// The subset of `evictions` whose key carried a stale graph epoch —
    /// answers a mutation had already made unreachable. Together with
    /// `evictions` this shows how much of the cache churn live mutation
    /// causes.
    pub stale_evictions: u64,
    /// Entries removed by explicit invalidation.
    pub invalidations: u64,
    /// Current live entries across all shards.
    pub entries: usize,
    /// Total capacity across all shards.
    pub capacity: usize,
}

/// A fixed-shard LRU cache of ranking results.
pub struct ShardedCache {
    shards: Vec<Mutex<Lru<CacheKey, CachedResult>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    stale_evictions: AtomicU64,
    invalidations: AtomicU64,
}

/// Shard count: a power of two comfortably above any worker count this
/// service runs with.
const SHARDS: usize = 16;

impl ShardedCache {
    /// A cache bounded at roughly `total_entries` across 16 shards
    /// (each shard holds at least one entry).
    pub fn new(total_entries: usize) -> Self {
        let per_shard = total_entries.div_ceil(SHARDS).max(1);
        ShardedCache {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(Lru::new(per_shard)))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            stale_evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &CacheKey) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    fn lock_shard(&self, idx: usize) -> std::sync::MutexGuard<'_, Lru<CacheKey, CachedResult>> {
        self.shards[idx].lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Looks up a key, updating recency and the hit/miss counters.
    pub fn get(&self, key: &CacheKey) -> Option<CachedResult> {
        let got = self.lock_shard(self.shard_of(key)).get(key).cloned();
        match got {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a result, possibly evicting the shard's LRU entry. The
    /// displaced entry (if any) is returned so the engine can classify
    /// the eviction — an entry keyed under a superseded graph epoch
    /// counts as stale (see [`Self::record_stale_eviction`]).
    pub fn insert(&self, key: CacheKey, value: CachedResult) -> Option<(CacheKey, CachedResult)> {
        let evicted = self.lock_shard(self.shard_of(&key)).insert(key, value);
        if evicted.is_some() {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        evicted
    }

    /// Marks the most recent eviction as stale-epoch churn. Called by the
    /// engine after classifying the entry [`Self::insert`] returned.
    pub fn record_stale_eviction(&self) {
        self.stale_evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Drops the entry for `key`, if present. Sessions call this when a
    /// membership they previously published mutates.
    pub fn invalidate(&self, key: &CacheKey) -> bool {
        let removed = self.lock_shard(self.shard_of(key)).remove(key).is_some();
        if removed {
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        }
        removed
    }

    /// The hottest entries across all shards, up to `limit`: each shard
    /// contributes in its own recency order, and shards are merged
    /// round-robin by recency rank so no shard monopolizes the budget.
    /// Snapshotting uses this to persist the cache's working set.
    pub fn hot_entries(&self, limit: usize) -> Vec<(CacheKey, CachedResult)> {
        let mut per_shard: Vec<Vec<(CacheKey, CachedResult)>> = Vec::new();
        for idx in 0..self.shards.len() {
            let shard = self.lock_shard(idx);
            per_shard.push(shard.iter().map(|(k, v)| (k.clone(), v.clone())).collect());
        }
        let mut out = Vec::new();
        let mut rank = 0;
        while out.len() < limit {
            let mut any = false;
            for shard in &per_shard {
                if let Some(entry) = shard.get(rank) {
                    any = true;
                    out.push(entry.clone());
                    if out.len() == limit {
                        return out;
                    }
                }
            }
            if !any {
                break;
            }
            rank += 1;
        }
        out
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        let mut entries = 0;
        let mut capacity = 0;
        for idx in 0..self.shards.len() {
            let shard = self.lock_shard(idx);
            entries += shard.len();
            capacity += shard.capacity();
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            stale_evictions: self.stale_evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            entries,
            capacity,
        }
    }
}

/// Builds the canonical key for a computation: members must already be
/// sorted and deduplicated (the handler's `NodeSet` pass guarantees it).
/// `estimator` is 0 for exact algorithms (see [`estimator_bits`]);
/// `epoch` is the member set's effective graph epoch (0 on static
/// engines).
pub fn cache_key(
    algorithm: u8,
    damping: f64,
    tolerance: f64,
    estimator: u64,
    epoch: u64,
    members: &[u32],
) -> CacheKey {
    debug_assert!(
        members.windows(2).all(|w| w[0] < w[1]),
        "members not sorted"
    );
    CacheKey {
        algorithm,
        damping_bits: damping.to_bits(),
        tolerance_bits: tolerance.to_bits(),
        estimator_bits: estimator,
        epoch,
        members: members.into(),
    }
}

/// Fingerprints estimator parameters into one key word. Exact solvers
/// pass nothing and get 0; changing any of the walk budget, the seed, or
/// epsilon changes the fingerprint (an avalanche mix keeps distinct
/// triples from colliding in practice).
pub fn estimator_bits(walks: u32, epsilon: f64, seed: u64) -> u64 {
    let mut acc = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
    for word in [walks as u64, epsilon.to_bits(), seed] {
        acc ^= word;
        acc = acc.wrapping_mul(0x100_0000_01b3); // FNV prime
        acc ^= acc >> 29;
    }
    // Never collide with the exact solvers' reserved 0.
    acc | 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(tag: usize) -> CachedResult {
        CachedResult {
            scores: Arc::new(vec![(tag as u32, 0.5)]),
            lambda: Some(0.5),
            iterations: tag,
            converged: true,
            estimate: None,
        }
    }

    #[test]
    fn hit_after_insert() {
        let cache = ShardedCache::new(64);
        let key = cache_key(0, 0.85, 1e-5, 0, 0, &[1, 2, 3]);
        assert!(cache.get(&key).is_none());
        cache.insert(key.clone(), result(7));
        let got = cache.get(&key).unwrap();
        assert_eq!(got.iterations, 7);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn distinct_options_are_distinct_keys() {
        let cache = ShardedCache::new(64);
        let a = cache_key(0, 0.85, 1e-5, 0, 0, &[1, 2]);
        let b = cache_key(0, 0.9, 1e-5, 0, 0, &[1, 2]);
        let c = cache_key(1, 0.85, 1e-5, 0, 0, &[1, 2]);
        let d = cache_key(0, 0.85, 1e-5, 0, 0, &[1, 2, 3]);
        let e = cache_key(0, 0.85, 1e-5, estimator_bits(256, 1e-3, 42), 0, &[1, 2]);
        cache.insert(a.clone(), result(1));
        for other in [&b, &c, &d, &e] {
            assert!(cache.get(other).is_none());
        }
        assert_eq!(cache.get(&a).unwrap().iterations, 1);
    }

    #[test]
    fn estimator_fingerprints_are_distinct_and_nonzero() {
        let base = estimator_bits(256, 1e-3, 42);
        assert_ne!(base, 0);
        for other in [
            estimator_bits(512, 1e-3, 42),
            estimator_bits(256, 1e-2, 42),
            estimator_bits(256, 1e-3, 43),
        ] {
            assert_ne!(base, other);
            assert_ne!(other, 0);
        }
    }

    #[test]
    fn invalidation_removes_and_counts() {
        let cache = ShardedCache::new(64);
        let key = cache_key(0, 0.85, 1e-5, 0, 0, &[4, 5]);
        cache.insert(key.clone(), result(1));
        assert!(cache.invalidate(&key));
        assert!(!cache.invalidate(&key));
        assert!(cache.get(&key).is_none());
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn eviction_under_pressure() {
        // Tiny cache: one entry per shard.
        let cache = ShardedCache::new(1);
        for i in 0..200u32 {
            cache.insert(cache_key(0, 0.85, 1e-5, 0, 0, &[i]), result(i as usize));
        }
        let s = cache.stats();
        assert!(s.evictions > 0, "{s:?}");
        assert!(s.entries <= s.capacity);
    }
}
