//! The [`Engine`]: per-graph ranking state behind a narrow surface.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use approxrank_core::baselines::{LocalPageRank, Lpr2};
use approxrank_core::{
    ApproxRank, GlobalAggregates, IdealRank, StochasticComplementation, SubgraphRanker,
    SubgraphSession,
};
use approxrank_delta::{DeltaGraph, DeltaShardView, MutationSummary};
use approxrank_graph::{DiGraph, NodeId, NodeSet, Shard, SubgraphSource};
use approxrank_pagerank::{pagerank, PageRankOptions};
use approxrank_store::{FsyncPolicy, GraphMutationRecord, SessionStore, WalEvent};
use approxrank_trace::{Observer, Stopwatch};
use approxrank_walk::{LocalPushRank, McApproxRank, McSession};

use crate::algorithm::Algorithm;
use crate::batch::{BatchConfig, BatchScheduler, BatchStats, GatherKey, KeywordSlot, RankSlot};
use crate::cache::{cache_key, estimator_bits, CacheKey, CacheStats, CachedResult, ShardedCache};

/// Tunables an [`Engine`] is built with.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Total result-cache entries across the cache's shards.
    pub cache_entries: usize,
    /// WAL fsync policy, used when a store is opened.
    pub fsync: FsyncPolicy,
    /// First session id this engine hands out (must be ≥ 1).
    pub first_session_id: u64,
    /// Distance between consecutive session ids. A router running `S`
    /// engines gives engine `k` `first = k+1, stride = S`, so ids are
    /// disjoint and `(id-1) % S` recovers the owner.
    pub session_id_stride: u64,
    /// Coalescing knobs for the engine-internal `BatchScheduler`.
    pub batch: BatchConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            cache_entries: 4096,
            fsync: FsyncPolicy::Interval(std::time::Duration::from_millis(100)),
            first_session_id: 1,
            session_id_stride: 1,
            batch: BatchConfig::default(),
        }
    }
}

/// What the engine ranks over.
pub(crate) enum Backend {
    /// The whole global graph behind a live mutation overlay: every
    /// algorithm is available, and graph mutation lands here.
    Global {
        /// The live graph: immutable CSR base plus delta overlay.
        delta: Arc<DeltaGraph>,
        /// Global PageRank scores for IdealRank, tagged with the graph
        /// epoch they were computed under — a mutation makes them
        /// recompute lazily on the next IdealRank request.
        global_scores: Mutex<Option<(u64, Arc<Vec<f64>>)>>,
    },
    /// One static shard of a partitioned graph: ApproxRank and its
    /// estimators only; mutation is rejected.
    Shard(Arc<Shard>),
    /// One shard view over a shared live [`DeltaGraph`]: the same
    /// algorithm restriction as `Shard`, but mutations applied to the
    /// shared delta propagate to every shard engine built over it.
    DeltaShard(Arc<DeltaShardView>),
}

/// The warm solver behind one open session: exact power iteration or the
/// Monte-Carlo estimator tier.
pub enum SessionSolver {
    /// Converged warm-start power iteration
    /// ([`approxrank_core::SubgraphSession`]).
    Exact(SubgraphSession),
    /// Seeded Monte-Carlo visit counts with incremental re-walks
    /// ([`approxrank_walk::McSession`]) — answers carry an `estimate`
    /// block and membership edits re-walk only sources near the edit.
    Mc(McSession),
}

impl SessionSolver {
    /// Current members in local-id order.
    pub fn members(&self) -> &[u32] {
        match self {
            SessionSolver::Exact(s) => s.members(),
            SessionSolver::Mc(s) => s.members(),
        }
    }

    /// Work the most recent solve took (iterations, or sources walked).
    pub fn last_iterations(&self) -> usize {
        match self {
            SessionSolver::Exact(s) => s.last_iterations(),
            SessionSolver::Mc(s) => s.sources(),
        }
    }

    /// The last persisted-form solution (exact sessions only — estimator
    /// sessions are ephemeral and rebuild their store on boot).
    pub fn last_solution(&self) -> Option<(&[(u32, f64)], f64)> {
        match self {
            SessionSolver::Exact(s) => s.last_solution(),
            SessionSolver::Mc(_) => None,
        }
    }

    fn add_pages_via(&mut self, source: &dyn SubgraphSource, pages: &[NodeId]) {
        match self {
            SessionSolver::Exact(s) => s.add_pages_via(source, pages),
            SessionSolver::Mc(s) => s.add_pages_via(source, pages),
        }
    }

    fn remove_pages_via(&mut self, source: &dyn SubgraphSource, pages: &[NodeId]) {
        match self {
            SessionSolver::Exact(s) => s.remove_pages_via(source, pages),
            SessionSolver::Mc(s) => s.remove_pages_via(source, pages),
        }
    }

    fn subgraph(&self) -> &approxrank_graph::Subgraph {
        match self {
            SessionSolver::Exact(s) => s.subgraph(),
            SessionSolver::Mc(s) => s.subgraph(),
        }
    }

    /// Whether a mutation whose touched-page set is `touched` (sorted)
    /// could change this solver's answer: true when a touched page is a
    /// member or a boundary in-edge source. Everything a Λ-collapse
    /// solve reads reduces to those pages plus the global aggregates —
    /// aggregate changes are handled separately via the structural flag.
    pub fn depends_on(&self, touched: &[u32]) -> bool {
        intersects_sorted(self.members(), touched)
            || intersects_sorted(&self.subgraph().boundary().in_sources, touched)
    }

    /// Re-extracts the current membership after a graph mutation and
    /// warm-restarts the solver state (exact sessions keep their last
    /// scores as the next warm start; estimator sessions re-walk only
    /// sources whose rows changed).
    fn refresh_via(&mut self, source: &dyn SubgraphSource) {
        match self {
            SessionSolver::Exact(s) => s.refresh_via(source),
            SessionSolver::Mc(s) => s.refresh_via(source),
        }
    }

    fn solve(&mut self, obs: &dyn Observer) -> approxrank_core::RankScores {
        match self {
            SessionSolver::Exact(s) => s.solve(),
            SessionSolver::Mc(s) => s.solve_observed(obs),
        }
    }
}

/// One open session: the warm solver plus the cache key of the last
/// membership it published (invalidated on mutation).
pub struct EngineSession {
    /// The warm-start solver.
    pub solver: SessionSolver,
    /// Cache key for the membership at the last solve, if any.
    pub published_key: Option<CacheKey>,
    /// The algorithm the session runs (`approxrank` or `mc`).
    pub algorithm: Algorithm,
    /// Estimator parameters (ignored by exact sessions).
    pub estimator: EstimatorOptions,
    /// Damping the session was opened with (sessions pin their options).
    pub damping: f64,
    /// Tolerance the session was opened with.
    pub tolerance: f64,
}

/// Parameters of the estimator tier, carried on every request (exact
/// algorithms ignore them).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EstimatorOptions {
    /// Monte-Carlo walks per source page.
    pub walks: u32,
    /// Accuracy target: the push estimator's residual budget, echoed in
    /// Monte-Carlo results.
    pub epsilon: f64,
    /// Monte-Carlo run seed (same seed ⇒ bitwise-identical estimates).
    pub seed: u64,
}

impl Default for EstimatorOptions {
    fn default() -> EstimatorOptions {
        EstimatorOptions {
            walks: approxrank_walk::counts::DEFAULT_WALKS,
            epsilon: approxrank_walk::DEFAULT_EPSILON,
            seed: approxrank_walk::counts::DEFAULT_SEED,
        }
    }
}

/// A validated ranking request: members sorted, deduplicated, and all
/// `< N` (the transport layer owns wire-format validation).
#[derive(Clone, Debug, PartialEq)]
pub struct RankRequest {
    /// Sorted, deduplicated member ids, a proper subset of the graph.
    pub members: Vec<u32>,
    /// Which algorithm to run.
    pub algorithm: Algorithm,
    /// Damping factor in `(0, 1)`.
    pub damping: f64,
    /// Convergence tolerance.
    pub tolerance: f64,
    /// Estimator parameters (used when `algorithm` is `mc` or `push`).
    pub estimator: EstimatorOptions,
}

impl RankRequest {
    /// The cache-key fingerprint of this request's estimator parameters
    /// (0 for exact algorithms).
    pub fn estimator_fingerprint(&self) -> u64 {
        if self.algorithm.is_estimator() {
            estimator_bits(
                self.estimator.walks,
                self.estimator.epsilon,
                self.estimator.seed,
            )
        } else {
            0
        }
    }
}

/// A validated keyword-ranking request: ObjectRank-style personalized
/// ApproxRank whose teleport lands uniformly on a *base set* of pages
/// (the pages matching a keyword). `members` names the subgraph to rank
/// within; base pages outside it contribute their teleport share to
/// `Λ`. Members follow the same contract as [`RankRequest::members`];
/// the base set must be sorted, deduplicated, non-empty, and within the
/// global graph.
#[derive(Clone, Debug, PartialEq)]
pub struct KeywordRequest {
    /// Sorted, deduplicated member ids, a proper subset of the graph.
    pub members: Vec<u32>,
    /// Sorted, deduplicated, non-empty base-set page ids (global).
    pub base: Vec<u32>,
    /// Damping factor in `(0, 1)`.
    pub damping: f64,
    /// Convergence tolerance.
    pub tolerance: f64,
}

/// A ranking answer plus whether it came from the cache.
#[derive(Clone, Debug)]
pub struct RankOutcome {
    /// The scores (identical whether cached or freshly solved).
    pub result: CachedResult,
    /// `true` when served from the result cache.
    pub cached: bool,
}

/// What one applied graph-mutation batch did, for the transport layer's
/// response and the mutation metrics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MutationOutcome {
    /// Graph epoch after the batch (unchanged when the batch no-opped).
    pub epoch: u64,
    /// Edges actually inserted (idempotent re-inserts excluded).
    pub inserted: usize,
    /// Edges actually deleted (absent deletes excluded).
    pub deleted: usize,
    /// Pages whose rank inputs the batch could have changed.
    pub touched_pages: usize,
    /// Whether the batch changed the global aggregates (`N` or the
    /// dangling count) — such a batch invalidates every cached answer.
    pub structural: bool,
    /// Warm sessions re-solved because the batch intersected them.
    pub sessions_repaired: usize,
}

/// Why an engine refused an operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The request is invalid for this engine (HTTP 400).
    BadRequest(String),
    /// No session with that id (HTTP 404).
    NoSuchSession(u64),
    /// The engine cannot currently answer — a remote engine's replicas
    /// are all unreachable, or the retry budget ran out (HTTP 503).
    /// Retryable by the caller; the request itself is well-formed.
    Unavailable(String),
}

/// A read-only snapshot of one session, for `GET /session/{id}`.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionView {
    /// Current members in ascending order.
    pub members: Vec<u32>,
    /// Iterations the most recent solve took.
    pub last_iterations: usize,
    /// Damping the session was opened with.
    pub damping: f64,
    /// Tolerance the session was opened with.
    pub tolerance: f64,
    /// The last solution (`(page, score)` pairs plus Λ), if any.
    pub solution: Option<(Vec<(u32, f64)>, f64)>,
}

/// Per-graph ranking state: precomputation, result cache, warm session
/// table, and (optionally) a durable store.
pub struct Engine {
    pub(crate) backend: Backend,
    pub(crate) config: EngineConfig,
    /// The sharded LRU result cache. Stores only cold solves.
    pub(crate) cache: ShardedCache,
    pub(crate) sessions: Mutex<HashMap<u64, Arc<Mutex<EngineSession>>>>,
    pub(crate) next_session_id: AtomicU64,
    pub(crate) store: OnceLock<Arc<SessionStore>>,
    /// WAL appends that failed (disk trouble); surfaced on `/metrics`.
    pub(crate) wal_errors: AtomicU64,
    /// Coalesces concurrent identical cold solves and batches keyword
    /// queries into multi-vector solves.
    pub(crate) batch: BatchScheduler,
}

/// Whether two sorted id slices share an element (two-pointer merge).
fn intersects_sorted(a: &[u32], b: &[u32]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

pub(crate) fn options_for(damping: f64, tolerance: f64) -> PageRankOptions {
    PageRankOptions::paper()
        .with_damping(damping)
        .with_tolerance(tolerance)
}

fn to_cached(members: &[u32], result: approxrank_core::RankScores) -> CachedResult {
    CachedResult {
        scores: Arc::new(
            members
                .iter()
                .copied()
                .zip(result.local_scores.iter().copied())
                .collect(),
        ),
        lambda: result.lambda_score,
        iterations: result.iterations,
        converged: result.converged,
        estimate: result.estimate,
    }
}

impl Engine {
    /// An engine over the whole graph: every algorithm available, and
    /// the graph is live — [`Engine::mutate_graph`] applies edge batches
    /// through a fresh [`DeltaGraph`] wrapped around `graph`.
    pub fn new_global(graph: Arc<DiGraph>, config: EngineConfig) -> Self {
        Engine::new_delta(Arc::new(DeltaGraph::new(graph)), config)
    }

    /// An engine over an existing live graph (shared with other owners,
    /// e.g. a test harness mutating it out-of-band).
    pub fn new_delta(delta: Arc<DeltaGraph>, config: EngineConfig) -> Self {
        Engine::with_backend(
            Backend::Global {
                delta,
                global_scores: Mutex::new(None),
            },
            config,
        )
    }

    /// An engine over one shard of a partitioned graph: ApproxRank only,
    /// bit-identical to a global engine for shard-resident subgraphs.
    pub fn new_shard(shard: Arc<Shard>, config: EngineConfig) -> Self {
        Engine::with_backend(Backend::Shard(shard), config)
    }

    /// An engine over one shard view of a shared live [`DeltaGraph`]:
    /// shard-restricted like [`Engine::new_shard`], but a mutation
    /// applied to the shared delta is visible to every engine built over
    /// it (each engine absorbs the summary via
    /// [`Engine::absorb_mutation`]).
    pub fn new_delta_shard(view: Arc<DeltaShardView>, config: EngineConfig) -> Self {
        Engine::with_backend(Backend::DeltaShard(view), config)
    }

    fn with_backend(backend: Backend, config: EngineConfig) -> Self {
        assert!(config.first_session_id >= 1, "session ids start at 1");
        assert!(config.session_id_stride >= 1, "stride must be positive");
        Engine {
            cache: ShardedCache::new(config.cache_entries),
            sessions: Mutex::new(HashMap::new()),
            next_session_id: AtomicU64::new(config.first_session_id),
            store: OnceLock::new(),
            wal_errors: AtomicU64::new(0),
            batch: BatchScheduler::new(config.batch.clone()),
            backend,
            config,
        }
    }

    /// The extraction source this engine ranks through.
    pub(crate) fn source(&self) -> &dyn SubgraphSource {
        match &self.backend {
            Backend::Global { delta, .. } => delta.as_ref(),
            Backend::Shard(shard) => shard.as_ref(),
            Backend::DeltaShard(view) => view.as_ref(),
        }
    }

    /// The live graph behind this engine, when it has one (global and
    /// delta-shard backends; `None` for a static shard).
    pub fn delta(&self) -> Option<&Arc<DeltaGraph>> {
        match &self.backend {
            Backend::Global { delta, .. } => Some(delta),
            Backend::Shard(_) => None,
            Backend::DeltaShard(view) => Some(view.delta()),
        }
    }

    /// The current graph epoch (0 on a static shard engine and before
    /// the first mutation).
    pub fn graph_epoch(&self) -> u64 {
        self.delta().map_or(0, |d| d.epoch())
    }

    /// The effective epoch of a member set: the newest epoch at which a
    /// mutation touched any of its pages (or changed the global
    /// aggregates). Cache keys carry this, so a mutation retires exactly
    /// the entries it could have changed.
    pub fn effective_epoch(&self, members: &[u32]) -> u64 {
        self.delta().map_or(0, |d| d.effective_epoch(members))
    }

    /// `N`, the global node count (even for a shard engine).
    pub fn global_nodes(&self) -> usize {
        self.source().global_nodes()
    }

    /// Dangling pages in the whole global graph.
    pub fn num_dangling(&self) -> usize {
        self.source().num_dangling()
    }

    /// Whether this engine can rank subgraphs containing `node`.
    pub fn owns(&self, node: NodeId) -> bool {
        self.source().owns(node)
    }

    /// The global graph at its current epoch, when this is a global
    /// engine. Materialized through [`DeltaGraph::compacted`]: the
    /// original CSR until the first mutation, then a per-epoch cached
    /// merge.
    pub fn graph(&self) -> Option<Arc<DiGraph>> {
        match &self.backend {
            Backend::Global { delta, .. } => Some(delta.compacted()),
            Backend::Shard(_) | Backend::DeltaShard(_) => None,
        }
    }

    /// The shard id, when this is a shard engine.
    pub fn shard_id(&self) -> Option<u32> {
        match &self.backend {
            Backend::Global { .. } => None,
            Backend::Shard(shard) => Some(shard.id()),
            Backend::DeltaShard(view) => Some(view.shard()),
        }
    }

    /// Result-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drops a cache entry (the router uses this to keep merged
    /// cross-shard answers coherent with per-shard invalidations).
    pub fn invalidate(&self, key: &CacheKey) -> bool {
        self.cache.invalidate(key)
    }

    /// Global PageRank scores for IdealRank, computed once per graph
    /// epoch (a mutation retires the previous vector lazily).
    fn global_scores(&self, obs: &dyn Observer) -> Result<Arc<Vec<f64>>, EngineError> {
        match &self.backend {
            Backend::Global {
                delta,
                global_scores,
            } => {
                let epoch = delta.epoch();
                {
                    let cached = global_scores.lock().unwrap_or_else(|e| e.into_inner());
                    if let Some((e, scores)) = &*cached {
                        if *e == epoch {
                            return Ok(Arc::clone(scores));
                        }
                    }
                }
                let scores = {
                    let _span = obs.span("serve.global_pagerank");
                    Arc::new(
                        pagerank(
                            &delta.compacted(),
                            &PageRankOptions::paper().with_tolerance(1e-10),
                        )
                        .scores,
                    )
                };
                *global_scores.lock().unwrap_or_else(|e| e.into_inner()) =
                    Some((epoch, Arc::clone(&scores)));
                Ok(scores)
            }
            Backend::Shard(_) | Backend::DeltaShard(_) => Err(EngineError::BadRequest(
                "idealrank is unavailable on a shard engine".into(),
            )),
        }
    }

    fn check_owned(&self, members: &[u32]) -> Result<(), EngineError> {
        let shard_id = match &self.backend {
            Backend::Global { .. } => return Ok(()),
            Backend::Shard(shard) => shard.id(),
            Backend::DeltaShard(view) => view.shard(),
        };
        for &m in members {
            if !self.source().owns(m) {
                return Err(EngineError::BadRequest(format!(
                    "page {m} is not on shard {shard_id}"
                )));
            }
        }
        Ok(())
    }

    /// Runs the cold solve exactly the way the CLI does — same
    /// constructors, same entry points — so served scores match offline
    /// scores bitwise. On a shard backend only ApproxRank is legal, and
    /// the solve consumes the shard's view plus [`GlobalAggregates`]:
    /// bit-identical to the global path for shard-resident members.
    fn solve_cold(
        &self,
        params: &RankRequest,
        obs: &dyn Observer,
    ) -> Result<CachedResult, EngineError> {
        let options = options_for(params.damping, params.tolerance);
        match &self.backend {
            Backend::Global { delta, .. } => {
                let graph = delta.compacted();
                let ranker: Box<dyn SubgraphRanker> = match params.algorithm {
                    Algorithm::ApproxRank => Box::new(ApproxRank::new(options)),
                    Algorithm::Local => Box::new(LocalPageRank::new(options)),
                    Algorithm::Lpr2 => Box::new(Lpr2::new(options)),
                    Algorithm::Sc => Box::new(StochasticComplementation {
                        options,
                        ..StochasticComplementation::default()
                    }),
                    Algorithm::IdealRank => Box::new(IdealRank {
                        options,
                        global_scores: self.global_scores(obs)?.as_ref().clone(),
                    }),
                    Algorithm::Mc => Box::new(McApproxRank {
                        options,
                        walks: params.estimator.walks,
                        epsilon: params.estimator.epsilon,
                        seed: params.estimator.seed,
                    }),
                    Algorithm::Push => Box::new(LocalPushRank {
                        options,
                        epsilon: params.estimator.epsilon,
                    }),
                };
                let nodes = NodeSet::from_sorted(graph.num_nodes(), params.members.iter().copied());
                let subgraph = approxrank_graph::Subgraph::extract(graph.as_ref(), nodes);
                Ok(to_cached(
                    &params.members,
                    ranker.rank_observed(&graph, &subgraph, obs),
                ))
            }
            Backend::Shard(_) | Backend::DeltaShard(_) => {
                // The Λ-collapse algorithms are the ones whose global
                // inputs reduce to two scalars — ApproxRank exactly, and
                // both of its estimators.
                if !matches!(
                    params.algorithm,
                    Algorithm::ApproxRank | Algorithm::Mc | Algorithm::Push
                ) {
                    return Err(EngineError::BadRequest(format!(
                        "algorithm {:?} is unavailable on a shard engine (approxrank, mc, and push only)",
                        params.algorithm.name()
                    )));
                }
                self.check_owned(&params.members)?;
                let source: &dyn SubgraphSource = self.source();
                let nodes =
                    NodeSet::from_sorted(source.global_nodes(), params.members.iter().copied());
                let subgraph = source.extract_nodes(nodes);
                let agg = GlobalAggregates {
                    num_nodes: source.global_nodes(),
                    num_dangling: source.num_dangling(),
                };
                let scores = match params.algorithm {
                    Algorithm::Mc => McApproxRank {
                        options,
                        walks: params.estimator.walks,
                        epsilon: params.estimator.epsilon,
                        seed: params.estimator.seed,
                    }
                    .rank_aggregated_observed(agg, &subgraph, obs),
                    Algorithm::Push => LocalPushRank {
                        options,
                        epsilon: params.estimator.epsilon,
                    }
                    .rank_aggregated_observed(agg, &subgraph, obs),
                    _ => ApproxRank::new(options)
                        .rank_subgraph_aggregated_observed(agg, &subgraph, obs),
                };
                Ok(to_cached(&params.members, scores))
            }
        }
    }

    /// Ranks a member list, serving from the cache when possible. Only
    /// cold solves ever enter the cache.
    pub fn rank(
        &self,
        params: &RankRequest,
        obs: &dyn Observer,
    ) -> Result<RankOutcome, EngineError> {
        let key = cache_key(
            params.algorithm.code(),
            params.damping,
            params.tolerance,
            params.estimator_fingerprint(),
            self.effective_epoch(&params.members),
            &params.members,
        );
        let probe = Stopwatch::start(obs);
        let hit = {
            let _probe_span = obs.span("engine.cache_probe");
            self.cache.get(&key)
        };
        obs.counter("engine_cache_probe_us", probe.elapsed_ns() / 1_000);
        if let Some(hit) = hit {
            return Ok(RankOutcome {
                result: hit,
                cached: true,
            });
        }
        // Coalesce concurrent identical cold requests: the first arrival
        // leads and solves; the rest wait for its bits.
        let lease = match self.batch.join_rank(key.clone()) {
            RankSlot::Follower(flight) => {
                let result = flight.wait()?;
                return Ok(RankOutcome {
                    result,
                    cached: true,
                });
            }
            RankSlot::Leader(lease) => lease,
        };
        let outcome = {
            let _solve_span = obs.span("engine.solve");
            self.solve_cold(params, obs)
        };
        lease.finish(outcome.clone());
        let result = outcome?;
        obs.counter("solve_iterations", result.iterations as u64);
        if let Some((evicted, _)) = self.cache.insert(key, result.clone()) {
            // An entry keyed under a superseded epoch was unreachable
            // already — a mutation had retired it; account it as stale
            // churn rather than working-set pressure.
            if evicted.epoch != self.effective_epoch(&evicted.members) {
                self.cache.record_stale_eviction();
            }
        }
        Ok(RankOutcome {
            result,
            cached: false,
        })
    }

    /// Batch-scheduler counters (`batch_*` on `/metrics`).
    pub fn batch_stats(&self) -> BatchStats {
        self.batch.stats()
    }

    /// Ranks a subgraph under a *keyword* personalization: ApproxRank's
    /// Λ-collapse solved with the ObjectRank teleport (uniform over the
    /// base set; base pages outside the membership feed `Λ`). Concurrent
    /// keyword queries over the same (epoch, options, membership) gather
    /// into one multi-vector solve — each column bit-identical to a
    /// singleton solve of its base set — behind a bounded window
    /// ([`BatchConfig::gather_window`]).
    ///
    /// The engine does **not** memoize keyword answers (the result cache
    /// is keyed by membership, which cannot carry a base set); callers
    /// that want a keyword cache key it on the full (base, members,
    /// epoch, options) tuple themselves.
    pub fn keyword_rank(
        &self,
        params: &KeywordRequest,
        obs: &dyn Observer,
    ) -> Result<CachedResult, EngineError> {
        self.keyword_rank_with(params, true, obs)
    }

    /// [`keyword_rank`](Engine::keyword_rank) with an explicit batch
    /// hint. `coalesce: false` skips the gather window and solves the
    /// one base set immediately — what the RPC server uses when a caller
    /// sent `coalesce: false` on the wire, and what latency-critical
    /// singleton callers want. The answer is bit-identical either way.
    pub fn keyword_rank_with(
        &self,
        params: &KeywordRequest,
        coalesce: bool,
        obs: &dyn Observer,
    ) -> Result<CachedResult, EngineError> {
        if params.base.is_empty() {
            return Err(EngineError::BadRequest("keyword base set is empty".into()));
        }
        if !params.base.windows(2).all(|w| w[0] < w[1]) {
            return Err(EngineError::BadRequest(
                "keyword base set must be sorted and deduplicated".into(),
            ));
        }
        let n = self.global_nodes();
        let last = *params.base.last().expect("non-empty");
        if last as usize >= n {
            return Err(EngineError::BadRequest(format!(
                "base page {last} out of range (graph has {n} nodes)"
            )));
        }
        self.check_owned(&params.members)?;
        if !coalesce {
            let _solve_span = obs.span("engine.keyword_solve");
            let results = self.solve_keyword_columns(
                &params.members,
                std::slice::from_ref(&params.base),
                params.damping,
                params.tolerance,
                obs,
            )?;
            let result = results.into_iter().next().expect("one column in, one out");
            obs.counter("solve_iterations", result.iterations as u64);
            return Ok(result);
        }
        let key = GatherKey {
            epoch: self.effective_epoch(&params.members),
            damping_bits: params.damping.to_bits(),
            tolerance_bits: params.tolerance.to_bits(),
            members: params.members[..].into(),
        };
        match self.batch.join_keyword(key, params.base.clone()) {
            follower @ KeywordSlot::Follower { .. } => follower.wait(),
            KeywordSlot::Leader(lease) => {
                let columns = lease.gather_columns();
                let outcome = {
                    let _solve_span = obs.span("engine.keyword_solve");
                    self.solve_keyword_columns(
                        &params.members,
                        &columns,
                        params.damping,
                        params.tolerance,
                        obs,
                    )
                };
                // The leader's own base set is column 0 by construction.
                let own = outcome
                    .as_ref()
                    .map(|results| results[0].clone())
                    .map_err(Clone::clone);
                lease.finish(outcome);
                if let Ok(result) = &own {
                    obs.counter("solve_iterations", result.iterations as u64);
                }
                own
            }
        }
    }

    /// One multi-vector keyword solve: extract the membership once,
    /// collapse once, iterate every base-set column together. Runs on
    /// any backend — the Λ-collapse consumes only the subgraph view and
    /// [`GlobalAggregates`], so shard answers match global answers
    /// bit-for-bit, exactly as for `/rank`.
    fn solve_keyword_columns(
        &self,
        members: &[u32],
        columns: &[Vec<u32>],
        damping: f64,
        tolerance: f64,
        obs: &dyn Observer,
    ) -> Result<Vec<CachedResult>, EngineError> {
        let options = options_for(damping, tolerance);
        let source: &dyn SubgraphSource = self.source();
        let nodes = NodeSet::from_sorted(source.global_nodes(), members.iter().copied());
        let subgraph = source.extract_nodes(nodes);
        let agg = GlobalAggregates {
            num_nodes: source.global_nodes(),
            num_dangling: source.num_dangling(),
        };
        let batch = ApproxRank::new(options)
            .rank_keyword_multi_aggregated_observed(agg, &subgraph, columns, obs);
        Ok(batch
            .into_iter()
            .map(|scores| to_cached(members, scores))
            .collect())
    }

    /// The cache key a session's current membership occupies, at the
    /// membership's current effective epoch.
    pub(crate) fn session_key(&self, session: &EngineSession) -> CacheKey {
        let est = if session.algorithm.is_estimator() {
            estimator_bits(
                session.estimator.walks,
                session.estimator.epsilon,
                session.estimator.seed,
            )
        } else {
            0
        };
        cache_key(
            session.algorithm.code(),
            session.damping,
            session.tolerance,
            est,
            self.effective_epoch(session.solver.members()),
            session.solver.members(),
        )
    }

    /// Locks the session table, recovering from a poisoned lock (session
    /// state is only mutated under the per-session lock).
    pub(crate) fn lock_sessions(
        &self,
    ) -> std::sync::MutexGuard<'_, HashMap<u64, Arc<Mutex<EngineSession>>>> {
        self.sessions.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Open session count.
    pub fn session_count(&self) -> usize {
        self.lock_sessions().len()
    }

    /// Whether this engine owns session `id` under the configured id
    /// striding (regardless of whether the session currently exists).
    pub fn routes_session(&self, id: u64) -> bool {
        let stride = self.config.session_id_stride;
        id >= 1 && (id - 1) % stride == self.config.first_session_id - 1
    }

    fn find_session(&self, id: u64) -> Option<Arc<Mutex<EngineSession>>> {
        self.lock_sessions().get(&id).cloned()
    }

    /// Opens a session (`approxrank` exactly, or `mc` for the estimator
    /// tier), solves it cold, and returns the assigned id plus the first
    /// solution. Exact sessions are WAL-logged and survive restarts;
    /// `mc` sessions are ephemeral — their visit-count store is cheap to
    /// resample, so they simply do not come back after a reboot.
    pub fn session_create(
        &self,
        params: &RankRequest,
        obs: &dyn Observer,
    ) -> Result<(u64, CachedResult), EngineError> {
        let _span = obs.span("engine.session_create");
        if !matches!(params.algorithm, Algorithm::ApproxRank | Algorithm::Mc) {
            return Err(EngineError::BadRequest(format!(
                "sessions support only algorithms \"approxrank\" and \"mc\", got {:?}",
                params.algorithm.name()
            )));
        }
        let members = &params.members;
        let (damping, tolerance) = (params.damping, params.tolerance);
        self.check_owned(members)?;
        let nodes = NodeSet::from_sorted(self.global_nodes(), members.iter().copied());
        let solver = match params.algorithm {
            Algorithm::Mc => SessionSolver::Mc(McSession::with_source(
                self.source(),
                nodes,
                McApproxRank {
                    options: options_for(damping, tolerance),
                    walks: params.estimator.walks,
                    epsilon: params.estimator.epsilon,
                    seed: params.estimator.seed,
                },
            )),
            _ => SessionSolver::Exact(SubgraphSession::with_source(
                self.source(),
                nodes,
                options_for(damping, tolerance),
            )),
        };
        let mut session = EngineSession {
            solver,
            published_key: None,
            algorithm: params.algorithm,
            estimator: params.estimator,
            damping,
            tolerance,
        };
        let scores = {
            let _solve_span = obs.span("engine.solve");
            session.solver.solve(obs)
        };
        session.published_key = Some(self.session_key(&session));
        let result = to_cached(members, scores);
        obs.counter("solve_iterations", result.iterations as u64);
        let id = self
            .next_session_id
            .fetch_add(self.config.session_id_stride, Ordering::Relaxed);
        if !params.algorithm.is_estimator() {
            self.log_event(
                WalEvent::Create {
                    id,
                    damping,
                    tolerance,
                    members: members.to_vec(),
                },
                obs,
            );
            self.log_event(
                WalEvent::Solved {
                    id,
                    scores: result.scores.as_ref().clone(),
                    lambda: result.lambda.unwrap_or(0.0),
                    iterations: result.iterations as u64,
                },
                obs,
            );
        }
        self.lock_sessions()
            .insert(id, Arc::new(Mutex::new(session)));
        Ok((id, result))
    }

    /// Applies a membership edit and warm-start re-solves. Invalidates
    /// the cache keys of both the previous and the new membership, so a
    /// stale cold answer never outlives a mutation.
    pub fn session_update(
        &self,
        id: u64,
        add: &[u32],
        remove: &[u32],
        obs: &dyn Observer,
    ) -> Result<(Vec<u32>, CachedResult), EngineError> {
        let _span = obs.span("engine.session_update");
        let Some(entry) = self.find_session(id) else {
            return Err(EngineError::NoSuchSession(id));
        };
        self.check_owned(add)?;
        let mut session = entry.lock().unwrap_or_else(|e| e.into_inner());

        // Refuse an update that would empty the membership (`remove_pages`
        // would panic; the transport must answer 400 instead).
        {
            let drop: std::collections::HashSet<u32> = remove.iter().copied().collect();
            let survivors = session
                .solver
                .members()
                .iter()
                .filter(|m| !drop.contains(m))
                .count()
                + add
                    .iter()
                    .filter(|a| !session.solver.members().contains(a) && !drop.contains(a))
                    .count();
            if survivors == 0 {
                return Err(EngineError::BadRequest(
                    "update would empty the subgraph".into(),
                ));
            }
        }

        // The membership is about to change: whatever this session
        // published under its previous membership no longer describes a
        // live view.
        if let Some(key) = session.published_key.take() {
            self.cache.invalidate(&key);
        }
        let durable = !session.algorithm.is_estimator();
        if !add.is_empty() {
            session.solver.add_pages_via(self.source(), add);
            if durable {
                self.log_event(
                    WalEvent::AddPages {
                        id,
                        pages: add.to_vec(),
                    },
                    obs,
                );
            }
        }
        if !remove.is_empty() {
            session.solver.remove_pages_via(self.source(), remove);
            if durable {
                self.log_event(
                    WalEvent::RemovePages {
                        id,
                        pages: remove.to_vec(),
                    },
                    obs,
                );
            }
        }
        let scores = {
            let _solve_span = obs.span("engine.solve");
            session.solver.solve(obs)
        };
        // Also clear any cold `/rank` entry for the *new* membership: the
        // session now owns this view, and its next mutation must not
        // leave a stale mixture behind.
        let new_key = self.session_key(&session);
        self.cache.invalidate(&new_key);
        session.published_key = Some(new_key);

        let members = session.solver.members().to_vec();
        let result = to_cached(&members, scores);
        obs.counter("solve_iterations", result.iterations as u64);
        if durable {
            self.log_event(
                WalEvent::Solved {
                    id,
                    scores: result.scores.as_ref().clone(),
                    lambda: result.lambda.unwrap_or(0.0),
                    iterations: result.iterations as u64,
                },
                obs,
            );
        }
        Ok((members, result))
    }

    /// Applies one edge-mutation batch to the live graph: inserts first,
    /// then deletes, atomically behind the delta's epoch counter. The
    /// batch is WAL-logged, cached answers covering touched pages become
    /// unreachable (their key epoch is superseded), and warm sessions
    /// whose members or boundary in-sources intersect the touched set
    /// are re-extracted and re-solved.
    ///
    /// Rejected on a static shard engine and when an edge endpoint is
    /// implausibly far beyond the current page count.
    pub fn mutate_graph(
        &self,
        insert: &[(u32, u32)],
        delete: &[(u32, u32)],
        obs: &dyn Observer,
    ) -> Result<MutationOutcome, EngineError> {
        let _span = obs.span("engine.mutate_graph");
        let delta = self
            .delta()
            .ok_or_else(|| {
                EngineError::BadRequest(
                    "graph mutation is unavailable on a static shard engine".into(),
                )
            })?
            .clone();
        let summary = delta
            .apply(insert, delete)
            .map_err(|e| EngineError::BadRequest(e.0))?;
        Ok(self.absorb_mutation(&summary, insert, delete, obs))
    }

    /// Absorbs a mutation already applied to this engine's (possibly
    /// shared) delta: WAL-logs the batch and repairs intersecting
    /// sessions. A router running several shard engines over one shared
    /// delta applies the batch once and calls this on every engine.
    pub fn absorb_mutation(
        &self,
        summary: &MutationSummary,
        insert: &[(u32, u32)],
        delete: &[(u32, u32)],
        obs: &dyn Observer,
    ) -> MutationOutcome {
        let mut sessions_repaired = 0;
        if summary.changed() {
            self.log_event(
                WalEvent::MutateGraph(GraphMutationRecord {
                    epoch: summary.epoch,
                    insert: insert.to_vec(),
                    delete: delete.to_vec(),
                }),
                obs,
            );
            sessions_repaired = self.repair_sessions(summary, obs);
        }
        obs.counter("graph_mutation_touched_pages", summary.touched.len() as u64);
        MutationOutcome {
            epoch: summary.epoch,
            inserted: summary.inserted,
            deleted: summary.deleted,
            touched_pages: summary.touched.len(),
            structural: summary.structural,
            sessions_repaired,
        }
    }

    /// Warm-restarts every session the mutation could have changed: a
    /// structural batch restarts all of them, otherwise only those whose
    /// members or boundary in-edge sources intersect the touched set.
    /// Untouched sessions keep their solver state bit-for-bit.
    fn repair_sessions(&self, summary: &MutationSummary, obs: &dyn Observer) -> usize {
        let entries: Vec<(u64, Arc<Mutex<EngineSession>>)> = self
            .lock_sessions()
            .iter()
            .map(|(&id, entry)| (id, Arc::clone(entry)))
            .collect();
        let mut repaired = 0;
        for (id, entry) in entries {
            let mut session = entry.lock().unwrap_or_else(|e| e.into_inner());
            if !summary.structural && !session.solver.depends_on(&summary.touched) {
                continue;
            }
            if let Some(key) = session.published_key.take() {
                self.cache.invalidate(&key);
            }
            session.solver.refresh_via(self.source());
            let scores = {
                let _solve_span = obs.span("engine.solve");
                session.solver.solve(obs)
            };
            let new_key = self.session_key(&session);
            self.cache.invalidate(&new_key);
            session.published_key = Some(new_key);
            let result = to_cached(session.solver.members(), scores);
            obs.counter("solve_iterations", result.iterations as u64);
            if !session.algorithm.is_estimator() {
                self.log_event(
                    WalEvent::Solved {
                        id,
                        scores: result.scores.as_ref().clone(),
                        lambda: result.lambda.unwrap_or(0.0),
                        iterations: result.iterations as u64,
                    },
                    obs,
                );
            }
            repaired += 1;
        }
        repaired
    }

    /// A read-only snapshot of session `id`, served without re-solving.
    pub fn session_view(&self, id: u64) -> Option<SessionView> {
        let entry = self.find_session(id)?;
        let session = entry.lock().unwrap_or_else(|e| e.into_inner());
        Some(SessionView {
            members: session.solver.members().to_vec(),
            last_iterations: session.solver.last_iterations(),
            damping: session.damping,
            tolerance: session.tolerance,
            solution: session
                .solver
                .last_solution()
                .map(|(scores, lambda)| (scores.to_vec(), lambda)),
        })
    }

    /// Closes session `id`; returns whether it existed.
    pub fn session_delete(&self, id: u64, obs: &dyn Observer) -> bool {
        let _span = obs.span("engine.session_delete");
        let Some(entry) = self.lock_sessions().remove(&id) else {
            return false;
        };
        let session = entry.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(key) = &session.published_key {
            self.cache.invalidate(key);
        }
        if !session.algorithm.is_estimator() {
            self.log_event(WalEvent::Close { id }, obs);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxrank_graph::{PartitionStrategy, PartitionedGraph};
    use approxrank_trace::null;

    fn ring(n: u32) -> DiGraph {
        let mut edges = Vec::new();
        for i in 0..n {
            edges.push((i, (i + 1) % n));
            edges.push((i, (i * 13 + 7) % n));
            if i % 17 == 3 {
                continue;
            }
        }
        DiGraph::from_edges(n as usize, &edges)
    }

    fn request(members: Vec<u32>) -> RankRequest {
        RankRequest {
            members,
            algorithm: Algorithm::ApproxRank,
            damping: 0.85,
            tolerance: 1e-8,
            estimator: EstimatorOptions::default(),
        }
    }

    fn shard0_engine(g: &DiGraph) -> (Engine, Engine) {
        let global = Engine::new_global(Arc::new(g.clone()), EngineConfig::default());
        let pg = PartitionedGraph::build(g, 2, PartitionStrategy::Range);
        let shard = Arc::new(pg.into_shards().remove(0));
        let sharded = Engine::new_shard(shard, EngineConfig::default());
        (global, sharded)
    }

    #[test]
    fn shard_rank_is_bit_identical_to_global() {
        let g = ring(200);
        let (global, sharded) = shard0_engine(&g);
        let req = request((10..60).collect());
        let a = global.rank(&req, null()).unwrap();
        let b = sharded.rank(&req, null()).unwrap();
        assert!(!a.cached && !b.cached);
        for ((pa, sa), (pb, sb)) in a.result.scores.iter().zip(b.result.scores.iter()) {
            assert_eq!(pa, pb);
            assert_eq!(sa.to_bits(), sb.to_bits(), "page {pa}");
        }
        assert_eq!(
            a.result.lambda.unwrap().to_bits(),
            b.result.lambda.unwrap().to_bits()
        );
        assert_eq!(a.result.iterations, b.result.iterations);
        // Second call hits the cache with identical bits.
        let c = sharded.rank(&req, null()).unwrap();
        assert!(c.cached);
        assert_eq!(c.result.scores, b.result.scores);
    }

    #[test]
    fn shard_rejects_foreign_pages_and_other_algorithms() {
        let g = ring(200);
        let (_, sharded) = shard0_engine(&g);
        // Range partitioning over 200 nodes puts 100..200 on shard 1.
        let err = sharded.rank(&request(vec![150, 151]), null()).unwrap_err();
        assert!(matches!(err, EngineError::BadRequest(ref m) if m.contains("not on shard")));
        let mut req = request(vec![10, 11]);
        req.algorithm = Algorithm::Sc;
        let err = sharded.rank(&req, null()).unwrap_err();
        assert!(matches!(err, EngineError::BadRequest(ref m) if m.contains("unavailable")));
    }

    #[test]
    fn keyword_rank_matches_across_backends_and_validates() {
        let g = ring(200);
        let (global, sharded) = shard0_engine(&g);
        let req = KeywordRequest {
            members: (10..60).collect(),
            // Base straddles the membership boundary: 150 is outside the
            // subgraph (its teleport share lands on Λ).
            base: vec![12, 30, 150],
            damping: 0.85,
            tolerance: 1e-8,
        };
        let a = global.keyword_rank(&req, null()).unwrap();
        let b = sharded.keyword_rank(&req, null()).unwrap();
        for ((pa, sa), (pb, sb)) in a.scores.iter().zip(b.scores.iter()) {
            assert_eq!(pa, pb);
            assert_eq!(sa.to_bits(), sb.to_bits(), "page {pa}");
        }
        assert_eq!(a.lambda.unwrap().to_bits(), b.lambda.unwrap().to_bits());
        assert_eq!(a.iterations, b.iterations);
        // Mass is conserved: local scores plus Λ sum to 1.
        let total: f64 = a.scores.iter().map(|(_, s)| s).sum::<f64>() + a.lambda.unwrap();
        assert!((total - 1.0).abs() < 1e-9, "{total}");
        // The keyword teleport shifts mass toward the base pages
        // relative to the uniform /rank answer.
        let rank = global
            .rank(&request((10..60).collect()), null())
            .unwrap()
            .result;
        let score_of =
            |r: &CachedResult, page: u32| r.scores.iter().find(|(p, _)| *p == page).unwrap().1;
        assert!(score_of(&a, 12) > score_of(&rank, 12));

        // Validation: empty, unsorted, and out-of-range bases reject.
        for bad in [vec![], vec![30, 12], vec![12, 999]] {
            let err = global
                .keyword_rank(
                    &KeywordRequest {
                        base: bad,
                        ..req.clone()
                    },
                    null(),
                )
                .unwrap_err();
            assert!(matches!(err, EngineError::BadRequest(_)));
        }
        // Foreign members reject on a shard engine.
        let err = sharded
            .keyword_rank(
                &KeywordRequest {
                    members: vec![150, 151],
                    base: vec![150],
                    damping: 0.85,
                    tolerance: 1e-8,
                },
                null(),
            )
            .unwrap_err();
        assert!(matches!(err, EngineError::BadRequest(ref m) if m.contains("not on shard")));
    }

    #[test]
    fn concurrent_keyword_queries_gather_into_one_solve() {
        let g = ring(200);
        let engine = Arc::new(Engine::new_global(
            Arc::new(g.clone()),
            EngineConfig {
                batch: crate::batch::BatchConfig {
                    gather_window: std::time::Duration::from_millis(200),
                    max_columns: 2,
                },
                ..EngineConfig::default()
            },
        ));
        let members: Vec<u32> = (10..60).collect();
        let req_of = |base: Vec<u32>| KeywordRequest {
            members: members.clone(),
            base,
            damping: 0.85,
            tolerance: 1e-8,
        };
        // Two concurrent queries with different bases: the gather fills
        // to max_columns and solves once with two columns.
        let worker = {
            let engine = Arc::clone(&engine);
            let req = req_of(vec![20, 21]);
            std::thread::spawn(move || engine.keyword_rank(&req, null()))
        };
        let a = engine.keyword_rank(&req_of(vec![15]), null()).unwrap();
        let b = worker.join().unwrap().unwrap();
        let stats = engine.batch_stats();
        assert_eq!(stats.keyword_solves, 1, "{stats:?}");
        assert_eq!(stats.keyword_columns, 2, "{stats:?}");
        assert_eq!(stats.keyword_coalesced, 1, "{stats:?}");
        // Each gathered answer is bit-identical to an unbatched solve on
        // a fresh engine with gathering disabled.
        let solo = Engine::new_global(
            Arc::new(g),
            EngineConfig {
                batch: crate::batch::BatchConfig {
                    gather_window: std::time::Duration::ZERO,
                    max_columns: 1,
                },
                ..EngineConfig::default()
            },
        );
        for (batched, base) in [(&a, vec![15]), (&b, vec![20, 21])] {
            let single = solo.keyword_rank(&req_of(base), null()).unwrap();
            assert_eq!(single.iterations, batched.iterations);
            for ((pa, sa), (pb, sb)) in batched.scores.iter().zip(single.scores.iter()) {
                assert_eq!(pa, pb);
                assert_eq!(sa.to_bits(), sb.to_bits(), "page {pa}");
            }
        }
    }

    #[test]
    fn concurrent_identical_ranks_coalesce_onto_one_solve() {
        let g = ring(200);
        let engine = Arc::new(Engine::new_global(Arc::new(g), EngineConfig::default()));
        let req = request((10..80).collect());
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let req = req.clone();
                std::thread::spawn(move || engine.rank(&req, null()).unwrap())
            })
            .collect();
        let first = engine.rank(&req, null()).unwrap();
        let mut outcomes = vec![first];
        for w in workers {
            outcomes.push(w.join().unwrap());
        }
        // Every response carries identical bits regardless of which
        // request led, followed, or hit the cache.
        for o in &outcomes[1..] {
            assert_eq!(o.result.scores, outcomes[0].result.scores);
        }
        let stats = engine.batch_stats();
        assert_eq!(
            stats.rank_leaders + stats.rank_coalesced + engine.cache_stats().hits,
            5,
            "{stats:?}"
        );
        assert!(stats.rank_leaders >= 1);
    }

    #[test]
    fn session_lifecycle_matches_across_backends() {
        let g = ring(200);
        let (global, sharded) = shard0_engine(&g);
        let members: Vec<u32> = (20..50).collect();
        let (gid, ga) = global
            .session_create(&request(members.clone()), null())
            .unwrap();
        let (sid, sa) = sharded
            .session_create(&request(members.clone()), null())
            .unwrap();
        assert_eq!(ga.scores, sa.scores);
        let (gm, gb) = global
            .session_update(gid, &[50, 51], &[20], null())
            .unwrap();
        let (sm, sb) = sharded
            .session_update(sid, &[50, 51], &[20], null())
            .unwrap();
        assert_eq!(gm, sm);
        assert_eq!(gb.scores, sb.scores);
        assert_eq!(
            global.session_view(gid).unwrap().members,
            sharded.session_view(sid).unwrap().members
        );
        assert!(global.session_delete(gid, null()));
        assert!(sharded.session_delete(sid, null()));
        assert_eq!(global.session_count() + sharded.session_count(), 0);
    }

    #[test]
    fn session_ids_stride() {
        let g = ring(40);
        let engine = Engine::new_global(
            Arc::new(g),
            EngineConfig {
                first_session_id: 2,
                session_id_stride: 3,
                ..EngineConfig::default()
            },
        );
        let (a, _) = engine.session_create(&request(vec![1, 2]), null()).unwrap();
        let (b, _) = engine.session_create(&request(vec![3, 4]), null()).unwrap();
        assert_eq!((a, b), (2, 5));
        assert!(engine.routes_session(2) && engine.routes_session(8));
        assert!(!engine.routes_session(3) && !engine.routes_session(0));
    }

    #[test]
    fn estimator_rank_carries_estimate_and_caches_by_fingerprint() {
        let g = ring(200);
        let engine = Engine::new_global(Arc::new(g), EngineConfig::default());
        let mut req = request((10..40).collect());
        req.algorithm = Algorithm::Mc;
        let a = engine.rank(&req, null()).unwrap();
        assert!(!a.cached);
        let est = a.result.estimate.expect("mc result carries estimate");
        assert_eq!(est.walks, u64::from(req.estimator.walks) * 30);
        assert!(est.residual.is_finite() && est.residual >= 0.0);
        let sum: f64 =
            a.result.scores.iter().map(|(_, s)| s).sum::<f64>() + a.result.lambda.unwrap();
        assert!((sum - 1.0).abs() < 1e-9, "normalized, got {sum}");
        // Same parameters hit the cache; a different seed misses it.
        assert!(engine.rank(&req, null()).unwrap().cached);
        req.estimator.seed = 7;
        assert!(!engine.rank(&req, null()).unwrap().cached);
        // Push produces a bounded residual and its own estimate block.
        req.algorithm = Algorithm::Push;
        let p = engine.rank(&req, null()).unwrap();
        let pest = p.result.estimate.unwrap();
        assert!(pest.residual <= req.estimator.epsilon);
        assert_eq!(pest.walks, 0);
    }

    #[test]
    fn estimator_rank_runs_on_shards() {
        let g = ring(200);
        let (global, sharded) = shard0_engine(&g);
        let mut req = request((10..40).collect());
        req.algorithm = Algorithm::Mc;
        let a = global.rank(&req, null()).unwrap();
        let b = sharded.rank(&req, null()).unwrap();
        // GlobalAggregates are the only global inputs, so shard answers
        // are bit-identical just like exact ApproxRank.
        for ((pa, sa), (pb, sb)) in a.result.scores.iter().zip(b.result.scores.iter()) {
            assert_eq!(pa, pb);
            assert_eq!(sa.to_bits(), sb.to_bits(), "page {pa}");
        }
    }

    #[test]
    fn mc_session_matches_cold_rank_and_updates() {
        let g = ring(200);
        let engine = Engine::new_global(Arc::new(g), EngineConfig::default());
        let mut req = request((10..40).collect());
        req.algorithm = Algorithm::Mc;
        let cold = engine.rank(&req, null()).unwrap();
        let (id, first) = engine.session_create(&req, null()).unwrap();
        assert_eq!(first.scores, cold.result.scores);
        assert_eq!(first.estimate, cold.result.estimate);
        // A warm update re-solves and matches a cold solve of the edited
        // membership (walk identity is per-source, so reuse is exact).
        let (members, warm) = engine.session_update(id, &[40, 41], &[10], null()).unwrap();
        let mut edited = req.clone();
        edited.members = members;
        let cold2 = engine.rank(&edited, null()).unwrap();
        assert!(
            !cold2.cached,
            "estimator session must not publish stale keys"
        );
        assert_eq!(warm.scores, cold2.result.scores);
        assert!(engine.session_delete(id, null()));
    }

    #[test]
    fn mutation_bumps_epoch_and_retires_only_touched_answers() {
        let g = ring(200);
        let engine = Engine::new_global(Arc::new(g), EngineConfig::default());
        let near: Vec<u32> = (10..40).collect();
        let far: Vec<u32> = (100..130).collect();
        assert!(!engine.rank(&request(near.clone()), null()).unwrap().cached);
        assert!(!engine.rank(&request(far.clone()), null()).unwrap().cached);

        // Insert one edge between already-non-dangling members: not
        // structural, touches only pages around 20.
        let out = engine.mutate_graph(&[(20, 25)], &[], null()).unwrap();
        assert_eq!((out.epoch, out.inserted, out.deleted), (1, 1, 0));
        assert!(!out.structural);
        assert_eq!(engine.graph_epoch(), 1);

        // The touched membership re-solves; the far one still hits.
        let near2 = engine.rank(&request(near.clone()), null()).unwrap();
        assert!(!near2.cached, "mutation must retire the touched answer");
        assert!(engine.rank(&request(far), null()).unwrap().cached);

        // And the re-solve reflects the new edge: identical to a fresh
        // engine built over the mutated graph.
        let mut edges = Vec::new();
        for i in 0..200u32 {
            edges.push((i, (i + 1) % 200));
            edges.push((i, (i * 13 + 7) % 200));
        }
        edges.push((20, 25));
        let fresh = Engine::new_global(
            Arc::new(DiGraph::from_edges(200, &edges)),
            EngineConfig::default(),
        );
        let want = fresh.rank(&request(near), null()).unwrap();
        for ((pa, sa), (pb, sb)) in near2.result.scores.iter().zip(want.result.scores.iter()) {
            assert_eq!(pa, pb);
            assert_eq!(sa.to_bits(), sb.to_bits(), "page {pa}");
        }

        // An idempotent re-insert is a no-op: no epoch bump.
        let noop = engine.mutate_graph(&[(20, 25)], &[], null()).unwrap();
        assert_eq!((noop.epoch, noop.inserted), (1, 0));
    }

    #[test]
    fn mutation_repairs_only_intersecting_sessions() {
        let g = ring(200);
        let engine = Engine::new_global(Arc::new(g), EngineConfig::default());
        let mut near = request((10..40).collect());
        near.algorithm = Algorithm::Mc;
        let (near_id, _) = engine.session_create(&near, null()).unwrap();
        let (far_id, far_first) = engine
            .session_create(&request((100..130).collect()), null())
            .unwrap();

        let out = engine.mutate_graph(&[(20, 25)], &[], null()).unwrap();
        assert_eq!(out.sessions_repaired, 1, "only the near session repairs");

        // The repaired MC session is bitwise-identical to a cold solve
        // over the mutated graph.
        let cold = engine.rank(&near, null()).unwrap();
        let (warm_members, warm) = engine.session_update(near_id, &[], &[], null()).unwrap();
        assert_eq!(warm_members, near.members);
        assert_eq!(warm.scores, cold.result.scores);
        // The far exact session kept its solution untouched.
        let far_view = engine.session_view(far_id).unwrap();
        assert_eq!(
            far_view.solution.unwrap().0,
            far_first.scores.as_ref().clone()
        );

        // A structural mutation (new dangling page) repairs everything.
        let out = engine.mutate_graph(&[(5, 200)], &[], null()).unwrap();
        assert!(out.structural);
        assert_eq!(out.sessions_repaired, 2);
        assert_eq!(engine.global_nodes(), 201);
    }

    #[test]
    fn static_shard_engine_rejects_mutation() {
        let g = ring(200);
        let (_, sharded) = shard0_engine(&g);
        let err = sharded.mutate_graph(&[(1, 2)], &[], null()).unwrap_err();
        assert!(matches!(err, EngineError::BadRequest(ref m) if m.contains("mutation")));
        assert_eq!(sharded.graph_epoch(), 0);
    }

    #[test]
    fn sessions_reject_non_warmable_algorithms() {
        let g = ring(60);
        let engine = Engine::new_global(Arc::new(g), EngineConfig::default());
        let mut req = request(vec![1, 2]);
        req.algorithm = Algorithm::IdealRank;
        let err = engine.session_create(&req, null()).unwrap_err();
        assert!(matches!(err, EngineError::BadRequest(ref m) if m.contains("sessions support")));
    }

    #[test]
    fn update_errors_keep_session_healthy() {
        let g = ring(60);
        let engine = Engine::new_global(Arc::new(g), EngineConfig::default());
        let (id, _) = engine.session_create(&request(vec![1, 2]), null()).unwrap();
        assert_eq!(
            engine.session_update(id, &[], &[1, 2], null()).unwrap_err(),
            EngineError::BadRequest("update would empty the subgraph".into())
        );
        assert_eq!(
            engine.session_update(999, &[3], &[], null()).unwrap_err(),
            EngineError::NoSuchSession(999)
        );
        let (members, _) = engine.session_update(id, &[3], &[], null()).unwrap();
        assert_eq!(members, vec![1, 2, 3]);
    }
}
