//! The `BatchScheduler`: request coalescing for the engine's cold path.
//!
//! Two cooperating mechanisms, both keyed on *what the solve reads* so
//! sharing is always bit-safe:
//!
//! * **In-flight rank dedup** — concurrent `/rank` requests with the
//!   same [`CacheKey`] (algorithm, options, membership, effective graph
//!   epoch) coalesce onto one cold solve: the first arrival leads and
//!   solves, the rest wait on the flight and receive the leader's
//!   [`CachedResult`] verbatim. Since the cache key pins every solver
//!   input, a follower's answer is byte-identical to the solve it would
//!   have run itself.
//! * **Keyword gather windows** — concurrent keyword queries over the
//!   same (epoch, damping, tolerance, membership) but *different* base
//!   sets become columns of one multi-vector Λ-collapse solve
//!   ([`approxrank_core::ExtendedLocalGraph::solve_multi`]): the leader
//!   parks for a bounded gather window while followers append their
//!   base-set columns, then seals the gather and runs one batched solve
//!   whose per-column bits equal k singleton solves.
//!
//! Leaders publish through a lease guard: if a leader panics or errors,
//! followers receive a cloned error instead of hanging.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::cache::{CacheKey, CachedResult};
use crate::engine::EngineError;

/// Tunables for the scheduler.
#[derive(Clone, Debug)]
pub struct BatchConfig {
    /// How long a keyword-gather leader waits for followers before
    /// sealing and solving. Zero disables gathering (every keyword
    /// request solves alone — the CLI's offline mode).
    pub gather_window: Duration,
    /// Maximum base-set columns per gather; a full gather seals early.
    pub max_columns: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            gather_window: Duration::from_millis(2),
            max_columns: 32,
        }
    }
}

/// Point-in-time scheduler counters for `/stats` and `/metrics`.
///
/// Amortization reads off directly: `keyword_columns / keyword_solves`
/// is the mean batch occupancy, and `rank_coalesced / rank_leaders` is
/// how many duplicate solves the in-flight table absorbed per cold one.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Cold rank solves that led an in-flight entry.
    pub rank_leaders: u64,
    /// Rank requests served by another request's in-flight solve.
    pub rank_coalesced: u64,
    /// Multi-vector keyword solves run.
    pub keyword_solves: u64,
    /// Total base-set columns across those solves.
    pub keyword_columns: u64,
    /// Keyword requests that joined an existing gather instead of
    /// opening one.
    pub keyword_coalesced: u64,
}

/// A one-shot broadcast cell: the leader publishes once, any number of
/// followers wait.
pub(crate) struct Flight<T> {
    state: Mutex<Option<Result<T, EngineError>>>,
    cv: Condvar,
}

impl<T: Clone> Flight<T> {
    fn new() -> Self {
        Flight {
            state: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn publish(&self, result: Result<T, EngineError>) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.is_none() {
            *state = Some(result);
        }
        self.cv.notify_all();
    }

    pub(crate) fn wait(&self) -> Result<T, EngineError> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(result) = state.as_ref() {
                return result.clone();
            }
            state = self.cv.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Identifies one keyword gather: everything a keyword solve reads
/// except the base set (base sets are the columns *within* a gather).
#[derive(Clone, PartialEq, Eq, Hash)]
pub(crate) struct GatherKey {
    pub epoch: u64,
    pub damping_bits: u64,
    pub tolerance_bits: u64,
    pub members: Arc<[u32]>,
}

struct GatherState {
    /// Still accepting columns (leader has not sealed).
    open: bool,
    /// Base-set columns, leader's first.
    columns: Vec<Vec<u32>>,
}

/// One keyword gather: its column list while open, then the per-column
/// results broadcast by the leader.
pub(crate) struct Gather {
    state: Mutex<GatherState>,
    /// Wakes the leader when the gather fills to `max_columns`.
    filled: Condvar,
    results: Flight<Vec<CachedResult>>,
}

impl Gather {
    fn new(first_base: Vec<u32>) -> Self {
        Gather {
            state: Mutex::new(GatherState {
                open: true,
                columns: vec![first_base],
            }),
            filled: Condvar::new(),
            results: Flight::new(),
        }
    }

    fn lock_state(&self) -> MutexGuard<'_, GatherState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn wait_column(&self, column: usize) -> Result<CachedResult, EngineError> {
        let results = self.results.wait()?;
        results
            .get(column)
            .cloned()
            .ok_or_else(|| EngineError::Unavailable("keyword gather dropped a column".into()))
    }
}

/// Where a rank request landed in the in-flight table.
pub(crate) enum RankSlot<'a> {
    /// This request solves; it must call [`RankLease::finish`].
    Leader(RankLease<'a>),
    /// Another request is already solving the identical key.
    Follower(Arc<Flight<CachedResult>>),
}

/// The leader's obligation to publish: dropping it without
/// [`RankLease::finish`] (a panic in the solve) broadcasts
/// `Unavailable` so followers never hang.
pub(crate) struct RankLease<'a> {
    scheduler: &'a BatchScheduler,
    key: CacheKey,
    flight: Arc<Flight<CachedResult>>,
    done: bool,
}

impl RankLease<'_> {
    pub(crate) fn finish(mut self, result: Result<CachedResult, EngineError>) {
        self.done = true;
        self.scheduler.remove_rank(&self.key, &self.flight);
        self.flight.publish(result);
    }
}

impl Drop for RankLease<'_> {
    fn drop(&mut self) {
        if !self.done {
            self.scheduler.remove_rank(&self.key, &self.flight);
            self.flight
                .publish(Err(EngineError::Unavailable("rank solve aborted".into())));
        }
    }
}

/// Where a keyword request landed.
pub(crate) enum KeywordSlot<'a> {
    /// This request leads the gather and runs the batched solve.
    Leader(KeywordLease<'a>),
    /// Joined an open gather as column `column`.
    Follower { gather: Arc<Gather>, column: usize },
}

impl KeywordSlot<'_> {
    /// Follower-side wait (callable only on the `Follower` variant).
    pub(crate) fn wait(self) -> Result<CachedResult, EngineError> {
        match self {
            KeywordSlot::Follower { gather, column } => gather.wait_column(column),
            KeywordSlot::Leader(_) => unreachable!("leaders solve, they do not wait"),
        }
    }
}

/// The keyword leader's obligation: gather, solve, publish.
pub(crate) struct KeywordLease<'a> {
    scheduler: &'a BatchScheduler,
    key: GatherKey,
    gather: Arc<Gather>,
    done: bool,
}

impl KeywordLease<'_> {
    /// Parks for the gather window (waking early if the gather fills),
    /// seals the gather against new columns, removes it from the table,
    /// and returns the column list to solve. Column 0 is the leader's.
    pub(crate) fn gather_columns(&self) -> Vec<Vec<u32>> {
        let config = &self.scheduler.config;
        if !config.gather_window.is_zero() && config.max_columns > 1 {
            let deadline = Instant::now() + config.gather_window;
            let mut state = self.gather.lock_state();
            while state.columns.len() < config.max_columns {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (next, _) = self
                    .gather
                    .filled
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                state = next;
            }
        }
        self.scheduler.remove_gather(&self.key, &self.gather);
        let mut state = self.gather.lock_state();
        state.open = false;
        state.columns.clone()
    }

    /// Publishes the per-column results (aligned with
    /// [`Self::gather_columns`]'s list) and bumps the batch counters.
    pub(crate) fn finish(mut self, results: Result<Vec<CachedResult>, EngineError>) {
        self.done = true;
        self.scheduler.remove_gather(&self.key, &self.gather);
        if let Ok(columns) = &results {
            self.scheduler
                .keyword_solves
                .fetch_add(1, Ordering::Relaxed);
            self.scheduler
                .keyword_columns
                .fetch_add(columns.len() as u64, Ordering::Relaxed);
        }
        self.gather.results.publish(results);
    }
}

impl Drop for KeywordLease<'_> {
    fn drop(&mut self) {
        if !self.done {
            self.scheduler.remove_gather(&self.key, &self.gather);
            self.gather.lock_state().open = false;
            self.gather.results.publish(Err(EngineError::Unavailable(
                "keyword solve aborted".into(),
            )));
        }
    }
}

/// The engine's coalescing state: one in-flight table for rank solves,
/// one gather table for keyword batches, plus the `batch_*` counters.
pub(crate) struct BatchScheduler {
    pub(crate) config: BatchConfig,
    rank_flights: Mutex<HashMap<CacheKey, Arc<Flight<CachedResult>>>>,
    gathers: Mutex<HashMap<GatherKey, Arc<Gather>>>,
    rank_leaders: AtomicU64,
    rank_coalesced: AtomicU64,
    keyword_solves: AtomicU64,
    keyword_columns: AtomicU64,
    keyword_coalesced: AtomicU64,
}

impl BatchScheduler {
    pub(crate) fn new(config: BatchConfig) -> Self {
        BatchScheduler {
            config,
            rank_flights: Mutex::new(HashMap::new()),
            gathers: Mutex::new(HashMap::new()),
            rank_leaders: AtomicU64::new(0),
            rank_coalesced: AtomicU64::new(0),
            keyword_solves: AtomicU64::new(0),
            keyword_columns: AtomicU64::new(0),
            keyword_coalesced: AtomicU64::new(0),
        }
    }

    fn lock_rank(&self) -> MutexGuard<'_, HashMap<CacheKey, Arc<Flight<CachedResult>>>> {
        self.rank_flights.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_gathers(&self) -> MutexGuard<'_, HashMap<GatherKey, Arc<Gather>>> {
        self.gathers.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Claims or joins the in-flight entry for `key`.
    pub(crate) fn join_rank(&self, key: CacheKey) -> RankSlot<'_> {
        let mut map = self.lock_rank();
        if let Some(flight) = map.get(&key) {
            self.rank_coalesced.fetch_add(1, Ordering::Relaxed);
            return RankSlot::Follower(Arc::clone(flight));
        }
        let flight = Arc::new(Flight::new());
        map.insert(key.clone(), Arc::clone(&flight));
        drop(map);
        self.rank_leaders.fetch_add(1, Ordering::Relaxed);
        RankSlot::Leader(RankLease {
            scheduler: self,
            key,
            flight,
            done: false,
        })
    }

    /// Removes `key`'s flight *if it is still this flight* (a successor
    /// leader may have re-inserted the key already).
    fn remove_rank(&self, key: &CacheKey, flight: &Arc<Flight<CachedResult>>) {
        let mut map = self.lock_rank();
        if map.get(key).is_some_and(|f| Arc::ptr_eq(f, flight)) {
            map.remove(key);
        }
    }

    /// Claims or joins the keyword gather for `key`. Identical base sets
    /// within a gather share one column.
    pub(crate) fn join_keyword(&self, key: GatherKey, base: Vec<u32>) -> KeywordSlot<'_> {
        let mut map = self.lock_gathers();
        if let Some(gather) = map.get(&key) {
            let gather = Arc::clone(gather);
            let mut state = gather.lock_state();
            if state.open && state.columns.len() < self.config.max_columns {
                let column = match state.columns.iter().position(|c| *c == base) {
                    Some(idx) => idx,
                    None => {
                        state.columns.push(base);
                        state.columns.len() - 1
                    }
                };
                if state.columns.len() >= self.config.max_columns {
                    gather.filled.notify_all();
                }
                drop(state);
                self.keyword_coalesced.fetch_add(1, Ordering::Relaxed);
                return KeywordSlot::Follower { gather, column };
            }
            // Sealed or full: this request opens the successor gather.
        }
        let gather = Arc::new(Gather::new(base));
        map.insert(key.clone(), Arc::clone(&gather));
        drop(map);
        KeywordSlot::Leader(KeywordLease {
            scheduler: self,
            key,
            gather,
            done: false,
        })
    }

    fn remove_gather(&self, key: &GatherKey, gather: &Arc<Gather>) {
        let mut map = self.lock_gathers();
        if map.get(key).is_some_and(|g| Arc::ptr_eq(g, gather)) {
            map.remove(key);
        }
    }

    pub(crate) fn stats(&self) -> BatchStats {
        BatchStats {
            rank_leaders: self.rank_leaders.load(Ordering::Relaxed),
            rank_coalesced: self.rank_coalesced.load(Ordering::Relaxed),
            keyword_solves: self.keyword_solves.load(Ordering::Relaxed),
            keyword_columns: self.keyword_columns.load(Ordering::Relaxed),
            keyword_coalesced: self.keyword_coalesced.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::cache_key;

    fn result(tag: usize) -> CachedResult {
        CachedResult {
            scores: Arc::new(vec![(tag as u32, 1.0)]),
            lambda: None,
            iterations: tag,
            converged: true,
            estimate: None,
        }
    }

    #[test]
    fn rank_followers_receive_the_leaders_result() {
        let sched = Arc::new(BatchScheduler::new(BatchConfig::default()));
        let key = cache_key(0, 0.85, 1e-8, 0, 0, &[1, 2, 3]);
        let RankSlot::Leader(lease) = sched.join_rank(key.clone()) else {
            panic!("first arrival must lead");
        };
        let follower = match sched.join_rank(key.clone()) {
            RankSlot::Follower(f) => f,
            RankSlot::Leader(_) => panic!("second arrival must follow"),
        };
        let waiter = {
            let follower = Arc::clone(&follower);
            std::thread::spawn(move || follower.wait())
        };
        lease.finish(Ok(result(9)));
        assert_eq!(waiter.join().unwrap().unwrap().iterations, 9);
        // The flight is gone: the next arrival leads again.
        assert!(matches!(sched.join_rank(key), RankSlot::Leader(_)));
        let s = sched.stats();
        assert_eq!((s.rank_leaders, s.rank_coalesced), (2, 1));
    }

    #[test]
    fn dropped_rank_lease_unblocks_followers_with_unavailable() {
        let sched = BatchScheduler::new(BatchConfig::default());
        let key = cache_key(0, 0.85, 1e-8, 0, 0, &[4]);
        let RankSlot::Leader(lease) = sched.join_rank(key.clone()) else {
            panic!();
        };
        let RankSlot::Follower(follower) = sched.join_rank(key) else {
            panic!();
        };
        drop(lease); // leader panicked / aborted
        assert!(matches!(follower.wait(), Err(EngineError::Unavailable(_))));
    }

    #[test]
    fn keyword_gather_collects_columns_and_dedups_identical_bases() {
        let sched = BatchScheduler::new(BatchConfig {
            gather_window: Duration::from_millis(50),
            max_columns: 8,
        });
        let key = GatherKey {
            epoch: 0,
            damping_bits: 0.85f64.to_bits(),
            tolerance_bits: 1e-8f64.to_bits(),
            members: vec![1u32, 2, 3].into(),
        };
        let KeywordSlot::Leader(lease) = sched.join_keyword(key.clone(), vec![1]) else {
            panic!("first arrival leads");
        };
        // Distinct base → new column; identical base → shared column.
        let f1 = sched.join_keyword(key.clone(), vec![2, 3]);
        let f2 = sched.join_keyword(key.clone(), vec![1]);
        let (KeywordSlot::Follower { column: c1, .. }, KeywordSlot::Follower { column: c2, .. }) =
            (&f1, &f2)
        else {
            panic!("joins must follow");
        };
        assert_eq!((*c1, *c2), (1, 0));
        let columns = lease.gather_columns();
        assert_eq!(columns, vec![vec![1], vec![2, 3]]);
        lease.finish(Ok(vec![result(1), result(2)]));
        assert_eq!(f2.wait().unwrap().iterations, 1);
        assert_eq!(f1.wait().unwrap().iterations, 2);
        let s = sched.stats();
        assert_eq!(s.keyword_solves, 1);
        assert_eq!(s.keyword_columns, 2);
        assert_eq!(s.keyword_coalesced, 2);
    }

    #[test]
    fn full_gather_wakes_the_leader_early() {
        let sched = Arc::new(BatchScheduler::new(BatchConfig {
            gather_window: Duration::from_secs(30), // would stall the test
            max_columns: 2,
        }));
        let key = GatherKey {
            epoch: 0,
            damping_bits: 0.85f64.to_bits(),
            tolerance_bits: 1e-8f64.to_bits(),
            members: vec![5u32, 6].into(),
        };
        let KeywordSlot::Leader(lease) = sched.join_keyword(key.clone(), vec![5]) else {
            panic!();
        };
        let filler = {
            let (sched, key) = (Arc::clone(&sched), key.clone());
            std::thread::spawn(move || sched.join_keyword(key, vec![6]).wait())
        };
        // gather_columns returns as soon as the second column lands.
        let t0 = Instant::now();
        let columns = lease.gather_columns();
        assert!(t0.elapsed() < Duration::from_secs(10));
        assert_eq!(columns.len(), 2);
        lease.finish(Ok(vec![result(1), result(2)]));
        assert_eq!(filler.join().unwrap().unwrap().iterations, 2);
        // A sealed gather is replaced, not joined.
        assert!(matches!(
            sched.join_keyword(key, vec![7]),
            KeywordSlot::Leader(_)
        ));
    }

    #[test]
    fn dropped_keyword_lease_unblocks_followers() {
        let sched = BatchScheduler::new(BatchConfig::default());
        let key = GatherKey {
            epoch: 1,
            damping_bits: 0,
            tolerance_bits: 0,
            members: vec![1u32].into(),
        };
        let KeywordSlot::Leader(lease) = sched.join_keyword(key.clone(), vec![1]) else {
            panic!();
        };
        let follower = sched.join_keyword(key, vec![2]);
        drop(lease);
        assert!(matches!(follower.wait(), Err(EngineError::Unavailable(_))));
    }
}
