//! An O(1) least-recently-used map.
//!
//! `HashMap` for lookup plus an intrusive doubly-linked list threaded
//! through a slot vector for recency order — no allocation per touch, no
//! linear scans on eviction. One instance backs each shard of
//! [`crate::cache::ShardedCache`].

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

struct Slot<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A bounded map evicting the least-recently-used entry on overflow.
pub struct Lru<K, V> {
    capacity: usize,
    map: HashMap<K, usize>,
    slots: Vec<Option<Slot<K, V>>>,
    free: Vec<usize>,
    /// Most recently used.
    head: usize,
    /// Least recently used.
    tail: usize,
}

impl<K: Eq + Hash + Clone, V> Lru<K, V> {
    /// An empty cache holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Lru {
            capacity,
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        self.detach(idx);
        self.attach_front(idx);
        self.slots[idx].as_ref().map(|s| &s.value)
    }

    /// Inserts (or replaces) `key`, marking it most recently used.
    /// Returns the evicted least-recently-used pair when the insert
    /// pushed the cache over capacity.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&idx) = self.map.get(&key) {
            self.slots[idx].as_mut().expect("live slot").value = value;
            self.detach(idx);
            self.attach_front(idx);
            return None;
        }
        let mut evicted = None;
        if self.map.len() == self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.detach(lru);
            let slot = self.slots[lru].take().expect("live tail");
            self.map.remove(&slot.key);
            self.free.push(lru);
            evicted = Some((slot.key, slot.value));
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(Slot {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                });
                i
            }
            None => {
                self.slots.push(Some(Slot {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                }));
                self.slots.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.attach_front(idx);
        evicted
    }

    /// Removes `key`, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.map.remove(key)?;
        self.detach(idx);
        let slot = self.slots[idx].take().expect("live slot");
        self.free.push(idx);
        Some(slot.value)
    }

    /// Iterates entries from most to least recently used (does not touch
    /// recency). The snapshotter uses this to persist the hottest
    /// entries first.
    pub fn iter(&self) -> LruIter<'_, K, V> {
        LruIter {
            lru: self,
            next: self.head,
        }
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = {
            let s = self.slots[idx].as_ref().expect("live slot");
            (s.prev, s.next)
        };
        if prev != NIL {
            self.slots[prev].as_mut().expect("linked").next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].as_mut().expect("linked").prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        let s = self.slots[idx].as_mut().expect("live slot");
        s.prev = NIL;
        s.next = NIL;
    }

    fn attach_front(&mut self, idx: usize) {
        let old_head = self.head;
        {
            let s = self.slots[idx].as_mut().expect("live slot");
            s.prev = NIL;
            s.next = old_head;
        }
        if old_head != NIL {
            self.slots[old_head].as_mut().expect("linked").prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

/// Recency-ordered iterator over an [`Lru`] (most recent first).
pub struct LruIter<'a, K, V> {
    lru: &'a Lru<K, V>,
    next: usize,
}

impl<'a, K, V> Iterator for LruIter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        if self.next == NIL {
            return None;
        }
        let slot = self.lru.slots[self.next].as_ref().expect("linked slot");
        self.next = slot.next;
        Some((&slot.key, &slot.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_walks_most_recent_first() {
        let mut lru = Lru::new(3);
        lru.insert("a", 1);
        lru.insert("b", 2);
        lru.insert("c", 3);
        lru.get(&"a"); // a becomes MRU
        let order: Vec<&str> = lru.iter().map(|(k, _)| *k).collect();
        assert_eq!(order, vec!["a", "c", "b"]);
        assert!(Lru::<u32, u32>::new(2).iter().next().is_none());
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut lru = Lru::new(2);
        assert!(lru.insert("a", 1).is_none());
        assert!(lru.insert("b", 2).is_none());
        // Touch "a" so "b" becomes LRU.
        assert_eq!(lru.get(&"a"), Some(&1));
        let evicted = lru.insert("c", 3).unwrap();
        assert_eq!(evicted, ("b", 2));
        assert_eq!(lru.len(), 2);
        assert!(lru.get(&"b").is_none());
        assert_eq!(lru.get(&"a"), Some(&1));
        assert_eq!(lru.get(&"c"), Some(&3));
    }

    #[test]
    fn replace_does_not_evict() {
        let mut lru = Lru::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        assert!(lru.insert("a", 10).is_none());
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get(&"a"), Some(&10));
    }

    #[test]
    fn remove_and_reuse_slot() {
        let mut lru = Lru::new(3);
        lru.insert(1, "x");
        lru.insert(2, "y");
        assert_eq!(lru.remove(&1), Some("x"));
        assert!(lru.remove(&1).is_none());
        assert_eq!(lru.len(), 1);
        lru.insert(3, "z");
        lru.insert(4, "w");
        assert_eq!(lru.len(), 3);
        assert_eq!(lru.get(&2), Some(&"y"));
    }

    #[test]
    fn capacity_one() {
        let mut lru = Lru::new(1);
        lru.insert(1, 1);
        assert_eq!(lru.insert(2, 2), Some((1, 1)));
        assert_eq!(lru.get(&2), Some(&2));
    }

    #[test]
    fn zero_capacity_clamped_to_one() {
        let mut lru = Lru::new(0);
        assert_eq!(lru.capacity(), 1);
        assert!(lru.insert(1, 1).is_none());
    }

    /// Exercise the link maintenance against a naive model.
    #[test]
    fn matches_naive_model() {
        let mut lru = Lru::new(4);
        let mut model: Vec<(u32, u32)> = Vec::new(); // front = most recent
        let mut x = 123456789u64;
        for _ in 0..5000 {
            // Simple LCG so the test is deterministic without rand.
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = ((x >> 33) % 7) as u32;
            let op = (x >> 60) % 3;
            match op {
                0 => {
                    let got = lru.get(&key).copied();
                    let want = model.iter().position(|&(k, _)| k == key).map(|i| {
                        let pair = model.remove(i);
                        model.insert(0, pair);
                        pair.1
                    });
                    assert_eq!(got, want);
                }
                1 => {
                    let value = (x >> 16) as u32;
                    let evicted = lru.insert(key, value);
                    if let Some(i) = model.iter().position(|&(k, _)| k == key) {
                        model.remove(i);
                        model.insert(0, (key, value));
                        assert!(evicted.is_none());
                    } else {
                        model.insert(0, (key, value));
                        if model.len() > 4 {
                            let lru_pair = model.pop().unwrap();
                            assert_eq!(evicted, Some(lru_pair));
                        } else {
                            assert!(evicted.is_none());
                        }
                    }
                }
                _ => {
                    let got = lru.remove(&key);
                    let want = model
                        .iter()
                        .position(|&(k, _)| k == key)
                        .map(|i| model.remove(i).1);
                    assert_eq!(got, want);
                }
            }
            assert_eq!(lru.len(), model.len());
        }
    }
}
