//! The bridge between live engine state and the durable
//! [`approxrank_store`] layer: type conversions, boot-time recovery, WAL
//! appends on the session-mutation path, and snapshot collection.
//!
//! The store speaks only primitive types, so this module owns every
//! conversion: [`crate::EngineSession`] ↔
//! [`approxrank_store::SessionRecord`] and cache entries ↔
//! [`approxrank_store::CacheRecord`]. WAL appends are best-effort from
//! the request path's point of view — a failing disk degrades
//! durability, never availability — with failures counted per engine and
//! logged.

use std::io;
use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

use approxrank_core::SubgraphSession;
use approxrank_graph::NodeSet;
use approxrank_store::{
    CacheRecord, GraphMutationRecord, SessionRecord, SessionStore, StoreConfig, WalEvent,
};
use approxrank_trace::{logging, Observer};

use crate::algorithm::Algorithm;
use crate::cache::{CacheKey, CachedResult};
use crate::engine::{options_for, Engine, EngineSession, EstimatorOptions, SessionSolver};

/// How many result-cache entries a snapshot persists, hottest first.
const HOT_CACHE_LIMIT: usize = 256;

/// What [`Engine::open_store`] reconstructed, for the boot banner.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoverySummary {
    /// Sessions re-registered into the session table.
    pub sessions: usize,
    /// Sessions on disk that no longer fit the loaded graph (or shard)
    /// and were dropped — e.g. the server was restarted with a different
    /// graph or partitioning.
    pub skipped: usize,
    /// Result-cache entries rewarmed.
    pub cache_entries: usize,
    /// Graph-mutation batches replayed into the live graph (batches the
    /// delta had already seen, e.g. via another store sharing it, are
    /// skipped by the epoch guard and not counted).
    pub mutations: usize,
    /// Torn/corrupt WAL tails truncated during replay.
    pub truncated_records: u64,
}

impl RecoverySummary {
    /// Folds another engine's recovery into this one (the router sums
    /// per-shard summaries for the boot banner).
    pub fn merge(&mut self, other: RecoverySummary) {
        self.sessions += other.sessions;
        self.skipped += other.skipped;
        self.cache_entries += other.cache_entries;
        self.mutations += other.mutations;
        self.truncated_records += other.truncated_records;
    }
}

impl Engine {
    /// Opens (or creates) the durable store in `dir`, recovers its
    /// contents — re-registering sessions, restoring their last solutions
    /// so the next solve is warm, re-publishing their cache invalidation
    /// keys, and rewarming hot cache entries — and installs the store so
    /// the mutation path starts appending WAL events.
    pub fn open_store(&self, dir: &Path) -> io::Result<RecoverySummary> {
        let config = StoreConfig {
            fsync: self.config.fsync,
            ..StoreConfig::default()
        };
        let (store, recovered) = SessionStore::open(dir, config)?;

        let mut summary = RecoverySummary {
            truncated_records: recovered.truncated_records,
            ..RecoverySummary::default()
        };

        // Replay graph mutations before anything live is rebuilt — the
        // sessions and cache entries below must see the graph at the
        // epoch the previous process reached. Two phases: cache entries
        // were snapshotted no later than the snapshot's mutation prefix,
        // so they are revived (and epoch-keyed) with exactly that prefix
        // applied; WAL-tail mutations replay afterwards and supersede
        // any entry they touch. The epoch guard makes replay idempotent
        // when several stores share one delta.
        let (prefix, tail) = recovered
            .mutations
            .split_at(recovered.snapshot_mutations.min(recovered.mutations.len()));
        summary.mutations += self.replay_mutations(prefix);

        for record in recovered.cache {
            if let Some((key, value)) = self.revive_cache_entry(&record) {
                self.cache.insert(key, value);
                summary.cache_entries += 1;
            }
        }

        summary.mutations += self.replay_mutations(tail);

        let mut max_id = 0u64;
        {
            let mut sessions = self.lock_sessions();
            for record in recovered.sessions {
                max_id = max_id.max(record.id);
                match self.revive_session(&record) {
                    Some(session) => {
                        sessions.insert(record.id, Arc::new(Mutex::new(session)));
                        summary.sessions += 1;
                    }
                    None => summary.skipped += 1,
                }
            }
        }
        // Ids keep growing from where the previous process stopped — on
        // this engine's stride, so a recovered id is never handed out
        // twice and the id → engine routing stays intact.
        let stride = self.config.session_id_stride;
        let current = self.next_session_id.load(Ordering::Relaxed);
        if max_id >= current {
            let steps = (max_id - current) / stride + 1;
            self.next_session_id
                .store(current + steps * stride, Ordering::Relaxed);
        }

        let _ = self.store.set(Arc::new(store));
        Ok(summary)
    }

    /// Replays logged mutation batches into the live graph, returning
    /// how many actually applied (epoch-guarded; already-seen batches
    /// no-op). A static shard engine has no delta and replays nothing.
    fn replay_mutations(&self, records: &[GraphMutationRecord]) -> usize {
        let Some(delta) = self.delta() else {
            return 0;
        };
        let mut applied = 0;
        for record in records {
            match delta.replay(record.epoch, &record.insert, &record.delete) {
                Ok(Some(_)) => applied += 1,
                Ok(None) => {}
                Err(e) => logging::log_with(
                    logging::Level::Error,
                    "engine",
                    &format!("mutation replay failed at epoch {}: {e}", record.epoch),
                    &[("epoch", &record.epoch.to_string())],
                ),
            }
        }
        applied
    }

    /// Rebuilds a live warm session from its persisted record. Returns
    /// `None` when the record does not fit the loaded graph (member out
    /// of range or not on this shard, empty membership, or a full-graph
    /// membership) — a stale data dir must not poison a fresh boot.
    fn revive_session(&self, record: &SessionRecord) -> Option<EngineSession> {
        let n = self.global_nodes();
        if record.members.is_empty()
            || record.members.len() >= n
            || record.members.iter().any(|&m| !self.owns(m))
            || !(record.damping > 0.0 && record.damping < 1.0)
            || !(record.tolerance > 0.0 && record.tolerance.is_finite())
        {
            return None;
        }
        let nodes = NodeSet::from_iter_order(n, record.members.iter().copied());
        let mut session = SubgraphSession::with_source(
            self.source(),
            nodes,
            options_for(record.damping, record.tolerance),
        );
        if let Some((scores, lambda)) = &record.solution {
            session.restore(scores.clone(), *lambda, record.iterations as usize);
        }
        // Only exact sessions are persisted (estimator sessions are
        // ephemeral — their visit counts are cheap to resample), so a
        // revived record is always an ApproxRank session.
        let mut engine_session = EngineSession {
            solver: SessionSolver::Exact(session),
            published_key: None,
            algorithm: Algorithm::ApproxRank,
            estimator: EstimatorOptions::default(),
            damping: record.damping,
            tolerance: record.tolerance,
        };
        if record.solution.is_some() {
            // The previous process had published this membership;
            // re-publish the key so the next mutation invalidates any
            // cold `/rank` entry that may also be rewarmed below.
            engine_session.published_key = Some(self.session_key(&engine_session));
        }
        Some(engine_session)
    }

    fn revive_cache_entry(&self, record: &CacheRecord) -> Option<(CacheKey, CachedResult)> {
        if record.members.is_empty()
            || record.members.iter().any(|&m| !self.owns(m))
            || !record.members.windows(2).all(|w| w[0] < w[1])
        {
            return None;
        }
        let key = CacheKey {
            algorithm: record.algorithm,
            damping_bits: record.damping_bits,
            tolerance_bits: record.tolerance_bits,
            estimator_bits: 0,
            // Runs with only the snapshot's mutation prefix replayed (see
            // `open_store`), so this is the epoch the entry was computed
            // under; WAL-tail mutations replayed afterwards retire it by
            // bumping its members past this key.
            epoch: self.effective_epoch(&record.members),
            members: record.members.as_slice().into(),
        };
        let value = CachedResult {
            scores: Arc::new(record.scores.clone()),
            lambda: record.lambda,
            iterations: record.iterations as usize,
            converged: record.converged,
            estimate: None,
        };
        Some((key, value))
    }

    /// Appends one lifecycle event if a store is installed, attributing
    /// the append (and any fsync the policy issued for it) into the
    /// active request trace. Errors degrade to a counter and a
    /// structured log line — the request still succeeds.
    pub fn log_event(&self, event: WalEvent, obs: &dyn Observer) {
        if let Some(store) = self.store.get() {
            let _span = obs.span("store.wal_append");
            match store.append_timed(&event) {
                Ok(receipt) => {
                    if receipt.fsyncs > 0 {
                        obs.counter("store_fsync_us", receipt.fsync_us);
                    }
                }
                Err(e) => {
                    self.wal_errors.fetch_add(1, Ordering::Relaxed);
                    logging::log_with(
                        logging::Level::Error,
                        "engine",
                        &format!("WAL append failed for session {}: {e}", event.session_id()),
                        &[("session", &event.session_id().to_string())],
                    );
                }
            }
        }
    }

    /// WAL append failures observed so far on this engine.
    pub fn wal_errors(&self) -> u64 {
        self.wal_errors.load(Ordering::Relaxed)
    }

    /// The durable store, if one has been opened.
    pub fn store(&self) -> Option<&Arc<SessionStore>> {
        self.store.get()
    }

    /// Collects the full session table as records. Per-session locks are
    /// taken one at a time, so a long re-solve delays only its own entry.
    fn collect_sessions(&self) -> Vec<SessionRecord> {
        let entries: Vec<(u64, Arc<Mutex<EngineSession>>)> = self
            .lock_sessions()
            .iter()
            .map(|(&id, entry)| (id, Arc::clone(entry)))
            .collect();
        let mut records: Vec<SessionRecord> = entries
            .into_iter()
            .filter_map(|(id, entry)| {
                let session = entry.lock().unwrap_or_else(|e| e.into_inner());
                // Estimator sessions are ephemeral: never snapshotted.
                matches!(session.solver, SessionSolver::Exact(_))
                    .then(|| session_record(id, &session))
            })
            .collect();
        records.sort_by_key(|r| r.id);
        records
    }

    fn collect_cache(&self) -> Vec<CacheRecord> {
        self.cache
            .hot_entries(HOT_CACHE_LIMIT)
            .into_iter()
            // Estimator answers are cheap to recompute and their records
            // carry no estimator fingerprint — persist exact entries
            // only. Entries a mutation already retired (stale key epoch)
            // are unreachable and must not be rewarmed.
            .filter(|(key, value)| {
                key.estimator_bits == 0
                    && value.estimate.is_none()
                    && key.epoch == self.effective_epoch(&key.members)
            })
            .map(|(key, value)| CacheRecord {
                algorithm: key.algorithm,
                damping_bits: key.damping_bits,
                tolerance_bits: key.tolerance_bits,
                members: key.members.to_vec(),
                scores: value.scores.as_ref().clone(),
                lambda: value.lambda,
                iterations: value.iterations as u64,
                converged: value.converged,
            })
            .collect()
    }

    /// The live graph's full accumulated mutation log as records for a
    /// snapshot. The log must be complete — snapshotting retires WAL
    /// segments that may hold earlier mutation events.
    fn collect_mutations(&self) -> Vec<GraphMutationRecord> {
        match self.delta() {
            Some(delta) => delta
                .mutation_log()
                .into_iter()
                .map(|m| GraphMutationRecord {
                    epoch: m.epoch,
                    insert: m.insert,
                    delete: m.delete,
                })
                .collect(),
            None => Vec::new(),
        }
    }

    /// Writes a snapshot of the current sessions, hot cache entries, and
    /// the graph-mutation log. A no-op without a store.
    pub fn snapshot_now(&self) -> io::Result<()> {
        let Some(store) = self.store.get() else {
            return Ok(());
        };
        store.snapshot(
            self.collect_sessions(),
            self.collect_cache(),
            self.collect_mutations(),
        )
    }

    /// Flushes the WAL to stable storage (clean-shutdown path). A no-op
    /// without a store.
    pub fn flush(&self) -> io::Result<()> {
        match self.store.get() {
            Some(store) => store.flush(),
            None => Ok(()),
        }
    }
}

/// Converts a live session to its persistent record.
pub(crate) fn session_record(id: u64, session: &EngineSession) -> SessionRecord {
    SessionRecord {
        id,
        damping: session.damping,
        tolerance: session.tolerance,
        iterations: session.solver.last_iterations() as u64,
        members: session.solver.members().to_vec(),
        solution: session
            .solver
            .last_solution()
            .map(|(scores, lambda)| (scores.to_vec(), lambda)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, RankRequest};
    use approxrank_graph::DiGraph;
    use approxrank_trace::null;

    fn request(members: Vec<u32>) -> RankRequest {
        RankRequest {
            members,
            algorithm: Algorithm::ApproxRank,
            damping: 0.85,
            tolerance: 1e-6,
            estimator: EstimatorOptions::default(),
        }
    }

    fn graph() -> DiGraph {
        let n = 80u32;
        let edges: Vec<(u32, u32)> = (0..n)
            .flat_map(|i| [(i, (i + 1) % n), (i, (i * 7 + 3) % n)])
            .collect();
        DiGraph::from_edges(n as usize, &edges)
    }

    #[test]
    fn sessions_survive_reopen_with_stride_preserved() {
        let dir = std::env::temp_dir().join(format!(
            "approxrank-engine-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = EngineConfig {
            first_session_id: 2,
            session_id_stride: 3,
            ..EngineConfig::default()
        };
        let engine = Engine::new_global(Arc::new(graph()), config.clone());
        engine.open_store(&dir).unwrap();
        let (id, _) = engine
            .session_create(&request(vec![1, 2, 3]), null())
            .unwrap();
        assert_eq!(id, 2);
        let view = engine.session_view(id).unwrap();
        engine.flush().unwrap();
        drop(engine);

        let revived = Engine::new_global(Arc::new(graph()), config);
        let summary = revived.open_store(&dir).unwrap();
        assert_eq!(summary.sessions, 1);
        let got = revived.session_view(id).unwrap();
        assert_eq!(got.members, view.members);
        let (scores, lambda) = got.solution.unwrap();
        let (want_scores, want_lambda) = view.solution.unwrap();
        assert_eq!(scores, want_scores);
        assert_eq!(lambda.to_bits(), want_lambda.to_bits());
        // The next id continues on the stride past the recovered id.
        let (next, _) = revived
            .session_create(&request(vec![4, 5]), null())
            .unwrap();
        assert_eq!(next, 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn graph_mutations_replay_on_reopen() {
        let dir = std::env::temp_dir().join(format!(
            "approxrank-engine-mut-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let engine = Engine::new_global(Arc::new(graph()), EngineConfig::default());
        engine.open_store(&dir).unwrap();
        let req = request((10..30).collect());
        engine
            .mutate_graph(&[(12, 17)], &[(14, 15)], null())
            .unwrap();
        let want = engine.rank(&req, null()).unwrap();
        engine.flush().unwrap();
        drop(engine);

        // Reopen from the original base graph: the WAL replays the batch.
        let revived = Engine::new_global(Arc::new(graph()), EngineConfig::default());
        let summary = revived.open_store(&dir).unwrap();
        assert_eq!(summary.mutations, 1);
        assert_eq!(revived.graph_epoch(), 1);
        let got = revived.rank(&req, null()).unwrap();
        for ((pa, sa), (pb, sb)) in got.result.scores.iter().zip(want.result.scores.iter()) {
            assert_eq!(pa, pb);
            assert_eq!(sa.to_bits(), sb.to_bits(), "page {pa}");
        }

        // A snapshot folds the log in; reopening still converges to the
        // same epoch (snapshot prefix, empty tail).
        revived.snapshot_now().unwrap();
        drop(revived);
        let third = Engine::new_global(Arc::new(graph()), EngineConfig::default());
        let summary = third.open_store(&dir).unwrap();
        assert_eq!(summary.mutations, 1);
        assert_eq!(third.graph_epoch(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
