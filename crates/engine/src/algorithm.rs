//! The ranking-algorithm selector shared by the service and the engine.

/// Which ranking algorithm a request selects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// ApproxRank (the default).
    ApproxRank,
    /// IdealRank over lazily computed global PageRank scores.
    IdealRank,
    /// Local PageRank baseline.
    Local,
    /// LPR2 baseline.
    Lpr2,
    /// Stochastic complementation baseline.
    Sc,
    /// Monte-Carlo ApproxRank estimator (seeded walks).
    Mc,
    /// Local-push ApproxRank estimator (residual-bounded).
    Push,
}

impl Algorithm {
    /// Parses the wire name (`approxrank`, `idealrank`, `local`, `lpr2`,
    /// `sc`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "approxrank" => Ok(Algorithm::ApproxRank),
            "idealrank" => Ok(Algorithm::IdealRank),
            "local" => Ok(Algorithm::Local),
            "lpr2" => Ok(Algorithm::Lpr2),
            "sc" => Ok(Algorithm::Sc),
            "mc" => Ok(Algorithm::Mc),
            "push" => Ok(Algorithm::Push),
            other => Err(format!(
                "unknown algorithm {other:?} (approxrank|idealrank|local|lpr2|sc|mc|push)"
            )),
        }
    }

    /// Stable discriminant for cache keys.
    pub fn code(self) -> u8 {
        match self {
            Algorithm::ApproxRank => 0,
            Algorithm::IdealRank => 1,
            Algorithm::Local => 2,
            Algorithm::Lpr2 => 3,
            Algorithm::Sc => 4,
            Algorithm::Mc => 5,
            Algorithm::Push => 6,
        }
    }

    /// The wire name, as rendered in responses.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::ApproxRank => "approxrank",
            Algorithm::IdealRank => "idealrank",
            Algorithm::Local => "local",
            Algorithm::Lpr2 => "lpr2",
            Algorithm::Sc => "sc",
            Algorithm::Mc => "mc",
            Algorithm::Push => "push",
        }
    }

    /// Whether results of this algorithm are sampled/bounded *estimates*
    /// carrying an `estimate` block, rather than converged solves.
    pub fn is_estimator(self) -> bool {
        matches!(self, Algorithm::Mc | Algorithm::Push)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for algo in [
            Algorithm::ApproxRank,
            Algorithm::IdealRank,
            Algorithm::Local,
            Algorithm::Lpr2,
            Algorithm::Sc,
            Algorithm::Mc,
            Algorithm::Push,
        ] {
            assert_eq!(Algorithm::parse(algo.name()), Ok(algo));
        }
        assert!(Algorithm::parse("bogus").is_err());
    }

    #[test]
    fn codes_are_distinct() {
        let codes: std::collections::HashSet<u8> = [
            Algorithm::ApproxRank,
            Algorithm::IdealRank,
            Algorithm::Local,
            Algorithm::Lpr2,
            Algorithm::Sc,
            Algorithm::Mc,
            Algorithm::Push,
        ]
        .iter()
        .map(|a| a.code())
        .collect();
        assert_eq!(codes.len(), 7);
    }
}
