//! Contract tests: every [`SubgraphRanker`] implementation must satisfy
//! the same behavioural contract across a battery of graph shapes —
//! convergence, finite non-negative scores, one score per local page,
//! determinism, and sane `Λ` semantics where applicable.

use approxrank_core::baselines::{LocalPageRank, Lpr2};
use approxrank_core::{ApproxRank, IdealRank, StochasticComplementation, SubgraphRanker};
use approxrank_graph::{DiGraph, NodeSet, Subgraph};
use approxrank_pagerank::{pagerank, PageRankOptions};

fn opts() -> PageRankOptions {
    PageRankOptions::paper().with_tolerance(1e-10)
}

/// The battery: (name, graph, local members).
fn battery() -> Vec<(&'static str, DiGraph, Vec<u32>)> {
    // Paper Figure 4.
    let mut cases = vec![(
        "figure4",
        DiGraph::from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (0, 4),
                (0, 6),
                (1, 3),
                (2, 1),
                (2, 3),
                (3, 0),
                (4, 2),
                (4, 5),
                (4, 6),
                (5, 2),
                (5, 6),
                (6, 2),
                (6, 3),
            ],
        ),
        vec![0, 1, 2, 3],
    )];
    // Subgraph with a locally-dangling page and a dangling external page.
    cases.push((
        "dangling_both_sides",
        DiGraph::from_edges(6, &[(0, 1), (0, 3), (1, 2), (3, 1), (3, 4), (4, 0), (4, 5)]),
        vec![0, 1, 2],
    ));
    // Subgraph that is internally disconnected.
    cases.push((
        "disconnected_local",
        DiGraph::from_edges(
            8,
            &[
                (0, 4),
                (4, 1),
                (1, 5),
                (5, 2),
                (2, 6),
                (6, 3),
                (3, 7),
                (7, 0),
            ],
        ),
        vec![0, 1, 2, 3],
    ));
    // Singleton subgraph.
    cases.push((
        "singleton",
        DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)]),
        vec![2],
    ));
    // Subgraph with no external in-links at all.
    cases.push((
        "no_inbound_boundary",
        DiGraph::from_edges(5, &[(0, 1), (1, 0), (0, 2), (2, 3), (3, 4), (4, 2)]),
        vec![0, 1],
    ));
    // Larger pseudo-random case.
    let n = 120u32;
    let mut edges = Vec::new();
    let mut state = 99u64;
    for u in 0..n {
        if u % 13 == 5 {
            continue; // dangling
        }
        for _ in 0..3 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            edges.push((u, ((state >> 33) % n as u64) as u32));
        }
    }
    cases.push((
        "pseudo_random",
        DiGraph::from_edges(n as usize, &edges),
        (30..75u32).collect(),
    ));
    cases
}

fn rankers(truth: &[f64]) -> Vec<Box<dyn SubgraphRanker>> {
    vec![
        Box::new(ApproxRank::new(opts())),
        Box::new(LocalPageRank::new(opts())),
        Box::new(Lpr2::new(opts())),
        Box::new(StochasticComplementation {
            options: opts(),
            expansion_rounds: 5,
            ..StochasticComplementation::default()
        }),
        Box::new(IdealRank {
            options: opts(),
            global_scores: truth.to_vec(),
        }),
    ]
}

#[test]
fn every_ranker_satisfies_the_contract_on_every_case() {
    for (name, g, members) in battery() {
        let truth = pagerank(&g, &opts());
        let sub = Subgraph::extract(&g, NodeSet::from_sorted(g.num_nodes(), members));
        for ranker in rankers(&truth.scores) {
            let r = ranker.rank(&g, &sub);
            let label = format!("{} on {name}", ranker.name());
            assert!(r.converged, "{label}: did not converge");
            assert_eq!(
                r.local_scores.len(),
                sub.len(),
                "{label}: wrong score count"
            );
            assert!(
                r.local_scores.iter().all(|s| s.is_finite() && *s >= 0.0),
                "{label}: invalid scores {:?}",
                r.local_scores
            );
            assert!(
                r.local_mass() > 0.0,
                "{label}: all-zero scores are never valid (teleport floor)"
            );
            if let Some(lambda) = r.lambda_score {
                assert!(
                    (0.0..=1.0 + 1e-9).contains(&lambda),
                    "{label}: Λ = {lambda}"
                );
                // Λ-based rankers are mass-conserving overall.
                assert!(
                    (r.local_mass() + lambda - 1.0).abs() < 1e-6,
                    "{label}: mass {} + Λ {lambda} != 1",
                    r.local_mass()
                );
            }
            // Determinism.
            let again = ranker.rank(&g, &sub);
            assert_eq!(r, again, "{label}: nondeterministic");
        }
    }
}

#[test]
fn idealrank_is_exact_on_every_case() {
    for (name, g, members) in battery() {
        let truth = pagerank(&g, &PageRankOptions::paper().with_tolerance(1e-12));
        let sub = Subgraph::extract(&g, NodeSet::from_sorted(g.num_nodes(), members));
        let ideal = IdealRank {
            options: PageRankOptions::paper().with_tolerance(1e-12),
            global_scores: truth.scores.clone(),
        };
        let r = ideal.rank(&g, &sub);
        let restricted = sub.nodes().restrict(&truth.scores);
        let err: f64 = r
            .local_scores
            .iter()
            .zip(&restricted)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(err < 1e-8, "{name}: IdealRank L1 error {err}");
    }
}

#[test]
fn approxrank_never_loses_to_local_pagerank_badly() {
    // ApproxRank may tie local PageRank on boundary-free cases but must
    // never be substantially worse on any battery case.
    use approxrank_metrics::footrule::footrule_from_scores;
    for (name, g, members) in battery() {
        let truth = pagerank(&g, &opts());
        let sub = Subgraph::extract(&g, NodeSet::from_sorted(g.num_nodes(), members));
        if sub.len() < 3 {
            continue; // footrule on <3 items is degenerate
        }
        let restricted = sub.nodes().restrict(&truth.scores);
        let fr_a = footrule_from_scores(
            &ApproxRank::new(opts()).rank(&g, &sub).local_scores,
            &restricted,
        );
        let fr_l = footrule_from_scores(
            &LocalPageRank::new(opts()).rank(&g, &sub).local_scores,
            &restricted,
        );
        assert!(
            fr_a <= fr_l + 0.05,
            "{name}: ApproxRank {fr_a} much worse than local {fr_l}"
        );
    }
}
