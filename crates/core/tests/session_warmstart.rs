//! Property test: warm-start session re-solves agree with cold solves.
//!
//! A [`SubgraphSession`] re-solve starts iterating from the previous
//! membership's converged scores instead of uniform. The iteration *path*
//! therefore differs from a cold [`ApproxRank`] solve, so bit-identity is
//! unattainable — but both paths contract to the same fixed point, so at
//! a solve tolerance of 1e-12 the converged scores must agree to well
//! within 1e-9 on every page (the serving layer's cache-consistency
//! story relies on this: warm results are never cached, but they must be
//! indistinguishable from cold ones to callers).

use approxrank_core::{ApproxRank, SubgraphRanker, SubgraphSession};
use approxrank_graph::{DiGraph, NodeSet, Subgraph};
use approxrank_pagerank::PageRankOptions;
use proptest::prelude::*;

/// Random graphs over 6..40 nodes with a nonempty proper initial
/// membership and a batch of random edits (page index, add-or-remove).
fn graph_membership_edits() -> impl Strategy<Value = (DiGraph, Vec<u32>, Vec<(u32, bool)>)> {
    (6usize..40).prop_flat_map(|n| {
        let edge = (0u32..n as u32, 0u32..n as u32);
        let edges = proptest::collection::vec(edge, 1..150);
        let picks = proptest::collection::vec(any::<bool>(), n);
        let edits = proptest::collection::vec((0u32..n as u32, any::<bool>()), 1..12);
        (edges, picks, edits).prop_map(move |(es, picks, edits)| {
            let g = DiGraph::from_edges(n, &es);
            let mut members: Vec<u32> = (0..n as u32).filter(|&u| picks[u as usize]).collect();
            if members.is_empty() {
                members.push(0);
            }
            if members.len() == n {
                members.pop();
            }
            (g, members, edits)
        })
    })
}

fn tight() -> PageRankOptions {
    PageRankOptions::paper().with_tolerance(1e-12)
}

/// Applies one edit to the session and mirrors it in `members`, skipping
/// edits the session's preconditions reject (already-member adds,
/// non-member removes, emptying or completing the membership).
fn apply_edit(
    session: &mut SubgraphSession,
    members: &mut Vec<u32>,
    global: &DiGraph,
    page: u32,
    add: bool,
) {
    let present = members.binary_search(&page);
    match (add, present) {
        (true, Err(pos)) if members.len() + 1 < global.num_nodes() => {
            session.add_pages(global, &[page]);
            members.insert(pos, page);
        }
        (false, Ok(pos)) if members.len() > 1 => {
            session.remove_pages(global, &[page]);
            members.remove(pos);
        }
        _ => {}
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn warm_resolves_match_cold_solves((g, initial, edits) in graph_membership_edits()) {
        let mut members = initial.clone();
        let mut session = SubgraphSession::new(
            &g,
            NodeSet::from_sorted(g.num_nodes(), initial),
            tight(),
        );
        // Converge the initial membership so every later solve is warm.
        session.solve();

        for (page, add) in edits {
            apply_edit(&mut session, &mut members, &g, page, add);
            // The session keeps members in insertion order; compare as sets
            // and match scores up by global page id, not position.
            let mut session_sorted = session.members().to_vec();
            session_sorted.sort_unstable();
            prop_assert_eq!(&session_sorted, &members);
            let warm = session.solve();

            let set = NodeSet::from_sorted(g.num_nodes(), members.clone());
            let sub = Subgraph::extract(&g, set);
            let cold = ApproxRank::new(tight()).rank(&g, &sub);

            prop_assert_eq!(warm.local_scores.len(), cold.local_scores.len());
            let warm_by_id: std::collections::HashMap<u32, f64> = session
                .members()
                .iter()
                .copied()
                .zip(warm.local_scores.iter().copied())
                .collect();
            for (&page, c) in members.iter().zip(&cold.local_scores) {
                let w = warm_by_id[&page];
                prop_assert!(
                    (w - c).abs() < 1e-9,
                    "page {}: warm {} vs cold {}",
                    page, w, c
                );
            }
            let (wl, cl) = (warm.lambda_score.unwrap(), cold.lambda_score.unwrap());
            prop_assert!((wl - cl).abs() < 1e-9, "lambda: warm {wl} vs cold {cl}");
            prop_assert!(warm.converged && cold.converged);
        }
    }

    /// Round-trip through the durability surface: persist a session's
    /// membership (insertion order) and last solution, rebuild a fresh
    /// session in a "restarted process", `restore` the solution, apply
    /// one more edit, and re-solve. The restored warm solve must match a
    /// cold ApproxRank solve to 1e-9 — recovery must never yield silently
    /// wrong scores.
    #[test]
    fn restored_warm_resolves_match_cold_solves((g, initial, edits) in graph_membership_edits()) {
        let mut members = initial.clone();
        let mut session = SubgraphSession::new(
            &g,
            NodeSet::from_sorted(g.num_nodes(), initial),
            tight(),
        );
        session.solve();
        // Mutate a bit before the simulated crash.
        let mut edits = edits;
        let after_restart = edits.split_off(edits.len() / 2);
        for (page, add) in edits {
            apply_edit(&mut session, &mut members, &g, page, add);
        }
        session.solve();

        // What a store would persist: insertion-order members, scores in
        // global-id terms, lambda, iteration count.
        let saved_members = session.members().to_vec();
        let (saved_scores, saved_lambda) = {
            let (s, l) = session.last_solution().expect("solved above");
            (s.to_vec(), l)
        };
        let saved_iterations = session.last_iterations();
        drop(session);

        // "Reboot": fresh session over the same graph, restored state.
        let mut restored = SubgraphSession::new(
            &g,
            NodeSet::from_iter_order(g.num_nodes(), saved_members.iter().copied()),
            tight(),
        );
        restored.restore(saved_scores, saved_lambda, saved_iterations);
        prop_assert_eq!(restored.last_iterations(), saved_iterations);

        for (page, add) in after_restart {
            apply_edit(&mut restored, &mut members, &g, page, add);
        }
        let warm = restored.solve();

        let set = NodeSet::from_sorted(g.num_nodes(), members.clone());
        let sub = Subgraph::extract(&g, set);
        let cold = ApproxRank::new(tight()).rank(&g, &sub);

        let warm_by_id: std::collections::HashMap<u32, f64> = restored
            .members()
            .iter()
            .copied()
            .zip(warm.local_scores.iter().copied())
            .collect();
        for (&page, c) in members.iter().zip(&cold.local_scores) {
            let w = warm_by_id[&page];
            prop_assert!(
                (w - c).abs() < 1e-9,
                "page {}: restored warm {} vs cold {}",
                page, w, c
            );
        }
        let (wl, cl) = (warm.lambda_score.unwrap(), cold.lambda_score.unwrap());
        prop_assert!((wl - cl).abs() < 1e-9, "lambda: restored {wl} vs cold {cl}");
        prop_assert!(warm.converged && cold.converged);
    }
}
