//! Property-based tests for the core algorithms: the collapsed matrices
//! stay stochastic, Theorem 1 exactness, and the Theorem 2 bound, on
//! arbitrary random graphs and subgraph choices.

use approxrank_core::theory::{external_assumption_gap, lockstep_gaps, theorem2_bound};
use approxrank_core::{ApproxRank, IdealRank, SubgraphRanker};
use approxrank_graph::{DiGraph, NodeSet, Subgraph};
use approxrank_pagerank::{pagerank, PageRankOptions};
use proptest::prelude::*;

/// Random graphs over 4..40 nodes including dangling pages, with a
/// nonempty proper subgraph selection.
fn graph_and_subgraph() -> impl Strategy<Value = (DiGraph, NodeSet)> {
    (4usize..40).prop_flat_map(|n| {
        let edge = (0u32..n as u32, 0u32..n as u32);
        let edges = proptest::collection::vec(edge, 1..150);
        let picks = proptest::collection::vec(any::<bool>(), n);
        (edges, picks).prop_map(move |(es, picks)| {
            let g = DiGraph::from_edges(n, &es);
            let mut members: Vec<u32> = (0..n as u32).filter(|&u| picks[u as usize]).collect();
            if members.is_empty() {
                members.push(0);
            }
            if members.len() == n {
                members.pop();
            }
            (g, NodeSet::from_sorted(n, members))
        })
    })
}

fn tight() -> PageRankOptions {
    PageRankOptions::paper().with_tolerance(1e-12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn a_approx_is_always_stochastic((g, set) in graph_and_subgraph()) {
        let sub = Subgraph::extract(&g, set);
        let ext = ApproxRank::default().extended_graph(&g, &sub);
        prop_assert!(ext.max_row_sum_error() < 1e-9);
    }

    #[test]
    fn a_ideal_is_always_stochastic((g, set) in graph_and_subgraph()) {
        let truth = pagerank(&g, &tight());
        let sub = Subgraph::extract(&g, set);
        let ideal = IdealRank { options: tight(), global_scores: truth.scores };
        let ext = ideal.extended_graph(&g, &sub);
        prop_assert!(ext.max_row_sum_error() < 1e-9);
    }

    #[test]
    fn theorem1_exactness((g, set) in graph_and_subgraph()) {
        let truth = pagerank(&g, &tight());
        let sub = Subgraph::extract(&g, set);
        let ideal = IdealRank { options: tight(), global_scores: truth.scores.clone() };
        let r = ideal.rank(&g, &sub);
        let restricted = sub.nodes().restrict(&truth.scores);
        let err: f64 = r
            .local_scores
            .iter()
            .zip(&restricted)
            .map(|(a, b)| (a - b).abs())
            .sum();
        prop_assert!(err < 1e-8, "L1 error {err}");
        let ext_mass = 1.0 - restricted.iter().sum::<f64>();
        prop_assert!((r.lambda_score.unwrap() - ext_mass).abs() < 1e-8);
    }

    #[test]
    fn theorem2_bound_holds((g, set) in graph_and_subgraph()) {
        let eps = 0.85;
        let truth = pagerank(&g, &tight());
        let sub = Subgraph::extract(&g, set);
        let ideal = IdealRank { options: tight(), global_scores: truth.scores.clone() };
        let ie = ideal.extended_graph(&g, &sub);
        let ae = ApproxRank::new(tight()).extended_graph(&g, &sub);
        let gap = external_assumption_gap(&truth.scores, &sub);
        for (i, measured) in lockstep_gaps(&ie, &ae, eps, 20).iter().enumerate() {
            let bound = theorem2_bound(eps, Some(i + 1), gap);
            prop_assert!(*measured <= bound + 1e-10,
                "iteration {}: {measured} > {bound}", i + 1);
        }
    }

    #[test]
    fn approx_scores_form_distribution((g, set) in graph_and_subgraph()) {
        let sub = Subgraph::extract(&g, set);
        let r = ApproxRank::new(tight()).rank(&g, &sub);
        prop_assert!(r.local_scores.iter().all(|&s| s >= 0.0 && s.is_finite()));
        let total = r.local_mass() + r.lambda_score.unwrap();
        prop_assert!((total - 1.0).abs() < 1e-8, "total {total}");
    }

    #[test]
    fn rankers_are_deterministic((g, set) in graph_and_subgraph()) {
        let sub = Subgraph::extract(&g, set);
        let a1 = ApproxRank::default().rank(&g, &sub);
        let a2 = ApproxRank::default().rank(&g, &sub);
        prop_assert_eq!(a1, a2);
    }

    /// The batched keyword contract one layer up from the raw power
    /// iteration: a k-base-set multi-column keyword solve over one
    /// Λ-collapse answers every column bitwise identically to k
    /// one-column solves — on random graphs, random memberships, and
    /// random base sets. This is the identity the engine's batch
    /// scheduler relies on when it coalesces concurrent `/keyword`
    /// requests.
    #[test]
    fn keyword_batch_is_bitwise_singleton(
        (g, set) in graph_and_subgraph(),
        k in 1usize..4,
        seed in 1u64..1_000_000,
    ) {
        use approxrank_core::GlobalAggregates;
        let n = g.num_nodes() as u64;
        let sub = Subgraph::extract(&g, set);
        // k deterministic base sets over the *global* graph (base pages
        // outside the membership teleport into Λ).
        let bases: Vec<Vec<u32>> = (0..k as u64)
            .map(|j| {
                let mut base: Vec<u32> = (0..=(seed.wrapping_mul(j + 1) % 4))
                    .map(|i| ((seed.wrapping_add(i * 13 + j * 31)) % n) as u32)
                    .collect();
                base.sort_unstable();
                base.dedup();
                base
            })
            .collect();
        let agg = GlobalAggregates::compute(&g);
        let ranker = ApproxRank::new(tight());
        let batch = ranker.rank_keyword_multi_aggregated_observed(
            agg, &sub, &bases, approxrank_trace::null(),
        );
        prop_assert_eq!(batch.len(), k);
        for (j, base) in bases.iter().enumerate() {
            let single = ranker.rank_keyword_multi_aggregated_observed(
                agg, &sub, std::slice::from_ref(base), approxrank_trace::null(),
            );
            prop_assert_eq!(single.len(), 1);
            prop_assert_eq!(batch[j].iterations, single[0].iterations, "column {}", j);
            prop_assert_eq!(
                batch[j].lambda_score.unwrap().to_bits(),
                single[0].lambda_score.unwrap().to_bits()
            );
            for (v, (a, b)) in batch[j]
                .local_scores
                .iter()
                .zip(&single[0].local_scores)
                .enumerate()
            {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "column {} node {}: {} vs {}", j, v, a, b);
            }
        }
    }
}
