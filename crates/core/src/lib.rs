//! The ApproxRank paper's contribution: ranking a subgraph without a
//! global PageRank computation.
//!
//! Both algorithms collapse the `N − n` external pages of a global graph
//! into a single external node `Λ` and run a damped random walk on the
//! resulting *extended local graph* of `n + 1` states:
//!
//! * [`IdealRank`] (paper §III) — the exact solution: the `Λ` row of the
//!   collapsed transition matrix weights each external page by its known
//!   PageRank score. Theorem 1: its local scores equal the true global
//!   PageRank scores.
//! * [`ApproxRank`] (paper §IV) — the practical solution: external scores
//!   unknown, `Λ`'s row averages the external pages uniformly. Theorem 2
//!   bounds its distance from IdealRank by `ε/(1−ε)·‖E − E_approx‖₁`.
//!
//! The crate also implements every comparison algorithm of the paper's
//! evaluation: [`baselines::LocalPageRank`] (■), [`baselines::Lpr2`] (●,
//! the ServerRank component), and [`sc::StochasticComplementation`] (◆,
//! Davis & Dhillon KDD'06), plus the error-bound machinery of §IV-C in
//! [`theory`].
//!
//! # Quickstart
//!
//! ```
//! use approxrank_graph::{DiGraph, NodeSet, Subgraph};
//! use approxrank_core::{ApproxRank, SubgraphRanker};
//!
//! // The paper's Figure 4: local pages A,B,C,D (0–3), external X,Y,Z (4–6).
//! let global = DiGraph::from_edges(7, &[
//!     (0, 1), (0, 2), (0, 4), (0, 6), (1, 3), (2, 1), (2, 3), (3, 0),
//!     (4, 2), (4, 5), (4, 6), (5, 2), (5, 6), (6, 2), (6, 3),
//! ]);
//! let local = NodeSet::from_sorted(7, [0, 1, 2, 3]);
//! let subgraph = Subgraph::extract(&global, local);
//! let scores = ApproxRank::default().rank(&global, &subgraph);
//! assert_eq!(scores.local_scores.len(), 4);
//! ```

pub mod approx;
pub mod baselines;
pub mod extended;
pub mod ideal;
pub mod p2p;
mod par;
pub mod precompute;
pub mod ranker;
pub mod sc;
pub mod session;
pub mod theory;
pub mod updating;
pub mod weighted;

pub use approx::ApproxRank;
pub use extended::ExtendedLocalGraph;
pub use ideal::IdealRank;
pub use p2p::JxpNetwork;
pub use precompute::{GlobalAggregates, GlobalPrecomputation};
pub use ranker::{Estimate, RankScores, SubgraphRanker};
pub use sc::StochasticComplementation;
pub use session::SubgraphSession;
pub use updating::IadUpdate;
pub use weighted::WeightedSubgraph;
