//! LPR2: the paper's second baseline (●), a component of ServerRank \[18\].

use approxrank_graph::{DiGraph, NodeId, Subgraph};
use approxrank_pagerank::{pagerank_observed, PageRankOptions};
use approxrank_trace::Observer;

use crate::ranker::{RankScores, SubgraphRanker};

/// LPR2 adds one artificial page `ξ` to the local graph:
///
/// * an edge `i → ξ` if local page `i` has *any* out-of-domain out-link;
/// * an edge `ξ → i` if any out-of-domain page links to `i`;
///
/// then runs standard PageRank on the `n+1`-page graph. Because the edges
/// are unweighted and deduplicated, a page with three external in-links is
/// treated identically to one with a single external in-link — exactly the
/// shortcoming the paper's Figure 5 discussion calls out, and the reason
/// LPR2 collapses on boundary-heavy BFS subgraphs (Figure 7).
#[derive(Clone, Debug, Default)]
pub struct Lpr2 {
    /// Solver settings.
    pub options: PageRankOptions,
}

impl Lpr2 {
    /// Creates the baseline with explicit options.
    pub fn new(options: PageRankOptions) -> Self {
        Lpr2 { options }
    }

    /// Builds the `n+1`-page LPR2 graph (`ξ` is node `n`).
    pub fn build_graph(subgraph: &Subgraph) -> DiGraph {
        let n = subgraph.len();
        let xi = n as NodeId;
        let local = subgraph.local_graph();
        let mut edges: Vec<(NodeId, NodeId)> = local.edges().collect();
        for (i, &out_ext) in subgraph.boundary().out_external.iter().enumerate() {
            if out_ext > 0 {
                edges.push((i as NodeId, xi));
            }
        }
        let mut has_ext_in = vec![false; n];
        for e in &subgraph.boundary().in_edges {
            has_ext_in[e.target_local as usize] = true;
        }
        for (i, &flag) in has_ext_in.iter().enumerate() {
            if flag {
                edges.push((xi, i as NodeId));
            }
        }
        DiGraph::from_edges(n + 1, &edges)
    }
}

impl SubgraphRanker for Lpr2 {
    fn name(&self) -> &'static str {
        "LPR2"
    }

    fn rank(&self, global: &DiGraph, subgraph: &Subgraph) -> RankScores {
        self.rank_observed(global, subgraph, approxrank_trace::null())
    }

    fn rank_observed(
        &self,
        _global: &DiGraph,
        subgraph: &Subgraph,
        obs: &dyn Observer,
    ) -> RankScores {
        let g = {
            let _span = obs.span("boundary_extraction");
            Self::build_graph(subgraph)
        };
        let result = pagerank_observed(&g, &self.options, obs);
        let _span = obs.span("normalize");
        let mut scores = result.scores;
        let xi_score = scores.pop().expect("n+1 pages");
        RankScores {
            local_scores: scores,
            lambda_score: Some(xi_score),
            iterations: result.iterations,
            converged: result.converged,
            estimate: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxrank_graph::NodeSet;

    fn figure4() -> DiGraph {
        DiGraph::from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (0, 4),
                (0, 6),
                (1, 3),
                (2, 1),
                (2, 3),
                (3, 0),
                (4, 2),
                (4, 5),
                (4, 6),
                (5, 2),
                (5, 6),
                (6, 2),
                (6, 3),
            ],
        )
    }

    #[test]
    fn builds_figure5_topology() {
        // Figure 5 of the paper: A gets one edge to ξ (despite two external
        // out-links); ξ gets edges to C and D (despite C having three
        // external in-links).
        let g = figure4();
        let sub = Subgraph::extract(&g, NodeSet::from_sorted(7, [0, 1, 2, 3]));
        let lg = Lpr2::build_graph(&sub);
        let xi = 4;
        assert_eq!(lg.num_nodes(), 5);
        assert!(lg.has_edge(0, xi), "A→ξ");
        assert_eq!(lg.out_degree(0), 3, "A: B, C, ξ — multiplicity lost");
        assert!(lg.has_edge(xi, 2), "ξ→C");
        assert!(lg.has_edge(xi, 3), "ξ→D");
        assert_eq!(lg.out_degree(xi), 2);
        assert!(!lg.has_edge(1, xi), "B has no external out-links");
    }

    #[test]
    fn cannot_distinguish_multiplicity() {
        // Page 1 has three external in-links, page 2 has one; LPR2 sees
        // them identically (modulo the rest of the structure).
        let g = DiGraph::from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (3, 1),
                (4, 1),
                (5, 1),
                (6, 2),
                (1, 0),
                (2, 0),
            ],
        );
        let sub = Subgraph::extract(&g, NodeSet::from_sorted(7, [0, 1, 2]));
        let r = Lpr2::default().rank(&g, &sub);
        assert!(
            (r.local_scores[1] - r.local_scores[2]).abs() < 1e-9,
            "LPR2 is blind to in-link multiplicity: {} vs {}",
            r.local_scores[1],
            r.local_scores[2]
        );
    }

    #[test]
    fn mass_split_with_xi() {
        let g = figure4();
        let sub = Subgraph::extract(&g, NodeSet::from_sorted(7, [0, 1, 2, 3]));
        let r = Lpr2::default().rank(&g, &sub);
        let total = r.local_mass() + r.lambda_score.unwrap();
        assert!((total - 1.0).abs() < 1e-6);
    }
}
