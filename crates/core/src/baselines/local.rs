//! Local PageRank: the paper's first baseline (■).

use approxrank_graph::{DiGraph, Subgraph};
use approxrank_pagerank::{pagerank, pagerank_observed, PageRankOptions};
use approxrank_trace::Observer;

use crate::ranker::{RankScores, SubgraphRanker};

/// Standard PageRank on the induced local graph, with local out-degrees
/// and no representation of the external world. Cheap, and the weakest
/// estimator in every accuracy table of the paper.
#[derive(Clone, Debug, Default)]
pub struct LocalPageRank {
    /// Solver settings.
    pub options: PageRankOptions,
}

impl LocalPageRank {
    /// Creates the baseline with explicit options.
    pub fn new(options: PageRankOptions) -> Self {
        LocalPageRank { options }
    }
}

impl SubgraphRanker for LocalPageRank {
    fn name(&self) -> &'static str {
        "local PageRank"
    }

    fn rank(&self, _global: &DiGraph, subgraph: &Subgraph) -> RankScores {
        let result = pagerank(subgraph.local_graph(), &self.options);
        RankScores {
            local_scores: result.scores,
            lambda_score: None,
            iterations: result.iterations,
            converged: result.converged,
            estimate: None,
        }
    }

    fn rank_observed(
        &self,
        _global: &DiGraph,
        subgraph: &Subgraph,
        obs: &dyn Observer,
    ) -> RankScores {
        let result = pagerank_observed(subgraph.local_graph(), &self.options, obs);
        RankScores {
            local_scores: result.scores,
            lambda_score: None,
            iterations: result.iterations,
            converged: result.converged,
            estimate: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxrank_graph::NodeSet;

    #[test]
    fn ranks_only_local_structure() {
        // Global: 0 <-> 1, and external 2 pointing at 1 heavily.
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 0), (2, 1), (3, 1)]);
        let sub = Subgraph::extract(&g, NodeSet::from_sorted(4, [0, 1]));
        let r = LocalPageRank::default().rank(&g, &sub);
        // Blind to the external endorsements of page 1: symmetric scores.
        assert!((r.local_scores[0] - r.local_scores[1]).abs() < 1e-6);
        assert!((r.local_mass() - 1.0).abs() < 1e-6, "full unit mass");
        assert!(r.lambda_score.is_none());
    }
}
