//! Full ServerRank (Wang & DeWitt, VLDB'04 — the paper's reference \[18\]).
//!
//! The paper's evaluation uses only the LPR2 component as a baseline;
//! for completeness this module implements the whole distributed scheme:
//!
//! 1. each *server* (domain) computes a **local PageRank** over its
//!    intra-server links;
//! 2. a **server graph** is formed — one node per server, edge weights =
//!    number of inter-server hyperlinks — and ranked (*ServerRank*);
//! 3. a page's global score is approximated as
//!    `LPR(page | its server) × ServerRank(server)`.
//!
//! The combination produces a full global score vector from purely local
//! computations plus one tiny server-level solve — the distributed
//! trade-off ApproxRank competes with. The `serverrank` ablation
//! experiment compares it against ApproxRank on DS subgraphs.

use approxrank_graph::{DiGraph, NodeId};
use approxrank_pagerank::authority::{authority_flow, FlowModel};
use approxrank_pagerank::{pagerank, PageRankOptions, WeightedDiGraph};

/// The ServerRank estimator over a server (domain) partition.
#[derive(Clone, Debug, Default)]
pub struct ServerRank {
    /// Solver settings shared by the local and server-level solves.
    pub options: PageRankOptions,
}

/// Output of a full ServerRank run.
#[derive(Clone, Debug)]
pub struct ServerRankResult {
    /// Estimated global score per page (`LPR × SR`), a distribution.
    pub page_scores: Vec<f64>,
    /// Server-level importance scores (a distribution over servers).
    pub server_scores: Vec<f64>,
    /// Power iterations of the most expensive local solve.
    pub max_local_iterations: usize,
}

impl ServerRank {
    /// Creates the estimator with explicit options.
    pub fn new(options: PageRankOptions) -> Self {
        ServerRank { options }
    }

    /// Runs the three-stage scheme. `server_of[page]` assigns each page
    /// its server id; servers must be numbered `0..num_servers`.
    ///
    /// # Panics
    /// Panics if `server_of.len() != graph.num_nodes()` or a server id
    /// is `>= num_servers`.
    pub fn rank(&self, graph: &DiGraph, server_of: &[u32], num_servers: usize) -> ServerRankResult {
        let n = graph.num_nodes();
        assert_eq!(server_of.len(), n, "one server id per page");
        assert!(
            server_of.iter().all(|&s| (s as usize) < num_servers),
            "server id out of range"
        );

        // Stage 1: local PageRank per server over intra-server links.
        // Build each server's member list and local edge set in one pass.
        let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); num_servers];
        let mut local_index = vec![0u32; n];
        for (page, &s) in server_of.iter().enumerate() {
            local_index[page] = members[s as usize].len() as u32;
            members[s as usize].push(page as NodeId);
        }
        let mut local_edges: Vec<Vec<(NodeId, NodeId)>> = vec![Vec::new(); num_servers];
        // Stage 2 inputs: inter-server link counts.
        let mut inter: std::collections::HashMap<(u32, u32), f64> =
            std::collections::HashMap::new();
        for (u, v) in graph.edges() {
            let (su, sv) = (server_of[u as usize], server_of[v as usize]);
            if su == sv {
                local_edges[su as usize].push((local_index[u as usize], local_index[v as usize]));
            } else {
                *inter.entry((su, sv)).or_insert(0.0) += 1.0;
            }
        }
        let mut page_scores = vec![0.0f64; n];
        let mut max_local_iterations = 0;
        for s in 0..num_servers {
            if members[s].is_empty() {
                continue;
            }
            let local = DiGraph::from_edges(members[s].len(), &local_edges[s]);
            let r = pagerank(&local, &self.options);
            max_local_iterations = max_local_iterations.max(r.iterations);
            for (li, &page) in members[s].iter().enumerate() {
                page_scores[page as usize] = r.scores[li];
            }
        }

        // Stage 2: ServerRank on the weighted server graph.
        let server_edges: Vec<(u32, u32, f64)> =
            inter.into_iter().map(|((a, b), w)| (a, b, w)).collect();
        let server_graph = WeightedDiGraph::from_edges(num_servers, &server_edges);
        let p = vec![1.0 / num_servers as f64; num_servers];
        let server_scores =
            authority_flow(&server_graph, &self.options, &p, FlowModel::Stochastic).scores;

        // Stage 3: combine — page score = LPR × ServerRank.
        for (page, score) in page_scores.iter_mut().enumerate() {
            *score *= server_scores[server_of[page] as usize];
        }
        ServerRankResult {
            page_scores,
            server_scores,
            max_local_iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three servers: 0 (pages 0–2), 1 (pages 3–4), 2 (pages 5–6).
    /// Servers 1 and 2 send most of their inter-server links to server 0,
    /// so server 0 must dominate the server graph.
    fn setup() -> (DiGraph, Vec<u32>) {
        let g = DiGraph::from_edges(
            7,
            &[
                // intra-server structure
                (0, 1),
                (1, 2),
                (2, 0),
                (3, 4),
                (4, 3),
                (5, 6),
                (6, 5),
                // inter-server: heavy endorsement of server 0
                (3, 0),
                (4, 0),
                (4, 1),
                (5, 0),
                (6, 1),
                // light cross traffic elsewhere
                (3, 5),
                (0, 3),
            ],
        );
        (g, vec![0, 0, 0, 1, 1, 2, 2])
    }

    #[test]
    fn combined_scores_form_distribution() {
        let (g, part) = setup();
        let r = ServerRank::default().rank(&g, &part, 3);
        let total: f64 = r.page_scores.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "total {total}");
        assert!((r.server_scores.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn endorsed_server_ranks_higher() {
        let (g, part) = setup();
        let r = ServerRank::default().rank(&g, &part, 3);
        // Server 0 receives five inter-server links; the others one each.
        assert!(r.server_scores[0] > r.server_scores[1]);
        assert!(r.server_scores[0] > r.server_scores[2]);
        // And its pages inherit the advantage over the weak server's
        // pages (pages in larger servers are diluted by the local
        // normalization — a known ServerRank artefact, so we compare
        // against server 2, whose local share is the same as server 1's).
        assert!(r.page_scores[0] > r.page_scores[5]);
    }

    #[test]
    fn closer_to_global_pagerank_than_uniform() {
        let (g, part) = setup();
        let truth = pagerank(&g, &PageRankOptions::paper().with_tolerance(1e-12));
        let r = ServerRank::default().rank(&g, &part, 3);
        let l1 =
            |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum() };
        let uniform = vec![1.0 / 7.0; 7];
        assert!(
            l1(&r.page_scores, &truth.scores) < l1(&uniform, &truth.scores),
            "the estimate must carry real signal"
        );
    }

    #[test]
    fn empty_server_tolerated() {
        let g = DiGraph::from_edges(2, &[(0, 1)]);
        let r = ServerRank::default().rank(&g, &[0, 0], 3);
        assert!(r.page_scores.iter().sum::<f64>() > 0.0);
        assert_eq!(r.server_scores.len(), 3);
    }

    #[test]
    #[should_panic(expected = "server id out of range")]
    fn rejects_bad_partition() {
        let g = DiGraph::from_edges(2, &[(0, 1)]);
        ServerRank::default().rank(&g, &[0, 5], 2);
    }
}
