//! The two baseline algorithms of the paper's evaluation.
//!
//! * [`LocalPageRank`] (■) — standard PageRank on the induced subgraph,
//!   ignoring external pages entirely.
//! * [`Lpr2`] (●) — the LPR2 component of ServerRank (Wang & DeWitt,
//!   VLDB'04 \[18\]): a single artificial page `ξ` stands for the outside,
//!   connected by *unweighted single edges*, losing the multiplicity
//!   information ApproxRank preserves (the defect Figures 4–6 illustrate).
//! * [`ServerRank`] — the *full* three-stage distributed scheme of \[18\]
//!   (local PageRank per server × ranked server graph), beyond what the
//!   paper's evaluation includes; used by the `serverrank` ablation.

mod local;
mod lpr2;
mod serverrank;

pub use local::LocalPageRank;
pub use lpr2::Lpr2;
pub use serverrank::{ServerRank, ServerRankResult};
