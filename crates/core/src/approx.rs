//! ApproxRank (paper §IV): the practical solution when external PageRank
//! scores are unknown.
//!
//! `Λ`'s row treats all external pages as equally important (Equation 7):
//! `E_approx = [1/(N−n), …, 1/(N−n)]`. Everything else — the local block,
//! the `to_lambda` column, the personalization vector — is identical to
//! IdealRank, so the error analysis of §IV-C applies verbatim (see
//! [`crate::theory`]).

use approxrank_exec::{Executor, Partition};
use approxrank_graph::{DiGraph, Subgraph};
use approxrank_pagerank::{emit_exec_stats, PageRankOptions};
use approxrank_trace::Observer;

use crate::extended::ExtendedLocalGraph;
use crate::par::boundary_partition;
use crate::precompute::{GlobalAggregates, GlobalPrecomputation};
use crate::ranker::{RankScores, SubgraphRanker};

/// The ApproxRank algorithm.
#[derive(Clone, Debug, Default)]
pub struct ApproxRank {
    /// Solver settings (damping, tolerance, iteration cap).
    pub options: PageRankOptions,
}

impl ApproxRank {
    /// Creates an ApproxRank solver with explicit options.
    pub fn new(options: PageRankOptions) -> Self {
        ApproxRank { options }
    }

    /// Builds `A_approx` for `subgraph`, scanning the global graph's
    /// degree array once for the external dangling-page count. For
    /// multi-subgraph workloads, precompute that count once with
    /// [`GlobalPrecomputation`] and use
    /// [`ApproxRank::extended_graph_precomputed`].
    pub fn extended_graph(&self, global: &DiGraph, subgraph: &Subgraph) -> ExtendedLocalGraph {
        let pre = GlobalPrecomputation::compute(global);
        self.extended_graph_precomputed(&pre, subgraph)
    }

    /// An executor sized from `self.options.threads`, clamped so tiny
    /// subgraphs never pay for idle workers.
    fn executor(&self, subgraph: &Subgraph) -> Executor {
        Executor::new(self.options.threads.min(subgraph.len().max(1)))
    }

    /// Builds `A_approx` using precomputed global aggregates; runs in
    /// `O(n + boundary)` — no pass over the global graph (the
    /// precomputation fast path of §IV-B's last paragraph).
    pub fn extended_graph_precomputed(
        &self,
        pre: &GlobalPrecomputation,
        subgraph: &Subgraph,
    ) -> ExtendedLocalGraph {
        self.extended_graph_precomputed_on(pre, subgraph, &self.executor(subgraph))
    }

    /// [`Self::extended_graph_precomputed`] on a caller-supplied executor:
    /// the dangling census, the Λ-row accumulation over the boundary
    /// in-edges, and the CSR assembly all fan out over the pool. The chunk
    /// grid depends only on the subgraph, so the collapsed matrix is
    /// bit-identical at any thread count.
    pub fn extended_graph_precomputed_on(
        &self,
        pre: &GlobalPrecomputation,
        subgraph: &Subgraph,
        exec: &Executor,
    ) -> ExtendedLocalGraph {
        assert_eq!(
            pre.num_nodes(),
            subgraph.global_nodes(),
            "precomputation is for a different graph"
        );
        self.extended_graph_aggregated_on(GlobalAggregates::from(pre), subgraph, exec)
    }

    /// Builds `A_approx` from just the two global scalars a shard carries
    /// ([`GlobalAggregates`]): the Λ-collapse reads nothing else of the
    /// global graph, so a per-shard subgraph view plus these scalars yields
    /// the same matrix — bit-for-bit — as the full-graph path.
    pub fn extended_graph_aggregated(
        &self,
        agg: GlobalAggregates,
        subgraph: &Subgraph,
    ) -> ExtendedLocalGraph {
        self.extended_graph_aggregated_on(agg, subgraph, &self.executor(subgraph))
    }

    /// [`Self::extended_graph_aggregated`] on a caller-supplied executor.
    pub fn extended_graph_aggregated_on(
        &self,
        agg: GlobalAggregates,
        subgraph: &Subgraph,
        exec: &Executor,
    ) -> ExtendedLocalGraph {
        let n = subgraph.len();
        let big_n = subgraph.global_nodes();
        assert_eq!(agg.num_nodes, big_n, "aggregates are for a different graph");
        if big_n == n {
            return ExtendedLocalGraph::new_on(subgraph, vec![0.0; n], 0.0, exec);
        }
        let num_ext = (big_n - n) as f64;
        let node_part = Partition::uniform(n, Partition::auto_chunks(n));

        // Dangling pages among the external set = global dangling count
        // minus the subgraph's own dangling pages.
        let degs = subgraph.global_out_degrees();
        let local_dangling = exec
            .map_reduce(
                &node_part,
                |_, range| degs[range].iter().filter(|&&d| d == 0).count(),
                |a, b| a + b,
            )
            .unwrap_or(0);
        let ext_dangling = (agg.num_dangling - local_dangling) as f64;

        // Λ → k: uniform-weighted boundary in-flow plus dangling share.
        // Each chunk owns a disjoint target range (see `boundary_partition`),
        // so every `from_lambda` entry is accumulated by exactly one task,
        // in edge order — the same order a serial scan uses.
        let edges = &subgraph.boundary().in_edges;
        let (edge_part, target_part) = boundary_partition(edges, n);
        let mut from_lambda = vec![0.0f64; n];
        let boundary_flow = exec
            .map_chunks(
                &mut from_lambda,
                &target_part,
                |c, trange, slot| {
                    let mut flow = 0.0;
                    for e in &edges[edge_part.range(c)] {
                        let w = 1.0 / e.source_out_degree as f64;
                        slot[e.target_local as usize - trange.start] += w;
                        flow += w;
                    }
                    flow
                },
                |a, b| a + b,
            )
            .unwrap_or(0.0);
        let inv_big_n = 1.0 / big_n as f64;
        let per_local_dangling = ext_dangling * inv_big_n;
        exec.for_each_chunk(&mut from_lambda, &node_part, |_, _, slot| {
            for f in slot {
                *f = (*f + per_local_dangling) / num_ext;
            }
        });
        // Each non-dangling external page's row sums to 1; its local share
        // is counted in boundary_flow, the rest stays external. Dangling
        // external pages send (N−n)/N of their uniform row to Λ.
        let nondangling_ext = num_ext - ext_dangling;
        let lambda_self =
            ((nondangling_ext - boundary_flow) + ext_dangling * num_ext * inv_big_n) / num_ext;
        ExtendedLocalGraph::new_on(subgraph, from_lambda, lambda_self, exec)
    }

    /// Runs ApproxRank, returning local scores plus `Λ`'s score.
    pub fn rank_subgraph(&self, global: &DiGraph, subgraph: &Subgraph) -> RankScores {
        self.rank_subgraph_observed(global, subgraph, approxrank_trace::null())
    }

    /// [`Self::rank_subgraph`] with telemetry: a `collapse_lambda` span
    /// around the `A_approx` assembly, solver events from the power
    /// iteration, and a `normalize` span around the score split.
    pub fn rank_subgraph_observed(
        &self,
        global: &DiGraph,
        subgraph: &Subgraph,
        obs: &dyn Observer,
    ) -> RankScores {
        let exec = self.executor(subgraph);
        let ext = {
            let _span = obs.span("collapse_lambda");
            let pre = GlobalPrecomputation::compute(global);
            self.extended_graph_precomputed_on(&pre, subgraph, &exec)
        };
        let scores = Self::solve_scores(&ext, &self.options, subgraph.len(), obs);
        emit_exec_stats(&exec, obs);
        scores
    }

    /// Runs ApproxRank with precomputed global aggregates.
    pub fn rank_subgraph_precomputed(
        &self,
        pre: &GlobalPrecomputation,
        subgraph: &Subgraph,
    ) -> RankScores {
        self.rank_subgraph_precomputed_observed(pre, subgraph, approxrank_trace::null())
    }

    /// [`Self::rank_subgraph_precomputed`] with telemetry.
    pub fn rank_subgraph_precomputed_observed(
        &self,
        pre: &GlobalPrecomputation,
        subgraph: &Subgraph,
        obs: &dyn Observer,
    ) -> RankScores {
        let exec = self.executor(subgraph);
        let ext = {
            let _span = obs.span("collapse_lambda");
            self.extended_graph_precomputed_on(pre, subgraph, &exec)
        };
        let scores = Self::solve_scores(&ext, &self.options, subgraph.len(), obs);
        emit_exec_stats(&exec, obs);
        scores
    }

    /// Runs ApproxRank from shard-carried global scalars alone.
    pub fn rank_subgraph_aggregated(
        &self,
        agg: GlobalAggregates,
        subgraph: &Subgraph,
    ) -> RankScores {
        self.rank_subgraph_aggregated_observed(agg, subgraph, approxrank_trace::null())
    }

    /// [`Self::rank_subgraph_aggregated`] with telemetry.
    pub fn rank_subgraph_aggregated_observed(
        &self,
        agg: GlobalAggregates,
        subgraph: &Subgraph,
        obs: &dyn Observer,
    ) -> RankScores {
        let exec = self.executor(subgraph);
        let ext = {
            let _span = obs.span("collapse_lambda");
            self.extended_graph_aggregated_on(agg, subgraph, &exec)
        };
        let scores = Self::solve_scores(&ext, &self.options, subgraph.len(), obs);
        emit_exec_stats(&exec, obs);
        scores
    }

    /// Runs a *batch* of (optionally personalized) ApproxRank queries
    /// over one collapsed structure built from shard-carried aggregates.
    /// The Λ-row assembly and every CSR sweep are shared across the
    /// batch, while each answer is bit-identical to the singleton
    /// aggregated path with the same personalization: column `j` with
    /// `None` reproduces [`Self::rank_subgraph_aggregated_observed`],
    /// and a `Some(p)` column reproduces a
    /// [`ExtendedLocalGraph::solve_personalized`] on `p` (the keyword
    /// entry — see
    /// [`ExtendedLocalGraph::collapse_sparse_personalization`]).
    ///
    /// `None` means the paper's default Equation (5) vector. Each
    /// `Some` vector must already be collapsed to length `n + 1`.
    pub fn rank_subgraph_multi_aggregated_observed(
        &self,
        agg: GlobalAggregates,
        subgraph: &Subgraph,
        personalizations: &[Option<Vec<f64>>],
        obs: &dyn Observer,
    ) -> Vec<RankScores> {
        let exec = self.executor(subgraph);
        let ext = {
            let _span = obs.span("collapse_lambda");
            self.extended_graph_aggregated_on(agg, subgraph, &exec)
        };
        let ps: Vec<Vec<f64>> = personalizations
            .iter()
            .map(|p| p.clone().unwrap_or_else(|| ext.personalization()))
            .collect();
        let results = ext.solve_multi(&self.options, &ps, obs);
        emit_exec_stats(&exec, obs);
        let n = subgraph.len();
        results
            .into_iter()
            .map(|result| {
                let mut scores = result.scores;
                let lambda = scores.pop().expect("n+1 states");
                debug_assert_eq!(scores.len(), n);
                RankScores {
                    local_scores: scores,
                    lambda_score: Some(lambda),
                    iterations: result.iterations,
                    converged: result.converged,
                    estimate: None,
                }
            })
            .collect()
    }

    /// A batch of *keyword* queries over one subgraph: each base set
    /// becomes a column whose personalization teleports uniformly into
    /// the base (ObjectRank-style, `1/|B|` per base page; base pages
    /// outside the subgraph contribute their share to `Λ` — see
    /// [`ExtendedLocalGraph::collapse_sparse_personalization`]). One
    /// Λ-collapse and one CSR walk per iteration serve every column,
    /// and each column is bit-identical to a singleton personalized
    /// solve of the same base set.
    ///
    /// Every base set must be strictly sorted, non-empty, and within the
    /// global graph.
    pub fn rank_keyword_multi_aggregated_observed(
        &self,
        agg: GlobalAggregates,
        subgraph: &Subgraph,
        bases: &[Vec<u32>],
        obs: &dyn Observer,
    ) -> Vec<RankScores> {
        let exec = self.executor(subgraph);
        let ext = {
            let _span = obs.span("collapse_lambda");
            self.extended_graph_aggregated_on(agg, subgraph, &exec)
        };
        let ps: Vec<Vec<f64>> = bases
            .iter()
            .map(|base| {
                assert!(!base.is_empty(), "keyword base set must be non-empty");
                ext.collapse_sparse_personalization(subgraph.nodes(), base, 1.0 / base.len() as f64)
            })
            .collect();
        let results = ext.solve_multi(&self.options, &ps, obs);
        emit_exec_stats(&exec, obs);
        let n = subgraph.len();
        results
            .into_iter()
            .map(|result| {
                let mut scores = result.scores;
                let lambda = scores.pop().expect("n+1 states");
                debug_assert_eq!(scores.len(), n);
                RankScores {
                    local_scores: scores,
                    lambda_score: Some(lambda),
                    iterations: result.iterations,
                    converged: result.converged,
                    estimate: None,
                }
            })
            .collect()
    }

    fn solve_scores(
        ext: &ExtendedLocalGraph,
        options: &PageRankOptions,
        n: usize,
        obs: &dyn Observer,
    ) -> RankScores {
        let result = ext.solve_observed(options, obs);
        let _span = obs.span("normalize");
        let mut scores = result.scores;
        let lambda = scores.pop().expect("n+1 states");
        debug_assert_eq!(scores.len(), n);
        RankScores {
            local_scores: scores,
            lambda_score: Some(lambda),
            iterations: result.iterations,
            converged: result.converged,
            estimate: None,
        }
    }
}

impl SubgraphRanker for ApproxRank {
    fn name(&self) -> &'static str {
        "ApproxRank"
    }

    fn rank(&self, global: &DiGraph, subgraph: &Subgraph) -> RankScores {
        self.rank_subgraph(global, subgraph)
    }

    fn rank_observed(
        &self,
        global: &DiGraph,
        subgraph: &Subgraph,
        obs: &dyn Observer,
    ) -> RankScores {
        self.rank_subgraph_observed(global, subgraph, obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxrank_graph::NodeSet;
    use approxrank_pagerank::pagerank;

    fn figure4() -> DiGraph {
        DiGraph::from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (0, 4),
                (0, 6),
                (1, 3),
                (2, 1),
                (2, 3),
                (3, 0),
                (4, 2),
                (4, 5),
                (4, 6),
                (5, 2),
                (5, 6),
                (6, 2),
                (6, 3),
            ],
        )
    }

    fn tight() -> PageRankOptions {
        PageRankOptions::paper().with_tolerance(1e-13)
    }

    #[test]
    fn figure6_matrix_entries() {
        // The worked example of §IV-B, end-to-end through ApproxRank.
        let g = figure4();
        let sub = Subgraph::extract(&g, NodeSet::from_sorted(7, [0, 1, 2, 3]));
        let e = ApproxRank::default().extended_graph(&g, &sub);
        assert!((e.to_lambda()[0] - 0.5).abs() < 1e-12, "(A,Λ) = 1/2");
        assert!(
            (e.from_lambda()[2] - 4.0 / 9.0).abs() < 1e-12,
            "(Λ,C) = 4/9"
        );
        assert!((e.lambda_self() - 7.0 / 18.0).abs() < 1e-12, "(Λ,Λ) = 7/18");
        assert!(e.max_row_sum_error() < 1e-12);
    }

    #[test]
    fn approx_close_to_truth_on_figure4() {
        let g = figure4();
        let truth = pagerank(&g, &tight());
        let sub = Subgraph::extract(&g, NodeSet::from_sorted(7, [0, 1, 2, 3]));
        let approx = ApproxRank::new(tight());
        let r = approx.rank_subgraph(&g, &sub);
        assert!(r.converged);
        let restricted = sub.nodes().restrict(&truth.scores);
        let l1: f64 = r
            .local_scores
            .iter()
            .zip(&restricted)
            .map(|(a, b)| (a - b).abs())
            .sum();
        // Theorem 2 bound with ε=0.85: ‖E−E_approx‖₁·ε/(1−ε) ≥ l1; on this
        // tiny graph the uniform assumption is decent.
        assert!(l1 < 0.2, "L1 {l1}");
        // Ordering is fully preserved on this example.
        let rank = |v: &[f64]| {
            let mut idx: Vec<usize> = (0..v.len()).collect();
            idx.sort_by(|&a, &b| v[b].partial_cmp(&v[a]).unwrap());
            idx
        };
        assert_eq!(rank(&r.local_scores), rank(&restricted));
    }

    #[test]
    fn precomputed_path_identical() {
        let g = figure4();
        let sub = Subgraph::extract(&g, NodeSet::from_sorted(7, [0, 1, 2, 3]));
        let approx = ApproxRank::new(tight());
        let pre = GlobalPrecomputation::compute(&g);
        let a = approx.rank_subgraph(&g, &sub);
        let b = approx.rank_subgraph_precomputed(&pre, &sub);
        assert_eq!(a, b);
    }

    #[test]
    fn aggregated_path_identical() {
        // The shard-serving contract: two global scalars reproduce the
        // full-graph solve bit-for-bit.
        let g = figure4();
        let sub = Subgraph::extract(&g, NodeSet::from_sorted(7, [0, 1, 2, 3]));
        let approx = ApproxRank::new(tight());
        let a = approx.rank_subgraph(&g, &sub);
        let b = approx.rank_subgraph_aggregated(GlobalAggregates::compute(&g), &sub);
        assert_eq!(a, b);
    }

    #[test]
    fn multi_aggregated_batch_matches_singletons_bitwise() {
        // The batch-serving contract: a batched column answers exactly
        // what the singleton aggregated path answers — default and
        // keyword-personalized columns alike.
        let g = figure4();
        let sub = Subgraph::extract(&g, NodeSet::from_sorted(7, [0, 1, 2, 3]));
        let approx = ApproxRank::new(tight());
        let agg = GlobalAggregates::compute(&g);
        let ext = approx.extended_graph_aggregated(agg, &sub);
        // Base set {2, 3, 5}: a keyword query whose base straddles the
        // subgraph boundary.
        let kw = ext.collapse_sparse_personalization(sub.nodes(), &[2, 3, 5], 1.0 / 3.0);
        let batch = approx.rank_subgraph_multi_aggregated_observed(
            agg,
            &sub,
            &[None, Some(kw.clone()), None],
            approxrank_trace::null(),
        );
        assert_eq!(batch.len(), 3);
        let default_single = approx.rank_subgraph_aggregated(agg, &sub);
        assert_eq!(batch[0], default_single);
        assert_eq!(batch[2], default_single);
        let kw_single = ext.solve_personalized(&tight(), &kw);
        for (a, b) in batch[1].local_scores.iter().zip(&kw_single.scores) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(
            batch[1].lambda_score.unwrap().to_bits(),
            kw_single.scores[sub.len()].to_bits()
        );
        assert_eq!(batch[1].iterations, kw_single.iterations);
    }

    #[test]
    #[should_panic(expected = "aggregates are for a different graph")]
    fn aggregated_rejects_wrong_graph_size() {
        let g = figure4();
        let sub = Subgraph::extract(&g, NodeSet::from_sorted(7, [0, 1]));
        let agg = GlobalAggregates {
            num_nodes: 9,
            num_dangling: 0,
        };
        ApproxRank::default().extended_graph_aggregated(agg, &sub);
    }

    #[test]
    fn matrix_stochastic_with_dangling() {
        // Dangling pages both local (2) and external (5).
        let g = DiGraph::from_edges(6, &[(0, 1), (0, 3), (1, 2), (3, 1), (3, 4), (4, 0), (4, 5)]);
        let sub = Subgraph::extract(&g, NodeSet::from_sorted(6, [0, 1, 2]));
        let e = ApproxRank::default().extended_graph(&g, &sub);
        assert!(e.max_row_sum_error() < 1e-12);
        let r = ApproxRank::new(tight()).rank_subgraph(&g, &sub);
        let total = r.local_mass() + r.lambda_score.unwrap();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn thread_count_does_not_change_scores() {
        // A few hundred nodes so the chunk grid actually splits; scores
        // must match bit-for-bit between threads ∈ {1, 2, 7}.
        let n = 360u32;
        let mut edges = Vec::new();
        for i in 0..n {
            if i % 17 == 2 {
                continue; // dangling
            }
            edges.push((i, (i * 13 + 5) % n));
            edges.push((i, (i + 1) % n));
            if i % 3 == 0 {
                edges.push((i, (i % 11) * 7));
            }
        }
        let g = DiGraph::from_edges(n as usize, &edges);
        let sub = Subgraph::extract(&g, NodeSet::from_sorted(n as usize, 40..260u32));
        let reference = ApproxRank::new(tight()).rank_subgraph(&g, &sub);
        for threads in [2usize, 7] {
            let r = ApproxRank::new(tight().with_threads(threads)).rank_subgraph(&g, &sub);
            assert_eq!(reference, r, "threads={threads}");
        }
    }

    #[test]
    fn whole_graph_reduces_to_pagerank() {
        let g = figure4();
        let truth = pagerank(&g, &tight());
        let sub = Subgraph::extract(&g, NodeSet::from_sorted(7, 0..7));
        let r = ApproxRank::new(tight()).rank_subgraph(&g, &sub);
        for k in 0..7 {
            assert!((r.local_scores[k] - truth.scores[k]).abs() < 1e-8);
        }
        assert!(r.lambda_score.unwrap() < 1e-8);
    }
}
