//! The extended local graph: the `Λ`-collapsed transition structure
//! shared by IdealRank and ApproxRank, and its power-iteration solver.
//!
//! States `0..n` are the local pages (in the subgraph's local-id order);
//! state `n` is the external node `Λ`. The transition matrix is
//! `A_x = Q₁ A_eff Q₂` (paper §III-B / §IV-B) where `A_eff` is the
//! *effective* global transition matrix — `1/out_degree` along edges,
//! uniform `1/N` rows for dangling pages — so the collapse is exact even
//! in the presence of dangling pages.
//!
//! The matrix is stored in four pieces instead of a dense `(n+1)²` array:
//!
//! * the `n × n` local block, as in-edge lists with weights
//!   `1/D_source` (**global** out-degree — a local page that also links
//!   outside spreads its probability over all its links);
//! * `to_lambda[i]` — the aggregated probability `i → Λ`;
//! * `from_lambda[k]` — the aggregated probability `Λ → k`;
//! * `lambda_self` — the `Λ → Λ` self-loop;
//!
//! plus the list of locally dangling pages, whose uniform `1/N` rows are
//! applied as a rank-1 correction inside the matvec.

use std::time::Instant;

use approxrank_exec::{Executor, Partition};
use approxrank_graph::Subgraph;
use approxrank_pagerank::{PageRankOptions, PageRankResult};
use approxrank_trace::{IterationEvent, Observer, Stopwatch};

/// The `(n+1)`-state collapsed transition structure. Construct via
/// [`crate::IdealRank`] or [`crate::ApproxRank`], or directly through
/// [`ExtendedLocalGraph::new`] with a custom `Λ` row.
#[derive(Clone, Debug)]
pub struct ExtendedLocalGraph {
    n: usize,
    big_n: usize,
    /// CSR of local in-edges: for target k, sources and weights.
    in_offsets: Vec<usize>,
    in_sources: Vec<u32>,
    in_weights: Vec<f64>,
    to_lambda: Vec<f64>,
    from_lambda: Vec<f64>,
    lambda_self: f64,
    dangling_local: Vec<u32>,
}

impl ExtendedLocalGraph {
    /// Assembles the extended graph from a subgraph and a `Λ` row.
    ///
    /// `from_lambda` must have length `n`; together with `lambda_self` it
    /// must sum to 1 (the `Λ` row of a stochastic matrix). The local block
    /// and `to_lambda` are derived from the subgraph itself.
    ///
    /// # Panics
    /// Panics if the `Λ` row has the wrong length or is not a probability
    /// distribution (within 1e-9), unless the subgraph covers the whole
    /// graph (no external pages), in which case the row must be all zero.
    pub fn new(subgraph: &Subgraph, from_lambda: Vec<f64>, lambda_self: f64) -> Self {
        Self::new_on(subgraph, from_lambda, lambda_self, &Executor::sequential())
    }

    /// [`Self::new`] on a caller-supplied executor: the in-edge CSR fill,
    /// the weight computation, and the `to_lambda`/dangling scan all fan
    /// out over the pool. The chunk grid is a function of the subgraph
    /// only, so the assembled structure is bit-identical at any thread
    /// count (and identical to what [`Self::new`] builds).
    pub fn new_on(
        subgraph: &Subgraph,
        from_lambda: Vec<f64>,
        lambda_self: f64,
        exec: &Executor,
    ) -> Self {
        let n = subgraph.len();
        let big_n = subgraph.global_nodes();
        assert_eq!(from_lambda.len(), n, "Λ row length must be n");
        let row_sum: f64 = from_lambda.iter().sum::<f64>() + lambda_self;
        if big_n > n {
            assert!(
                (row_sum - 1.0).abs() < 1e-9,
                "Λ row must be stochastic, sums to {row_sum}"
            );
        } else {
            assert!(row_sum.abs() < 1e-12, "no external pages: Λ row must be 0");
        }

        let local = subgraph.local_graph();
        // Build in-edge CSR with weights 1/global_out_degree(source).
        let mut in_offsets = vec![0usize; n + 1];
        for k in 0..n as u32 {
            in_offsets[k as usize + 1] = in_offsets[k as usize] + local.in_degree(k);
        }
        let num_edges = in_offsets[n];
        // Degree-aware grid over targets, and the same cuts in edge space:
        // chunk c of `node_part` owns exactly chunk c of `edge_part`.
        let node_part = Partition::by_offsets(&in_offsets, Partition::auto_chunks(n));
        let edge_part =
            Partition::from_bounds(node_part.bounds().iter().map(|&b| in_offsets[b]).collect());

        let mut in_sources = vec![0u32; num_edges];
        exec.for_each_chunk(&mut in_sources, &edge_part, |c, _range, out| {
            let mut pos = 0;
            for k in node_part.range(c) {
                for &s in local.in_neighbors(k as u32) {
                    out[pos] = s;
                    pos += 1;
                }
            }
        });
        let mut in_weights = vec![0.0f64; num_edges];
        exec.for_each_chunk(&mut in_weights, &edge_part, |_, range, out| {
            for (w, &s) in out.iter_mut().zip(&in_sources[range]) {
                let d = subgraph.global_out_degree(s);
                debug_assert!(d > 0, "a page with out-edges cannot be dangling");
                *w = 1.0 / d as f64;
            }
        });

        let mut to_lambda = vec![0.0f64; n];
        let uniform_part = Partition::uniform(n, Partition::auto_chunks(n));
        let dangling_local = exec
            .map_chunks(
                &mut to_lambda,
                &uniform_part,
                |_, range, slot| {
                    let mut dang = Vec::new();
                    for (i, t) in range.zip(slot.iter_mut()) {
                        let d = subgraph.global_out_degree(i as u32);
                        if d == 0 {
                            dang.push(i as u32);
                        } else {
                            *t = subgraph.boundary().out_external[i] as f64 / d as f64;
                        }
                    }
                    dang
                },
                |mut a, mut b| {
                    a.append(&mut b);
                    a
                },
            )
            .unwrap_or_default();

        ExtendedLocalGraph {
            n,
            big_n,
            in_offsets,
            in_sources,
            in_weights,
            to_lambda,
            from_lambda,
            lambda_self,
            dangling_local,
        }
    }

    /// Assembles an extended graph from explicit parts — the entry point
    /// for *weighted* (ObjectRank-style) collapses, where the local block
    /// is not derivable from out-degrees (see [`crate::weighted`]).
    ///
    /// `in_csr` is the local block as in-edge lists: for each local
    /// target `k`, parallel slices of sources and transition weights.
    /// `to_lambda[i]` is the aggregated `i → Λ` probability and
    /// `dangling_local` lists local states whose effective row is the
    /// uniform `1/N` jump.
    ///
    /// # Panics
    /// Panics if any non-dangling local row (local weights + `to_lambda`)
    /// or the `Λ` row fails to sum to 1 within 1e-9.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        big_n: usize,
        in_offsets: Vec<usize>,
        in_sources: Vec<u32>,
        in_weights: Vec<f64>,
        to_lambda: Vec<f64>,
        from_lambda: Vec<f64>,
        lambda_self: f64,
        dangling_local: Vec<u32>,
    ) -> Self {
        let n = to_lambda.len();
        assert_eq!(in_offsets.len(), n + 1, "offsets cover n targets");
        assert_eq!(from_lambda.len(), n, "Λ row length");
        assert_eq!(in_sources.len(), in_weights.len());
        assert_eq!(*in_offsets.last().unwrap(), in_sources.len());
        let g = ExtendedLocalGraph {
            n,
            big_n,
            in_offsets,
            in_sources,
            in_weights,
            to_lambda,
            from_lambda,
            lambda_self,
            dangling_local,
        };
        let err = g.max_row_sum_error();
        assert!(err < 1e-9, "collapsed matrix not stochastic (error {err})");
        g
    }

    /// `n`, the number of local pages.
    pub fn num_local(&self) -> usize {
        self.n
    }

    /// `N`, the number of pages in the global graph.
    pub fn num_global(&self) -> usize {
        self.big_n
    }

    /// The aggregated `i → Λ` probabilities.
    pub fn to_lambda(&self) -> &[f64] {
        &self.to_lambda
    }

    /// The aggregated `Λ → k` probabilities.
    pub fn from_lambda(&self) -> &[f64] {
        &self.from_lambda
    }

    /// The `Λ → Λ` self-loop probability.
    pub fn lambda_self(&self) -> f64 {
        self.lambda_self
    }

    /// The personalization vector of the paper's Equation (5):
    /// `1/N` per local page and `(N−n)/N` for `Λ`.
    pub fn personalization(&self) -> Vec<f64> {
        let mut p = vec![1.0 / self.big_n as f64; self.n + 1];
        p[self.n] = (self.big_n - self.n) as f64 / self.big_n as f64;
        p
    }

    /// One application of `εAᵀx + (1−ε)P_x` into `out`, with the
    /// default personalization of Equation (5).
    ///
    /// `x` and `out` have length `n + 1` (state `n` is `Λ`).
    pub fn step(&self, x: &[f64], out: &mut [f64], damping: f64) {
        let p = self.personalization();
        self.step_with(x, out, damping, &p);
    }

    /// One application of `εAᵀx + (1−ε)p` into `out`, with an explicit
    /// collapsed personalization vector `p` of length `n + 1`
    /// (entry `n` is `Λ`'s share; see [`Self::collapse_personalization`]).
    pub fn step_with(&self, x: &[f64], out: &mut [f64], damping: f64, p: &[f64]) {
        let n = self.n;
        debug_assert_eq!(x.len(), n + 1);
        debug_assert_eq!(out.len(), n + 1);
        debug_assert_eq!(p.len(), n + 1);
        let inv_big_n = 1.0 / self.big_n as f64;
        let ext = (self.big_n - n) as f64;
        let dangling_mass: f64 = self.dangling_local.iter().map(|&i| x[i as usize]).sum();
        let lambda_x = x[n];
        for k in 0..n {
            let mut acc = 0.0;
            for idx in self.in_offsets[k]..self.in_offsets[k + 1] {
                acc += x[self.in_sources[idx] as usize] * self.in_weights[idx];
            }
            acc += dangling_mass * inv_big_n;
            acc += lambda_x * self.from_lambda[k];
            out[k] = damping * acc + (1.0 - damping) * p[k];
        }
        let mut lacc = lambda_x * self.lambda_self;
        for (xi, t) in x[..n].iter().zip(&self.to_lambda) {
            lacc += xi * t;
        }
        lacc += dangling_mass * ext * inv_big_n;
        out[n] = damping * lacc + (1.0 - damping) * p[n];
    }

    /// Collapses a *global* personalization vector (length `N`, indexed
    /// by global id) into the `n + 1` extended states: `P_x = Q₂ᵀP` —
    /// local pages keep their entries, `Λ` takes the external sum. The
    /// Theorem-1 argument goes through for any `P`, so IdealRank is exact
    /// for topic-sensitive PageRank too.
    pub fn collapse_personalization(
        &self,
        nodes: &approxrank_graph::NodeSet,
        global_p: &[f64],
    ) -> Vec<f64> {
        assert_eq!(global_p.len(), self.big_n, "P must cover all N pages");
        assert_eq!(nodes.len(), self.n, "node set must match the subgraph");
        let mut p = Vec::with_capacity(self.n + 1);
        let mut local_sum = 0.0;
        for &g in nodes.members() {
            let v = global_p[g as usize];
            local_sum += v;
            p.push(v);
        }
        let total: f64 = global_p.iter().sum();
        p.push(total - local_sum);
        p
    }

    /// Collapses a *sparse* global personalization — `weight` on each id
    /// in `base` (sorted global ids), zero elsewhere — into the `n + 1`
    /// extended states without materializing a length-`N` vector. Local
    /// members of the base set keep `weight`; `Λ` takes the external
    /// share (`weight` × the number of base ids outside the subgraph).
    /// Numerically this matches [`Self::collapse_personalization`] on
    /// the dense expansion (`weight` at each base id, `0.0` elsewhere);
    /// the `Λ` entry is computed directly as a product rather than by
    /// dense summation, so it is the *sharper* of the two.
    ///
    /// This is the keyword-query entry: ObjectRank teleports uniformly
    /// into a base set `B`, so `weight = 1/|B|`.
    ///
    /// # Panics
    /// Panics if `base` is not strictly sorted or contains ids outside
    /// the global graph.
    pub fn collapse_sparse_personalization(
        &self,
        nodes: &approxrank_graph::NodeSet,
        base: &[u32],
        weight: f64,
    ) -> Vec<f64> {
        assert_eq!(nodes.len(), self.n, "node set must match the subgraph");
        let members = nodes.members();
        let mut p = vec![0.0f64; self.n + 1];
        let mut i = 0usize;
        let mut external = 0usize;
        let mut prev: Option<u32> = None;
        for &b in base {
            assert!(
                prev.is_none_or(|pv| pv < b),
                "base set must be strictly sorted"
            );
            prev = Some(b);
            assert!((b as usize) < self.big_n, "base id {b} out of range");
            while i < members.len() && members[i] < b {
                i += 1;
            }
            if i < members.len() && members[i] == b {
                p[i] = weight;
            } else {
                external += 1;
            }
        }
        p[self.n] = external as f64 * weight;
        p
    }

    /// Verifies column-stochasticity of `A_xᵀ` (row-stochasticity of the
    /// collapsed matrix): every state's outgoing probability sums to 1.
    /// Used by tests and debug assertions; `O(n + local edges)`.
    pub fn max_row_sum_error(&self) -> f64 {
        let n = self.n;
        let mut row_sums = vec![0.0f64; n + 1];
        // Local block contributions (source-indexed).
        for k in 0..n {
            for idx in self.in_offsets[k]..self.in_offsets[k + 1] {
                row_sums[self.in_sources[idx] as usize] += self.in_weights[idx];
            }
        }
        for (r, t) in row_sums[..n].iter_mut().zip(&self.to_lambda) {
            *r += t;
        }
        // Dangling local rows are uniform by construction: exact.
        for &i in &self.dangling_local {
            row_sums[i as usize] = 1.0;
        }
        row_sums[n] = self.from_lambda.iter().sum::<f64>() + self.lambda_self;
        if self.big_n == n {
            // Degenerate: no external pages; Λ is unreachable and empty.
            row_sums[n] = 1.0;
        }
        row_sums.iter().map(|s| (s - 1.0).abs()).fold(0.0, f64::max)
    }

    /// Power iteration to the fixed point of
    /// `R = εA_xᵀR + (1−ε)P_ideal`, starting from `P_ideal`.
    ///
    /// Returns scores of length `n + 1`; entry `n` is `Λ`'s score.
    pub fn solve(&self, options: &PageRankOptions) -> PageRankResult {
        self.solve_observed(options, approxrank_trace::null())
    }

    /// [`Self::solve`] with telemetry: per-iteration events under solver
    /// name `"extended"` flow to `obs`.
    pub fn solve_observed(&self, options: &PageRankOptions, obs: &dyn Observer) -> PageRankResult {
        self.solve_from_with(
            options,
            &self.personalization(),
            &self.personalization(),
            obs,
        )
    }

    /// Power iteration from an explicit start vector of length `n + 1`.
    pub fn solve_from(&self, options: &PageRankOptions, start: &[f64]) -> PageRankResult {
        self.solve_from_with(
            options,
            start,
            &self.personalization(),
            approxrank_trace::null(),
        )
    }

    /// Power iteration with an explicit collapsed personalization vector
    /// (see [`Self::collapse_personalization`]).
    pub fn solve_personalized(
        &self,
        options: &PageRankOptions,
        personalization: &[f64],
    ) -> PageRankResult {
        self.solve_personalized_observed(options, personalization, approxrank_trace::null())
    }

    /// [`Self::solve_personalized`] with telemetry.
    pub fn solve_personalized_observed(
        &self,
        options: &PageRankOptions,
        personalization: &[f64],
        obs: &dyn Observer,
    ) -> PageRankResult {
        self.solve_from_with(options, personalization, personalization, obs)
    }

    /// Power iteration that stops as soon as the *identity* of the top-`k`
    /// local pages has been stable for `stable_rounds` consecutive
    /// iterations (or full convergence, whichever comes first).
    ///
    /// The paper's §V-C observes that Top-K query answering needs ordering
    /// accuracy, not score accuracy — and the top of the ranking settles
    /// far earlier than the L1 residual. Returns the result plus the
    /// stabilized top-`k` local ids (descending score).
    ///
    /// # Panics
    /// Panics if `k == 0` or `stable_rounds == 0`.
    pub fn solve_topk(
        &self,
        options: &PageRankOptions,
        k: usize,
        stable_rounds: usize,
    ) -> (PageRankResult, Vec<u32>) {
        assert!(k > 0, "k must be positive");
        assert!(stable_rounds > 0, "stable_rounds must be positive");
        let t0 = Instant::now();
        let n = self.n;
        let k = k.min(n);
        let p = self.personalization();
        let mut x = p.clone();
        let mut next = vec![0.0f64; n + 1];
        let mut iterations = 0;
        let mut converged = false;
        let mut prev_top: Vec<u32> = Vec::new();
        let mut stable = 0usize;
        let top_of = |scores: &[f64]| -> Vec<u32> {
            let mut idx: Vec<u32> = (0..n as u32).collect();
            idx.sort_by(|&a, &b| {
                scores[b as usize]
                    .partial_cmp(&scores[a as usize])
                    .expect("no NaN scores")
                    .then(a.cmp(&b))
            });
            idx.truncate(k);
            idx
        };
        while iterations < options.max_iterations {
            iterations += 1;
            self.step_with(&x, &mut next, options.damping, &p);
            let delta: f64 = next.iter().zip(&x).map(|(a, b)| (a - b).abs()).sum();
            std::mem::swap(&mut x, &mut next);
            let top = top_of(&x[..n]);
            if top == prev_top {
                stable += 1;
            } else {
                stable = 1;
                prev_top = top;
            }
            if delta < options.tolerance {
                converged = true;
                break;
            }
            if stable >= stable_rounds {
                break;
            }
        }
        (
            PageRankResult {
                scores: x,
                iterations,
                converged,
                residuals: Vec::new(),
                elapsed: t0.elapsed(),
            },
            prev_top,
        )
    }

    /// One application of `εA_xᵀ + (1−ε)p_j` to every active column of an
    /// interleaved multi-vector (`x[s * k + j]` is column `j`'s entry for
    /// state `s`; states run `0..=n`, state `n` is `Λ`). One walk of the
    /// local in-edge CSR feeds all columns — the batching amortization —
    /// while each column's floating-point sequence is exactly what
    /// [`Self::step_with`] would produce for it alone.
    fn step_multi(
        &self,
        x: &[f64],
        out: &mut [f64],
        damping: f64,
        ps: &[Vec<f64>],
        cols: &[usize],
        dangling_mass: &mut [f64],
    ) {
        let n = self.n;
        let k = ps.len();
        debug_assert_eq!(x.len(), (n + 1) * k);
        debug_assert_eq!(out.len(), (n + 1) * k);
        let inv_big_n = 1.0 / self.big_n as f64;
        let ext = (self.big_n - n) as f64;
        for &j in cols {
            dangling_mass[j] = self
                .dangling_local
                .iter()
                .map(|&i| x[i as usize * k + j])
                .sum();
        }
        let lambda_base = n * k;
        let mut acc = vec![0.0f64; k];
        #[allow(clippy::needless_range_loop)] // t walks four arrays at once
        for t in 0..n {
            for &j in cols {
                acc[j] = 0.0;
            }
            for idx in self.in_offsets[t]..self.in_offsets[t + 1] {
                let sb = self.in_sources[idx] as usize * k;
                let w = self.in_weights[idx];
                for &j in cols {
                    acc[j] += x[sb + j] * w;
                }
            }
            let tb = t * k;
            for &j in cols {
                let mut a = acc[j];
                a += dangling_mass[j] * inv_big_n;
                a += x[lambda_base + j] * self.from_lambda[t];
                out[tb + j] = damping * a + (1.0 - damping) * ps[j][t];
            }
        }
        for &j in cols {
            let mut lacc = x[lambda_base + j] * self.lambda_self;
            for (t, tl) in self.to_lambda.iter().enumerate() {
                lacc += x[t * k + j] * tl;
            }
            lacc += dangling_mass[j] * ext * inv_big_n;
            out[lambda_base + j] = damping * lacc + (1.0 - damping) * ps[j][n];
        }
    }

    /// Solves k personalized systems over *one* collapsed structure: each
    /// column `j` is the fixed point of `R = εA_xᵀR + (1−ε)p_j`, started
    /// from `p_j` — exactly what k calls of [`Self::solve_personalized`]
    /// compute, bit for bit, but sharing the Λ-row construction and one
    /// CSR walk per iteration across the batch. Columns converge
    /// independently: a finished column's scores are captured and it
    /// drops out of later sweeps.
    ///
    /// Every `personalizations[j]` is a collapsed vector of length
    /// `n + 1` (see [`Self::collapse_personalization`]).
    pub fn solve_multi(
        &self,
        options: &PageRankOptions,
        personalizations: &[Vec<f64>],
        obs: &dyn Observer,
    ) -> Vec<PageRankResult> {
        let n = self.n;
        let k = personalizations.len();
        for (j, p) in personalizations.iter().enumerate() {
            assert_eq!(p.len(), n + 1, "personalization {j} length");
        }
        let t0 = Instant::now();
        if k == 0 {
            return Vec::new();
        }
        let _span = obs.span("extended_multi");
        obs.counter("multi_columns", k as u64);
        let mut sweep = Stopwatch::start(obs);
        // Interleaved layout, column j of state s at [s * k + j].
        let mut x = vec![0.0f64; (n + 1) * k];
        for (j, p) in personalizations.iter().enumerate() {
            for (s, &v) in p.iter().enumerate() {
                x[s * k + j] = v;
            }
        }
        let mut next = vec![0.0f64; (n + 1) * k];
        let mut dangling = vec![0.0f64; k];
        let mut active: Vec<usize> = (0..k).collect();
        let mut residuals: Vec<Vec<f64>> = vec![Vec::new(); k];
        let mut finished: Vec<Option<PageRankResult>> = (0..k).map(|_| None).collect();
        let mut iterations = 0;
        let column_of =
            |flat: &[f64], j: usize| -> Vec<f64> { (0..=n).map(|s| flat[s * k + j]).collect() };
        while iterations < options.max_iterations && !active.is_empty() {
            iterations += 1;
            self.step_multi(
                &x,
                &mut next,
                options.damping,
                personalizations,
                &active,
                &mut dangling,
            );
            // Per-column L1 residual, summed in state order — the same
            // order `solve_from_with` sums its scalar residual.
            let mut delta = vec![0.0f64; k];
            for s in 0..=n {
                let base = s * k;
                for &j in &active {
                    delta[j] += (next[base + j] - x[base + j]).abs();
                }
            }
            std::mem::swap(&mut x, &mut next);
            if obs.enabled() {
                let worst = active.iter().map(|&j| delta[j]).fold(0.0f64, f64::max);
                obs.iteration(IterationEvent {
                    solver: "extended_multi",
                    iteration: iterations - 1,
                    residual: worst,
                    dangling_mass: active.iter().map(|&j| dangling[j]).sum(),
                    elapsed_ns: sweep.lap_ns(),
                });
            }
            let mut still = Vec::with_capacity(active.len());
            for &j in &active {
                if options.record_residuals {
                    residuals[j].push(delta[j]);
                }
                if delta[j] < options.tolerance {
                    // Capture now: a later swap would clobber this lane.
                    finished[j] = Some(PageRankResult {
                        scores: column_of(&x, j),
                        iterations,
                        converged: true,
                        residuals: std::mem::take(&mut residuals[j]),
                        elapsed: t0.elapsed(),
                    });
                } else {
                    still.push(j);
                }
            }
            active = still;
        }
        for &j in &active {
            finished[j] = Some(PageRankResult {
                scores: column_of(&x, j),
                iterations,
                converged: false,
                residuals: std::mem::take(&mut residuals[j]),
                elapsed: t0.elapsed(),
            });
        }
        finished
            .into_iter()
            .map(|r| r.expect("every column finished"))
            .collect()
    }

    fn solve_from_with(
        &self,
        options: &PageRankOptions,
        start: &[f64],
        personalization: &[f64],
        obs: &dyn Observer,
    ) -> PageRankResult {
        assert_eq!(start.len(), self.n + 1, "start vector length");
        assert_eq!(personalization.len(), self.n + 1, "personalization length");
        let t0 = Instant::now();
        let _span = obs.span("extended");
        let mut sweep = Stopwatch::start(obs);
        let mut x = start.to_vec();
        let mut next = vec![0.0f64; self.n + 1];
        let mut iterations = 0;
        let mut converged = false;
        let mut residuals = Vec::new();
        while iterations < options.max_iterations {
            iterations += 1;
            self.step_with(&x, &mut next, options.damping, personalization);
            let delta: f64 = next.iter().zip(&x).map(|(a, b)| (a - b).abs()).sum();
            std::mem::swap(&mut x, &mut next);
            if obs.enabled() {
                // `step_with` folds the dangling correction into the matvec;
                // recompute the mass it used (from the pre-step vector, which
                // sits in `next` after the swap) only when someone listens.
                let dangling_mass: f64 =
                    self.dangling_local.iter().map(|&i| next[i as usize]).sum();
                obs.iteration(IterationEvent {
                    solver: "extended",
                    iteration: iterations - 1,
                    residual: delta,
                    dangling_mass,
                    elapsed_ns: sweep.lap_ns(),
                });
            }
            if options.record_residuals {
                residuals.push(delta);
            }
            if delta < options.tolerance {
                converged = true;
                break;
            }
        }
        PageRankResult {
            scores: x,
            iterations,
            converged,
            residuals,
            elapsed: t0.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxrank_graph::{DiGraph, NodeSet, Subgraph};

    /// Paper Figure 4. Local A,B,C,D = 0..3; external X,Y,Z = 4..6.
    fn figure4() -> (DiGraph, Subgraph) {
        let g = DiGraph::from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (0, 4),
                (0, 6),
                (1, 3),
                (2, 1),
                (2, 3),
                (3, 0),
                (4, 2),
                (4, 5),
                (4, 6),
                (5, 2),
                (5, 6),
                (6, 2),
                (6, 3),
            ],
        );
        let s = Subgraph::extract(&g, NodeSet::from_sorted(7, [0, 1, 2, 3]));
        (g, s)
    }

    fn uniform_lambda_row(sub: &Subgraph) -> (Vec<f64>, f64) {
        // ApproxRank-style row for this test fixture (no dangling pages):
        // from_lambda[k] = Σ_ext A[j,k] / (N−n).
        let ext = (sub.global_nodes() - sub.len()) as f64;
        let mut row = vec![0.0; sub.len()];
        for e in &sub.boundary().in_edges {
            row[e.target_local as usize] += 1.0 / e.source_out_degree as f64 / ext;
        }
        let lambda_self = 1.0 - row.iter().sum::<f64>();
        (row, lambda_self)
    }

    #[test]
    fn figure6_probabilities() {
        // The paper's worked example (§IV-B): edge (A,Λ) = 1/2,
        // (Λ,C) = 4/9, Λ self-loop = 7/18.
        let (_, sub) = figure4();
        let (row, lambda_self) = uniform_lambda_row(&sub);
        let e = ExtendedLocalGraph::new(&sub, row, lambda_self);
        // A is local id 0; C is local id 2.
        assert!((e.to_lambda()[0] - 0.5).abs() < 1e-12, "A→Λ");
        assert!((e.from_lambda()[2] - 4.0 / 9.0).abs() < 1e-12, "Λ→C");
        assert!((e.lambda_self() - 7.0 / 18.0).abs() < 1e-12, "Λ→Λ");
        // Λ→D: only Z→D, Z has outdegree 2 → (1/2)/3 = 1/6.
        assert!((e.from_lambda()[3] - 1.0 / 6.0).abs() < 1e-12, "Λ→D");
        // Λ→A, Λ→B: no external in-links.
        assert_eq!(e.from_lambda()[0], 0.0);
        assert_eq!(e.from_lambda()[1], 0.0);
    }

    #[test]
    fn rows_are_stochastic() {
        let (_, sub) = figure4();
        let (row, lambda_self) = uniform_lambda_row(&sub);
        let e = ExtendedLocalGraph::new(&sub, row, lambda_self);
        assert!(e.max_row_sum_error() < 1e-12);
    }

    #[test]
    fn personalization_matches_equation5() {
        let (_, sub) = figure4();
        let (row, lambda_self) = uniform_lambda_row(&sub);
        let e = ExtendedLocalGraph::new(&sub, row, lambda_self);
        let p = e.personalization();
        assert_eq!(p.len(), 5);
        assert!((p[0] - 1.0 / 7.0).abs() < 1e-15);
        assert!((p[4] - 3.0 / 7.0).abs() < 1e-15);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_conserves_mass() {
        let (_, sub) = figure4();
        let (row, lambda_self) = uniform_lambda_row(&sub);
        let e = ExtendedLocalGraph::new(&sub, row, lambda_self);
        let r = e.solve(&PageRankOptions::paper().with_tolerance(1e-12));
        assert!(r.converged);
        assert!((r.scores.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // All scores strictly positive (teleport guarantees it).
        assert!(r.scores.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn dangling_local_pages_handled() {
        // 0 -> Λ-side page 2 only; 1 is locally dangling; external 2 -> 1.
        let g = DiGraph::from_edges(3, &[(0, 2), (2, 1)]);
        let sub = Subgraph::extract(&g, NodeSet::from_sorted(3, [0, 1]));
        // External page 2 links to local 1 with outdegree 1:
        // from_lambda = [0, 1/1]/1 = [0, 1], lambda_self = 0.
        let e = ExtendedLocalGraph::new(&sub, vec![0.0, 1.0], 0.0);
        assert!(e.max_row_sum_error() < 1e-12);
        let r = e.solve(&PageRankOptions::paper().with_tolerance(1e-12));
        assert!((r.scores.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "stochastic")]
    fn rejects_non_stochastic_lambda_row() {
        let (_, sub) = figure4();
        ExtendedLocalGraph::new(&sub, vec![0.1, 0.1, 0.1, 0.1], 0.1);
    }

    #[test]
    fn new_on_pool_builds_identical_structure() {
        // Large enough for several chunks; compare every exposed piece
        // bit-for-bit between the sequential and pooled constructions.
        let n_total = 400u32;
        let mut edges = Vec::new();
        for i in 0..n_total {
            if i % 13 == 5 {
                continue; // dangling
            }
            edges.push((i, (i + 1) % n_total));
            edges.push((i, (i * 31 + 7) % n_total));
            if i % 5 == 0 {
                edges.push((i, (i / 2) % n_total));
            }
        }
        let g = DiGraph::from_edges(n_total as usize, &edges);
        let sub = Subgraph::extract(&g, NodeSet::from_sorted(n_total as usize, 0..250u32));
        let approx = crate::ApproxRank::default();
        let reference = approx.extended_graph(&g, &sub);
        for threads in [2usize, 7] {
            let exec = approxrank_exec::Executor::new(threads);
            let pooled = ExtendedLocalGraph::new_on(
                &sub,
                reference.from_lambda().to_vec(),
                reference.lambda_self(),
                &exec,
            );
            assert!(reference
                .to_lambda()
                .iter()
                .zip(pooled.to_lambda())
                .all(|(a, b)| a.to_bits() == b.to_bits()));
            assert_eq!(reference.max_row_sum_error(), pooled.max_row_sum_error());
            let opts = PageRankOptions::paper().with_tolerance(1e-10);
            let a = reference.solve(&opts);
            let b = pooled.solve(&opts);
            assert_eq!(a.iterations, b.iterations);
            assert!(
                a.scores
                    .iter()
                    .zip(&b.scores)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn solve_multi_bitwise_matches_sequential_singletons() {
        // k personalized solves batched through one structure must be,
        // column by column, the exact bits k singleton solves produce —
        // including iteration counts (columns drop out independently).
        let n_total = 300u32;
        let mut edges = Vec::new();
        for i in 0..n_total {
            if i % 11 == 4 {
                continue; // dangling
            }
            edges.push((i, (i + 1) % n_total));
            edges.push((i, (i * 29 + 5) % n_total));
        }
        let g = DiGraph::from_edges(n_total as usize, &edges);
        let sub = Subgraph::extract(&g, NodeSet::from_sorted(n_total as usize, 0..180u32));
        let ext = crate::ApproxRank::default().extended_graph(&g, &sub);
        let n = ext.num_local();
        let opts = PageRankOptions::paper().with_tolerance(1e-10);
        // Column 0: the default Eq. 5 vector; others: skewed teleports.
        let mut ps = vec![ext.personalization()];
        for j in 1..4usize {
            let mut p = vec![0.3 / (n + 1) as f64; n + 1];
            p[(j * 37) % n] += 0.4;
            let rest: f64 = p[..n].iter().sum();
            p[n] = 1.0 - rest;
            ps.push(p);
        }
        let batch = ext.solve_multi(&opts, &ps, approxrank_trace::null());
        assert_eq!(batch.len(), ps.len());
        let mut iteration_counts = std::collections::BTreeSet::new();
        for (j, p) in ps.iter().enumerate() {
            let single = ext.solve_personalized(&opts, p);
            assert_eq!(single.iterations, batch[j].iterations, "column {j}");
            assert_eq!(single.converged, batch[j].converged);
            iteration_counts.insert(single.iterations);
            for (a, b) in single.scores.iter().zip(&batch[j].scores) {
                assert_eq!(a.to_bits(), b.to_bits(), "column {j}");
            }
        }
        assert!(
            iteration_counts.len() > 1,
            "fixture should exercise independent drop-out, got {iteration_counts:?}"
        );
    }

    #[test]
    fn sparse_collapse_matches_dense_expansion() {
        let (g, sub) = figure4();
        let (row, lambda_self) = uniform_lambda_row(&sub);
        let e = ExtendedLocalGraph::new(&sub, row, lambda_self);
        // Base set {1, 2, 5}: 1 and 2 are local, 5 is external.
        let base = [1u32, 2, 5];
        let w = 1.0 / base.len() as f64;
        let sparse = e.collapse_sparse_personalization(sub.nodes(), &base, w);
        let mut dense = vec![0.0; g.num_nodes()];
        for &b in &base {
            dense[b as usize] = w;
        }
        let collapsed = e.collapse_personalization(sub.nodes(), &dense);
        assert_eq!(sparse.len(), collapsed.len());
        // Local entries are bit-equal; the Λ entry may differ in the last
        // ulp because the dense path derives it by summation.
        for (a, b) in sparse[..sub.len()].iter().zip(&collapsed) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!((sparse[sub.len()] - collapsed[sub.len()]).abs() < 1e-15);
        // And the solves agree to solver precision.
        let opts = PageRankOptions::paper().with_tolerance(1e-12);
        let ra = e.solve_personalized(&opts, &sparse);
        let rb = e.solve_personalized(&opts, &collapsed);
        for (x, y) in ra.scores.iter().zip(&rb.scores) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "strictly sorted")]
    fn sparse_collapse_rejects_unsorted_base() {
        let (_, sub) = figure4();
        let (row, lambda_self) = uniform_lambda_row(&sub);
        let e = ExtendedLocalGraph::new(&sub, row, lambda_self);
        e.collapse_sparse_personalization(sub.nodes(), &[2, 1], 0.5);
    }

    #[test]
    fn whole_graph_subgraph_degenerate() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let sub = Subgraph::extract(&g, NodeSet::from_sorted(3, 0..3));
        let e = ExtendedLocalGraph::new(&sub, vec![0.0; 3], 0.0);
        let r = e.solve(&PageRankOptions::paper().with_tolerance(1e-12));
        // Λ gets no teleport and no in-flow: its score decays to zero and
        // the locals recover plain PageRank (uniform on the cycle).
        assert!(r.scores[3] < 1e-6);
        for k in 0..3 {
            assert!((r.scores[k] - 1.0 / 3.0).abs() < 1e-6);
        }
    }
}

#[cfg(test)]
mod topk_tests {
    use super::*;
    use approxrank_graph::{DiGraph, NodeSet, Subgraph};

    /// A larger subgraph where full convergence takes many iterations but
    /// the top of the ranking settles quickly.
    fn big_fixture() -> ExtendedLocalGraph {
        let n_total = 500u32;
        let mut edges = Vec::new();
        for i in 0..n_total {
            edges.push((i, (i + 1) % n_total));
            edges.push((i, (i * 17 + 3) % n_total));
            // Concentrate endorsements on a few celebrities.
            if i % 3 == 0 {
                edges.push((i, (i % 7) * 2));
            }
        }
        let g = DiGraph::from_edges(n_total as usize, &edges);
        let sub = Subgraph::extract(&g, NodeSet::from_sorted(n_total as usize, 0..300u32));
        crate::ApproxRank::default().extended_graph(&g, &sub)
    }

    #[test]
    fn topk_matches_converged_ranking() {
        let ext = big_fixture();
        let opts = PageRankOptions::paper().with_tolerance(1e-12);
        let full = ext.solve(&opts);
        let mut full_top: Vec<u32> = (0..ext.num_local() as u32).collect();
        full_top.sort_by(|&a, &b| {
            full.scores[b as usize]
                .partial_cmp(&full.scores[a as usize])
                .unwrap()
                .then(a.cmp(&b))
        });
        full_top.truncate(10);
        let (result, top) = ext.solve_topk(&opts, 10, 5);
        assert_eq!(top, full_top, "early-terminated top-10 must match");
        assert!(
            result.iterations <= full.iterations,
            "early stop {} vs full {}",
            result.iterations,
            full.iterations
        );
    }

    #[test]
    fn topk_early_stop_saves_iterations() {
        let ext = big_fixture();
        let opts = PageRankOptions::paper().with_tolerance(1e-13);
        let full = ext.solve(&opts);
        let (result, _) = ext.solve_topk(&opts, 5, 3);
        assert!(
            result.iterations < full.iterations,
            "early stop {} vs full {}",
            result.iterations,
            full.iterations
        );
    }

    #[test]
    fn topk_clamps_k() {
        let ext = big_fixture();
        let (_, top) = ext.solve_topk(&PageRankOptions::paper(), 10_000, 2);
        assert_eq!(top.len(), ext.num_local());
    }
}
