//! Chunk-grid helpers shared by the parallel collapse paths.

use approxrank_exec::Partition;
use approxrank_graph::BoundaryInEdge;

/// Builds a pair of aligned partitions over a boundary in-edge list and
/// the `from_lambda` entries it scatters into.
///
/// `Subgraph::extract` emits `in_edges` sorted by `target_local`, so the
/// edge list can be cut at (approximately) even positions, with each cut
/// bumped forward until it lands on a target boundary. Chunk `c` of the
/// returned edge partition then touches exactly the `from_lambda` range
/// given by chunk `c` of the returned target partition — disjoint writes,
/// and per-target accumulation order identical to a serial scan.
pub(crate) fn boundary_partition(edges: &[BoundaryInEdge], n: usize) -> (Partition, Partition) {
    let m = edges.len();
    let chunks = Partition::auto_chunks(m);
    let mut edge_bounds = Vec::with_capacity(chunks + 1);
    let mut target_bounds = Vec::with_capacity(chunks + 1);
    edge_bounds.push(0);
    target_bounds.push(0);
    for c in 1..chunks {
        let mut cut = m * c / chunks;
        while cut > 0 && cut < m && edges[cut].target_local == edges[cut - 1].target_local {
            cut += 1;
        }
        if cut >= m || cut <= *edge_bounds.last().unwrap() {
            continue;
        }
        edge_bounds.push(cut);
        target_bounds.push(edges[cut].target_local as usize);
    }
    edge_bounds.push(m);
    target_bounds.push(n);
    (
        Partition::from_bounds(edge_bounds),
        Partition::from_bounds(target_bounds),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(target: u32) -> BoundaryInEdge {
        BoundaryInEdge {
            source: 1000 + target,
            source_out_degree: 2,
            target_local: target,
        }
    }

    #[test]
    fn cuts_never_split_a_target() {
        // 90 targets with a heavy run of 400 edges on target 40.
        let mut edges = Vec::new();
        for t in 0..90u32 {
            let count = if t == 40 { 400 } else { 3 };
            for _ in 0..count {
                edges.push(edge(t));
            }
        }
        let (edge_part, target_part) = boundary_partition(&edges, 90);
        assert_eq!(edge_part.len(), target_part.len());
        assert_eq!(edge_part.total(), edges.len());
        assert_eq!(target_part.total(), 90);
        for c in 0..edge_part.len() {
            let er = edge_part.range(c);
            let tr = target_part.range(c);
            for e in &edges[er] {
                assert!(
                    tr.contains(&(e.target_local as usize)),
                    "edge target {} outside chunk targets {tr:?}",
                    e.target_local
                );
            }
        }
    }

    #[test]
    fn empty_boundary_yields_one_full_target_chunk() {
        let (edge_part, target_part) = boundary_partition(&[], 17);
        assert_eq!(edge_part.len(), 1);
        assert_eq!(edge_part.total(), 0);
        assert_eq!(target_part.range(0), 0..17);
    }
}
