//! Incremental re-ranking sessions for evolving subgraphs.
//!
//! The paper's motivating applications keep *changing* their subgraph: a
//! focused crawler adds pages batch by batch (Figure 1), an index ingests
//! and expires documents. Rebuilding `A_approx` is cheap (`O(n +
//! boundary)` with the §IV-B precomputation), but a cold power iteration
//! is not. A [`SubgraphSession`] owns the precomputation and the previous
//! solution, maps it onto each revised member set as the starting vector,
//! and re-solves warm — the same trick SC's 25-round loop depends on,
//! offered as a first-class API.

use approxrank_graph::{DiGraph, NodeId, NodeSet, Subgraph, SubgraphSource};
use approxrank_pagerank::PageRankOptions;

use crate::approx::ApproxRank;
use crate::precompute::{GlobalAggregates, GlobalPrecomputation};
use crate::ranker::RankScores;

/// A long-lived ApproxRank session over one global graph.
///
/// The session never needs the global graph itself between solves: the
/// Λ-collapse consumes only the extracted subgraph plus two global
/// scalars ([`GlobalAggregates`]). Membership edits re-extract either
/// from the global graph directly ([`Self::add_pages`]) or through any
/// [`SubgraphSource`] ([`Self::add_pages_via`]) — e.g. a
/// [`approxrank_graph::Shard`], which yields bit-identical solves for
/// shard-resident subgraphs.
pub struct SubgraphSession {
    options: PageRankOptions,
    aggregates: GlobalAggregates,
    members: Vec<NodeId>,
    subgraph: Subgraph,
    /// Last solution in extended-state order (`n` locals + Λ), kept in
    /// global-id terms for remapping across membership changes.
    last_scores: Option<(Vec<(NodeId, f64)>, f64)>,
    last_iterations: usize,
}

impl SubgraphSession {
    /// Opens a session for an initial member set.
    ///
    /// # Panics
    /// Panics if `initial` is empty.
    pub fn new(global: &DiGraph, initial: NodeSet, options: PageRankOptions) -> Self {
        let precomputation = GlobalPrecomputation::compute(global);
        Self::with_precomputation(global, initial, options, precomputation)
    }

    /// Opens a session reusing an already-computed [`GlobalPrecomputation`]
    /// of the same global graph — the serving layer opens many sessions
    /// against one graph and must not pay the `O(N)` degree scan per
    /// session.
    ///
    /// # Panics
    /// Panics if `initial` is empty or if `precomputation` belongs to a
    /// graph of a different size.
    pub fn with_precomputation(
        global: &DiGraph,
        initial: NodeSet,
        options: PageRankOptions,
        precomputation: GlobalPrecomputation,
    ) -> Self {
        assert!(!initial.is_empty(), "session needs a non-empty subgraph");
        assert_eq!(
            precomputation.num_nodes(),
            global.num_nodes(),
            "precomputation belongs to a different graph"
        );
        let members = initial.members().to_vec();
        let subgraph = Subgraph::extract(global, initial);
        SubgraphSession {
            options,
            aggregates: GlobalAggregates::from(&precomputation),
            members,
            subgraph,
            last_scores: None,
            last_iterations: 0,
        }
    }

    /// Opens a session whose extractions go through a [`SubgraphSource`]
    /// instead of the global graph — the sharded serving path. With a
    /// [`approxrank_graph::GlobalView`] source this is equivalent to
    /// [`Self::new`]; with a [`approxrank_graph::Shard`] every member must
    /// be owned by that shard.
    ///
    /// # Panics
    /// Panics if `initial` is empty, if its universe size differs from the
    /// source's global node count, or if the source does not own a member.
    pub fn with_source(
        source: &dyn SubgraphSource,
        initial: NodeSet,
        options: PageRankOptions,
    ) -> Self {
        assert!(!initial.is_empty(), "session needs a non-empty subgraph");
        assert_eq!(
            initial.global_nodes(),
            source.global_nodes(),
            "member set belongs to a different graph"
        );
        let members = initial.members().to_vec();
        let subgraph = source.extract_nodes(initial);
        SubgraphSession {
            options,
            aggregates: GlobalAggregates {
                num_nodes: source.global_nodes(),
                num_dangling: source.num_dangling(),
            },
            members,
            subgraph,
            last_scores: None,
            last_iterations: 0,
        }
    }

    /// Current members in local-id order.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// The current extracted subgraph.
    pub fn subgraph(&self) -> &Subgraph {
        &self.subgraph
    }

    /// Iterations the most recent solve took (0 before the first solve).
    pub fn last_iterations(&self) -> usize {
        self.last_iterations
    }

    /// The options this session was opened with.
    pub fn options(&self) -> &PageRankOptions {
        &self.options
    }

    /// The last converged solution in global-id terms — per-member
    /// `(global id, score)` pairs plus Λ's score — or `None` before the
    /// first solve. This is the stable serialization surface a durability
    /// layer persists and later feeds back through [`Self::restore`].
    pub fn last_solution(&self) -> Option<(&[(NodeId, f64)], f64)> {
        self.last_scores
            .as_ref()
            .map(|(scores, lambda)| (scores.as_slice(), *lambda))
    }

    /// Reinstates a previously persisted solution so the next
    /// [`Self::solve`] warm-starts from it exactly as if this process had
    /// computed it. Scores are taken verbatim; pairs whose page is no
    /// longer a member are simply ignored at solve time by the warm-start
    /// remapping, so a solution saved before a membership edit is still a
    /// valid (if weaker) starting point.
    pub fn restore(&mut self, scores: Vec<(NodeId, f64)>, lambda: f64, iterations: usize) {
        self.last_scores = Some((scores, lambda));
        self.last_iterations = iterations;
    }

    /// Adds pages (ignoring duplicates) and re-extracts the subgraph.
    ///
    /// # Panics
    /// Panics if a page id is out of range for the global graph.
    pub fn add_pages(&mut self, global: &DiGraph, pages: &[NodeId]) {
        for &p in pages {
            assert!((p as usize) < global.num_nodes(), "page {p} out of range");
        }
        let current = NodeSet::from_iter_order(
            global.num_nodes(),
            self.members.iter().copied().chain(pages.iter().copied()),
        );
        self.members = current.members().to_vec();
        self.subgraph = Subgraph::extract(global, current);
    }

    /// Removes pages (ignoring non-members) and re-extracts the subgraph.
    ///
    /// # Panics
    /// Panics if the removal would empty the subgraph.
    pub fn remove_pages(&mut self, global: &DiGraph, pages: &[NodeId]) {
        let drop: std::collections::HashSet<NodeId> = pages.iter().copied().collect();
        let remaining: Vec<NodeId> = self
            .members
            .iter()
            .copied()
            .filter(|p| !drop.contains(p))
            .collect();
        assert!(!remaining.is_empty(), "cannot empty the subgraph");
        let current = NodeSet::from_iter_order(global.num_nodes(), remaining);
        self.members = current.members().to_vec();
        self.subgraph = Subgraph::extract(global, current);
    }

    /// [`Self::add_pages`] through a [`SubgraphSource`].
    ///
    /// # Panics
    /// Panics if a page id is out of range, or (inside the source) if the
    /// source does not own a page.
    pub fn add_pages_via(&mut self, source: &dyn SubgraphSource, pages: &[NodeId]) {
        let big_n = source.global_nodes();
        for &p in pages {
            assert!((p as usize) < big_n, "page {p} out of range");
        }
        let current = NodeSet::from_iter_order(
            big_n,
            self.members.iter().copied().chain(pages.iter().copied()),
        );
        self.members = current.members().to_vec();
        self.subgraph = source.extract_nodes(current);
    }

    /// [`Self::remove_pages`] through a [`SubgraphSource`].
    ///
    /// # Panics
    /// Panics if the removal would empty the subgraph.
    pub fn remove_pages_via(&mut self, source: &dyn SubgraphSource, pages: &[NodeId]) {
        let drop: std::collections::HashSet<NodeId> = pages.iter().copied().collect();
        let remaining: Vec<NodeId> = self
            .members
            .iter()
            .copied()
            .filter(|p| !drop.contains(p))
            .collect();
        assert!(!remaining.is_empty(), "cannot empty the subgraph");
        let current = NodeSet::from_iter_order(source.global_nodes(), remaining);
        self.members = current.members().to_vec();
        self.subgraph = source.extract_nodes(current);
    }

    /// Re-extracts the current membership and refreshes the global
    /// aggregates after the underlying graph mutated — the warm-restart
    /// path for live mutation. The previous solution is kept, so the
    /// next [`Self::solve`] warm-starts from it; since the membership is
    /// unchanged, every page keeps its score as the starting point.
    pub fn refresh_via(&mut self, source: &dyn SubgraphSource) {
        let current = NodeSet::from_iter_order(source.global_nodes(), self.members.iter().copied());
        self.subgraph = source.extract_nodes(current);
        self.aggregates = GlobalAggregates {
            num_nodes: source.global_nodes(),
            num_dangling: source.num_dangling(),
        };
    }

    /// Solves ApproxRank for the current membership, warm-starting from
    /// the previous solution when one exists: retained pages keep their
    /// scores, new pages enter at the teleport floor, Λ absorbs the rest.
    pub fn solve(&mut self) -> RankScores {
        let approx = ApproxRank::new(self.options.clone());
        let ext = approx.extended_graph_aggregated(self.aggregates, &self.subgraph);
        let n = self.subgraph.len();
        let result = match &self.last_scores {
            None => ext.solve(&self.options),
            Some((prev, prev_lambda)) => {
                let floor = (1.0 - self.options.damping) / ext.num_global() as f64;
                let mut start = vec![floor; n + 1];
                for &(g, s) in prev {
                    if let Some(li) = self.subgraph.nodes().local_id(g) {
                        start[li as usize] = s;
                    }
                }
                start[n] = *prev_lambda;
                // Project back onto the simplex.
                let mass: f64 = start.iter().sum();
                if mass > 0.0 {
                    for v in start.iter_mut() {
                        *v /= mass;
                    }
                }
                ext.solve_from(&self.options, &start)
            }
        };
        self.last_iterations = result.iterations;
        let lambda = result.scores[n];
        let locals: Vec<(NodeId, f64)> = self
            .subgraph
            .nodes()
            .members()
            .iter()
            .zip(&result.scores[..n])
            .map(|(&g, &s)| (g, s))
            .collect();
        self.last_scores = Some((locals, lambda));
        RankScores {
            local_scores: result.scores[..n].to_vec(),
            lambda_score: Some(lambda),
            iterations: result.iterations,
            converged: result.converged,
            estimate: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A ring-of-rings graph big enough that warm starts visibly pay off.
    fn global() -> DiGraph {
        let n = 600u32;
        let mut edges = Vec::new();
        for i in 0..n {
            edges.push((i, (i + 1) % n));
            edges.push((i, (i * 13 + 7) % n));
            if i % 9 == 0 {
                edges.push((i, (i + n / 2) % n));
            }
        }
        DiGraph::from_edges(n as usize, &edges)
    }

    fn opts() -> PageRankOptions {
        PageRankOptions::paper().with_tolerance(1e-10)
    }

    #[test]
    fn session_matches_fresh_approxrank() {
        let g = global();
        let initial = NodeSet::from_sorted(g.num_nodes(), 100..250u32);
        let mut session = SubgraphSession::new(&g, initial, opts());
        session.add_pages(&g, &[250, 251, 252]);
        let scores = session.solve();

        let fresh_set = NodeSet::from_sorted(g.num_nodes(), (100..253u32).collect::<Vec<_>>());
        let fresh_sub = Subgraph::extract(&g, fresh_set);
        let fresh = ApproxRank::new(opts()).rank_subgraph(&g, &fresh_sub);
        for (a, b) in scores.local_scores.iter().zip(&fresh.local_scores) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn warm_start_saves_iterations_on_small_changes() {
        let g = global();
        let initial = NodeSet::from_sorted(g.num_nodes(), 0..300u32);
        let mut session = SubgraphSession::new(&g, initial, opts());
        let first = session.solve();
        assert!(first.converged);
        let cold_iterations = first.iterations;

        // Small membership change: a handful of pages in, one out.
        session.add_pages(&g, &[300, 301, 302, 303]);
        session.remove_pages(&g, &[0]);
        let second = session.solve();
        assert!(second.converged);
        assert!(
            second.iterations < cold_iterations,
            "warm {} vs cold {}",
            second.iterations,
            cold_iterations
        );
    }

    #[test]
    fn membership_bookkeeping() {
        let g = global();
        let mut session =
            SubgraphSession::new(&g, NodeSet::from_sorted(g.num_nodes(), [5, 6, 7]), opts());
        assert_eq!(session.members(), &[5, 6, 7]);
        session.add_pages(&g, &[7, 8]); // 7 is a duplicate
        assert_eq!(session.members(), &[5, 6, 7, 8]);
        session.remove_pages(&g, &[6, 999]); // 999 is not a member
        assert_eq!(session.members(), &[5, 7, 8]);
        assert_eq!(session.subgraph().len(), 3);
    }

    #[test]
    fn shared_precomputation_matches_owned() {
        let g = global();
        let pre = GlobalPrecomputation::compute(&g);
        let set = || NodeSet::from_sorted(g.num_nodes(), 10..60u32);
        let mut owned = SubgraphSession::new(&g, set(), opts());
        let mut shared = SubgraphSession::with_precomputation(&g, set(), opts(), pre);
        let a = owned.solve();
        let b = shared.solve();
        assert_eq!(a.local_scores, b.local_scores);
    }

    #[test]
    #[should_panic(expected = "different graph")]
    fn rejects_foreign_precomputation() {
        let g = global();
        let other = DiGraph::from_edges(3, &[(0, 1)]);
        let pre = GlobalPrecomputation::compute(&other);
        SubgraphSession::with_precomputation(
            &g,
            NodeSet::from_sorted(g.num_nodes(), [1, 2]),
            opts(),
            pre,
        );
    }

    #[test]
    fn source_backed_session_matches_global_bitwise() {
        use approxrank_graph::{GlobalView, PartitionStrategy, PartitionedGraph};
        use std::sync::Arc;

        let g = global();
        let n = g.num_nodes();

        // GlobalView source ≡ direct construction.
        let view = GlobalView::new(Arc::new(g.clone()));
        let mut direct = SubgraphSession::new(&g, NodeSet::from_sorted(n, 40..90u32), opts());
        let mut via =
            SubgraphSession::with_source(&view, NodeSet::from_sorted(n, 40..90u32), opts());
        direct.add_pages(&g, &[90, 91]);
        via.add_pages_via(&view, &[90, 91]);
        direct.remove_pages(&g, &[41]);
        via.remove_pages_via(&view, &[41]);
        assert_eq!(direct.members(), via.members());
        assert_eq!(direct.solve(), via.solve());

        // Shard source: a member set resident on shard 0 of a 2-way range
        // partitioning solves bit-identically to the unsharded session.
        let pg = PartitionedGraph::build(&g, 2, PartitionStrategy::Range);
        let shard = pg.shard(0);
        let members = NodeSet::from_sorted(n, 40..90u32);
        let mut global_side = SubgraphSession::new(&g, members.clone(), opts());
        let mut shard_side = SubgraphSession::with_source(shard, members, opts());
        assert_eq!(global_side.solve(), shard_side.solve());
        global_side.add_pages(&g, &[90, 91]);
        shard_side.add_pages_via(shard, &[90, 91]);
        assert_eq!(global_side.solve(), shard_side.solve());
    }

    #[test]
    fn refresh_tracks_graph_mutation() {
        use approxrank_graph::GlobalView;
        use std::sync::Arc;

        let g = global();
        let n = g.num_nodes();
        let before = GlobalView::new(Arc::new(g.clone()));
        let mut session =
            SubgraphSession::with_source(&before, NodeSet::from_sorted(n, 100..160u32), opts());
        session.solve();

        // The graph changes under the session: one edge into, one out of
        // the member range.
        let mut edges: Vec<(u32, u32)> = g.edges().collect();
        edges.push((120, 140));
        edges.retain(|&e| e != (100, 101));
        let mutated = DiGraph::from_edges(n, &edges);
        let after = GlobalView::new(Arc::new(mutated.clone()));
        session.refresh_via(&after);
        let repaired = session.solve();

        let fresh_sub = Subgraph::extract(&mutated, NodeSet::from_sorted(n, 100..160u32));
        let fresh = ApproxRank::new(opts()).rank_subgraph(&mutated, &fresh_sub);
        for (a, b) in repaired.local_scores.iter().zip(&fresh.local_scores) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "cannot empty")]
    fn refuses_to_empty() {
        let g = global();
        let mut session =
            SubgraphSession::new(&g, NodeSet::from_sorted(g.num_nodes(), [5]), opts());
        session.remove_pages(&g, &[5]);
    }
}
