//! Weighted (ObjectRank-style) subgraph ranking — the paper's §I claim
//! that "our general approaches can be applied to estimate ObjectRank
//! scores as well", made concrete.
//!
//! The collapse is metric-independent: only the effective transition
//! matrix changes. For a weighted graph under the stochastic flow model,
//! row `u` is `w(u,v)/S_u` (with `S_u` the out-weight sum) and a node
//! with `S_u = 0` jumps uniformly — structurally identical to the
//! unweighted case with `1/D_u` replaced by normalized weights. This
//! module extracts weighted subgraph boundaries and builds the weighted
//! `A_ideal` / `A_approx`, reusing [`ExtendedLocalGraph`]'s solver.

use approxrank_graph::{NodeId, NodeSet};
use approxrank_pagerank::{PageRankOptions, WeightedDiGraph};

use crate::extended::ExtendedLocalGraph;
use crate::ranker::RankScores;

/// A weighted subgraph with the boundary aggregates the collapse needs.
#[derive(Clone, Debug)]
pub struct WeightedSubgraph {
    nodes: NodeSet,
    /// Local in-edge CSR over local ids: offsets/sources/weights, where
    /// weights are already normalized transition probabilities.
    in_offsets: Vec<usize>,
    in_sources: Vec<u32>,
    in_weights: Vec<f64>,
    /// Aggregated `i → external` probability per local page.
    to_lambda: Vec<f64>,
    /// Boundary in-edges: `(external source, local target, normalized weight)`.
    boundary_in: Vec<(NodeId, u32, f64)>,
    /// Local pages with zero out-weight (dangling under the flow model).
    dangling_local: Vec<u32>,
}

impl WeightedSubgraph {
    /// Extracts the weighted subgraph of `nodes` from `global`.
    pub fn extract(global: &WeightedDiGraph, nodes: NodeSet) -> Self {
        let n = nodes.len();
        // Build per-target in-edge rows in local ids.
        let mut rows: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        let mut to_lambda = vec![0.0f64; n];
        let mut dangling_local = Vec::new();
        for (li, &g) in nodes.members().iter().enumerate() {
            let total = global.out_weight_sum(g);
            if total <= 0.0 {
                dangling_local.push(li as u32);
                continue;
            }
            let (targets, weights) = global.out_edges(g);
            for (&t, &w) in targets.iter().zip(weights) {
                let p = w / total;
                match nodes.local_id(t) {
                    Some(lt) => rows[lt as usize].push((li as u32, p)),
                    None => to_lambda[li] += p,
                }
            }
        }
        let mut boundary_in = Vec::new();
        for (li, &g) in nodes.members().iter().enumerate() {
            let (sources, weights) = global.in_edges(g);
            for (&s, &w) in sources.iter().zip(weights) {
                if !nodes.contains(s) {
                    let total = global.out_weight_sum(s);
                    if total > 0.0 {
                        boundary_in.push((s, li as u32, w / total));
                    }
                }
            }
        }
        let mut in_offsets = vec![0usize; n + 1];
        let mut in_sources = Vec::new();
        let mut in_weights = Vec::new();
        for (k, row) in rows.iter().enumerate() {
            in_offsets[k + 1] = in_offsets[k] + row.len();
            for &(s, w) in row {
                in_sources.push(s);
                in_weights.push(w);
            }
        }
        WeightedSubgraph {
            nodes,
            in_offsets,
            in_sources,
            in_weights,
            to_lambda,
            boundary_in,
            dangling_local,
        }
    }

    /// The node set (id maps).
    pub fn nodes(&self) -> &NodeSet {
        &self.nodes
    }

    /// `n`, the local page count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the subgraph is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Builds the weighted `A_approx`: external objects assumed equally
/// important (the uniform `E_approx` of Equation 7 over weighted rows).
pub fn weighted_approx_graph(
    global: &WeightedDiGraph,
    sub: &WeightedSubgraph,
) -> ExtendedLocalGraph {
    let n = sub.len();
    let big_n = global.num_nodes();
    if big_n == n {
        return ExtendedLocalGraph::from_parts(
            big_n,
            sub.in_offsets.clone(),
            sub.in_sources.clone(),
            sub.in_weights.clone(),
            sub.to_lambda.clone(),
            vec![0.0; n],
            0.0,
            sub.dangling_local.clone(),
        );
    }
    let num_ext = (big_n - n) as f64;
    // Dangling external count: zero out-weight nodes outside the subgraph.
    let ext_dangling = (0..big_n as u32)
        .filter(|&u| !sub.nodes.contains(u) && global.out_weight_sum(u) <= 0.0)
        .count() as f64;

    let mut from_lambda = vec![0.0f64; n];
    let mut boundary_flow = 0.0;
    for &(_, target, p) in &sub.boundary_in {
        from_lambda[target as usize] += p;
        boundary_flow += p;
    }
    let inv_big_n = 1.0 / big_n as f64;
    for f in from_lambda.iter_mut() {
        *f = (*f + ext_dangling * inv_big_n) / num_ext;
    }
    let lambda_self =
        ((num_ext - ext_dangling - boundary_flow) + ext_dangling * num_ext * inv_big_n) / num_ext;
    ExtendedLocalGraph::from_parts(
        big_n,
        sub.in_offsets.clone(),
        sub.in_sources.clone(),
        sub.in_weights.clone(),
        sub.to_lambda.clone(),
        from_lambda,
        lambda_self,
        sub.dangling_local.clone(),
    )
}

/// Builds the weighted `A_ideal` from known global authority scores.
///
/// # Panics
/// Panics if `global_scores.len() != N` or the external mass is zero.
pub fn weighted_ideal_graph(
    global: &WeightedDiGraph,
    sub: &WeightedSubgraph,
    global_scores: &[f64],
) -> ExtendedLocalGraph {
    let n = sub.len();
    let big_n = global.num_nodes();
    assert_eq!(
        global_scores.len(),
        big_n,
        "scores must cover all N objects"
    );
    if big_n == n {
        return weighted_approx_graph(global, sub);
    }
    let local_mass: f64 = sub
        .nodes
        .members()
        .iter()
        .map(|&g| global_scores[g as usize])
        .sum();
    let ext_sum: f64 = global_scores.iter().sum::<f64>() - local_mass;
    assert!(ext_sum > 0.0, "external objects must hold positive mass");
    let mut dang_ext_mass = 0.0;
    for u in 0..big_n as u32 {
        if !sub.nodes.contains(u) && global.out_weight_sum(u) <= 0.0 {
            dang_ext_mass += global_scores[u as usize];
        }
    }
    let mut from_lambda = vec![0.0f64; n];
    let mut boundary_flow = 0.0;
    for &(source, target, p) in &sub.boundary_in {
        let w = global_scores[source as usize] * p;
        from_lambda[target as usize] += w;
        boundary_flow += w;
    }
    let inv_big_n = 1.0 / big_n as f64;
    for f in from_lambda.iter_mut() {
        *f = (*f + dang_ext_mass * inv_big_n) / ext_sum;
    }
    let nondangling_ext_mass = ext_sum - dang_ext_mass;
    let lambda_self = ((nondangling_ext_mass - boundary_flow)
        + dang_ext_mass * (big_n - n) as f64 * inv_big_n)
        / ext_sum;
    ExtendedLocalGraph::from_parts(
        big_n,
        sub.in_offsets.clone(),
        sub.in_sources.clone(),
        sub.in_weights.clone(),
        sub.to_lambda.clone(),
        from_lambda,
        lambda_self,
        sub.dangling_local.clone(),
    )
}

fn solve(ext: &ExtendedLocalGraph, options: &PageRankOptions) -> RankScores {
    let result = ext.solve(options);
    let mut scores = result.scores;
    let lambda = scores.pop().expect("n+1 states");
    RankScores {
        local_scores: scores,
        lambda_score: Some(lambda),
        iterations: result.iterations,
        converged: result.converged,
        estimate: None,
    }
}

/// Weighted ApproxRank: estimates authority-flow scores for the subgraph
/// without the global scores.
pub fn weighted_approx_rank(
    global: &WeightedDiGraph,
    sub: &WeightedSubgraph,
    options: &PageRankOptions,
) -> RankScores {
    solve(&weighted_approx_graph(global, sub), options)
}

/// Weighted IdealRank: exact when the global authority scores are known
/// (Theorem 1 carries over verbatim — the proof never uses uniformity of
/// the transition rows).
pub fn weighted_ideal_rank(
    global: &WeightedDiGraph,
    sub: &WeightedSubgraph,
    global_scores: &[f64],
    options: &PageRankOptions,
) -> RankScores {
    solve(&weighted_ideal_graph(global, sub, global_scores), options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxrank_pagerank::authority::{authority_flow, FlowModel};
    use approxrank_pagerank::pagerank;

    fn weighted_graph() -> WeightedDiGraph {
        // 6 objects; 0..2 local; weights deliberately non-uniform.
        WeightedDiGraph::from_edges(
            6,
            &[
                (0, 1, 2.0),
                (0, 3, 1.0),
                (1, 2, 0.5),
                (1, 4, 0.5),
                (2, 0, 1.0),
                (3, 1, 3.0),
                (3, 4, 1.0),
                (4, 2, 2.0),
                (4, 5, 2.0),
                // 5 is dangling (zero out-weight).
            ],
        )
    }

    fn opts() -> PageRankOptions {
        PageRankOptions::paper().with_tolerance(1e-13)
    }

    fn truth(g: &WeightedDiGraph) -> Vec<f64> {
        let n = g.num_nodes();
        let p = vec![1.0 / n as f64; n];
        authority_flow(g, &opts(), &p, FlowModel::Stochastic).scores
    }

    #[test]
    fn weighted_theorem1_exactness() {
        let g = weighted_graph();
        let scores = truth(&g);
        let sub = WeightedSubgraph::extract(&g, NodeSet::from_sorted(6, [0, 1, 2]));
        let r = weighted_ideal_rank(&g, &sub, &scores, &opts());
        assert!(r.converged);
        for (k, &gid) in sub.nodes().members().iter().enumerate() {
            assert!(
                (r.local_scores[k] - scores[gid as usize]).abs() < 1e-9,
                "object {gid}: {} vs {}",
                r.local_scores[k],
                scores[gid as usize]
            );
        }
        let ext_mass: f64 = [3usize, 4, 5].iter().map(|&j| scores[j]).sum();
        assert!((r.lambda_score.unwrap() - ext_mass).abs() < 1e-9);
    }

    #[test]
    fn weighted_approx_is_stochastic_and_reasonable() {
        let g = weighted_graph();
        let scores = truth(&g);
        let sub = WeightedSubgraph::extract(&g, NodeSet::from_sorted(6, [0, 1, 2]));
        let ext = weighted_approx_graph(&g, &sub);
        assert!(ext.max_row_sum_error() < 1e-9);
        let r = weighted_approx_rank(&g, &sub, &opts());
        assert!((r.local_mass() + r.lambda_score.unwrap() - 1.0).abs() < 1e-9);
        // Sanity: same top object as the truth restriction.
        let restricted = sub.nodes().restrict(&scores);
        let argmax = |v: &[f64]| {
            v.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0
        };
        assert_eq!(argmax(&r.local_scores), argmax(&restricted));
    }

    #[test]
    fn unweighted_lift_matches_plain_approxrank() {
        // Lifting an unweighted graph into weights must give exactly the
        // unweighted ApproxRank result.
        use approxrank_graph::{DiGraph, Subgraph};
        let plain = DiGraph::from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (0, 4),
                (0, 6),
                (1, 3),
                (2, 1),
                (2, 3),
                (3, 0),
                (4, 2),
                (4, 5),
                (4, 6),
                (5, 2),
                (5, 6),
                (6, 2),
                (6, 3),
            ],
        );
        let lifted = WeightedDiGraph::from_unweighted(&plain);
        let set = NodeSet::from_sorted(7, [0, 1, 2, 3]);
        let wsub = WeightedSubgraph::extract(&lifted, set);
        let usub = Subgraph::extract(&plain, NodeSet::from_sorted(7, [0, 1, 2, 3]));
        let wr = weighted_approx_rank(&lifted, &wsub, &opts());
        let ur = crate::ApproxRank::new(opts()).rank_subgraph(&plain, &usub);
        for (a, b) in wr.local_scores.iter().zip(&ur.local_scores) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
        let _ = pagerank; // silence unused import when tests filter
    }

    #[test]
    fn expert_tuned_weights_change_the_ranking() {
        // The ObjectRank motivation: the same topology under different
        // authority transfer rates produces a different subgraph ranking.
        let base = weighted_graph();
        let mut flipped_edges = Vec::new();
        {
            // Rebuild with the 3→1 weight crushed: object 1 loses its
            // main external endorsement.
            let edges = [
                (0u32, 1u32, 2.0f64),
                (0, 3, 1.0),
                (1, 2, 0.5),
                (1, 4, 0.5),
                (2, 0, 1.0),
                (3, 1, 0.01),
                (3, 4, 3.99),
                (4, 2, 2.0),
                (4, 5, 2.0),
            ];
            flipped_edges.extend_from_slice(&edges);
        }
        let flipped = WeightedDiGraph::from_edges(6, &flipped_edges);
        let set = || NodeSet::from_sorted(6, [0, 1, 2]);
        let r_base = weighted_approx_rank(&base, &WeightedSubgraph::extract(&base, set()), &opts());
        let r_flip = weighted_approx_rank(
            &flipped,
            &WeightedSubgraph::extract(&flipped, set()),
            &opts(),
        );
        // Object 1's relative standing must drop.
        let share = |r: &RankScores, i: usize| r.local_scores[i] / r.local_mass();
        assert!(share(&r_flip, 1) < share(&r_base, 1));
    }
}
