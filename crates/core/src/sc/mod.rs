//! SC: the stochastic complementation approach of Davis & Dhillon
//! (KDD'06 \[1\]) — the paper's strongest competitor (◆).
//!
//! SC estimates the global PageRank of a *community* (local domain) by
//! growing a supergraph around it and ranking the supergraph:
//!
//! 1. start with the `n` local pages;
//! 2. repeat for `T = 25` expansion rounds (paper §V-A):
//!    a. rank the current supergraph,
//!    b. collect the out-link frontier (external pages linked from the
//!    supergraph),
//!    c. estimate every frontier page's *influence* on the local scores
//!    (see [`influence`]) — this per-candidate estimation is what the
//!    ApproxRank paper identifies as SC's cost bottleneck,
//!    d. add the top `k = ⌈n/T⌉` candidates;
//! 3. rank the final ≈`2n`-page supergraph and restrict to the original
//!    local pages.
//!
//! The repeated supergraph PageRank solves plus the frontier sweeps give
//! SC the order-of-magnitude runtime disadvantage Tables V/VI report; the
//! closed-supergraph final ranking (no `Λ`, no edge-multiplicity
//! modelling at the supergraph boundary) gives it the ordering-accuracy
//! disadvantage of Tables III/IV.

pub mod influence;

use approxrank_exec::Executor;
use approxrank_graph::{BitSet, DiGraph, NodeId, NodeSet, Subgraph};
use approxrank_pagerank::{emit_exec_stats, pagerank_with_start_observed_on, PageRankOptions};
use approxrank_trace::Observer;

use crate::ranker::{RankScores, SubgraphRanker};

pub use influence::{frontier_influence, frontier_influence_on};

/// Configuration and entry point for the SC algorithm.
#[derive(Clone, Debug)]
pub struct StochasticComplementation {
    /// Solver settings for the repeated supergraph PageRank runs.
    pub options: PageRankOptions,
    /// Number of expansion rounds `T` (paper setting: 25).
    pub expansion_rounds: usize,
    /// Total external pages to select, as a multiple of `n`
    /// (paper setting: 1.0 — the supergraph doubles).
    pub growth_factor: f64,
}

impl Default for StochasticComplementation {
    fn default() -> Self {
        StochasticComplementation {
            options: PageRankOptions::paper(),
            expansion_rounds: 25,
            growth_factor: 1.0,
        }
    }
}

/// Cost/shape diagnostics of one SC run — the source of Tables V/VI's
/// `k` and "#ext nodes per expansion" columns.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScReport {
    /// Pages added per round.
    pub k: usize,
    /// Frontier (candidate) size at the start of each round.
    pub frontier_sizes: Vec<usize>,
    /// Final supergraph page count.
    pub supergraph_size: usize,
    /// Rounds actually executed (fewer if the frontier dries up).
    pub rounds_executed: usize,
}

impl StochasticComplementation {
    /// Runs SC and also returns the expansion diagnostics.
    pub fn rank_with_report(
        &self,
        global: &DiGraph,
        subgraph: &Subgraph,
    ) -> (RankScores, ScReport) {
        self.rank_with_report_observed(global, subgraph, approxrank_trace::null())
    }

    /// [`Self::rank_with_report`] with telemetry: per-round `expand` spans
    /// (supergraph solve + frontier scoring), a `frontier_size` gauge per
    /// round, and a final `solve` span for the closing supergraph ranking.
    pub fn rank_with_report_observed(
        &self,
        global: &DiGraph,
        subgraph: &Subgraph,
        obs: &dyn Observer,
    ) -> (RankScores, ScReport) {
        let n = subgraph.len();
        let big_n = global.num_nodes();
        let rounds = self.expansion_rounds.max(1);
        let k = (((n as f64 * self.growth_factor) / rounds as f64).ceil() as usize).max(1);

        // One pool for the whole run: the ~2T supergraph solves and the T
        // influence sweeps all reuse the same parked workers.
        let exec = Executor::new(self.options.threads);

        // Supergraph membership: original local pages first (so the final
        // restriction is a prefix), then selected external pages.
        let mut members: Vec<NodeId> = subgraph.nodes().members().to_vec();
        let mut in_super = BitSet::new(big_n);
        for &g in &members {
            in_super.insert(g as usize);
        }

        let mut report = ScReport {
            k,
            ..ScReport::default()
        };
        let mut prev_scores: Vec<f64> = Vec::new();
        let mut last_result: Option<approxrank_pagerank::PageRankResult> = None;

        for _round in 0..rounds {
            let _round_span = obs.span("expand");
            // (a) Rank the current supergraph (warm-started from the
            // previous round, as the KDD'06 implementation does).
            let super_sub = Subgraph::extract(
                global,
                NodeSet::from_iter_order(big_n, members.iter().copied()),
            );
            let m = super_sub.len();
            let personalization = vec![1.0 / m as f64; m];
            let mut start = vec![1.0 / m as f64; m];
            if !prev_scores.is_empty() {
                // Carry over previous scores for retained members; the
                // newly added pages keep the uniform share, then rescale.
                start[..prev_scores.len()].copy_from_slice(&prev_scores);
                let s: f64 = start.iter().sum();
                for v in start.iter_mut() {
                    *v /= s;
                }
            }
            let result = pagerank_with_start_observed_on(
                super_sub.local_graph(),
                &self.options,
                &personalization,
                &start,
                obs,
                &exec,
            );
            prev_scores = result.scores.clone();
            last_result = Some(result);

            // (b) Frontier of candidate external pages.
            let mut frontier: Vec<NodeId> = Vec::new();
            let mut seen = BitSet::new(big_n);
            for &g in &members {
                for &t in global.out_neighbors(g) {
                    if !in_super.contains(t as usize) && seen.insert(t as usize) {
                        frontier.push(t);
                    }
                }
            }
            report.frontier_sizes.push(frontier.len());
            report.rounds_executed += 1;
            obs.gauge("frontier_size", frontier.len() as f64);
            if frontier.is_empty() {
                break;
            }

            // (c) Influence of every candidate.
            let _influence_span = obs.span("influence");
            let mut scored = frontier_influence_on(
                global,
                &in_super,
                &members,
                &prev_scores,
                &frontier,
                self.options.damping,
                &exec,
            );

            // (d) Keep the top-k (deterministic tie-break by node id).
            scored.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .expect("influence must not be NaN")
                    .then(a.0.cmp(&b.0))
            });
            for &(j, _) in scored.iter().take(k) {
                in_super.insert(j as usize);
                members.push(j);
            }
        }

        // (3) Final supergraph ranking, restricted to the original pages.
        let _solve_span = obs.span("solve");
        let super_sub = Subgraph::extract(
            global,
            NodeSet::from_iter_order(big_n, members.iter().copied()),
        );
        let m = super_sub.len();
        let personalization = vec![1.0 / m as f64; m];
        let mut start = vec![1.0 / m as f64; m];
        if !prev_scores.is_empty() {
            start[..prev_scores.len()].copy_from_slice(&prev_scores);
            let s: f64 = start.iter().sum();
            for v in start.iter_mut() {
                *v /= s;
            }
        }
        let result = pagerank_with_start_observed_on(
            super_sub.local_graph(),
            &self.options,
            &personalization,
            &start,
            obs,
            &exec,
        );
        report.supergraph_size = m;
        emit_exec_stats(&exec, obs);
        let iterations = result.iterations + last_result.as_ref().map_or(0, |r| r.iterations);
        let converged = result.converged;
        let local_scores = result.scores[..n].to_vec();
        (
            RankScores {
                local_scores,
                lambda_score: None,
                iterations,
                converged,
                estimate: None,
            },
            report,
        )
    }
}

impl SubgraphRanker for StochasticComplementation {
    fn name(&self) -> &'static str {
        "SC"
    }

    fn rank(&self, global: &DiGraph, subgraph: &Subgraph) -> RankScores {
        self.rank_with_report(global, subgraph).0
    }

    fn rank_observed(
        &self,
        global: &DiGraph,
        subgraph: &Subgraph,
        obs: &dyn Observer,
    ) -> RankScores {
        self.rank_with_report_observed(global, subgraph, obs).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure4() -> DiGraph {
        DiGraph::from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (0, 4),
                (0, 6),
                (1, 3),
                (2, 1),
                (2, 3),
                (3, 0),
                (4, 2),
                (4, 5),
                (4, 6),
                (5, 2),
                (5, 6),
                (6, 2),
                (6, 3),
            ],
        )
    }

    #[test]
    fn expands_and_reports() {
        let g = figure4();
        let sub = Subgraph::extract(&g, NodeSet::from_sorted(7, [0, 1, 2, 3]));
        let sc = StochasticComplementation {
            expansion_rounds: 2,
            ..StochasticComplementation::default()
        };
        let (scores, report) = sc.rank_with_report(&g, &sub);
        assert_eq!(scores.local_scores.len(), 4);
        assert_eq!(report.k, 2); // ceil(4/2)
        assert_eq!(report.rounds_executed, 2);
        assert_eq!(report.frontier_sizes.len(), 2);
        // First frontier: X and Z (out-neighbors of A outside the graph).
        assert_eq!(report.frontier_sizes[0], 2);
        assert!(report.supergraph_size > 4);
        assert!(scores.converged);
    }

    #[test]
    fn frontier_exhaustion_stops_early() {
        // Local part reaches the entire graph after one round.
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let sub = Subgraph::extract(&g, NodeSet::from_sorted(3, [0, 1]));
        let sc = StochasticComplementation {
            expansion_rounds: 25,
            ..StochasticComplementation::default()
        };
        let (_, report) = sc.rank_with_report(&g, &sub);
        assert!(report.rounds_executed < 25);
        assert_eq!(report.supergraph_size, 3);
    }

    #[test]
    fn supergraph_improves_over_local_pagerank() {
        use crate::baselines::LocalPageRank;
        use approxrank_pagerank::pagerank;
        let g = figure4();
        let tight = PageRankOptions::paper().with_tolerance(1e-12);
        let truth = pagerank(&g, &tight);
        let sub = Subgraph::extract(&g, NodeSet::from_sorted(7, [0, 1, 2, 3]));
        let restricted = sub.nodes().restrict(&truth.scores);
        let norm = |v: &[f64]| {
            let s: f64 = v.iter().sum();
            v.iter().map(|x| x / s).collect::<Vec<_>>()
        };
        let truth_n = norm(&restricted);
        let l1 =
            |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum() };
        let sc = StochasticComplementation {
            options: tight.clone(),
            ..StochasticComplementation::default()
        };
        let sc_scores = sc.rank(&g, &sub);
        let lp_scores = LocalPageRank::new(tight).rank(&g, &sub);
        let sc_err = l1(&norm(&sc_scores.local_scores), &truth_n);
        let lp_err = l1(&norm(&lp_scores.local_scores), &truth_n);
        assert!(
            sc_err <= lp_err + 1e-12,
            "SC ({sc_err}) should not lose to local PageRank ({lp_err})"
        );
    }

    #[test]
    fn thread_count_does_not_change_sc_scores() {
        // Multiple expansion rounds over a 300-node pseudo-random graph;
        // the full pipeline (solves, influence, selection) must be
        // bit-identical across threads ∈ {1, 2, 7}.
        let n = 300u32;
        let mut edges = Vec::new();
        for i in 0..n {
            if i % 19 == 7 {
                continue; // dangling
            }
            edges.push((i, (i * 23 + 11) % n));
            edges.push((i, (i + 1) % n));
            if i % 4 == 1 {
                edges.push((i, (i * 5) % n));
            }
        }
        let g = DiGraph::from_edges(n as usize, &edges);
        let sub = Subgraph::extract(&g, NodeSet::from_sorted(n as usize, 0..80u32));
        let mk = |threads: usize| StochasticComplementation {
            options: PageRankOptions::paper()
                .with_tolerance(1e-10)
                .with_threads(threads),
            expansion_rounds: 5,
            ..StochasticComplementation::default()
        };
        let (reference, ref_report) = mk(1).rank_with_report(&g, &sub);
        for threads in [2usize, 7] {
            let (r, report) = mk(threads).rank_with_report(&g, &sub);
            assert_eq!(ref_report, report, "threads={threads}");
            assert_eq!(reference, r, "threads={threads}");
        }
    }

    #[test]
    fn deterministic() {
        let g = figure4();
        let sub = Subgraph::extract(&g, NodeSet::from_sorted(7, [0, 1, 2, 3]));
        let sc = StochasticComplementation::default();
        let (a, ra) = sc.rank_with_report(&g, &sub);
        let (b, rb) = sc.rank_with_report(&g, &sub);
        assert_eq!(a, b);
        assert_eq!(ra, rb);
    }
}
