//! Frontier-influence estimation for SC.
//!
//! Davis & Dhillon select the frontier pages whose addition would change
//! the local PageRank vector the most. Estimating that change exactly
//! means solving PageRank on an `(n+1)`-page graph per candidate; their
//! stochastic-complementation derivation replaces the solve with a
//! one-step estimate, which is what we implement:
//!
//! ```text
//! influence(j) ≈ inflow(j) · (ε · return_fraction(j) + (1 − ε))
//! ```
//!
//! * `inflow(j)` — the PageRank mass the supergraph currently pushes at
//!   `j`: `Σ_{u ∈ S, u→j} p[u] / D_u` (global out-degrees);
//! * `return_fraction(j)` — the share of `j`'s out-links pointing back
//!   into the supergraph: adding a page that bounces authority back
//!   perturbs the local scores far more than a sink.
//!
//! The sweep is `O(Σ_{u∈S} deg(u) + Σ_{j∈F} deg(j))` per round — with the
//! paper-scale frontiers (tens of thousands of candidates per round,
//! Tables V/VI) this, plus the repeated supergraph solves, is SC's cost.

use approxrank_exec::{Executor, Partition};
use approxrank_graph::{BitSet, DiGraph, NodeId};

/// Scores every frontier candidate. `members` and `scores` describe the
/// current supergraph (global ids and their current PageRank estimates,
/// parallel vectors); `in_super` is the supergraph membership bitset.
///
/// Returns `(candidate, influence)` pairs in the frontier's order.
pub fn frontier_influence(
    global: &DiGraph,
    in_super: &BitSet,
    members: &[NodeId],
    scores: &[f64],
    frontier: &[NodeId],
    damping: f64,
) -> Vec<(NodeId, f64)> {
    frontier_influence_on(
        global,
        in_super,
        members,
        scores,
        frontier,
        damping,
        &Executor::sequential(),
    )
}

/// [`frontier_influence`] on a caller-supplied executor: the inflow
/// accumulation fans out over member chunks (per-chunk partial vectors,
/// folded elementwise in ascending chunk order) and the per-candidate
/// scoring over frontier chunks — both bit-identical at any thread count.
pub fn frontier_influence_on(
    global: &DiGraph,
    in_super: &BitSet,
    members: &[NodeId],
    scores: &[f64],
    frontier: &[NodeId],
    damping: f64,
    exec: &Executor,
) -> Vec<(NodeId, f64)> {
    debug_assert_eq!(members.len(), scores.len());
    // Accumulate inflow at every frontier page in one pass over the
    // supergraph's out-edges (sparse map over global ids).
    let mut inflow_index = vec![u32::MAX; global.num_nodes()];
    for (idx, &j) in frontier.iter().enumerate() {
        inflow_index[j as usize] = idx as u32;
    }
    let member_part = Partition::uniform(members.len(), Partition::auto_chunks(members.len()));
    let inflow = exec
        .map_reduce(
            &member_part,
            |_, range| {
                let mut partial = vec![0.0f64; frontier.len()];
                for (&u, &p) in members[range.clone()].iter().zip(&scores[range]) {
                    let d = global.out_degree(u);
                    if d == 0 {
                        continue;
                    }
                    let share = p / d as f64;
                    for &t in global.out_neighbors(u) {
                        let idx = inflow_index[t as usize];
                        if idx != u32::MAX {
                            partial[idx as usize] += share;
                        }
                    }
                }
                partial
            },
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(&b) {
                    *x += y;
                }
                a
            },
        )
        .unwrap_or_default();

    let mut out: Vec<(NodeId, f64)> = vec![(0, 0.0); frontier.len()];
    let frontier_part = Partition::uniform(frontier.len(), Partition::auto_chunks(frontier.len()));
    exec.for_each_chunk(&mut out, &frontier_part, |_, range, slot| {
        for ((o, &j), &inf) in slot
            .iter_mut()
            .zip(&frontier[range.clone()])
            .zip(&inflow[range])
        {
            let d = global.out_degree(j);
            let ret = if d == 0 {
                0.0
            } else {
                global
                    .out_neighbors(j)
                    .iter()
                    .filter(|&&t| in_super.contains(t as usize))
                    .count() as f64
                    / d as f64
            };
            *o = (j, inf * (damping * ret + (1.0 - damping)));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bouncing_candidate_beats_sink() {
        // Supergraph = {0}; 0 links to 1 and 2 equally. 1 links back to 0;
        // 2 links away to 3. Equal inflow, but 1 returns authority.
        let g = DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 0), (2, 3)]);
        let in_super = BitSet::from_indices(4, [0usize]);
        let infl = frontier_influence(&g, &in_super, &[0], &[1.0], &[1, 2], 0.85);
        let f1 = infl.iter().find(|e| e.0 == 1).unwrap().1;
        let f2 = infl.iter().find(|e| e.0 == 2).unwrap().1;
        assert!(f1 > f2, "{f1} vs {f2}");
    }

    #[test]
    fn inflow_scales_with_source_score() {
        // 0 and 1 both link to candidate 2; 0 carries more mass.
        let g = DiGraph::from_edges(3, &[(0, 2), (1, 2)]);
        let in_super = BitSet::from_indices(3, [0usize, 1]);
        let a = frontier_influence(&g, &in_super, &[0, 1], &[0.9, 0.1], &[2], 0.85);
        let b = frontier_influence(&g, &in_super, &[0, 1], &[0.5, 0.5], &[2], 0.85);
        assert!(
            a[0].1 == b[0].1,
            "total inflow identical when shares sum equal"
        );
    }

    #[test]
    fn dangling_candidate_gets_teleport_only_weight() {
        let g = DiGraph::from_edges(2, &[(0, 1)]);
        let in_super = BitSet::from_indices(2, [0usize]);
        let infl = frontier_influence(&g, &in_super, &[0], &[1.0], &[1], 0.85);
        // inflow = 1.0, return = 0 → influence = 0.15.
        assert!((infl[0].1 - 0.15).abs() < 1e-12);
    }

    #[test]
    fn pool_matches_sequential_bitwise() {
        // 300 members feeding a 150-page frontier through a pseudo-random
        // edge pattern; wide enough that both chunk grids actually split.
        let n = 600u32;
        let mut edges = Vec::new();
        for u in 0..300u32 {
            for j in 0..(1 + u % 4) {
                edges.push((u, 300 + ((u * 37 + j * 101) % 150)));
            }
            edges.push((u, (u + 1) % 300));
        }
        for f in 300..450u32 {
            if f % 3 == 0 {
                edges.push((f, f % 300)); // bounces back into the supergraph
            }
            edges.push((f, 450 + (f % 150)));
        }
        let g = DiGraph::from_edges(n as usize, &edges);
        let in_super = BitSet::from_indices(n as usize, (0..300).map(|i| i as usize));
        let members: Vec<NodeId> = (0..300).collect();
        let scores: Vec<f64> = members
            .iter()
            .map(|&u| 1.0 / (1.0 + (u as f64) * 0.37))
            .collect();
        let frontier: Vec<NodeId> = (300..450).collect();
        let reference = frontier_influence(&g, &in_super, &members, &scores, &frontier, 0.85);
        for threads in [2usize, 7] {
            let exec = Executor::new(threads);
            let pooled =
                frontier_influence_on(&g, &in_super, &members, &scores, &frontier, 0.85, &exec);
            assert_eq!(reference.len(), pooled.len());
            assert!(
                reference
                    .iter()
                    .zip(&pooled)
                    .all(|(a, b)| a.0 == b.0 && a.1.to_bits() == b.1.to_bits()),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn dangling_member_contributes_no_inflow() {
        let g = DiGraph::from_edges(3, &[(0, 2)]);
        let in_super = BitSet::from_indices(3, [0usize, 1]);
        // Member 1 is dangling; must not panic or divide by zero.
        let infl = frontier_influence(&g, &in_super, &[0, 1], &[0.5, 0.5], &[2], 0.85);
        assert!((infl[0].1 - 0.5 * 0.15).abs() < 1e-12);
    }
}
