//! The common interface every subgraph-ranking algorithm implements.

use approxrank_graph::{DiGraph, Subgraph};
use approxrank_trace::Observer;

/// How an *estimated* (non-exact) result was produced and how far it may
/// be from the converged answer. Exact solvers leave
/// [`RankScores::estimate`] as `None`; the Monte-Carlo and local-push
/// estimators fill it in so callers can distinguish an approximate
/// answer from a converged one.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Estimate {
    /// Total random walks backing the estimate (0 for local push).
    pub walks: u64,
    /// The requested accuracy target (the push threshold budget, echoed
    /// for Monte-Carlo).
    pub epsilon: f64,
    /// An explicit error bound or measurement: for local push the
    /// remaining residual mass (`‖π − p̂‖₁ ≤ residual`); for Monte-Carlo
    /// the L1 change of one exact power step applied to the estimate.
    pub residual: f64,
}

/// The output of a subgraph-ranking algorithm.
#[derive(Clone, Debug, PartialEq)]
pub struct RankScores {
    /// Score per local page, in the subgraph's local-id order.
    pub local_scores: Vec<f64>,
    /// Score of the external node `Λ` (absent for algorithms without one,
    /// e.g. local PageRank).
    pub lambda_score: Option<f64>,
    /// Power iterations the final solve took (for estimators: sources
    /// walked, or pushes performed).
    pub iterations: usize,
    /// Whether the final solve converged within its iteration cap.
    pub converged: bool,
    /// Present when the scores are an estimate rather than a converged
    /// solve (see [`Estimate`]).
    pub estimate: Option<Estimate>,
}

impl RankScores {
    /// Total probability mass assigned to local pages.
    pub fn local_mass(&self) -> f64 {
        self.local_scores.iter().sum()
    }

    /// Local scores rescaled to sum to 1 — the form the evaluation's L1
    /// comparisons use so that algorithms assigning different total mass
    /// to the subgraph (e.g. local PageRank's full unit mass vs
    /// ApproxRank's `Λ`-split mass) are compared on distribution shape.
    pub fn normalized_local(&self) -> Vec<f64> {
        let mass = self.local_mass();
        if mass <= 0.0 {
            return self.local_scores.clone();
        }
        self.local_scores.iter().map(|s| s / mass).collect()
    }
}

/// A ranking algorithm that estimates PageRank-style scores for the pages
/// of a subgraph, given (at most) the global graph and the extracted
/// subgraph structure.
pub trait SubgraphRanker {
    /// Short display name used in experiment tables
    /// (e.g. `"ApproxRank"`, `"SC"`).
    fn name(&self) -> &'static str;

    /// Estimates scores for the subgraph's local pages.
    fn rank(&self, global: &DiGraph, subgraph: &Subgraph) -> RankScores;

    /// [`Self::rank`] with telemetry: phase spans and solver iteration
    /// events flow to `obs`. The default ignores the observer, so existing
    /// implementors keep working; the in-tree rankers all override it (and
    /// implement `rank` by passing [`approxrank_trace::null()`] here).
    fn rank_observed(
        &self,
        global: &DiGraph,
        subgraph: &Subgraph,
        obs: &dyn Observer,
    ) -> RankScores {
        let _ = obs;
        self.rank(global, subgraph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        let r = RankScores {
            local_scores: vec![0.1, 0.3],
            lambda_score: Some(0.6),
            iterations: 3,
            converged: true,
            estimate: None,
        };
        assert!((r.local_mass() - 0.4).abs() < 1e-15);
        let n = r.normalized_local();
        assert!((n[0] - 0.25).abs() < 1e-15);
        assert!((n[1] - 0.75).abs() < 1e-15);
    }

    #[test]
    fn normalize_zero_mass_is_identity() {
        let r = RankScores {
            local_scores: vec![0.0, 0.0],
            lambda_score: None,
            iterations: 0,
            converged: true,
            estimate: None,
        };
        assert_eq!(r.normalized_local(), vec![0.0, 0.0]);
    }
}
