//! The error analysis of §IV-C: Theorem 2 and its empirical validation.
//!
//! Theorem 2 bounds the gap between IdealRank and ApproxRank after `m`
//! iterations (from a common start) by
//!
//! ```text
//! ‖R_ideal^m − R_approx^m‖₁ ≤ (ε + ε² + … + ε^m) · ‖E − E_approx‖₁
//! ```
//!
//! with limit `ε/(1−ε) · ‖E − E_approx‖₁` — a factor 5.67 at ε = 0.85.
//! `E` is the true relative importance of the external pages
//! (`R[j]/EXTSum`) and `E_approx` the uniform assumption (`1/(N−n)`).

use approxrank_graph::Subgraph;

use crate::extended::ExtendedLocalGraph;

/// `‖E − E_approx‖₁` — the a-priori error of the uniform external
/// assumption, computed from the true global scores:
/// `Σ_ext |R[j]/EXTSum − 1/(N−n)|`.
///
/// Always in `[0, 2)`; zero exactly when external pages are equally
/// important (then ApproxRank *is* IdealRank).
///
/// # Panics
/// Panics if the score vector's length differs from `N`.
pub fn external_assumption_gap(global_scores: &[f64], subgraph: &Subgraph) -> f64 {
    let big_n = subgraph.global_nodes();
    assert_eq!(global_scores.len(), big_n, "scores must cover all N pages");
    let num_ext = big_n - subgraph.len();
    if num_ext == 0 {
        return 0.0;
    }
    let local_mass: f64 = subgraph
        .nodes()
        .members()
        .iter()
        .map(|&g| global_scores[g as usize])
        .sum();
    let ext_sum: f64 = global_scores.iter().sum::<f64>() - local_mass;
    let uniform = 1.0 / num_ext as f64;
    let mut gap = 0.0;
    for (j, &r) in global_scores.iter().enumerate() {
        if !subgraph.nodes().contains(j as u32) {
            gap += (r / ext_sum - uniform).abs();
        }
    }
    gap
}

/// The Theorem-2 bound after `m` iterations:
/// `(ε + ε² + … + ε^m) · gap`. Pass `m = None` for the limit
/// `ε/(1−ε) · gap`.
pub fn theorem2_bound(damping: f64, m: Option<usize>, gap: f64) -> f64 {
    assert!((0.0..1.0).contains(&damping), "damping in [0,1)");
    let factor = match m {
        None => damping / (1.0 - damping),
        Some(m) => {
            // ε·(1−ε^m)/(1−ε)
            damping * (1.0 - damping.powi(m as i32)) / (1.0 - damping)
        }
    };
    factor * gap
}

/// Runs IdealRank and ApproxRank side by side for `m` iterations from the
/// same start vector and records `‖R_ideal^i − R_approx^i‖₁` over the
/// local entries after each iteration — the quantity Theorem 2 bounds.
///
/// Following the proof model of Lemmas 1–2 exactly, the `Λ` state is held
/// at weight 1 in both chains (the lemmas write the external contribution
/// as `ε·Σ_j A_jk E[j]` with no `Λ`-mass factor), so the recorded gaps
/// satisfy the stated bound rigorously, not just empirically.
pub fn lockstep_gaps(
    ideal: &ExtendedLocalGraph,
    approx: &ExtendedLocalGraph,
    damping: f64,
    iterations: usize,
) -> Vec<f64> {
    let n = ideal.num_local();
    assert_eq!(n, approx.num_local(), "same subgraph required");
    let mut start = ideal.personalization();
    start[n] = 1.0;
    let mut xi = start.clone();
    let mut xa = start;
    let mut ni = vec![0.0; n + 1];
    let mut na = vec![0.0; n + 1];
    let mut gaps = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        ideal.step(&xi, &mut ni, damping);
        approx.step(&xa, &mut na, damping);
        std::mem::swap(&mut xi, &mut ni);
        std::mem::swap(&mut xa, &mut na);
        // Pin Λ's weight, per the proof model.
        xi[n] = 1.0;
        xa[n] = 1.0;
        let gap: f64 = xi[..n]
            .iter()
            .zip(&xa[..n])
            .map(|(a, b)| (a - b).abs())
            .sum();
        gaps.push(gap);
    }
    gaps
}

/// `‖R_ideal − R_approx‖₁` over local pages for the *converged* solutions
/// of both algorithms — the quantity the limit form of Theorem 2 bounds
/// in practice (the paper's §IV-C closing remark).
pub fn converged_gap(ideal_scores: &[f64], approx_scores: &[f64]) -> f64 {
    assert_eq!(ideal_scores.len(), approx_scores.len());
    ideal_scores
        .iter()
        .zip(approx_scores)
        .map(|(a, b)| (a - b).abs())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ApproxRank, IdealRank};
    use approxrank_graph::{DiGraph, NodeSet};
    use approxrank_pagerank::{pagerank, PageRankOptions};

    fn figure4() -> DiGraph {
        DiGraph::from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (0, 4),
                (0, 6),
                (1, 3),
                (2, 1),
                (2, 3),
                (3, 0),
                (4, 2),
                (4, 5),
                (4, 6),
                (5, 2),
                (5, 6),
                (6, 2),
                (6, 3),
            ],
        )
    }

    #[test]
    fn bound_formula() {
        assert!((theorem2_bound(0.85, None, 1.0) - 0.85 / 0.15).abs() < 1e-12);
        assert!((theorem2_bound(0.85, Some(1), 1.0) - 0.85).abs() < 1e-12);
        assert!((theorem2_bound(0.85, Some(2), 1.0) - (0.85 + 0.85 * 0.85)).abs() < 1e-12);
        // Monotone in m, approaching the limit.
        assert!(theorem2_bound(0.85, Some(50), 1.0) < theorem2_bound(0.85, None, 1.0));
    }

    #[test]
    fn gap_zero_when_external_uniform() {
        // Two symmetric external pages: E is exactly uniform.
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 0), (0, 2), (0, 3), (2, 0), (3, 0)]);
        let truth = pagerank(&g, &PageRankOptions::paper().with_tolerance(1e-13));
        let sub = Subgraph::extract(&g, NodeSet::from_sorted(4, [0, 1]));
        let gap = external_assumption_gap(&truth.scores, &sub);
        assert!(gap < 1e-9, "gap {gap}");
    }

    #[test]
    fn theorem2_holds_per_iteration() {
        let g = figure4();
        let opts = PageRankOptions::paper().with_tolerance(1e-13);
        let truth = pagerank(&g, &opts);
        let sub = Subgraph::extract(&g, NodeSet::from_sorted(7, [0, 1, 2, 3]));
        let ideal = IdealRank {
            options: opts.clone(),
            global_scores: truth.scores.clone(),
        };
        let ie = ideal.extended_graph(&g, &sub);
        let ae = ApproxRank::new(opts).extended_graph(&g, &sub);
        let gap = external_assumption_gap(&truth.scores, &sub);
        let eps = 0.85;
        let measured = lockstep_gaps(&ie, &ae, eps, 30);
        for (i, &m) in measured.iter().enumerate() {
            let bound = theorem2_bound(eps, Some(i + 1), gap);
            assert!(
                m <= bound + 1e-12,
                "iteration {}: measured {m} > bound {bound}",
                i + 1
            );
        }
        // The limit bound also holds for the converged solutions.
        let limit = theorem2_bound(eps, None, gap);
        assert!(measured.last().unwrap() <= &limit);
    }

    #[test]
    fn gap_bounded_by_two() {
        let g = figure4();
        let truth = pagerank(&g, &PageRankOptions::paper());
        let sub = Subgraph::extract(&g, NodeSet::from_sorted(7, [0, 1, 2, 3]));
        let gap = external_assumption_gap(&truth.scores, &sub);
        assert!((0.0..2.0).contains(&gap));
    }
}
