//! JXP-style peer-to-peer PageRank approximation (Parreira, Donato,
//! Michel & Weikum, VLDB'06 — the paper's reference \[16\]).
//!
//! The paper's §I motivates subgraph ranking with P2P search networks;
//! §II-C describes JXP: every peer holds a fragment of the web graph plus
//! a *world node* standing for everything else (the direct ancestor of
//! the paper's `Λ`), ranks its fragment locally, then repeatedly *meets*
//! other peers, exchanging score knowledge and re-ranking. JXP scores
//! converge to the true global PageRank as meetings accumulate.
//!
//! This implementation reuses the extended-local-graph machinery: a
//! peer's world-node row blends IdealRank-style weighting (for external
//! pages whose scores it has learned in meetings) with ApproxRank's
//! uniform assumption (for pages it knows nothing about). With no
//! meetings at all, a peer's estimate *is* ApproxRank; with full
//! knowledge it *is* IdealRank — the sweep in between is the JXP
//! convergence behaviour the tests verify.
//!
//! Meetings follow an explicit caller-supplied schedule, keeping the
//! module deterministic (the original JXP meets peers uniformly at
//! random; a random schedule can be layered on top).

use std::collections::BTreeMap;

use approxrank_graph::{DiGraph, NodeId, NodeSet, Subgraph};
use approxrank_pagerank::PageRankOptions;

use crate::extended::ExtendedLocalGraph;

/// One peer: a fragment of the global graph plus learned score knowledge.
#[derive(Clone, Debug)]
pub struct Peer {
    subgraph: Subgraph,
    /// Learned external scores: global id → last heard estimate.
    /// A BTreeMap keeps summation order (and thus floating-point
    /// results) deterministic run-to-run.
    knowledge: BTreeMap<NodeId, f64>,
    /// Current estimates for the peer's own pages (local-id order).
    scores: Vec<f64>,
    /// Current estimate of the external node's mass.
    lambda: f64,
}

impl Peer {
    /// Scores for the peer's own pages, in its subgraph's local order.
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// The peer's subgraph.
    pub fn subgraph(&self) -> &Subgraph {
        &self.subgraph
    }

    /// Number of external pages this peer has learned scores for.
    pub fn knowledge_size(&self) -> usize {
        self.knowledge.len()
    }
}

/// A JXP network over a partition of the global graph.
pub struct JxpNetwork {
    peers: Vec<Peer>,
    options: PageRankOptions,
    total_nodes: usize,
}

impl JxpNetwork {
    /// Builds the network: one peer per node set. Sets may overlap (JXP
    /// permits overlapping crawls); together they need not cover the
    /// graph. Every peer starts with zero knowledge and an
    /// ApproxRank-style initial ranking.
    pub fn new(global: &DiGraph, fragments: Vec<NodeSet>, options: PageRankOptions) -> Self {
        assert!(!fragments.is_empty(), "need at least one peer");
        let total_nodes = global.num_nodes();
        let mut peers = Vec::with_capacity(fragments.len());
        for nodes in fragments {
            assert!(!nodes.is_empty(), "peers need non-empty fragments");
            let subgraph = Subgraph::extract(global, nodes);
            let n = subgraph.len();
            peers.push(Peer {
                subgraph,
                knowledge: BTreeMap::new(),
                scores: vec![0.0; n],
                lambda: 0.0,
            });
        }
        let mut net = JxpNetwork {
            peers,
            options,
            total_nodes,
        };
        for p in 0..net.peers.len() {
            net.rerank(p);
        }
        net
    }

    /// Number of peers.
    pub fn num_peers(&self) -> usize {
        self.peers.len()
    }

    /// Read access to a peer.
    pub fn peer(&self, index: usize) -> &Peer {
        &self.peers[index]
    }

    /// Re-ranks peer `p` with its current knowledge: the world-node row
    /// uses learned scores where available and the uniform ApproxRank
    /// assumption elsewhere.
    fn rerank(&mut self, p: usize) {
        let peer = &self.peers[p];
        let sub = &peer.subgraph;
        let n = sub.len();
        let big_n = self.total_nodes;
        if big_n == n {
            // Degenerate single-peer-owns-everything case.
            let ext = ExtendedLocalGraph::new(sub, vec![0.0; n], 0.0);
            let r = ext.solve(&self.options);
            let peer = &mut self.peers[p];
            peer.lambda = r.scores[n];
            peer.scores = r.scores[..n].to_vec();
            return;
        }
        let num_ext = (big_n - n) as f64;

        // Estimate each boundary source's score: learned knowledge, or
        // the uniform share of the unknown external mass.
        let known_mass: f64 = peer.knowledge.values().sum();
        let known_count = peer.knowledge.len() as f64;
        // Assume external mass ≈ (N−n)/N when nothing better is known
        // (the P_ideal prior); refine with the current λ estimate.
        let ext_mass_prior = if peer.lambda > 0.0 {
            peer.lambda
        } else {
            num_ext / big_n as f64
        };
        let unknown_mass = (ext_mass_prior - known_mass).max(0.0);
        let unknown_each = unknown_mass / (num_ext - known_count).max(1.0);

        let mut from_lambda = vec![0.0f64; n];
        let mut boundary_weighted = 0.0;
        for e in &sub.boundary().in_edges {
            let est = peer
                .knowledge
                .get(&e.source)
                .copied()
                .unwrap_or(unknown_each);
            let w = est / e.source_out_degree as f64;
            from_lambda[e.target_local as usize] += w;
            boundary_weighted += w;
        }
        // Total external estimated mass; everything not flowing across
        // the boundary self-loops at the world node. (External dangling
        // pages are folded into the self-loop — the peer cannot see
        // degrees of pages it never met, which is faithful to JXP.)
        let ext_sum = (known_mass + unknown_mass).max(f64::MIN_POSITIVE);
        for f in from_lambda.iter_mut() {
            *f /= ext_sum;
        }
        let mut lambda_self = 1.0 - boundary_weighted / ext_sum;
        // Guard against a peer having learned scores that overshoot.
        if lambda_self < 0.0 {
            let scale = 1.0 / (boundary_weighted / ext_sum);
            for f in from_lambda.iter_mut() {
                *f *= scale;
            }
            lambda_self = 0.0;
        }
        let ext = ExtendedLocalGraph::new(sub, from_lambda, lambda_self);
        let r = ext.solve(&self.options);
        let peer = &mut self.peers[p];
        peer.lambda = r.scores[n];
        peer.scores = r.scores[..n].to_vec();
    }

    /// One meeting between peers `a` and `b`: each learns the other's
    /// current estimates for pages it does not own, then re-ranks.
    ///
    /// # Panics
    /// Panics if `a == b` or either index is out of range.
    pub fn meet(&mut self, a: usize, b: usize) {
        assert_ne!(a, b, "a peer cannot meet itself");
        let exchange = |from: &Peer, to: &Peer| -> Vec<(NodeId, f64)> {
            from.subgraph
                .nodes()
                .members()
                .iter()
                .enumerate()
                .filter(|(_, &g)| !to.subgraph.nodes().contains(g))
                .map(|(li, &g)| (g, from.scores[li]))
                .collect()
        };
        let to_b = exchange(&self.peers[a], &self.peers[b]);
        let to_a = exchange(&self.peers[b], &self.peers[a]);
        for (g, s) in to_a {
            self.peers[a].knowledge.insert(g, s);
        }
        for (g, s) in to_b {
            self.peers[b].knowledge.insert(g, s);
        }
        self.rerank(a);
        self.rerank(b);
    }

    /// Runs full round-robin meeting rounds: in each round every
    /// unordered peer pair meets once (deterministic order).
    pub fn round_robin(&mut self, rounds: usize) {
        for _ in 0..rounds {
            for a in 0..self.peers.len() {
                for b in (a + 1)..self.peers.len() {
                    self.meet(a, b);
                }
            }
        }
    }

    /// The network's combined estimate: each page's score from the last
    /// peer that owns it (overlapping fragments: later peers win),
    /// normalized to unit mass — individual peers track *relative*
    /// importance, so the combined raw masses need not sum to one.
    pub fn global_estimate(&self) -> Vec<f64> {
        let mut est = vec![0.0f64; self.total_nodes];
        for peer in &self.peers {
            for (li, &g) in peer.subgraph.nodes().members().iter().enumerate() {
                est[g as usize] = peer.scores[li];
            }
        }
        let mass: f64 = est.iter().sum();
        if mass > 0.0 {
            for v in est.iter_mut() {
                *v /= mass;
            }
        }
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxrank_metrics::l1_distance;
    use approxrank_pagerank::pagerank;

    /// Three-cluster graph split across three peers.
    fn setup() -> (DiGraph, Vec<NodeSet>) {
        let n = 90u32;
        let mut edges = Vec::new();
        for c in 0..3u32 {
            let base = c * 30;
            for i in 0..30 {
                edges.push((base + i, base + (i + 1) % 30));
                edges.push((base + i, base + (i * 7 + 3) % 30));
            }
            // Cross-cluster endorsements, deliberately asymmetric.
            for k in 0..(3 - c) * 4 {
                edges.push((base + k, ((c + 1) % 3) * 30 + k));
            }
        }
        let g = DiGraph::from_edges(n as usize, &edges);
        let fragments = (0..3)
            .map(|c| NodeSet::from_sorted(n as usize, (c * 30)..(c * 30 + 30)))
            .collect();
        (g, fragments)
    }

    fn opts() -> PageRankOptions {
        PageRankOptions::paper().with_tolerance(1e-12)
    }

    #[test]
    fn zero_meetings_equals_approxrank_spirit() {
        let (g, frags) = setup();
        let net = JxpNetwork::new(&g, frags, opts());
        // Sanity: every peer has a ranking and no knowledge yet.
        for p in 0..net.num_peers() {
            assert_eq!(net.peer(p).knowledge_size(), 0);
            assert_eq!(net.peer(p).scores().len(), 30);
            assert!(net.peer(p).scores().iter().all(|&s| s > 0.0));
        }
    }

    #[test]
    fn meetings_improve_the_estimate() {
        let (g, frags) = setup();
        let truth = pagerank(&g, &opts());
        let mut net = JxpNetwork::new(&g, frags, opts());
        let err_before = l1_distance(&net.global_estimate(), &truth.scores);
        net.round_robin(4);
        let err_after = l1_distance(&net.global_estimate(), &truth.scores);
        assert!(
            err_after < err_before,
            "meetings must help: {err_after} vs {err_before}"
        );
    }

    #[test]
    fn converges_toward_global_pagerank() {
        let (g, frags) = setup();
        let truth = pagerank(&g, &opts());
        let mut net = JxpNetwork::new(&g, frags, opts());
        net.round_robin(25);
        let err = l1_distance(&net.global_estimate(), &truth.scores);
        // Every page's in-neighborhood is eventually known exactly, so the
        // fixed point is the true PageRank (up to the world-node residue
        // from unseen-degree folding, small on this graph).
        assert!(err < 0.02, "L1 after 25 rounds: {err}");
    }

    #[test]
    fn knowledge_grows_monotonically() {
        let (g, frags) = setup();
        let mut net = JxpNetwork::new(&g, frags, opts());
        net.meet(0, 1);
        let k1 = net.peer(0).knowledge_size();
        assert!(k1 > 0);
        net.meet(0, 2);
        assert!(net.peer(0).knowledge_size() > k1);
    }

    #[test]
    fn deterministic() {
        let (g, frags) = setup();
        let run = || {
            let mut net = JxpNetwork::new(&g, frags.clone(), opts());
            net.round_robin(3);
            net.global_estimate()
        };
        assert_eq!(run(), run());
    }
}
