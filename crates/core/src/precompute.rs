//! Global precomputation for multi-subgraph workloads.
//!
//! The paper (§IV-B, last paragraph) points out that ApproxRank "is
//! suitable to adopt precomputation for various subgraphs": with the same
//! global graph, `A_approx` can be assembled from the difference between
//! local and global aggregates. This module captures the global side of
//! that difference — per-node out-degrees and the dangling count — so
//! that building `A_approx` for any subgraph afterwards touches only the
//! subgraph and its boundary.
//!
//! The ablation bench `construction` measures exactly this naive-vs-
//! precomputed difference.

use approxrank_graph::DiGraph;

/// Global aggregates reused across subgraphs of the same global graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GlobalPrecomputation {
    out_degrees: Vec<u32>,
    num_dangling: usize,
}

impl GlobalPrecomputation {
    /// One `O(N)` pass over the degree array.
    pub fn compute(global: &DiGraph) -> Self {
        let mut out_degrees = Vec::with_capacity(global.num_nodes());
        let mut num_dangling = 0;
        for u in global.nodes() {
            let d = global.out_degree(u) as u32;
            num_dangling += usize::from(d == 0);
            out_degrees.push(d);
        }
        GlobalPrecomputation {
            out_degrees,
            num_dangling,
        }
    }

    /// `N`, the global node count this precomputation belongs to.
    pub fn num_nodes(&self) -> usize {
        self.out_degrees.len()
    }

    /// Number of dangling pages in the whole graph.
    pub fn num_dangling(&self) -> usize {
        self.num_dangling
    }

    /// Global out-degree of a page.
    pub fn out_degree(&self, node: u32) -> u32 {
        self.out_degrees[node as usize]
    }
}

/// The two global scalars the Λ-collapse actually consumes: everything
/// else `A_approx` needs comes from the [`approxrank_graph::Subgraph`]
/// itself (local edges, boundary in-edges with source out-degrees, and
/// external out-link counts). A shard can therefore carry these two
/// numbers instead of the whole graph — the foundation of bit-identical
/// sharded serving.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GlobalAggregates {
    /// `N`, the global node count.
    pub num_nodes: usize,
    /// Number of dangling pages in the whole global graph.
    pub num_dangling: usize,
}

impl GlobalAggregates {
    /// One `O(N)` pass over the degree array.
    pub fn compute(global: &DiGraph) -> Self {
        GlobalAggregates {
            num_nodes: global.num_nodes(),
            num_dangling: global.nodes().filter(|&u| global.is_dangling(u)).count(),
        }
    }
}

impl From<&GlobalPrecomputation> for GlobalAggregates {
    fn from(pre: &GlobalPrecomputation) -> Self {
        GlobalAggregates {
            num_nodes: pre.num_nodes(),
            num_dangling: pre.num_dangling(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_match_precomputation() {
        let g = DiGraph::from_edges(5, &[(0, 1), (1, 2), (0, 3)]);
        let pre = GlobalPrecomputation::compute(&g);
        let agg = GlobalAggregates::compute(&g);
        assert_eq!(agg, GlobalAggregates::from(&pre));
        assert_eq!(agg.num_nodes, 5);
        assert_eq!(agg.num_dangling, 3);
    }

    #[test]
    fn counts_match_graph() {
        let g = DiGraph::from_edges(5, &[(0, 1), (1, 2), (0, 3)]);
        let pre = GlobalPrecomputation::compute(&g);
        assert_eq!(pre.num_nodes(), 5);
        assert_eq!(pre.num_dangling(), 3); // 2, 3, 4
        assert_eq!(pre.out_degree(0), 2);
        assert_eq!(pre.out_degree(4), 0);
    }
}
