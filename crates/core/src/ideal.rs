//! IdealRank (paper §III): the exact solution when external PageRank
//! scores are known.
//!
//! The `Λ` row of the collapsed matrix weights each external page `j` by
//! `R[j] / EXTSum` (Equation 4), so `Λ` redistributes authority exactly as
//! the external region of the true global walk does. Theorem 1: the fixed
//! point's local entries equal the true global PageRank scores and the
//! `Λ` entry equals the total external mass — `tests` and the repro
//! harness verify this to solver tolerance.

use approxrank_exec::{Executor, Partition};
use approxrank_graph::{DiGraph, Subgraph};
use approxrank_pagerank::{emit_exec_stats, PageRankOptions};
use approxrank_trace::Observer;

use crate::extended::ExtendedLocalGraph;
use crate::par::boundary_partition;
use crate::ranker::{RankScores, SubgraphRanker};

/// The IdealRank algorithm. Holds the known global score vector
/// (length `N`; only the external entries are consulted).
#[derive(Clone, Debug)]
pub struct IdealRank {
    /// Solver settings (damping, tolerance, iteration cap).
    pub options: PageRankOptions,
    /// Known global PageRank scores, indexed by global node id.
    pub global_scores: Vec<f64>,
}

impl IdealRank {
    /// Creates an IdealRank solver with the paper's default options.
    pub fn new(global_scores: Vec<f64>) -> Self {
        IdealRank {
            options: PageRankOptions::paper(),
            global_scores,
        }
    }

    /// Builds the collapsed transition structure `A_ideal` for `subgraph`.
    ///
    /// Requires the global graph only to locate dangling external pages;
    /// every per-edge quantity comes from the subgraph's boundary.
    ///
    /// # Panics
    /// Panics if the score vector's length differs from the global node
    /// count or the subgraph has no external pages with positive mass.
    pub fn extended_graph(&self, global: &DiGraph, subgraph: &Subgraph) -> ExtendedLocalGraph {
        self.extended_graph_on(global, subgraph, &self.executor(subgraph))
    }

    /// An executor sized from `self.options.threads`, clamped so tiny
    /// subgraphs never pay for idle workers.
    fn executor(&self, subgraph: &Subgraph) -> Executor {
        Executor::new(self.options.threads.min(subgraph.len().max(1)))
    }

    /// [`Self::extended_graph`] on a caller-supplied executor: the
    /// dangling-mass census, the score-weighted Λ-row accumulation, and
    /// the CSR assembly fan out over the pool; the chunk grid depends
    /// only on the data, so the structure is bit-identical at any thread
    /// count.
    pub fn extended_graph_on(
        &self,
        global: &DiGraph,
        subgraph: &Subgraph,
        exec: &Executor,
    ) -> ExtendedLocalGraph {
        let n = subgraph.len();
        let big_n = subgraph.global_nodes();
        assert_eq!(
            self.global_scores.len(),
            big_n,
            "global score vector must cover all N pages"
        );
        let r = &self.global_scores;

        // EXTSum = Σ_ext R[j]; dangling external mass for the 1/N rows.
        let local_mass: f64 = subgraph
            .nodes()
            .members()
            .iter()
            .map(|&g| r[g as usize])
            .sum();
        let global_part = Partition::uniform(big_n, Partition::auto_chunks(big_n));
        let total_mass = exec
            .map_reduce(
                &global_part,
                |_, range| r[range].iter().sum::<f64>(),
                |a, b| a + b,
            )
            .unwrap_or(0.0);
        let ext_sum = total_mass - local_mass;
        assert!(
            big_n == n || ext_sum > 0.0,
            "external pages must hold positive mass"
        );
        let dang_ext_mass = exec
            .map_reduce(
                &global_part,
                |_, range| {
                    let mut acc = 0.0;
                    for u in range {
                        let u = u as u32;
                        if global.is_dangling(u) && !subgraph.nodes().contains(u) {
                            acc += r[u as usize];
                        }
                    }
                    acc
                },
                |a, b| a + b,
            )
            .unwrap_or(0.0);

        // Λ → k: score-weighted boundary in-flow plus the dangling share.
        // `boundary_flow` is Σ_{ext j non-dangling} R[j]·(local targets of
        // j)/D_j, needed for the Λ self-loop via complement.
        let edges = &subgraph.boundary().in_edges;
        let (edge_part, target_part) = boundary_partition(edges, n);
        let mut from_lambda = vec![0.0f64; n];
        let boundary_flow = exec
            .map_chunks(
                &mut from_lambda,
                &target_part,
                |c, trange, slot| {
                    let mut flow = 0.0;
                    for e in &edges[edge_part.range(c)] {
                        let w = r[e.source as usize] / e.source_out_degree as f64;
                        slot[e.target_local as usize - trange.start] += w;
                        flow += w;
                    }
                    flow
                },
                |a, b| a + b,
            )
            .unwrap_or(0.0);
        if big_n > n {
            let inv_big_n = 1.0 / big_n as f64;
            let per_local_dangling = dang_ext_mass * inv_big_n;
            let node_part = Partition::uniform(n, Partition::auto_chunks(n));
            exec.for_each_chunk(&mut from_lambda, &node_part, |_, _, slot| {
                for f in slot {
                    *f = (*f + per_local_dangling) / ext_sum;
                }
            });
            // Non-dangling external mass flows either to local pages
            // (boundary_flow) or among external pages; dangling external
            // mass sends (N−n)/N of itself to Λ.
            let nondangling_ext_mass = ext_sum - dang_ext_mass;
            let lambda_self = ((nondangling_ext_mass - boundary_flow)
                + dang_ext_mass * (big_n - n) as f64 * inv_big_n)
                / ext_sum;
            ExtendedLocalGraph::new_on(subgraph, from_lambda, lambda_self, exec)
        } else {
            ExtendedLocalGraph::new_on(subgraph, vec![0.0; n], 0.0, exec)
        }
    }

    /// Runs IdealRank with a non-uniform *global* personalization vector
    /// (topic-sensitive PageRank). Theorem 1 carries over: the proof's
    /// `Q₂ᵀ(εAᵀR + (1−ε)P)` step never uses uniformity of `P`, so the
    /// local scores equal the personalized global PageRank exactly —
    /// provided `self.global_scores` holds that same personalized
    /// solution.
    pub fn rank_subgraph_personalized(
        &self,
        global: &DiGraph,
        subgraph: &Subgraph,
        global_personalization: &[f64],
    ) -> RankScores {
        let ext = self.extended_graph(global, subgraph);
        let p = ext.collapse_personalization(subgraph.nodes(), global_personalization);
        let result = ext.solve_personalized(&self.options, &p);
        let n = subgraph.len();
        let mut scores = result.scores;
        let lambda = scores.pop().expect("n+1 states");
        debug_assert_eq!(scores.len(), n);
        RankScores {
            local_scores: scores,
            lambda_score: Some(lambda),
            iterations: result.iterations,
            converged: result.converged,
            estimate: None,
        }
    }

    /// Runs IdealRank, returning local scores plus `Λ`'s score.
    pub fn rank_subgraph(&self, global: &DiGraph, subgraph: &Subgraph) -> RankScores {
        self.rank_subgraph_observed(global, subgraph, approxrank_trace::null())
    }

    /// [`Self::rank_subgraph`] with telemetry: a `collapse_lambda` span
    /// around the `A_ideal` assembly, solver events from the power
    /// iteration, and a `normalize` span around the score split.
    pub fn rank_subgraph_observed(
        &self,
        global: &DiGraph,
        subgraph: &Subgraph,
        obs: &dyn Observer,
    ) -> RankScores {
        let exec = self.executor(subgraph);
        let ext = {
            let _span = obs.span("collapse_lambda");
            self.extended_graph_on(global, subgraph, &exec)
        };
        let result = ext.solve_observed(&self.options, obs);
        emit_exec_stats(&exec, obs);
        let _span = obs.span("normalize");
        let n = subgraph.len();
        let mut scores = result.scores;
        let lambda = scores.pop().expect("n+1 states");
        debug_assert_eq!(scores.len(), n);
        RankScores {
            local_scores: scores,
            lambda_score: Some(lambda),
            iterations: result.iterations,
            converged: result.converged,
            estimate: None,
        }
    }
}

impl SubgraphRanker for IdealRank {
    fn name(&self) -> &'static str {
        "IdealRank"
    }

    fn rank(&self, global: &DiGraph, subgraph: &Subgraph) -> RankScores {
        self.rank_subgraph(global, subgraph)
    }

    fn rank_observed(
        &self,
        global: &DiGraph,
        subgraph: &Subgraph,
        obs: &dyn Observer,
    ) -> RankScores {
        self.rank_subgraph_observed(global, subgraph, obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxrank_graph::NodeSet;
    use approxrank_pagerank::pagerank;

    /// Paper Figure 4 (with X→Y, X→Z reconstructed from the worked
    /// probabilities).
    fn figure4() -> DiGraph {
        DiGraph::from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (0, 4),
                (0, 6),
                (1, 3),
                (2, 1),
                (2, 3),
                (3, 0),
                (4, 2),
                (4, 5),
                (4, 6),
                (5, 2),
                (5, 6),
                (6, 2),
                (6, 3),
            ],
        )
    }

    fn tight() -> PageRankOptions {
        PageRankOptions::paper().with_tolerance(1e-13)
    }

    /// Theorem 1 on the Figure-4 graph: IdealRank's local scores equal
    /// the true global PageRank restricted to the subgraph, and Λ's score
    /// equals the external mass.
    #[test]
    fn theorem1_exactness_figure4() {
        let g = figure4();
        let truth = pagerank(&g, &tight());
        let sub = Subgraph::extract(&g, NodeSet::from_sorted(7, [0, 1, 2, 3]));
        let ideal = IdealRank {
            options: tight(),
            global_scores: truth.scores.clone(),
        };
        let r = ideal.rank_subgraph(&g, &sub);
        assert!(r.converged);
        for (k, &g_id) in sub.nodes().members().iter().enumerate() {
            let want = truth.scores[g_id as usize];
            assert!(
                (r.local_scores[k] - want).abs() < 1e-9,
                "page {g_id}: {} vs {}",
                r.local_scores[k],
                want
            );
        }
        let ext_mass: f64 = [4usize, 5, 6].iter().map(|&j| truth.scores[j]).sum();
        assert!((r.lambda_score.unwrap() - ext_mass).abs() < 1e-9);
    }

    /// Theorem 1 with dangling pages on both sides of the boundary.
    #[test]
    fn theorem1_with_dangling_pages() {
        // 0,1,2 local (2 dangling); 3,4,5 external (5 dangling).
        let g = DiGraph::from_edges(6, &[(0, 1), (0, 3), (1, 2), (3, 1), (3, 4), (4, 0), (4, 3)]);
        let truth = pagerank(&g, &tight());
        let sub = Subgraph::extract(&g, NodeSet::from_sorted(6, [0, 1, 2]));
        let ideal = IdealRank {
            options: tight(),
            global_scores: truth.scores.clone(),
        };
        let e = ideal.extended_graph(&g, &sub);
        assert!(e.max_row_sum_error() < 1e-12, "A_ideal must be stochastic");
        let r = ideal.rank_subgraph(&g, &sub);
        for (k, &g_id) in sub.nodes().members().iter().enumerate() {
            assert!(
                (r.local_scores[k] - truth.scores[g_id as usize]).abs() < 1e-9,
                "page {g_id}"
            );
        }
    }

    /// Theorem 1 on a randomized graph with an arbitrary subgraph.
    #[test]
    fn theorem1_random_graph() {
        // A deterministic pseudo-random graph without pulling in rand:
        // a multiplicative-congruential edge pattern.
        let n = 60u32;
        let mut edges = Vec::new();
        let mut state = 7u64;
        for u in 0..n {
            if u % 11 == 3 {
                continue; // dangling
            }
            let deg = 1 + (u % 4);
            for _ in 0..deg {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let v = ((state >> 33) % n as u64) as u32;
                edges.push((u, v));
            }
        }
        let g = DiGraph::from_edges(n as usize, &edges);
        let truth = pagerank(&g, &tight());
        let sub = Subgraph::extract(
            &g,
            NodeSet::from_sorted(n as usize, (10..30).collect::<Vec<_>>()),
        );
        let ideal = IdealRank {
            options: tight(),
            global_scores: truth.scores.clone(),
        };
        let r = ideal.rank_subgraph(&g, &sub);
        let restricted = sub.nodes().restrict(&truth.scores);
        let err: f64 = r
            .local_scores
            .iter()
            .zip(&restricted)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(err < 1e-8, "L1 error {err}");
    }

    #[test]
    fn whole_graph_subgraph() {
        let g = figure4();
        let truth = pagerank(&g, &tight());
        let sub = Subgraph::extract(&g, NodeSet::from_sorted(7, 0..7));
        let ideal = IdealRank {
            options: tight(),
            global_scores: truth.scores.clone(),
        };
        let r = ideal.rank_subgraph(&g, &sub);
        for k in 0..7 {
            assert!((r.local_scores[k] - truth.scores[k]).abs() < 1e-8);
        }
    }

    /// Theorem 1 under topic-sensitive (non-uniform) personalization.
    #[test]
    fn theorem1_personalized() {
        use approxrank_pagerank::power::pagerank_personalized;
        let g = figure4();
        // Teleport prefers pages 0 and 5 heavily.
        let mut p = vec![0.05; 7];
        p[0] = 0.4;
        p[5] = 0.35;
        let total: f64 = p.iter().sum();
        for v in p.iter_mut() {
            *v /= total;
        }
        let truth = pagerank_personalized(&g, &tight(), &p);
        let sub = Subgraph::extract(&g, NodeSet::from_sorted(7, [0, 1, 2, 3]));
        let ideal = IdealRank {
            options: tight(),
            global_scores: truth.scores.clone(),
        };
        let r = ideal.rank_subgraph_personalized(&g, &sub, &p);
        assert!(r.converged);
        for (k, &g_id) in sub.nodes().members().iter().enumerate() {
            assert!(
                (r.local_scores[k] - truth.scores[g_id as usize]).abs() < 1e-9,
                "page {g_id}: {} vs {}",
                r.local_scores[k],
                truth.scores[g_id as usize]
            );
        }
    }

    #[test]
    #[should_panic(expected = "cover all N pages")]
    fn wrong_score_length_panics() {
        let g = figure4();
        let sub = Subgraph::extract(&g, NodeSet::from_sorted(7, [0, 1]));
        IdealRank::new(vec![0.1; 3]).extended_graph(&g, &sub);
    }
}
