//! Iterative aggregation/disaggregation (IAD) updating of PageRank —
//! the Langville & Meyer approach the paper's §II-E contrasts with
//! (reference \[15\], building on Stewart \[30\]).
//!
//! Scenario: the graph changed inside a known region `S` (the paper's
//! update motivation — the web frontier, a restructured site) and
//! yesterday's scores are still good for the rest. Each outer iteration:
//!
//! 1. **aggregate** — collapse the unchanged region into `Λ` weighted by
//!    the current external estimates (exactly the IdealRank construction)
//!    and solve the small `(|S|+1)`-state chain;
//! 2. **disaggregate** — scale the external estimates so they sum to
//!    `Λ`'s new mass, keeping their relative distribution;
//! 3. **smooth** — run a few global power-iteration steps to let the
//!    external region react to the new flow out of `S`.
//!
//! The outer loop converges to the exact new PageRank; because the
//! external relative ranking barely moves, it typically needs far fewer
//! *global* step-equivalents than recomputing from scratch — which is
//! the trade-off IdealRank sidesteps entirely by never touching the
//! external region (at the cost of freezing its scores).

use approxrank_graph::{DiGraph, NodeSet, Subgraph};
use approxrank_pagerank::{PageRankOptions, PageRankResult};

use crate::ideal::IdealRank;

/// Configuration of the IAD update.
#[derive(Clone, Debug)]
pub struct IadUpdate {
    /// Solver settings for the aggregated (small) chain.
    pub options: PageRankOptions,
    /// Global power-iteration steps per outer iteration (the
    /// disaggregation smoothing). Langville & Meyer use 1–2.
    pub smoothing_steps: usize,
    /// Outer-iteration cap.
    pub max_outer: usize,
    /// Convergence threshold on the global L1 change per outer iteration.
    pub tolerance: f64,
}

impl Default for IadUpdate {
    fn default() -> Self {
        IadUpdate {
            options: PageRankOptions::paper(),
            smoothing_steps: 2,
            max_outer: 50,
            tolerance: 1e-5,
        }
    }
}

/// Outcome of an IAD update.
#[derive(Clone, Debug)]
pub struct IadResult {
    /// Updated global scores (length `N`).
    pub scores: Vec<f64>,
    /// Outer (aggregate/disaggregate) iterations executed.
    pub outer_iterations: usize,
    /// Total global power-iteration steps spent on smoothing — the
    /// expensive currency; compare against a from-scratch solve.
    pub global_steps: usize,
    /// Whether the outer loop converged.
    pub converged: bool,
}

/// One global power-iteration step `x' = εAᵀx + (1−ε)/N` (uniform
/// personalization, uniform dangling jumps), writing into `out`.
fn global_step(graph: &DiGraph, x: &[f64], out: &mut [f64], damping: f64) {
    let n = graph.num_nodes();
    let inv_n = 1.0 / n as f64;
    let mut dangling_mass = 0.0;
    let mut contrib = vec![0.0f64; n];
    for u in 0..n {
        let d = graph.out_degree(u as u32);
        if d == 0 {
            dangling_mass += x[u];
        } else {
            contrib[u] = x[u] / d as f64;
        }
    }
    for (v, slot) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        for &u in graph.in_neighbors(v as u32) {
            acc += contrib[u as usize];
        }
        *slot = damping * (acc + dangling_mass * inv_n) + (1.0 - damping) * inv_n;
    }
}

impl IadUpdate {
    /// Updates `old_scores` (length `N`, padded with anything sensible —
    /// e.g. `0` — for newly created pages) to the PageRank of `new_graph`,
    /// exploiting that changes are confined to `changed`.
    ///
    /// # Panics
    /// Panics if lengths disagree or `changed` is empty.
    pub fn update(&self, new_graph: &DiGraph, changed: &NodeSet, old_scores: &[f64]) -> IadResult {
        let n = new_graph.num_nodes();
        assert_eq!(old_scores.len(), n, "one old score per page");
        assert!(!changed.is_empty(), "the changed set must be non-empty");

        // Current estimate, normalized (padding may have broken the sum).
        let mut x: Vec<f64> = old_scores.to_vec();
        let mass: f64 = x.iter().sum();
        if mass > 0.0 {
            for v in x.iter_mut() {
                *v /= mass;
            }
        } else {
            x.fill(1.0 / n as f64);
        }
        // Give brand-new (zero-score) pages a teleport floor so the
        // aggregated chain sees them at all.
        let floor = (1.0 - self.options.damping) / n as f64;
        for v in x.iter_mut() {
            if *v <= 0.0 {
                *v = floor;
            }
        }

        let subgraph = Subgraph::extract(
            new_graph,
            NodeSet::from_iter_order(n, changed.members().iter().copied()),
        );
        let mut outer_iterations = 0;
        let mut global_steps = 0;
        let mut converged = false;
        let mut scratch = vec![0.0f64; n];

        while outer_iterations < self.max_outer {
            outer_iterations += 1;
            let before = x.clone();

            // (1) Aggregate + solve the small chain with current external
            // estimates as the Λ weighting.
            let ideal = IdealRank {
                options: self.options.clone(),
                global_scores: x.clone(),
            };
            let r = ideal.rank_subgraph(new_graph, &subgraph);

            // (2) Disaggregate: changed pages take their new scores; the
            // external region is rescaled to Λ's mass.
            let old_ext_mass: f64 = x
                .iter()
                .enumerate()
                .filter(|(i, _)| !changed.contains(*i as u32))
                .map(|(_, v)| v)
                .sum();
            let new_ext_mass = r.lambda_score.unwrap_or(0.0);
            let scale = if old_ext_mass > 0.0 {
                new_ext_mass / old_ext_mass
            } else {
                0.0
            };
            for (i, v) in x.iter_mut().enumerate() {
                if !changed.contains(i as u32) {
                    *v *= scale;
                }
            }
            for (li, &g) in subgraph.nodes().members().iter().enumerate() {
                x[g as usize] = r.local_scores[li];
            }

            // (3) Smooth with a few global steps.
            for _ in 0..self.smoothing_steps {
                global_step(new_graph, &x, &mut scratch, self.options.damping);
                std::mem::swap(&mut x, &mut scratch);
                global_steps += 1;
            }

            let delta: f64 = x.iter().zip(&before).map(|(a, b)| (a - b).abs()).sum();
            if delta < self.tolerance {
                converged = true;
                break;
            }
        }

        IadResult {
            scores: x,
            outer_iterations,
            global_steps,
            converged,
        }
    }
}

/// From-scratch baseline cost: iterations a cold power-iteration solve
/// needs on the same graph (for the update-vs-recompute comparison).
pub fn cold_solve(graph: &DiGraph, options: &PageRankOptions) -> PageRankResult {
    approxrank_pagerank::pagerank(graph, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxrank_pagerank::pagerank;

    /// A ring-of-clusters graph plus a perturbation confined to cluster 0.
    fn before_after() -> (DiGraph, DiGraph, NodeSet) {
        let n = 120usize;
        let mut edges = Vec::new();
        for i in 0..n as u32 {
            edges.push((i, (i + 1) % n as u32));
            edges.push((i, (i * 3 + 7) % n as u32));
        }
        let before = DiGraph::from_edges(n, &edges);
        // Change: pages 0..12 rewire to all point at page 3.
        let mut after_edges: Vec<(u32, u32)> =
            edges.iter().copied().filter(|&(s, _)| s >= 12).collect();
        for i in 0..12u32 {
            after_edges.push((i, 3));
            after_edges.push((i, (i + 1) % 12));
        }
        let after = DiGraph::from_edges(n, &after_edges);
        let changed = NodeSet::from_sorted(n, 0..12u32);
        (before, after, changed)
    }

    #[test]
    fn converges_to_fresh_pagerank() {
        let (before, after, changed) = before_after();
        let opts = PageRankOptions::paper().with_tolerance(1e-10);
        let old = pagerank(&before, &opts);
        let fresh = pagerank(&after, &opts);
        let iad = IadUpdate {
            options: opts,
            tolerance: 1e-10,
            max_outer: 200,
            ..IadUpdate::default()
        };
        let updated = iad.update(&after, &changed, &old.scores);
        assert!(updated.converged);
        let err: f64 = updated
            .scores
            .iter()
            .zip(&fresh.scores)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(err < 1e-6, "L1 to fresh PageRank: {err}");
    }

    #[test]
    fn cheaper_than_cold_recompute() {
        let (before, after, changed) = before_after();
        let opts = PageRankOptions::paper().with_tolerance(1e-10);
        let old = pagerank(&before, &opts);
        let cold = cold_solve(&after, &opts);
        let iad = IadUpdate {
            options: opts,
            tolerance: 1e-10,
            max_outer: 200,
            ..IadUpdate::default()
        };
        let updated = iad.update(&after, &changed, &old.scores);
        assert!(
            updated.global_steps < cold.iterations,
            "IAD global steps {} vs cold iterations {}",
            updated.global_steps,
            cold.iterations
        );
    }

    #[test]
    fn handles_new_pages_with_zero_old_score() {
        let (_, after, _) = before_after();
        // Pretend pages 0..12 are brand new: zero old scores.
        let n = after.num_nodes();
        let opts = PageRankOptions::paper().with_tolerance(1e-9);
        let fresh = pagerank(&after, &opts);
        let mut old = fresh.scores.clone();
        for v in old.iter_mut().take(12) {
            *v = 0.0;
        }
        let changed = NodeSet::from_sorted(n, 0..12u32);
        let iad = IadUpdate {
            options: opts,
            tolerance: 1e-9,
            max_outer: 200,
            ..IadUpdate::default()
        };
        let updated = iad.update(&after, &changed, &old);
        let err: f64 = updated
            .scores
            .iter()
            .zip(&fresh.scores)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(err < 1e-5, "L1 {err}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_changed_set() {
        let (_, after, _) = before_after();
        let n = after.num_nodes();
        IadUpdate::default().update(&after, &NodeSet::from_sorted(n, []), &vec![0.0; n]);
    }
}
