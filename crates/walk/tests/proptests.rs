//! Property-based tests for the walk tier: the incremental visit-count
//! update must be indistinguishable — bit for bit — from a from-scratch
//! rebuild, across arbitrary graphs and arbitrary membership edits.

use approxrank_exec::Executor;
use approxrank_graph::{DiGraph, NodeSet, Subgraph};
use approxrank_walk::{VisitCountStore, WalkConfig};
use proptest::prelude::*;

/// Random graphs over 4..30 nodes (dangling pages included), an initial
/// nonempty membership, and a sequence of 1..4 random membership edits
/// (each toggles a handful of pages in or out).
fn graph_and_edits() -> impl Strategy<Value = (DiGraph, Vec<u32>, Vec<Vec<u32>>)> {
    (4usize..30).prop_flat_map(|n| {
        let edge = (0u32..n as u32, 0u32..n as u32);
        let edges = proptest::collection::vec(edge, 1..90);
        let picks = proptest::collection::vec(any::<bool>(), n);
        let toggles =
            proptest::collection::vec(proptest::collection::vec(0u32..n as u32, 1..4), 1..4);
        (edges, picks, toggles).prop_map(move |(es, picks, toggles)| {
            let g = DiGraph::from_edges(n, &es);
            let mut members: Vec<u32> = (0..n as u32).filter(|&u| picks[u as usize]).collect();
            if members.is_empty() {
                members.push(0);
            }
            (g, members, toggles)
        })
    })
}

fn apply_toggles(n: usize, members: &[u32], toggles: &[u32]) -> Vec<u32> {
    let mut set: Vec<bool> = vec![false; n];
    for &m in members {
        set[m as usize] = true;
    }
    for &t in toggles {
        set[t as usize] = !set[t as usize];
    }
    let next: Vec<u32> = (0..n as u32).filter(|&u| set[u as usize]).collect();
    if next.is_empty() {
        members.to_vec() // skip edits that would empty the membership
    } else {
        next
    }
}

fn small_config() -> WalkConfig {
    WalkConfig {
        walks: 32,
        ..WalkConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn incremental_update_matches_rebuild((g, members, edits) in graph_and_edits()) {
        let n = g.num_nodes();
        let exec = Executor::sequential();
        let mut current = members;
        let mut sub = Subgraph::extract(&g, NodeSet::from_sorted(n, current.clone()));
        let mut store = VisitCountStore::build(&sub, small_config());
        for toggles in edits {
            let next = apply_toggles(n, &current, &toggles);
            let new_sub = Subgraph::extract(&g, NodeSet::from_sorted(n, next.clone()));
            let stats = store.update(&sub, &new_sub, &exec);
            prop_assert_eq!(stats.rewalked + stats.reused, new_sub.len());
            let rebuilt = VisitCountStore::build(&new_sub, small_config());
            prop_assert_eq!(&store, &rebuilt, "update diverged from rebuild");
            current = next;
            sub = new_sub;
        }
    }

    #[test]
    fn parallel_update_matches_sequential((g, members, edits) in graph_and_edits()) {
        let n = g.num_nodes();
        let mut current = members;
        let mut sub = Subgraph::extract(&g, NodeSet::from_sorted(n, current.clone()));
        let mut seq_store = VisitCountStore::build(&sub, small_config());
        let mut par_store = seq_store.clone();
        for toggles in edits {
            let next = apply_toggles(n, &current, &toggles);
            let new_sub = Subgraph::extract(&g, NodeSet::from_sorted(n, next.clone()));
            seq_store.update(&sub, &new_sub, &Executor::sequential());
            par_store.update(&sub, &new_sub, &Executor::new(4));
            prop_assert_eq!(&seq_store, &par_store);
            current = next;
            sub = new_sub;
        }
    }
}
