//! A deterministic, splittable RNG for walk sampling.
//!
//! Every walk source gets its **own** SplitMix64 stream, seeded from the
//! run seed and the source's *global* id. That makes the sampled
//! trajectories a pure function of `(seed, global id, subgraph
//! structure)`: independent of thread count, of scheduling, of the local
//! numbering, and of which *other* sources are being (re-)walked — the
//! property the incremental visit-count update and the bitwise
//! thread-determinism guarantee both stand on.

/// SplitMix64 (Steele, Lea & Flood; the `java.util.SplittableRandom`
/// finalizer). Full 2⁶⁴ period, passes BigCrush, and two streams seeded
/// from distinct ids are statistically independent for our budgets.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A stream starting at `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`. Plain modulo: the bias at graph-sized
    /// bounds (≪ 2⁶⁴) is far below sampling noise, and the draw count per
    /// walk stays fixed — important for trajectory reproducibility.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "bound must be positive");
        self.next_u64() % bound
    }
}

/// The per-source stream seed: the run seed xor-folded with the source's
/// global id through one avalanche step, so neighbouring ids map to
/// unrelated streams.
pub fn source_seed(seed: u64, global_id: u32) -> u64 {
    let mut s = SplitMix64::new(seed ^ (global_id as u64).wrapping_mul(0xA24B_AED4_963E_E407));
    s.next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_sources_get_distinct_streams() {
        let seeds: Vec<u64> = (0..1000u32).map(|id| source_seed(42, id)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
        // And a different run seed relocates every stream.
        for id in 0..1000u32 {
            assert_ne!(source_seed(42, id), source_seed(43, id));
        }
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = SplitMix64::new(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn next_below_stays_in_range() {
        let mut rng = SplitMix64::new(9);
        for bound in [1u64, 2, 7, 1000] {
            for _ in 0..100 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }
}
