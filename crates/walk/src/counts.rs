//! Per-source walk visit counts with incremental update.
//!
//! A [`VisitCountStore`] holds, for every member page `s`, the integer
//! visit counts of `R` ε-discounted random walks started at `s` and run
//! on the extended chain until they leave the subgraph (enter `Λ`) or the
//! damping coin stops them. Counts are kept as integers keyed by *global*
//! id, so a row is a pure function of `(seed, s, structure along its
//! trajectories)` — which is what makes both guarantees hold:
//!
//! * **bitwise determinism** — rows are sampled independently (one RNG
//!   stream per source) and folded in a fixed order, so any thread width
//!   produces identical bits;
//! * **incremental update** — after a membership edit, a row whose
//!   [`SourceRow::touched`] set avoids every changed page is provably
//!   identical to what a rebuild would sample, and is reused as-is.
//!   Only sources near the edit re-walk (the positive/negative
//!   correction idea of walk-based incremental PageRank, done here by
//!   exact replay instead of signed correction walks so reuse stays
//!   bitwise).

use std::ops::Range;

use approxrank_exec::{Executor, Partition};
use approxrank_graph::Subgraph;

use crate::rng::{source_seed, SplitMix64};
use approxrank_core::ExtendedLocalGraph;

/// Sampling parameters. Two stores are only comparable/updatable when
/// their configs match — `update` asserts this implicitly by keeping the
/// config with the store.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WalkConfig {
    /// Walks per source page.
    pub walks: u32,
    /// The damping factor ε: each step continues with probability ε.
    pub damping: f64,
    /// The run seed; per-source streams derive from it and the source's
    /// global id.
    pub seed: u64,
    /// Safety cap on a single walk's length (the geometric length
    /// distribution makes hitting it astronomically unlikely at any sane
    /// ε; the cap bounds the worst case on self-loop-heavy graphs).
    pub max_steps: u32,
}

/// The default budget: 256 walks per source at the paper's ε = 0.85.
pub const DEFAULT_WALKS: u32 = 256;
/// The default run seed (any fixed value works; 42 keeps runs citable).
pub const DEFAULT_SEED: u64 = 42;

impl Default for WalkConfig {
    fn default() -> WalkConfig {
        WalkConfig {
            walks: DEFAULT_WALKS,
            damping: 0.85,
            seed: DEFAULT_SEED,
            max_steps: 10_000,
        }
    }
}

/// One source page's sampled evidence.
#[derive(Clone, Debug, PartialEq)]
pub struct SourceRow {
    /// `(global id, visits)` for every page the walks visited, sorted by
    /// global id. The source's own entry includes the `R` start visits.
    pub counts: Vec<(u32, u32)>,
    /// How many of the `R` walks exited into `Λ` before the damping coin
    /// stopped them.
    pub lambda_entries: u32,
    /// Every global id whose structure or membership the trajectories
    /// consumed: all visited members plus all dangling-teleport draws.
    /// Sorted, deduplicated. If none of these pages changed, replaying
    /// the source's RNG stream reproduces the row bit for bit.
    pub touched: Vec<u32>,
    /// Total steps taken across the `R` walks (work accounting).
    pub steps: u64,
}

/// What [`VisitCountStore::update`] did: how much sampling it reused.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct UpdateStats {
    /// Sources re-walked (new members, or members near the edit).
    pub rewalked: usize,
    /// Rows carried over untouched.
    pub reused: usize,
    /// Rows discarded because their source left the membership.
    pub dropped: usize,
}

/// Scores estimated from a store (see [`VisitCountStore::estimate`]).
#[derive(Clone, Debug, PartialEq)]
pub struct EstimatedScores {
    /// Per-local-page score, in the subgraph's local-id order.
    pub local: Vec<f64>,
    /// The external node `Λ`'s score.
    pub lambda: f64,
    /// Total walks backing the estimate (`n · R`).
    pub total_walks: u64,
    /// Total walk steps taken when the store was sampled.
    pub total_steps: u64,
}

/// The compact per-source visit-count matrix (CSR-like: one sorted
/// sparse row per source, rows sorted by source global id).
#[derive(Clone, Debug, PartialEq)]
pub struct VisitCountStore {
    config: WalkConfig,
    global_nodes: usize,
    rows: Vec<(u32, SourceRow)>,
}

/// Per-chunk scratch so a chunk's sources share allocations.
struct Scratch {
    counts: Vec<u32>,
    visited: Vec<u32>,
    touched: Vec<u32>,
}

impl Scratch {
    fn new(n: usize) -> Scratch {
        Scratch {
            counts: vec![0; n],
            visited: Vec::new(),
            touched: Vec::new(),
        }
    }
}

/// Samples one source's row. Pure in `(config, source global id,
/// structure reachable from the source)` — the replay guarantee.
fn walk_source(
    subgraph: &Subgraph,
    config: &WalkConfig,
    source: u32,
    scratch: &mut Scratch,
) -> SourceRow {
    let nodes = subgraph.nodes();
    let local = subgraph.local_graph();
    let big_n = subgraph.global_nodes() as u64;
    let gid = nodes.global_id(source);
    let mut rng = SplitMix64::new(source_seed(config.seed, gid));

    scratch.visited.clear();
    scratch.touched.clear();
    let mut lambda_entries = 0u32;
    let mut steps = 0u64;

    let visit = |v: u32, scratch: &mut Scratch| {
        if scratch.counts[v as usize] == 0 {
            scratch.visited.push(v);
        }
        scratch.counts[v as usize] += 1;
    };

    for _ in 0..config.walks {
        let mut v = source;
        visit(v, scratch);
        let mut len = 0u32;
        loop {
            if rng.next_f64() >= config.damping {
                break;
            }
            len += 1;
            if len > config.max_steps {
                break;
            }
            steps += 1;
            let d = subgraph.global_out_degree(v);
            if d == 0 {
                // Dangling page: the extended chain teleports uniformly
                // over all N global pages; external draws land in Λ.
                let g = rng.next_below(big_n) as u32;
                scratch.touched.push(g);
                match nodes.local_id(g) {
                    Some(lv) => {
                        v = lv;
                        visit(v, scratch);
                    }
                    None => {
                        lambda_entries += 1;
                        break;
                    }
                }
            } else {
                // The first `outs.len()` of the d uniform slots map onto
                // the local out-neighbors (in list order); the rest are
                // the collapsed external targets, i.e. Λ.
                let slot = rng.next_below(d as u64) as usize;
                let outs = local.out_neighbors(v);
                if slot < outs.len() {
                    v = outs[slot];
                    visit(v, scratch);
                } else {
                    lambda_entries += 1;
                    break;
                }
            }
        }
    }

    let mut counts: Vec<(u32, u32)> = scratch
        .visited
        .iter()
        .map(|&lv| (nodes.global_id(lv), scratch.counts[lv as usize]))
        .collect();
    counts.sort_unstable_by_key(|&(g, _)| g);
    // Reset the dense scratch for the chunk's next source.
    for &lv in &scratch.visited {
        scratch.counts[lv as usize] = 0;
    }
    let mut touched = scratch.touched.clone();
    touched.extend(counts.iter().map(|&(g, _)| g));
    touched.sort_unstable();
    touched.dedup();

    SourceRow {
        counts,
        lambda_entries,
        touched,
        steps,
    }
}

impl VisitCountStore {
    /// Samples every member's row sequentially.
    pub fn build(subgraph: &Subgraph, config: WalkConfig) -> VisitCountStore {
        Self::build_on(subgraph, config, &Executor::sequential())
    }

    /// Samples every member's row, fanning sources over `exec`. Rows are
    /// written into disjoint slots and sorted afterwards, so the result
    /// is identical at every thread width.
    pub fn build_on(subgraph: &Subgraph, config: WalkConfig, exec: &Executor) -> VisitCountStore {
        let n = subgraph.len();
        let mut store = VisitCountStore {
            config,
            global_nodes: subgraph.global_nodes(),
            rows: Vec::with_capacity(n),
        };
        if n == 0 {
            return store;
        }
        let sources: Vec<u32> = (0..n as u32).collect();
        store.rows = walk_many(subgraph, &config, &sources, exec);
        store.rows.sort_unstable_by_key(|&(g, _)| g);
        store
    }

    /// The sampling parameters the rows were drawn with.
    pub fn config(&self) -> &WalkConfig {
        &self.config
    }

    /// Number of stored source rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Total walks backing the store.
    pub fn total_walks(&self) -> u64 {
        self.rows.len() as u64 * self.config.walks as u64
    }

    /// Total steps taken to sample the store's current rows.
    pub fn total_steps(&self) -> u64 {
        self.rows.iter().map(|(_, r)| r.steps).sum()
    }

    /// The stored rows, sorted by source global id.
    pub fn rows(&self) -> &[(u32, SourceRow)] {
        &self.rows
    }

    fn row(&self, gid: u32) -> Option<&SourceRow> {
        self.rows
            .binary_search_by_key(&gid, |&(g, _)| g)
            .ok()
            .map(|i| &self.rows[i].1)
    }

    /// Re-walks only the sources whose evidence an edit invalidated.
    ///
    /// `old` must be the subgraph the store was last built/updated
    /// against; `new` is the edited subgraph over the same global graph.
    /// A surviving row is reused iff none of the pages its walks touched
    /// changed membership or changed their local out-neighborhood — in
    /// which case replaying its RNG stream would reproduce it exactly,
    /// so reuse is bitwise-identical to a from-scratch rebuild.
    pub fn update(&mut self, old: &Subgraph, new: &Subgraph, exec: &Executor) -> UpdateStats {
        if old.global_nodes() != new.global_nodes() {
            // Different global graph: all evidence is stale.
            let dropped = self.rows.len();
            *self = VisitCountStore::build_on(new, self.config, exec);
            return UpdateStats {
                rewalked: self.rows.len(),
                reused: 0,
                dropped,
            };
        }

        let changed = changed_pages(old, new);
        let n = new.len();
        let mut dirty: Vec<u32> = Vec::new();
        let mut kept: Vec<(u32, SourceRow)> = Vec::with_capacity(n);
        for li in 0..n as u32 {
            let gid = new.nodes().global_id(li);
            match self.row(gid) {
                Some(row) if !intersects(&row.touched, &changed) => {
                    kept.push((gid, row.clone()));
                }
                _ => dirty.push(li),
            }
        }
        let dropped = self.rows.len() - kept.len().min(self.rows.len());
        let stats = UpdateStats {
            rewalked: dirty.len(),
            reused: kept.len(),
            dropped,
        };
        if !dirty.is_empty() {
            kept.extend(walk_many(new, &self.config, &dirty, exec));
        }
        kept.sort_unstable_by_key(|&(g, _)| g);
        self.rows = kept;
        self.global_nodes = new.global_nodes();
        stats
    }

    /// Turns the sampled visit counts into extended-chain scores.
    ///
    /// The walks estimate `V = (I − εP_LL)⁻¹` (discounted local visits
    /// before Λ-entry) and `λ_s = [εV P_LΛ]_s` (discounted Λ-absorption).
    /// `Λ`'s own row is known in closed form (`from_lambda`,
    /// `lambda_self`), so the stationary solve couples analytically:
    ///
    /// ```text
    /// T_Λ = (p_Λ + Σ_s p_s λ_s) / (1 − ε(λ_self + Σ_j f_j λ_j))
    /// T_L[k] = Σ_s p_s V[s,k] + ε T_Λ Σ_j f_j V[j,k]
    /// π = (1 − ε) T, normalized
    /// ```
    ///
    /// with `p` the paper's Eq-5 personalization and `f = from_lambda`.
    /// Accumulation is sequential in local-id order over integer counts,
    /// so the result is bitwise-identical at every thread width and
    /// after any reuse-preserving [`Self::update`].
    pub fn estimate(&self, subgraph: &Subgraph, ext: &ExtendedLocalGraph) -> EstimatedScores {
        let n = subgraph.len();
        let big_n = subgraph.global_nodes();
        debug_assert_eq!(ext.num_local(), n);
        debug_assert_eq!(self.rows.len(), n, "store does not cover the subgraph");
        let eps = self.config.damping;
        let inv_r = 1.0 / self.config.walks as f64;
        let p_local = 1.0 / big_n as f64;
        let p_lambda = (big_n - n) as f64 / big_n as f64;
        let from_lambda = ext.from_lambda();

        let mut sum_p_v = vec![0.0f64; n];
        let mut sum_fl_v = vec![0.0f64; n];
        let mut sum_p_l = 0.0f64;
        let mut sum_fl_l = 0.0f64;
        let nodes = subgraph.nodes();
        for j in 0..n as u32 {
            let gid = nodes.global_id(j);
            let row = self.row(gid).expect("store covers every member");
            let fl = from_lambda[j as usize];
            let lam = row.lambda_entries as f64 * inv_r;
            sum_p_l += p_local * lam;
            sum_fl_l += fl * lam;
            for &(g, c) in &row.counts {
                let k = nodes.local_id(g).expect("visit counts only cover members") as usize;
                let v = c as f64 * inv_r;
                sum_p_v[k] += p_local * v;
                sum_fl_v[k] += fl * v;
            }
        }

        let c = eps * (ext.lambda_self() + sum_fl_l);
        let t_lambda = (p_lambda + sum_p_l) / (1.0 - c);
        let scale = 1.0 - eps;
        let mut local: Vec<f64> = (0..n)
            .map(|k| scale * (sum_p_v[k] + eps * t_lambda * sum_fl_v[k]))
            .collect();
        let mut lambda = scale * t_lambda;
        let total: f64 = local.iter().sum::<f64>() + lambda;
        if total > 0.0 {
            let inv = 1.0 / total;
            for s in &mut local {
                *s *= inv;
            }
            lambda *= inv;
        }
        EstimatedScores {
            local,
            lambda,
            total_walks: self.total_walks(),
            total_steps: self.total_steps(),
        }
    }
}

/// Walks the given local sources in parallel, returning `(global id,
/// row)` pairs in unspecified order (callers sort).
fn walk_many(
    subgraph: &Subgraph,
    config: &WalkConfig,
    sources: &[u32],
    exec: &Executor,
) -> Vec<(u32, SourceRow)> {
    let m = sources.len();
    if m == 0 {
        return Vec::new();
    }
    let mut slots: Vec<Option<(u32, SourceRow)>> = Vec::with_capacity(m);
    slots.resize_with(m, || None);
    let part = Partition::uniform(m, Partition::auto_chunks(m));
    let fill = |_chunk: usize, range: Range<usize>, slice: &mut [Option<(u32, SourceRow)>]| {
        let mut scratch = Scratch::new(subgraph.len());
        for (slot, &src) in slice.iter_mut().zip(&sources[range]) {
            let gid = subgraph.nodes().global_id(src);
            *slot = Some((gid, walk_source(subgraph, config, src, &mut scratch)));
        }
    };
    exec.for_each_chunk(&mut slots, &part, fill);
    slots.into_iter().flatten().collect()
}

/// Global ids whose membership or local out-neighborhood differs between
/// `old` and `new`: additions, removals, and survivors whose local
/// out-neighbor list (as global ids, order-sensitive — slot mapping
/// matters) changed. Sorted.
fn changed_pages(old: &Subgraph, new: &Subgraph) -> Vec<u32> {
    let mut changed: Vec<u32> = Vec::new();
    let mut old_members: Vec<u32> = old.nodes().members().to_vec();
    let mut new_members: Vec<u32> = new.nodes().members().to_vec();
    old_members.sort_unstable();
    new_members.sort_unstable();
    for &g in &new_members {
        if old_members.binary_search(&g).is_err() {
            changed.push(g); // added
        }
    }
    for &g in &old_members {
        match new_members.binary_search(&g) {
            Err(_) => changed.push(g), // removed
            Ok(_) => {
                let ol = old.nodes().local_id(g).expect("member");
                let nl = new.nodes().local_id(g).expect("member");
                if old.global_out_degree(ol) != new.global_out_degree(nl)
                    || !same_out_globals(old, ol, new, nl)
                {
                    changed.push(g);
                }
            }
        }
    }
    changed.sort_unstable();
    changed.dedup();
    changed
}

fn same_out_globals(old: &Subgraph, ol: u32, new: &Subgraph, nl: u32) -> bool {
    let a = old.local_graph().out_neighbors(ol);
    let b = new.local_graph().out_neighbors(nl);
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(&x, &y)| old.nodes().global_id(x) == new.nodes().global_id(y))
}

/// Whether two sorted id lists share an element (merge walk).
fn intersects(a: &[u32], b: &[u32]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxrank_graph::{DiGraph, NodeSet};

    /// The paper's Figure 4: local A,B,C,D (0–3), external X,Y,Z (4–6).
    fn figure4() -> DiGraph {
        DiGraph::from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (0, 4),
                (0, 6),
                (1, 3),
                (2, 1),
                (2, 3),
                (3, 0),
                (4, 2),
                (4, 5),
                (4, 6),
                (5, 2),
                (5, 6),
                (6, 2),
                (6, 3),
            ],
        )
    }

    fn fig4_subgraph(global: &DiGraph) -> Subgraph {
        Subgraph::extract(global, NodeSet::from_sorted(7, [0u32, 1, 2, 3]))
    }

    #[test]
    fn rows_cover_every_member_and_are_sorted() {
        let g = figure4();
        let sg = fig4_subgraph(&g);
        let store = VisitCountStore::build(&sg, WalkConfig::default());
        assert_eq!(store.len(), 4);
        let gids: Vec<u32> = store.rows().iter().map(|&(g, _)| g).collect();
        assert_eq!(gids, vec![0, 1, 2, 3]);
        for (gid, row) in store.rows() {
            // The source itself is visited R times at minimum.
            let own = row.counts.iter().find(|&&(g, _)| g == *gid).unwrap();
            assert!(own.1 >= DEFAULT_WALKS);
            assert!(
                row.touched.windows(2).all(|w| w[0] < w[1]),
                "touched sorted+dedup"
            );
        }
    }

    #[test]
    fn build_is_thread_width_independent() {
        let g = figure4();
        let sg = fig4_subgraph(&g);
        let seq = VisitCountStore::build(&sg, WalkConfig::default());
        for threads in [2, 3, 8] {
            let par =
                VisitCountStore::build_on(&sg, WalkConfig::default(), &Executor::new(threads));
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn different_seeds_sample_different_rows() {
        let g = figure4();
        let sg = fig4_subgraph(&g);
        let a = VisitCountStore::build(&sg, WalkConfig::default());
        let b = VisitCountStore::build(
            &sg,
            WalkConfig {
                seed: 7,
                ..WalkConfig::default()
            },
        );
        assert_ne!(a, b);
    }

    #[test]
    fn update_matches_rebuild_bitwise() {
        let g = figure4();
        let old = fig4_subgraph(&g);
        let mut store = VisitCountStore::build(&old, WalkConfig::default());
        // Grow the membership by external page 6 (Z).
        let new = Subgraph::extract(&g, NodeSet::from_sorted(7, [0u32, 1, 2, 3, 6]));
        let exec = Executor::sequential();
        let stats = store.update(&old, &new, &exec);
        assert_eq!(stats.rewalked + stats.reused, 5);
        assert!(stats.rewalked >= 1, "the added page must be walked");
        let rebuilt = VisitCountStore::build(&new, WalkConfig::default());
        assert_eq!(store, rebuilt);
        // And shrinking back must also match a fresh build.
        let stats = store.update(&new, &old, &exec);
        assert!(stats.dropped >= 1);
        let rebuilt = VisitCountStore::build(&old, WalkConfig::default());
        assert_eq!(store, rebuilt);
    }

    #[test]
    fn estimate_tracks_exact_approxrank_on_figure4() {
        use approxrank_core::{ApproxRank, SubgraphRanker};
        let g = figure4();
        let sg = fig4_subgraph(&g);
        let exact = ApproxRank::default().rank(&g, &sg);
        let config = WalkConfig {
            walks: 4096,
            ..WalkConfig::default()
        };
        let store = VisitCountStore::build(&sg, config);
        let agg = approxrank_core::GlobalAggregates::compute(&g);
        let ext =
            ApproxRank::default().extended_graph_aggregated_on(agg, &sg, &Executor::sequential());
        let est = store.estimate(&sg, &ext);
        let l1: f64 = est
            .local
            .iter()
            .zip(&exact.local_scores)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(l1 < 0.03, "L1 vs exact too large: {l1}");
        assert!((est.lambda - exact.lambda_score.unwrap()).abs() < 0.03);
    }

    #[test]
    fn empty_subgraph_is_fine() {
        let g = figure4();
        let sg = Subgraph::extract(&g, NodeSet::from_sorted(7, std::iter::empty::<u32>()));
        let store = VisitCountStore::build(&sg, WalkConfig::default());
        assert!(store.is_empty());
        assert_eq!(store.total_walks(), 0);
    }
}
