//! Local-push ApproxRank: forward push on the extended chain with an
//! explicit residual bound (the ApproxContributions scheme pointed the
//! other way — personalization-to-everyone instead of
//! everyone-to-target).
//!
//! The algorithm maintains the invariant `π = p̂ + Σ_v r_v · π(e_v)`:
//! `p̂` is settled mass, `r` is unsettled residual, and pushing a state
//! `v` moves `(1−ε)·r_v` into `p̂[v]` and spreads `ε·r_v` along `v`'s
//! transition row. Every `π(e_v)` sums to 1, so the returned scores obey
//! `‖π − p̂‖₁ ≤ Σ_v r_v` — the residual reported in the result's
//! [`Estimate`] block is a *proven* bound, not a heuristic.

use std::collections::VecDeque;

use approxrank_core::{
    ApproxRank, Estimate, ExtendedLocalGraph, GlobalAggregates, RankScores, SubgraphRanker,
};
use approxrank_exec::Executor;
use approxrank_graph::{DiGraph, Subgraph};
use approxrank_pagerank::PageRankOptions;
use approxrank_trace::Observer;

use crate::mc::DEFAULT_EPSILON;

/// ApproxRank estimated by deterministic forward push.
#[derive(Clone, Debug)]
pub struct LocalPushRank {
    /// Solver options; only `damping` applies (push is sequential and
    /// needs no tolerance — `epsilon` below is its accuracy knob).
    pub options: PageRankOptions,
    /// Target total residual: push stops once `Σ r ≤ epsilon`, so the
    /// scores are within `epsilon` of the converged solution in L1.
    pub epsilon: f64,
}

impl Default for LocalPushRank {
    fn default() -> LocalPushRank {
        LocalPushRank::new(PageRankOptions::paper())
    }
}

impl LocalPushRank {
    /// Default residual budget over the given solver options.
    pub fn new(options: PageRankOptions) -> LocalPushRank {
        LocalPushRank {
            options,
            epsilon: DEFAULT_EPSILON,
        }
    }

    /// Runs the estimator from shard-carried global scalars alone (same
    /// contract as [`ApproxRank::rank_subgraph_aggregated`]).
    pub fn rank_aggregated(&self, agg: GlobalAggregates, subgraph: &Subgraph) -> RankScores {
        self.rank_aggregated_observed(agg, subgraph, approxrank_trace::null())
    }

    /// [`Self::rank_aggregated`] with telemetry.
    pub fn rank_aggregated_observed(
        &self,
        agg: GlobalAggregates,
        subgraph: &Subgraph,
        obs: &dyn Observer,
    ) -> RankScores {
        let ext = {
            let _span = obs.span("collapse_lambda");
            ApproxRank {
                options: self.options.clone(),
            }
            .extended_graph_aggregated_on(agg, subgraph, &Executor::sequential())
        };
        self.push_on(subgraph, &ext, obs)
    }

    /// The push itself: sequential, FIFO, thread-width independent by
    /// construction.
    pub fn push_on(
        &self,
        subgraph: &Subgraph,
        ext: &ExtendedLocalGraph,
        obs: &dyn Observer,
    ) -> RankScores {
        let _span = obs.span("local_push");
        let n = subgraph.len();
        let big_n = subgraph.global_nodes();
        let eps = self.options.damping;
        let lambda = n; // state index of Λ
        let theta = self.epsilon / (n + 1) as f64;

        let mut p_hat = vec![0.0f64; n + 1];
        let mut r = ext.personalization();
        let mut in_queue = vec![false; n + 1];
        let mut queue: VecDeque<usize> = VecDeque::new();
        for (v, &rv) in r.iter().enumerate() {
            if rv >= theta {
                in_queue[v] = true;
                queue.push_back(v);
            }
        }

        // Each push settles ≥ (1−ε)·θ of the unit starting mass, so the
        // count below can never be reached with a correct implementation;
        // it is a backstop against float-edge looping.
        let push_cap = (1.0 / ((1.0 - eps) * theta)).ceil() as usize + n + 2;
        let mut pushes = 0usize;
        let local = subgraph.local_graph();
        let from_lambda = ext.from_lambda();

        let mut gained: Vec<usize> = Vec::new();
        while let Some(v) = queue.pop_front() {
            in_queue[v] = false;
            let rv = r[v];
            if rv < theta {
                continue;
            }
            r[v] = 0.0;
            p_hat[v] += (1.0 - eps) * rv;
            let spread = eps * rv;
            gained.clear();
            if v == lambda {
                for (k, &f) in from_lambda.iter().enumerate() {
                    if f > 0.0 {
                        r[k] += spread * f;
                        gained.push(k);
                    }
                }
                if ext.lambda_self() > 0.0 {
                    r[lambda] += spread * ext.lambda_self();
                    gained.push(lambda);
                }
            } else {
                let d = subgraph.global_out_degree(v as u32);
                if d == 0 {
                    // Dangling page: uniform over all N global pages —
                    // 1/N to each local, the external remainder to Λ.
                    let share = spread / big_n as f64;
                    for (k, rk) in r.iter_mut().enumerate().take(n) {
                        *rk += share;
                        gained.push(k);
                    }
                    r[lambda] += share * (big_n - n) as f64;
                    gained.push(lambda);
                } else {
                    let outs = local.out_neighbors(v as u32);
                    let share = spread / d as f64;
                    for &w in outs {
                        r[w as usize] += share;
                        gained.push(w as usize);
                    }
                    let to_l = spread * ext.to_lambda()[v];
                    if to_l > 0.0 {
                        r[lambda] += to_l;
                        gained.push(lambda);
                    }
                }
            }
            for &k in &gained {
                if !in_queue[k] && r[k] >= theta {
                    in_queue[k] = true;
                    queue.push_back(k);
                }
            }
            pushes += 1;
            if pushes >= push_cap {
                break;
            }
        }

        let residual: f64 = r.iter().sum();
        obs.counter("walk_pushes", pushes as u64);
        let lambda_score = p_hat[n];
        p_hat.truncate(n);
        RankScores {
            local_scores: p_hat,
            lambda_score: Some(lambda_score),
            iterations: pushes,
            converged: residual <= self.epsilon,
            estimate: Some(Estimate {
                walks: 0,
                epsilon: self.epsilon,
                residual,
            }),
        }
    }
}

impl SubgraphRanker for LocalPushRank {
    fn name(&self) -> &'static str {
        "LocalPushRank"
    }

    fn rank(&self, global: &DiGraph, subgraph: &Subgraph) -> RankScores {
        self.rank_observed(global, subgraph, approxrank_trace::null())
    }

    fn rank_observed(
        &self,
        global: &DiGraph,
        subgraph: &Subgraph,
        obs: &dyn Observer,
    ) -> RankScores {
        let agg = GlobalAggregates::compute(global);
        self.rank_aggregated_observed(agg, subgraph, obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxrank_graph::NodeSet;

    fn figure4() -> DiGraph {
        DiGraph::from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (0, 4),
                (0, 6),
                (1, 3),
                (2, 1),
                (2, 3),
                (3, 0),
                (4, 2),
                (4, 5),
                (4, 6),
                (5, 2),
                (5, 6),
                (6, 2),
                (6, 3),
            ],
        )
    }

    #[test]
    fn residual_bound_holds_against_exact() {
        let g = figure4();
        let sg = Subgraph::extract(&g, NodeSet::from_sorted(7, [0u32, 1, 2, 3]));
        let tight = PageRankOptions::paper().with_tolerance(1e-12);
        let exact = ApproxRank { options: tight }.rank(&g, &sg);
        for epsilon in [1e-2, 1e-3, 1e-5] {
            let push = LocalPushRank {
                epsilon,
                ..LocalPushRank::default()
            };
            let est = push.rank(&g, &sg);
            let info = est.estimate.unwrap();
            assert!(est.converged, "push should hit its budget at {epsilon}");
            assert!(info.residual <= epsilon);
            let l1: f64 = est
                .local_scores
                .iter()
                .zip(&exact.local_scores)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
                + (est.lambda_score.unwrap() - exact.lambda_score.unwrap()).abs();
            // The proven bound is ‖π − p̂‖₁ ≤ residual; allow the exact
            // solve's own tolerance on top.
            assert!(
                l1 <= info.residual + 1e-9,
                "epsilon={epsilon}: l1={l1} > residual={}",
                info.residual
            );
        }
    }

    #[test]
    fn push_is_deterministic() {
        let g = figure4();
        let sg = Subgraph::extract(&g, NodeSet::from_sorted(7, [0u32, 1, 2, 3]));
        let a = LocalPushRank::default().rank(&g, &sg);
        let b = LocalPushRank::default().rank(&g, &sg);
        assert_eq!(a, b);
    }

    #[test]
    fn full_graph_subgraph_degenerates_cleanly() {
        let g = figure4();
        let sg = Subgraph::extract(&g, NodeSet::from_sorted(7, 0u32..7));
        let est = LocalPushRank::default().rank(&g, &sg);
        assert_eq!(est.local_scores.len(), 7);
        assert!(est.converged);
        // All mass is local when nothing is external.
        assert!(est.local_scores.iter().sum::<f64>() > 0.99 - est.estimate.unwrap().residual);
    }
}
