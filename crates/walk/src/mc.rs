//! Monte-Carlo ApproxRank: sampled visit counts instead of power
//! iteration.
//!
//! The estimator collapses externals into `Λ` exactly like
//! [`ApproxRank`] (the `Λ` row is known in closed form), but replaces
//! the `O(edges × iterations)` power solve with `n · R` short
//! ε-discounted walks whose integer visit counts live in a
//! [`VisitCountStore`]. Work is sublinear in the solve for any fixed
//! budget `R`, answers are reproducible bit for bit from the seed, and
//! warm sessions re-walk only sources near a membership edit.

use approxrank_core::{
    ApproxRank, Estimate, ExtendedLocalGraph, GlobalAggregates, RankScores, SubgraphRanker,
};
use approxrank_exec::Executor;
use approxrank_graph::{DiGraph, Subgraph};
use approxrank_pagerank::parallel::emit_exec_stats;
use approxrank_pagerank::PageRankOptions;
use approxrank_trace::Observer;

use crate::counts::{VisitCountStore, WalkConfig, DEFAULT_SEED, DEFAULT_WALKS};

/// The default accuracy target echoed into [`Estimate::epsilon`] (the
/// push estimator's default residual budget, kept symmetric here).
pub const DEFAULT_EPSILON: f64 = 1e-3;

/// ApproxRank estimated by seeded Monte-Carlo walks.
#[derive(Clone, Debug)]
pub struct McApproxRank {
    /// Solver options; `damping` and `threads` are honored (`tolerance`
    /// and the iteration cap do not apply to sampling).
    pub options: PageRankOptions,
    /// Walks per source page.
    pub walks: u32,
    /// Accuracy target echoed into the result's [`Estimate`] block.
    pub epsilon: f64,
    /// Run seed; same seed ⇒ bitwise-identical estimates.
    pub seed: u64,
}

impl Default for McApproxRank {
    fn default() -> McApproxRank {
        McApproxRank::new(PageRankOptions::paper())
    }
}

impl McApproxRank {
    /// Default walk budget and seed over the given solver options.
    pub fn new(options: PageRankOptions) -> McApproxRank {
        McApproxRank {
            options,
            walks: DEFAULT_WALKS,
            epsilon: DEFAULT_EPSILON,
            seed: DEFAULT_SEED,
        }
    }

    /// The sampling parameters this estimator walks with.
    pub fn walk_config(&self) -> WalkConfig {
        WalkConfig {
            walks: self.walks,
            damping: self.options.damping,
            seed: self.seed,
            max_steps: WalkConfig::default().max_steps,
        }
    }

    fn executor(&self, subgraph: &Subgraph) -> Executor {
        Executor::new(self.options.threads.min(subgraph.len().max(1)))
    }

    /// Runs the estimator from shard-carried global scalars alone — the
    /// same contract as [`ApproxRank::rank_subgraph_aggregated`], so the
    /// sharded engine path gets the tier without a global graph in hand.
    pub fn rank_aggregated(&self, agg: GlobalAggregates, subgraph: &Subgraph) -> RankScores {
        self.rank_aggregated_observed(agg, subgraph, approxrank_trace::null())
    }

    /// [`Self::rank_aggregated`] with telemetry: `walk_*` counters and
    /// phase spans flow to `obs`.
    pub fn rank_aggregated_observed(
        &self,
        agg: GlobalAggregates,
        subgraph: &Subgraph,
        obs: &dyn Observer,
    ) -> RankScores {
        let exec = self.executor(subgraph);
        let ext = {
            let _span = obs.span("collapse_lambda");
            ApproxRank {
                options: self.options.clone(),
            }
            .extended_graph_aggregated_on(agg, subgraph, &exec)
        };
        let store = {
            let _span = obs.span("walk_sample");
            VisitCountStore::build_on(subgraph, self.walk_config(), &exec)
        };
        obs.counter("walk_sources_walked", store.len() as u64);
        emit_exec_stats(&exec, obs);
        self.scores_from_store(&store, subgraph, &ext, obs)
    }

    /// Turns an existing store into a [`RankScores`] — the warm-session
    /// path: the engine keeps the store across membership edits and only
    /// re-walks invalidated sources before calling this.
    pub fn scores_from_store(
        &self,
        store: &VisitCountStore,
        subgraph: &Subgraph,
        ext: &ExtendedLocalGraph,
        obs: &dyn Observer,
    ) -> RankScores {
        let est = {
            let _span = obs.span("walk_estimate");
            store.estimate(subgraph, ext)
        };
        obs.counter("walk_walks", est.total_walks);
        obs.counter("walk_steps", est.total_steps);
        let residual = one_step_residual(ext, &est.local, est.lambda, self.options.damping);
        RankScores {
            local_scores: est.local,
            lambda_score: Some(est.lambda),
            iterations: store.len(),
            converged: true,
            estimate: Some(Estimate {
                walks: est.total_walks,
                epsilon: self.epsilon,
                residual,
            }),
        }
    }
}

/// The L1 movement of one exact power step applied to the estimate — a
/// cheap measured (not proven) distance-to-fixed-point indicator,
/// reported as [`Estimate::residual`].
fn one_step_residual(ext: &ExtendedLocalGraph, local: &[f64], lambda: f64, damping: f64) -> f64 {
    let n = local.len();
    let mut x = Vec::with_capacity(n + 1);
    x.extend_from_slice(local);
    x.push(lambda);
    let mut y = vec![0.0; n + 1];
    ext.step(&x, &mut y, damping);
    x.iter().zip(&y).map(|(a, b)| (a - b).abs()).sum()
}

impl SubgraphRanker for McApproxRank {
    fn name(&self) -> &'static str {
        "McApproxRank"
    }

    fn rank(&self, global: &DiGraph, subgraph: &Subgraph) -> RankScores {
        self.rank_observed(global, subgraph, approxrank_trace::null())
    }

    fn rank_observed(
        &self,
        global: &DiGraph,
        subgraph: &Subgraph,
        obs: &dyn Observer,
    ) -> RankScores {
        let agg = GlobalAggregates::compute(global);
        self.rank_aggregated_observed(agg, subgraph, obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxrank_graph::NodeSet;

    fn figure4() -> DiGraph {
        DiGraph::from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (0, 4),
                (0, 6),
                (1, 3),
                (2, 1),
                (2, 3),
                (3, 0),
                (4, 2),
                (4, 5),
                (4, 6),
                (5, 2),
                (5, 6),
                (6, 2),
                (6, 3),
            ],
        )
    }

    #[test]
    fn estimate_block_is_filled() {
        let g = figure4();
        let sg = Subgraph::extract(&g, NodeSet::from_sorted(7, [0u32, 1, 2, 3]));
        let scores = McApproxRank::default().rank(&g, &sg);
        let est = scores.estimate.expect("MC results carry an estimate");
        assert_eq!(est.walks, 4 * DEFAULT_WALKS as u64);
        assert!(est.residual >= 0.0 && est.residual < 0.5);
        assert_eq!(scores.iterations, 4);
        assert_eq!(scores.local_scores.len(), 4);
        let mass: f64 = scores.local_scores.iter().sum::<f64>() + scores.lambda_score.unwrap();
        assert!((mass - 1.0).abs() < 1e-12, "normalized mass {mass}");
    }

    #[test]
    fn same_seed_same_bits_any_thread_width() {
        let g = figure4();
        let sg = Subgraph::extract(&g, NodeSet::from_sorted(7, [0u32, 1, 2, 3]));
        let reference = McApproxRank::default().rank(&g, &sg);
        for threads in [2, 4, 8] {
            let mc = McApproxRank {
                options: PageRankOptions::paper().with_threads(threads),
                ..McApproxRank::default()
            };
            let scores = mc.rank(&g, &sg);
            let same = reference
                .local_scores
                .iter()
                .zip(&scores.local_scores)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "threads={threads}");
        }
    }

    #[test]
    fn matches_exact_top_order_on_figure4() {
        let g = figure4();
        let sg = Subgraph::extract(&g, NodeSet::from_sorted(7, [0u32, 1, 2, 3]));
        let exact = ApproxRank::default().rank(&g, &sg);
        let mc = McApproxRank {
            walks: 2048,
            ..McApproxRank::default()
        };
        let est = mc.rank(&g, &sg);
        let order = |s: &[f64]| {
            let mut idx: Vec<usize> = (0..s.len()).collect();
            idx.sort_by(|&a, &b| s[b].partial_cmp(&s[a]).unwrap());
            idx
        };
        assert_eq!(order(&exact.local_scores), order(&est.local_scores));
    }

    #[test]
    fn aggregated_path_matches_full_graph_path() {
        let g = figure4();
        let sg = Subgraph::extract(&g, NodeSet::from_sorted(7, [0u32, 1, 2, 3]));
        let mc = McApproxRank::default();
        let full = mc.rank(&g, &sg);
        let agg = mc.rank_aggregated(GlobalAggregates::compute(&g), &sg);
        assert_eq!(full, agg);
    }
}
