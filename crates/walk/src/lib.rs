//! The estimator tier: sublinear ApproxRank by Monte-Carlo walks or
//! local push.
//!
//! The exact solvers in `approxrank-core` pay `O(edges × iterations)`
//! per answer. Many serving queries only need the *top* of the ranking,
//! within a declared tolerance — this crate trades a bounded amount of
//! accuracy for a large amount of work:
//!
//! * [`McApproxRank`] — `n · R` seeded ε-discounted walks on the
//!   Λ-collapsed chain. Integer visit counts make results
//!   bitwise-reproducible from the seed at any thread width, and the
//!   backing [`VisitCountStore`] updates incrementally: after a
//!   membership edit only sources whose walks touched a changed page are
//!   re-walked ([`McSession`]).
//! * [`LocalPushRank`] — deterministic forward push with the invariant
//!   `π = p̂ + Σ_v r_v π(e_v)`, so the reported residual is a proven L1
//!   bound on the estimation error.
//!
//! Both implement [`approxrank_core::SubgraphRanker`] and both run from
//! shard-carried global scalars alone (`rank_aggregated`), so the
//! engine, server, and CLI expose them exactly like the exact
//! algorithms — just faster and annotated with an
//! [`approxrank_core::Estimate`] block.
//!
//! # Quickstart
//!
//! ```
//! use approxrank_graph::{DiGraph, NodeSet, Subgraph};
//! use approxrank_core::SubgraphRanker;
//! use approxrank_walk::McApproxRank;
//!
//! let global = DiGraph::from_edges(7, &[
//!     (0, 1), (0, 2), (0, 4), (0, 6), (1, 3), (2, 1), (2, 3), (3, 0),
//!     (4, 2), (4, 5), (4, 6), (5, 2), (5, 6), (6, 2), (6, 3),
//! ]);
//! let subgraph = Subgraph::extract(&global, NodeSet::from_sorted(7, [0, 1, 2, 3]));
//! let scores = McApproxRank::default().rank(&global, &subgraph);
//! assert!(scores.estimate.is_some());
//! ```

pub mod counts;
pub mod mc;
pub mod push;
pub mod rng;
pub mod session;

pub use counts::{EstimatedScores, SourceRow, UpdateStats, VisitCountStore, WalkConfig};
pub use mc::{McApproxRank, DEFAULT_EPSILON};
pub use push::LocalPushRank;
pub use rng::{source_seed, SplitMix64};
pub use session::McSession;
