//! Warm Monte-Carlo sessions: membership edits re-walk only the sources
//! the edit could have influenced.
//!
//! The exact counterpart ([`approxrank_core::SubgraphSession`]) warm-
//! starts a power iteration from the previous solution; an [`McSession`]
//! goes further — its [`VisitCountStore`] rows are *bitwise reusable*,
//! so an edit pays only for the sources whose walks touched a changed
//! page, and the refreshed estimate is identical to a cold rebuild.

use approxrank_core::{GlobalAggregates, RankScores};
use approxrank_exec::Executor;
use approxrank_graph::{NodeId, NodeSet, Subgraph, SubgraphSource};
use approxrank_trace::Observer;

use crate::counts::{UpdateStats, VisitCountStore};
use crate::mc::McApproxRank;

/// A long-lived Monte-Carlo estimator session over one global graph.
pub struct McSession {
    estimator: McApproxRank,
    aggregates: GlobalAggregates,
    members: Vec<NodeId>,
    subgraph: Subgraph,
    store: VisitCountStore,
    last_stats: UpdateStats,
}

impl McSession {
    /// Opens a session through a [`SubgraphSource`] (whole graph or
    /// shard) and samples the initial store — the "cold build".
    ///
    /// # Panics
    /// Panics if `initial` is empty, belongs to a different graph, or
    /// holds pages the source does not own.
    pub fn with_source(
        source: &dyn SubgraphSource,
        initial: NodeSet,
        estimator: McApproxRank,
    ) -> Self {
        assert!(!initial.is_empty(), "session needs a non-empty subgraph");
        assert_eq!(
            initial.global_nodes(),
            source.global_nodes(),
            "member set belongs to a different graph"
        );
        let members = initial.members().to_vec();
        let subgraph = source.extract_nodes(initial);
        let exec = executor(&estimator, &subgraph);
        let store = VisitCountStore::build_on(&subgraph, estimator.walk_config(), &exec);
        let cold = UpdateStats {
            rewalked: store.len(),
            reused: 0,
            dropped: 0,
        };
        McSession {
            aggregates: GlobalAggregates {
                num_nodes: source.global_nodes(),
                num_dangling: source.num_dangling(),
            },
            estimator,
            members,
            subgraph,
            store,
            last_stats: cold,
        }
    }

    /// Current members in local-id order.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// The current extracted subgraph.
    pub fn subgraph(&self) -> &Subgraph {
        &self.subgraph
    }

    /// What the most recent build/edit cost: how many sources were
    /// re-walked vs reused (a cold build counts everything as re-walked).
    pub fn last_update(&self) -> UpdateStats {
        self.last_stats
    }

    /// Number of source rows currently held in the visit-count store.
    pub fn sources(&self) -> usize {
        self.store.len()
    }

    /// The estimator configuration this session walks with.
    pub fn estimator(&self) -> &McApproxRank {
        &self.estimator
    }

    /// Adds pages and incrementally refreshes the store.
    ///
    /// # Panics
    /// Panics if a page id is out of range, or (inside the source) if the
    /// source does not own a page.
    pub fn add_pages_via(&mut self, source: &dyn SubgraphSource, pages: &[NodeId]) {
        let big_n = source.global_nodes();
        for &p in pages {
            assert!((p as usize) < big_n, "page {p} out of range");
        }
        let current = NodeSet::from_iter_order(
            big_n,
            self.members.iter().copied().chain(pages.iter().copied()),
        );
        self.apply_membership(source, current);
    }

    /// Removes pages and incrementally refreshes the store.
    ///
    /// # Panics
    /// Panics if the removal would empty the subgraph.
    pub fn remove_pages_via(&mut self, source: &dyn SubgraphSource, pages: &[NodeId]) {
        let drop: std::collections::HashSet<NodeId> = pages.iter().copied().collect();
        let remaining: Vec<NodeId> = self
            .members
            .iter()
            .copied()
            .filter(|p| !drop.contains(p))
            .collect();
        assert!(!remaining.is_empty(), "cannot empty the subgraph");
        let current = NodeSet::from_iter_order(source.global_nodes(), remaining);
        self.apply_membership(source, current);
    }

    /// Re-extracts the current membership after the underlying graph
    /// mutated and incrementally re-walks only the sources whose local
    /// row (out-degree or out-neighbor list) actually changed — the
    /// warm-restart path for live mutation. Global aggregates are
    /// refreshed too, so the next [`Self::solve`] prices random-jump
    /// mass against the mutated graph.
    pub fn refresh_via(&mut self, source: &dyn SubgraphSource) {
        let current = NodeSet::from_iter_order(source.global_nodes(), self.members.iter().copied());
        self.apply_membership(source, current);
        self.aggregates = GlobalAggregates {
            num_nodes: source.global_nodes(),
            num_dangling: source.num_dangling(),
        };
    }

    fn apply_membership(&mut self, source: &dyn SubgraphSource, current: NodeSet) {
        let new_subgraph = source.extract_nodes(current);
        let exec = executor(&self.estimator, &new_subgraph);
        self.last_stats = self.store.update(&self.subgraph, &new_subgraph, &exec);
        self.members = new_subgraph.nodes().members().to_vec();
        self.subgraph = new_subgraph;
    }

    /// Estimates scores from the current store. Bitwise-identical to a
    /// cold build over the same membership and seed, at any thread width.
    pub fn solve(&mut self) -> RankScores {
        self.solve_observed(approxrank_trace::null())
    }

    /// [`Self::solve`] with telemetry: `walk_*` counters (including
    /// `walk_sources_rewalked` / `walk_sources_reused` from the most
    /// recent edit) flow to `obs`.
    pub fn solve_observed(&mut self, obs: &dyn Observer) -> RankScores {
        obs.counter("walk_sources_walked", self.store.len() as u64);
        obs.counter("walk_sources_rewalked", self.last_stats.rewalked as u64);
        obs.counter("walk_sources_reused", self.last_stats.reused as u64);
        let approx = approxrank_core::ApproxRank {
            options: self.estimator.options.clone(),
        };
        let exec = executor(&self.estimator, &self.subgraph);
        let ext = approx.extended_graph_aggregated_on(self.aggregates, &self.subgraph, &exec);
        self.estimator
            .scores_from_store(&self.store, &self.subgraph, &ext, obs)
    }
}

fn executor(estimator: &McApproxRank, subgraph: &Subgraph) -> Executor {
    Executor::new(estimator.options.threads.min(subgraph.len().max(1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxrank_graph::{DiGraph, GlobalView};
    use std::sync::Arc;

    fn figure4() -> DiGraph {
        DiGraph::from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (0, 4),
                (0, 6),
                (1, 3),
                (2, 1),
                (2, 3),
                (3, 0),
                (4, 2),
                (4, 5),
                (4, 6),
                (5, 2),
                (5, 6),
                (6, 2),
                (6, 3),
            ],
        )
    }

    #[test]
    fn warm_edit_matches_cold_rebuild() {
        let view = GlobalView::new(Arc::new(figure4()));
        let initial = NodeSet::from_sorted(7, [0u32, 1, 2, 3]);
        let mut session = McSession::with_source(&view, initial, McApproxRank::default());
        assert_eq!(session.last_update().rewalked, 4);

        session.add_pages_via(&view, &[6]);
        let warm = session.solve();
        let stats = session.last_update();
        assert_eq!(stats.rewalked + stats.reused, 5);

        let cold = NodeSet::from_sorted(7, [0u32, 1, 2, 3, 6]);
        let mut fresh = McSession::with_source(&view, cold, McApproxRank::default());
        let rebuilt = fresh.solve();
        assert_eq!(warm, rebuilt, "warm update must be bitwise-identical");
    }

    #[test]
    fn refresh_after_mutation_matches_cold_and_rewalks_fewer() {
        // Directed 50-ring, session over pages 0..12. Forward-only walks
        // from sources past the mutated page never visit it, so their
        // rows must survive the repair untouched.
        let ring: Vec<(u32, u32)> = (0..50u32).map(|i| (i, (i + 1) % 50)).collect();
        let view = GlobalView::new(Arc::new(DiGraph::from_edges(50, &ring)));
        let initial = NodeSet::from_sorted(50, 0..12u32);
        let mut session = McSession::with_source(&view, initial, McApproxRank::default());
        session.solve();

        // Mutate: add edge (2, 5). Only source 2's local row changes.
        let mut edges = ring.clone();
        edges.push((2, 5));
        let mutated = Arc::new(DiGraph::from_edges(50, &edges));
        let after = GlobalView::new(Arc::clone(&mutated));
        session.refresh_via(&after);
        let warm = session.solve();
        let stats = session.last_update();
        assert!(
            stats.reused > 0 && stats.rewalked < 12,
            "repair must reuse untouched rows: {stats:?}"
        );

        let cold = NodeSet::from_sorted(50, 0..12u32);
        let mut fresh = McSession::with_source(&after, cold, McApproxRank::default());
        assert_eq!(warm, fresh.solve(), "repair must be bitwise-identical");
    }

    #[test]
    fn remove_then_solve_matches_cold() {
        let view = GlobalView::new(Arc::new(figure4()));
        let initial = NodeSet::from_sorted(7, [0u32, 1, 2, 3]);
        let mut session = McSession::with_source(&view, initial, McApproxRank::default());
        session.remove_pages_via(&view, &[1]);
        let warm = session.solve();
        assert!(session.last_update().dropped >= 1);

        let cold = NodeSet::from_sorted(7, [0u32, 2, 3]);
        let mut fresh = McSession::with_source(&view, cold, McApproxRank::default());
        assert_eq!(warm, fresh.solve());
    }
}
