//! The TCP transport: accept loop, worker lanes, graceful shutdown.
//!
//! One acceptor thread feeds a bounded connection queue; `threads` worker
//! lanes — one long-lived task per lane on an
//! [`approxrank_exec::Executor`] — pop connections and run keep-alive
//! request loops. [`Server::serve`] dispatches the lanes and therefore
//! blocks until shutdown, participating as the last lane itself.
//!
//! Shutdown is cooperative: a [`ServerHandle`] (or a Unix signal wired
//! through [`shutdown_on_signal`]) flips an atomic flag; the acceptor
//! closes the listener, workers finish their in-flight request, answer it
//! with `Connection: close`, and drain. Queued-but-unstarted connections
//! are shed with a best-effort 503.

use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use approxrank_exec::Executor;
use approxrank_graph::DiGraph;
use approxrank_trace::{logging, request, RequestRecorder, Tee, TraceId};

use crate::http::{read_request, write_response, ReadError, Request, Response};
use crate::metrics::{Endpoint, MetricsWithTrace};
use crate::state::{AppState, ServeConfig};
use crate::tenant::{Admission, DEFAULT_TENANT};

/// How often blocked waits (accept, queue pop, idle keep-alive reads)
/// re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(50);

/// The bounded handoff between the acceptor and the worker lanes.
struct ConnQueue {
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    capacity: usize,
}

impl ConnQueue {
    fn new(capacity: usize) -> Self {
        ConnQueue {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<TcpStream>> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueues unless full; a full queue hands the stream back so the
    /// caller can shed it.
    fn push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut q = self.lock();
        if q.len() >= self.capacity {
            return Err(stream);
        }
        q.push_back(stream);
        self.ready.notify_one();
        Ok(())
    }

    /// Pops a connection, waiting up to [`POLL`]; `None` on timeout.
    fn pop(&self) -> Option<TcpStream> {
        let mut q = self.lock();
        if let Some(stream) = q.pop_front() {
            return Some(stream);
        }
        let (mut q, _) = self
            .ready
            .wait_timeout(q, POLL)
            .unwrap_or_else(|e| e.into_inner());
        q.pop_front()
    }
}

/// A remote control for a running [`Server`]: signals shutdown from
/// another thread (tests) or a signal handler bridge (the CLI).
#[derive(Clone)]
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful drain: in-flight requests complete, the
    /// listener closes, [`Server::serve`] returns.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

/// What a completed [`Server::serve`] run did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests answered across all endpoints.
    pub requests: u64,
    /// Connections accepted.
    pub connections: u64,
}

/// The ranking service: a bound listener plus the shared [`AppState`].
pub struct Server {
    state: Arc<AppState>,
    listener: TcpListener,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listener and builds the state (including the `O(N)`
    /// degree precomputation) for `graph`. When the config names a data
    /// directory, crash recovery runs here — before the first request can
    /// arrive — re-registering persisted sessions and rewarming the
    /// result cache.
    pub fn bind(graph: DiGraph, config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let data_dir = config.data_dir.clone();
        let state = Arc::new(
            AppState::new(graph, config)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?,
        );
        if let Some(dir) = data_dir {
            crate::persist::open_store(&state, &dir)?;
        }
        Ok(Server {
            state,
            listener,
            addr,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (resolves `:0` to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state, for in-process clients (e.g. the load generator's
    /// self-hosted mode reads cache stats directly).
    pub fn state(&self) -> Arc<AppState> {
        Arc::clone(&self.state)
    }

    /// A handle that can stop this server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shutdown: Arc::clone(&self.shutdown),
            addr: self.addr,
        }
    }

    /// Runs the service until shutdown; returns what it served.
    ///
    /// Blocks the calling thread, which participates as one of the worker
    /// lanes.
    pub fn serve(self) -> ServeSummary {
        let Server {
            state,
            listener,
            addr: _,
            shutdown,
        } = self;
        let width = state.config.threads.max(1);
        let exec = Arc::new(Executor::new(width));
        let _ = state.pool.set(Arc::clone(&exec));
        let queue = Arc::new(ConnQueue::new(state.config.accept_queue));

        let acceptor = {
            let queue = Arc::clone(&queue);
            let state = Arc::clone(&state);
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("approxrank-serve-accept".into())
                .spawn(move || accept_loop(&listener, &queue, &state, &shutdown))
                .expect("failed to spawn acceptor")
        };

        // With a durable store: periodically fold the WAL into a fresh
        // snapshot so boot-time replay stays short.
        let snapshotter = state.router.has_store().then(|| {
            let state = Arc::clone(&state);
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("approxrank-serve-snapshot".into())
                .spawn(move || snapshot_loop(&state, &shutdown))
                .expect("failed to spawn snapshotter")
        });

        // One long-lived task per lane; `run_chunks` returns when every
        // lane has drained, so this call *is* the server's lifetime.
        exec.run_chunks(width, |_lane| worker_loop(&state, &queue, &shutdown));
        let _ = acceptor.join();
        if let Some(snapshotter) = snapshotter {
            let _ = snapshotter.join();
            // Clean shutdown: one final snapshot (so the next boot replays
            // nothing) and a WAL flush regardless of fsync policy.
            if let Err(e) = crate::persist::snapshot_now(&state) {
                logging::log(
                    logging::Level::Error,
                    "serve",
                    &format!("final snapshot failed: {e}"),
                );
            }
            if let Err(e) = crate::persist::flush(&state) {
                logging::log(
                    logging::Level::Error,
                    "serve",
                    &format!("final WAL flush failed: {e}"),
                );
            }
        }

        // Shed anything still queued: tell the client we are going away.
        while let Some(stream) = queue.lock().pop_front() {
            shed(&state, stream);
        }

        ServeSummary {
            requests: state.metrics.total_requests(),
            connections: state.metrics.total_connections(),
        }
    }
}

/// Periodically snapshots session + hot-cache state until shutdown,
/// polling the flag at [`POLL`] so drains are never delayed by a sleep.
fn snapshot_loop(state: &AppState, shutdown: &AtomicBool) {
    let interval = state.config.snapshot_interval;
    let mut last = Instant::now();
    while !shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(POLL);
        if last.elapsed() >= interval {
            if let Err(e) = crate::persist::snapshot_now(state) {
                logging::log(
                    logging::Level::Error,
                    "serve",
                    &format!("snapshot failed: {e}"),
                );
            }
            last = Instant::now();
        }
    }
}

/// Accepts connections until shutdown, feeding the queue and shedding
/// (503) when it is full.
fn accept_loop(listener: &TcpListener, queue: &ConnQueue, state: &AppState, shutdown: &AtomicBool) {
    listener
        .set_nonblocking(true)
        .expect("listener nonblocking");
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                state.metrics.observe_connection();
                if let Err(stream) = queue.push(stream) {
                    state.metrics.observe_rejected_accept();
                    shed(state, stream);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Best-effort 503 + close for a connection the server will not serve.
fn shed(state: &AppState, stream: TcpStream) {
    let mut response = Response::error(503, "server is shutting down or overloaded");
    response.close = true;
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let mut stream = stream;
    let _ = write_response(&mut stream, &response);
    state.metrics.observe_request(Endpoint::Other, 503, 0);
}

/// One worker lane: pops connections and serves their keep-alive loops
/// until shutdown with an empty queue.
fn worker_loop(state: &AppState, queue: &ConnQueue, shutdown: &AtomicBool) {
    loop {
        match queue.pop() {
            Some(stream) => handle_connection(state, stream, shutdown),
            None => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

/// What [`await_request`] saw while waiting for the next request head.
enum Waited {
    /// Bytes are available — read the request.
    Ready,
    /// The peer closed, the idle timer expired, or shutdown began.
    Done,
}

/// Waits for the first byte of the next request, polling the shutdown
/// flag so an *idle* keep-alive connection never delays a drain. Bytes
/// already buffered (pipelining) count as ready.
fn await_request(
    reader: &BufReader<TcpStream>,
    idle_timeout: Duration,
    shutdown: &AtomicBool,
) -> Waited {
    if !reader.buffer().is_empty() {
        return Waited::Ready;
    }
    let stream = reader.get_ref();
    let started = Instant::now();
    let mut probe = [0u8; 1];
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Waited::Done;
        }
        if stream.set_read_timeout(Some(POLL)).is_err() {
            return Waited::Done;
        }
        match stream.peek(&mut probe) {
            Ok(0) => return Waited::Done,
            Ok(_) => return Waited::Ready,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if started.elapsed() >= idle_timeout {
                    return Waited::Done;
                }
            }
            Err(_) => return Waited::Done,
        }
    }
}

/// Serves one connection's keep-alive request loop.
fn handle_connection(state: &AppState, stream: TcpStream, shutdown: &AtomicBool) {
    let timeout = state.config.request_timeout;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(timeout));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream.try_clone().unwrap_or(stream);

    loop {
        match await_request(&reader, timeout, shutdown) {
            Waited::Ready => {}
            Waited::Done => return,
        }
        // A request head has started arriving: give the whole exchange
        // the configured budget.
        if reader.get_ref().set_read_timeout(Some(timeout)).is_err() {
            return;
        }
        let request = match read_request(&mut reader, state.config.max_body) {
            Ok(request) => request,
            Err(ReadError::Closed) => return,
            Err(ReadError::Malformed(msg)) => {
                let response = read_error_response(400, &msg);
                let _ = write_response(&mut writer, &response);
                state.metrics.observe_request(Endpoint::Other, 400, 0);
                return;
            }
            Err(ReadError::BodyTooLarge) => {
                let response = read_error_response(413, "request body exceeds the configured cap");
                let _ = write_response(&mut writer, &response);
                state.metrics.observe_request(Endpoint::Other, 413, 0);
                return;
            }
            Err(ReadError::Io(_)) => {
                let response = read_error_response(408, "timed out reading the request");
                let _ = write_response(&mut writer, &response);
                state.metrics.observe_request(Endpoint::Other, 408, 0);
                return;
            }
        };

        let (_endpoint, mut response) = dispatch(state, &request);
        let closing = request.wants_close() || shutdown.load(Ordering::SeqCst);
        response.close = response.close || closing;
        if write_response(&mut writer, &response).is_err() || response.close {
            return;
        }
    }
}

/// Builds the error response for a request that never reached dispatch
/// (unparseable head, oversized body, read timeout). It gets a fresh
/// trace id — in the envelope and the `X-Request-Id` header — so even
/// these failures are attributable from client logs.
fn read_error_response(status: u16, message: &str) -> Response {
    let trace_id = TraceId::generate();
    let mut response = {
        let _scope = logging::trace_scope(&trace_id);
        Response::error(status, message)
    };
    response.request_id = Some(trace_id);
    response.close = true;
    response
}

/// Runs the router with panic containment — a handler panic becomes a
/// 500 (and a counter) instead of killing the lane — and owns the
/// request's trace lifecycle: an inbound `X-Request-Id` (when valid) or
/// a fresh id becomes the trace id, the handler runs under a
/// request-scoped recorder teed with the metrics registry, and the
/// finished trace lands in the debug ring (and the slow-query log when
/// it crossed `--slow-ms`). The id is echoed back as `X-Request-Id`.
///
/// The request's tenant — the `X-Tenant` header, `"default"` without one
/// — is entered as a logging scope (so every log line and remote shard
/// call carries it) and, when a [`crate::tenant::TenantGovernor`] is
/// configured, charged for admission **before** the handler runs: `POST`
/// (solving) requests over quota queue briefly and are shed with `429` +
/// `Retry-After` when the tenant's queue is full or the wait times out.
/// `GET` endpoints (health, metrics, debug) always pass, so operators
/// can observe a saturated tenant.
fn dispatch(state: &AppState, request: &Request) -> (Endpoint, Response) {
    let started = Instant::now();
    let trace_id = request
        .header("x-request-id")
        .filter(|v| TraceId::is_valid(v))
        .map(str::to_string)
        .unwrap_or_else(TraceId::generate);
    let tenant = request
        .header("x-tenant")
        .filter(|t| !t.is_empty())
        .unwrap_or(DEFAULT_TENANT)
        .to_string();
    let recorder = RequestRecorder::new(trace_id.clone());
    let traced_metrics = MetricsWithTrace::new(&state.metrics, &trace_id);
    let obs = Tee(&recorder, &traced_metrics);
    let _scope = logging::trace_scope(&trace_id);
    let _tenant_scope = logging::tenant_scope(&tenant);
    let _permit = match &state.tenants {
        Some(governor) if request.method == "POST" => match governor.admit(&tenant) {
            Admission::Granted(permit) => Some(permit),
            Admission::Shed { retry_after } => {
                let mut response = Response::error(
                    429,
                    &format!("tenant {tenant:?} is over its admission quota"),
                );
                response.retry_after = Some(retry_after);
                state.metrics.observe_request(
                    Endpoint::Other,
                    429,
                    started.elapsed().as_micros() as u64,
                );
                response.request_id = Some(trace_id);
                return (Endpoint::Other, response);
            }
        },
        _ => None,
    };
    let (endpoint, mut response) = match std::panic::catch_unwind(AssertUnwindSafe(|| {
        crate::handlers::route(state, request, &obs)
    })) {
        Ok(routed) => routed,
        Err(_) => {
            state.metrics.observe_panic();
            logging::log(
                logging::Level::Error,
                "serve",
                &format!("handler panicked on {} {}", request.method, request.path),
            );
            let mut response = Response::error(500, "internal error handling the request");
            response.close = true;
            (Endpoint::Other, response)
        }
    };
    state.metrics.observe_request(
        endpoint,
        response.status,
        started.elapsed().as_micros() as u64,
    );
    let trace = recorder.finish(&request.method, &request.path, response.status);
    if let Some(slow_ms) = state.config.slow_ms {
        if trace.total_ns >= slow_ms.saturating_mul(1_000_000) {
            state.metrics.observe_slow_request();
            if let Some(file) = &state.slow_log {
                use std::io::Write;
                let mut file = file.lock().unwrap_or_else(|e| e.into_inner());
                let _ = writeln!(file, "{}", request::emit(&trace));
            }
        }
    }
    state.traces.push(trace);
    response.request_id = Some(trace_id);
    (endpoint, response)
}

/// Process-wide flag set by the Unix signal handler.
static SIGNAL_SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Wires `SIGINT`/`SIGTERM` to a graceful drain of `handle`. See
/// [`on_shutdown_signal`] for the mechanics and the once-per-process
/// caveat.
pub fn shutdown_on_signal(handle: ServerHandle) {
    on_shutdown_signal(move || handle.shutdown());
}

/// Runs `f` when the process receives `SIGINT`/`SIGTERM`: the handler
/// flips a process-wide flag (the only async-signal-safe thing to do) and
/// a watcher thread invokes `f`. The handler also restores the default
/// disposition for the signal it caught, so a *second* Ctrl-C terminates
/// immediately instead of waiting on a wedged drain. Call at most once
/// per process, from the CLI entry point — the shard-server mode uses
/// this directly to drain an `approxrank_rpc::ShardServer` handle.
/// Non-Unix builds fall back to no signal wiring.
pub fn on_shutdown_signal(f: impl FnOnce() + Send + 'static) {
    #[cfg(unix)]
    unsafe {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        extern "C" fn on_signal(signum: i32) {
            SIGNAL_SHUTDOWN.store(true, Ordering::SeqCst);
            // SIG_DFL (0): `signal` is async-signal-safe, and the default
            // disposition for INT/TERM is immediate termination.
            unsafe {
                extern "C" {
                    fn signal(signum: i32, handler: usize) -> usize;
                }
                signal(signum, 0);
            }
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
    std::thread::Builder::new()
        .name("approxrank-serve-signals".into())
        .spawn(move || loop {
            if SIGNAL_SHUTDOWN.load(Ordering::SeqCst) {
                f();
                return;
            }
            std::thread::sleep(POLL);
        })
        .expect("failed to spawn signal watcher");
}
