//! Per-tenant admission control.
//!
//! Every request names a tenant — the `X-Tenant` header, or `"default"`
//! when absent — and solving endpoints (the `POST` routes) must pass the
//! [`TenantGovernor`] before dispatch. Each tenant gets a concurrency
//! quota (solves in flight) and a bounded wait queue: a request over
//! quota parks in the queue until a slot frees, and is shed with
//! `429 Too Many Requests` + `Retry-After` when the queue itself is full
//! or the wait exceeds its deadline. One tenant saturating its quota
//! therefore queues *its own* traffic — other tenants' slots are
//! untouched, which is the whole point.
//!
//! The governor is deliberately simple: one mutex over a per-tenant
//! table, one condvar for slot handoff. Admission is on the request
//! path, but the critical section is a hash lookup and two integer
//! updates — microseconds against solves that take milliseconds.

use std::collections::HashMap;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Hard cap on distinct tenant labels the governor tracks, so a client
/// spraying random `X-Tenant` values cannot grow the table (and the
/// `/metrics` exposition) without bound. Requests naming a tenant beyond
/// the cap are accounted to the synthetic `"overflow"` tenant.
pub const MAX_TENANTS: usize = 1024;

/// The tenant label used when a request carries no `X-Tenant` header.
pub const DEFAULT_TENANT: &str = "default";

#[derive(Default)]
struct TenantState {
    /// Requests holding an admission slot right now.
    in_flight: usize,
    /// Requests parked waiting for a slot.
    waiting: usize,
    /// Lifetime admissions + sheds (everything that asked).
    requests: u64,
    /// Lifetime requests answered 429.
    shed: u64,
}

/// What [`TenantGovernor::admit`] decided.
pub enum Admission<'a> {
    /// The request may run; drop the permit when it finishes.
    Granted(TenantPermit<'a>),
    /// The request must be answered `429` with this `Retry-After`
    /// (seconds).
    Shed {
        /// Seconds the client should wait before retrying.
        retry_after: u64,
    },
}

/// An admission slot held for the duration of one request. Dropping it
/// releases the slot and wakes one queued waiter.
pub struct TenantPermit<'a> {
    governor: &'a TenantGovernor,
    tenant: String,
}

impl Drop for TenantPermit<'_> {
    fn drop(&mut self) {
        let mut tenants = self.governor.lock();
        if let Some(state) = tenants.get_mut(&self.tenant) {
            state.in_flight = state.in_flight.saturating_sub(1);
        }
        // A freed slot may unblock any waiter of this tenant; waiters of
        // other tenants re-check and park again, which is cheap.
        self.governor.freed.notify_all();
    }
}

/// Per-tenant concurrency quotas with bounded wait queues.
pub struct TenantGovernor {
    /// Concurrent solves each tenant may run.
    quota: usize,
    /// Requests each tenant may park while over quota; the next one is
    /// shed immediately.
    queue: usize,
    /// Longest a queued request waits for a slot before it is shed.
    max_wait: Duration,
    tenants: Mutex<HashMap<String, TenantState>>,
    freed: Condvar,
}

impl TenantGovernor {
    /// A governor allowing `quota` concurrent solves and `queue` parked
    /// waiters per tenant; a waiter is shed after `max_wait`.
    pub fn new(quota: usize, queue: usize, max_wait: Duration) -> TenantGovernor {
        TenantGovernor {
            quota: quota.max(1),
            queue,
            max_wait,
            tenants: Mutex::new(HashMap::new()),
            freed: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<String, TenantState>> {
        self.tenants.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Folds an unseen tenant label into `"overflow"` once the table is
    /// at [`MAX_TENANTS`], bounding memory and metric cardinality.
    fn slot_name(tenants: &HashMap<String, TenantState>, tenant: &str) -> String {
        if tenants.contains_key(tenant) || tenants.len() < MAX_TENANTS {
            tenant.to_string()
        } else {
            "overflow".to_string()
        }
    }

    /// Admits or sheds one request for `tenant`. Granted requests hold
    /// their permit until done; over-quota requests park (bounded queue,
    /// bounded wait) and get a freed slot FIFO-fairly via the condvar.
    pub fn admit(&self, tenant: &str) -> Admission<'_> {
        let mut tenants = self.lock();
        let name = Self::slot_name(&tenants, tenant);
        let state = tenants.entry(name.clone()).or_default();
        state.requests += 1;
        if state.in_flight < self.quota {
            state.in_flight += 1;
            return Admission::Granted(TenantPermit {
                governor: self,
                tenant: name,
            });
        }
        if state.waiting >= self.queue {
            state.shed += 1;
            return Admission::Shed { retry_after: 1 };
        }
        state.waiting += 1;
        let deadline = Instant::now() + self.max_wait;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            let state = tenants.get_mut(&name).expect("tenant entry persists");
            if state.in_flight < self.quota {
                state.waiting -= 1;
                state.in_flight += 1;
                return Admission::Granted(TenantPermit {
                    governor: self,
                    tenant: name,
                });
            }
            if remaining.is_zero() {
                state.waiting -= 1;
                state.shed += 1;
                // The slot did not free within a full wait budget, so
                // advertise the budget itself (rounded up to a second).
                let retry_after = self.max_wait.as_secs().max(1);
                return Admission::Shed { retry_after };
            }
            let (guard, _timeout) = self
                .freed
                .wait_timeout(tenants, remaining)
                .unwrap_or_else(|e| e.into_inner());
            tenants = guard;
        }
    }

    /// One `/metrics` snapshot row per tenant seen so far.
    pub fn snapshot(&self) -> Vec<TenantSnapshot> {
        let tenants = self.lock();
        let mut rows: Vec<TenantSnapshot> = tenants
            .iter()
            .map(|(name, s)| TenantSnapshot {
                tenant: name.clone(),
                in_flight: s.in_flight,
                queue_depth: s.waiting,
                requests: s.requests,
                shed: s.shed,
            })
            .collect();
        rows.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        rows
    }
}

/// One tenant's counters, as rendered on `/metrics`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantSnapshot {
    /// The tenant label.
    pub tenant: String,
    /// Admission slots held right now.
    pub in_flight: usize,
    /// Requests parked waiting for a slot.
    pub queue_depth: usize,
    /// Lifetime requests (admitted + shed).
    pub requests: u64,
    /// Lifetime 429 answers.
    pub shed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn under_quota_requests_run_concurrently() {
        let g = TenantGovernor::new(2, 0, Duration::from_millis(10));
        let a = g.admit("acme");
        let b = g.admit("acme");
        assert!(matches!(a, Admission::Granted(_)));
        assert!(matches!(b, Admission::Granted(_)));
        // Third concurrent request: queue is 0, shed immediately.
        match g.admit("acme") {
            Admission::Shed { retry_after } => assert_eq!(retry_after, 1),
            Admission::Granted(_) => panic!("over-quota request must shed"),
        }
        // A different tenant has its own slots.
        assert!(matches!(g.admit("beta"), Admission::Granted(_)));
        let snap = g.snapshot();
        let acme = snap.iter().find(|s| s.tenant == "acme").unwrap();
        assert_eq!((acme.in_flight, acme.requests, acme.shed), (2, 3, 1));
    }

    #[test]
    fn dropping_a_permit_frees_the_slot() {
        let g = TenantGovernor::new(1, 0, Duration::from_millis(10));
        {
            let _p = match g.admit("t") {
                Admission::Granted(p) => p,
                _ => panic!(),
            };
            assert!(matches!(g.admit("t"), Admission::Shed { .. }));
        }
        assert!(matches!(g.admit("t"), Admission::Granted(_)));
    }

    #[test]
    fn queued_request_gets_the_freed_slot() {
        let g = Arc::new(TenantGovernor::new(1, 4, Duration::from_secs(5)));
        let p = match g.admit("t") {
            Admission::Granted(p) => p,
            _ => panic!(),
        };
        let ran = Arc::new(AtomicUsize::new(0));
        let waiter = {
            let (g, ran) = (Arc::clone(&g), Arc::clone(&ran));
            std::thread::spawn(move || match g.admit("t") {
                Admission::Granted(_p) => ran.store(1, Ordering::SeqCst),
                Admission::Shed { .. } => ran.store(2, Ordering::SeqCst),
            })
        };
        // Give the waiter time to park, then free the slot.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(g.snapshot()[0].queue_depth, 1);
        drop(p);
        waiter.join().unwrap();
        assert_eq!(ran.load(Ordering::SeqCst), 1, "waiter was admitted");
    }

    #[test]
    fn queued_request_sheds_after_the_wait_budget() {
        let g = TenantGovernor::new(1, 4, Duration::from_millis(30));
        let _p = match g.admit("t") {
            Admission::Granted(p) => p,
            _ => panic!(),
        };
        let started = Instant::now();
        match g.admit("t") {
            Admission::Shed { retry_after } => assert!(retry_after >= 1),
            Admission::Granted(_) => panic!("slot never freed"),
        }
        assert!(started.elapsed() >= Duration::from_millis(30));
        assert_eq!(g.snapshot()[0].queue_depth, 0, "waiter left the queue");
    }

    #[test]
    fn tenant_table_is_bounded() {
        let g = TenantGovernor::new(1, 0, Duration::from_millis(1));
        for i in 0..MAX_TENANTS + 50 {
            let _ = g.admit(&format!("t{i}"));
        }
        let snap = g.snapshot();
        assert!(snap.len() <= MAX_TENANTS + 1, "{}", snap.len());
        let overflow = snap.iter().find(|s| s.tenant == "overflow").unwrap();
        assert_eq!(overflow.requests, 50);
    }
}
