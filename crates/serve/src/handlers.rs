//! Request routing and the endpoint implementations.
//!
//! Every handler is a pure function of (`AppState`, [`Request`]) →
//! [`Response`]: this layer owns wire-format parsing, validation, and
//! response shaping, and delegates every solve to the
//! [`crate::router::Router`] (which in turn drives one
//! [`approxrank_engine::Engine`] per shard). `/rank` answers are
//! *bit-identical* to the offline `subrank rank` CLI for the same members
//! and options — in sharded mode this holds for any membership resident
//! on a single shard; cross-shard memberships are answered with a merged
//! mixture and marked by a `"shards"` count greater than 1.

use std::sync::atomic::Ordering::Relaxed;

use approxrank_engine::{
    Algorithm, CachedResult, EngineError, EstimatorOptions, KeywordRequest, RankRequest,
};
use approxrank_objectrank::base_set_from_labels;
use approxrank_trace::Observer;

use crate::http::{Request, Response};
use crate::json::{obj, parse, Json};
use crate::metrics::Endpoint;
use crate::state::{AppState, KeywordKey};

/// Routes a request to its handler and returns the response together
/// with the endpoint label for metrics. `obs` is the request-scoped
/// observer the dispatcher built (a tee of the request's trace recorder
/// and the metrics registry); handlers thread it through every engine
/// and store call so the whole request becomes one span tree.
pub fn route(state: &AppState, request: &Request, obs: &dyn Observer) -> (Endpoint, Response) {
    let path = request.path.as_str();
    let method = request.method.as_str();
    match (method, path) {
        ("GET", "/healthz") => (Endpoint::Healthz, healthz()),
        ("GET", "/stats") => (Endpoint::Stats, stats(state)),
        ("GET", "/metrics") => (Endpoint::Metrics, metrics(state)),
        ("GET", "/debug/requests") => (Endpoint::DebugRequests, debug_requests(state)),
        ("POST", "/rank") => (Endpoint::Rank, rank(state, request, obs)),
        ("POST", "/keyword") => (Endpoint::Keyword, keyword(state, request, obs)),
        ("POST", "/graph/edges") => (Endpoint::GraphEdges, graph_edges(state, request, obs)),
        ("POST", "/session") => (Endpoint::SessionCreate, session_create(state, request, obs)),
        _ => {
            if let Some(rest) = path.strip_prefix("/session/") {
                return route_session(state, request, method, rest, obs);
            }
            let status = if matches!(
                path,
                "/healthz"
                    | "/stats"
                    | "/metrics"
                    | "/rank"
                    | "/keyword"
                    | "/graph/edges"
                    | "/session"
                    | "/debug/requests"
            ) {
                405
            } else {
                404
            };
            (
                Endpoint::Other,
                Response::error(status, &format!("no route for {method} {path}")),
            )
        }
    }
}

fn route_session(
    state: &AppState,
    request: &Request,
    method: &str,
    rest: &str,
    obs: &dyn Observer,
) -> (Endpoint, Response) {
    let (id_text, action) = match rest.split_once('/') {
        None => (rest, ""),
        Some((id, action)) => (id, action),
    };
    let Ok(id) = id_text.parse::<u64>() else {
        return (
            Endpoint::Other,
            Response::error(400, &format!("bad session id {id_text:?}")),
        );
    };
    match (method, action) {
        ("POST", "update") => (
            Endpoint::SessionUpdate,
            session_update(state, id, request, obs),
        ),
        ("GET", "") => (Endpoint::SessionGet, session_get(state, id)),
        ("DELETE", "") => (Endpoint::SessionDelete, session_delete(state, id, obs)),
        _ => (
            Endpoint::Other,
            Response::error(404, &format!("no route for {method} /session/{rest}")),
        ),
    }
}

/// `GET /debug/requests`: the ring of recently completed request traces
/// as a JSON array, newest last — the same wire format as the slow-query
/// log, one object per trace.
fn debug_requests(state: &AppState) -> Response {
    let traces = state.traces.snapshot();
    let body = traces
        .iter()
        .map(approxrank_trace::request::emit)
        .collect::<Vec<_>>()
        .join(",");
    Response::json(200, format!("[{body}]"))
}

/// Maps an engine refusal onto its HTTP status.
fn engine_error(e: EngineError) -> Response {
    match e {
        EngineError::BadRequest(msg) => Response::error(400, &msg),
        EngineError::NoSuchSession(id) => Response::error(404, &format!("no session {id}")),
        EngineError::Unavailable(msg) => Response::error(503, &msg),
    }
}

fn healthz() -> Response {
    Response::json(200, obj(vec![("status", Json::Str("ok".into()))]).emit())
}

fn stats(state: &AppState) -> Response {
    let cache = state.cache_stats();
    let graph = state.router.summary();
    let body = obj(vec![
        (
            "graph",
            obj(vec![
                ("nodes", Json::Num(graph.nodes as f64)),
                ("edges", Json::Num(graph.edges as f64)),
                ("dangling", Json::Num(graph.dangling as f64)),
                ("epoch", Json::Num(state.router.graph_epoch() as f64)),
                (
                    "mutations",
                    Json::Num(state.router.graph_mutations() as f64),
                ),
            ]),
        ),
        (
            "cache",
            obj(vec![
                ("entries", Json::Num(cache.entries as f64)),
                ("capacity", Json::Num(cache.capacity as f64)),
                ("hits", Json::Num(cache.hits as f64)),
                ("misses", Json::Num(cache.misses as f64)),
                ("evictions", Json::Num(cache.evictions as f64)),
                ("invalidations", Json::Num(cache.invalidations as f64)),
                ("stale_evictions", Json::Num(cache.stale_evictions as f64)),
            ]),
        ),
        ("sessions_open", Json::Num(state.session_count() as f64)),
        (
            "requests_total",
            Json::Num(state.metrics.total_requests() as f64),
        ),
        ("uptime_seconds", Json::Num(state.metrics.uptime_seconds())),
        ("threads", Json::Num(state.config.threads as f64)),
        ("shards", Json::Num(state.router.num_shards() as f64)),
    ]);
    Response::json(200, body.emit())
}

fn metrics(state: &AppState) -> Response {
    let cache = state.cache_stats();
    let graph = state.router.summary();
    let mut extra = String::new();
    extra.push_str(&format!(
        "approxrank_graph_nodes {}\napproxrank_graph_edges {}\n",
        graph.nodes, graph.edges
    ));
    extra.push_str(&format!(
        "approxrank_graph_epoch {}\napproxrank_graph_mutations_total {}\n",
        state.router.graph_epoch(),
        state.router.graph_mutations()
    ));
    extra.push_str(&format!(
        "approxrank_cache_hits_total {}\napproxrank_cache_misses_total {}\n\
         approxrank_cache_evictions_total {}\napproxrank_cache_invalidations_total {}\n\
         approxrank_cache_stale_evictions_total {}\n\
         approxrank_cache_entries {}\napproxrank_cache_capacity {}\n",
        cache.hits,
        cache.misses,
        cache.evictions,
        cache.invalidations,
        cache.stale_evictions,
        cache.entries,
        cache.capacity
    ));
    extra.push_str(&format!(
        "approxrank_sessions_open {}\n",
        state.session_count()
    ));
    if state.router.has_store() {
        // One store per engine: expose the fleet totals under the same
        // line names a single-store deployment always had.
        let (mut appends, mut bytes, mut fsyncs, mut snap_ms) = (0u64, 0u64, 0u64, 0u64);
        let (mut snaps, mut recovered, mut truncated) = (0u64, 0u64, 0u64);
        for engine in state.router.local_engines() {
            if let Some(store) = engine.store() {
                let s = store.stats();
                appends += s.wal_appends.load(Relaxed);
                bytes += s.wal_bytes.load(Relaxed);
                fsyncs += s.fsyncs.load(Relaxed);
                snap_ms += s.snapshot_ms.load(Relaxed);
                snaps += s.snapshots.load(Relaxed);
                recovered += s.recovered_sessions.load(Relaxed);
                truncated += s.truncated_records.load(Relaxed);
            }
        }
        extra.push_str(&format!(
            "store_wal_appends {appends}\nstore_wal_bytes {bytes}\nstore_fsyncs {fsyncs}\n\
             store_snapshot_ms {snap_ms}\nstore_snapshots {snaps}\nstore_recovered_sessions {recovered}\n\
             store_truncated_records {truncated}\nstore_wal_errors {}\n",
            state.router.wal_errors(),
        ));
    }
    extra.push_str(&format!(
        "shard_count {}\nshard_cross_rank_requests {}\n",
        state.router.num_shards(),
        state.router.cross_rank_requests()
    ));
    for (k, engine) in state.router.handles().iter().enumerate() {
        extra.push_str(&format!(
            "shard_rank_requests{{shard=\"{k}\"}} {}\n\
             shard_sessions_open{{shard=\"{k}\"}} {}\n\
             shard_cache_entries{{shard=\"{k}\"}} {}\n",
            state.router.shard_rank_requests(k),
            engine.session_count(),
            engine.cache_stats().entries
        ));
    }
    if state.router.is_remote() {
        // Transport health of the remote fan-out: fleet totals plus
        // per-shard replica liveness so a dashboard can spot a degraded
        // replica set before it exhausts its retry budget.
        let (mut requests, mut io_errors, mut retries, mut failovers) = (0u64, 0u64, 0u64, 0u64);
        let (mut unavailable, mut probes) = (0u64, 0u64);
        for remote in state.router.remote_engines() {
            let m = remote.metrics();
            requests += m.requests;
            io_errors += m.io_errors;
            retries += m.retries;
            failovers += m.failovers;
            unavailable += m.unavailable;
            probes += m.health_probes;
            extra.push_str(&format!(
                "rpc_replicas{{shard=\"{k}\"}} {total}\nrpc_replicas_healthy{{shard=\"{k}\"}} {healthy}\n",
                k = remote.shard(),
                total = m.replicas_total,
                healthy = m.replicas_healthy,
            ));
        }
        extra.push_str(&format!(
            "rpc_requests_total {requests}\nrpc_io_errors_total {io_errors}\n\
             rpc_retries_total {retries}\nrpc_failovers_total {failovers}\n\
             rpc_unavailable_total {unavailable}\nrpc_health_probes_total {probes}\n",
        ));
    }
    // Batch-scheduler counters: how much coalescing the engines actually
    // did. Occupancy is columns per multi-vector solve — 1.0 means no
    // batching benefit, `max_columns` means full windows.
    let batch = state.router.batch_stats();
    let occupancy = if batch.keyword_solves > 0 {
        batch.keyword_columns as f64 / batch.keyword_solves as f64
    } else {
        0.0
    };
    extra.push_str(&format!(
        "batch_rank_leaders_total {}\nbatch_rank_coalesced_total {}\n\
         batch_keyword_solves_total {}\nbatch_keyword_columns_total {}\n\
         batch_keyword_coalesced_total {}\nbatch_keyword_occupancy {occupancy:?}\n",
        batch.rank_leaders,
        batch.rank_coalesced,
        batch.keyword_solves,
        batch.keyword_columns,
        batch.keyword_coalesced,
    ));
    let (kw_hits, kw_misses, kw_entries) = state.keyword_cache.stats();
    extra.push_str(&format!(
        "keyword_cache_hits_total {kw_hits}\nkeyword_cache_misses_total {kw_misses}\n\
         keyword_cache_entries {kw_entries}\n"
    ));
    if let Some(governor) = &state.tenants {
        for row in governor.snapshot() {
            extra.push_str(&format!(
                "tenant_requests_total{{tenant=\"{t}\"}} {}\n\
                 tenant_shed_total{{tenant=\"{t}\"}} {}\n\
                 tenant_in_flight{{tenant=\"{t}\"}} {}\n\
                 tenant_queue_depth{{tenant=\"{t}\"}} {}\n",
                row.requests,
                row.shed,
                row.in_flight,
                row.queue_depth,
                t = row.tenant,
            ));
        }
    }
    if let Some(pool) = state.pool_stats() {
        extra.push_str(&format!(
            "pool_threads {}\npool_jobs {}\npool_tasks {}\npool_imbalance {:?}\n",
            pool.threads,
            pool.jobs,
            pool.tasks,
            pool.imbalance()
        ));
        for (lane, busy) in pool.busy_ns.iter().enumerate() {
            extra.push_str(&format!(
                "pool_worker_busy_ms{{lane=\"{lane}\"}} {:?}\n",
                *busy as f64 / 1e6
            ));
        }
    }
    Response::text(200, state.metrics.render(&extra))
}

/// Shared request-body schema of `/rank` and `/session`.
struct RankParams {
    members: Vec<u32>,
    algorithm: Algorithm,
    damping: f64,
    tolerance: f64,
    estimator: EstimatorOptions,
    top: usize,
}

impl RankParams {
    fn to_request(&self) -> RankRequest {
        RankRequest {
            members: self.members.clone(),
            algorithm: self.algorithm,
            damping: self.damping,
            tolerance: self.tolerance,
            estimator: self.estimator,
        }
    }
}

fn parse_members(state: &AppState, body: &Json) -> Result<Vec<u32>, String> {
    let items = body
        .get("members")
        .ok_or("missing \"members\"")?
        .as_array()
        .ok_or("\"members\" must be an array")?;
    if items.is_empty() {
        return Err("\"members\" must be non-empty".into());
    }
    let n = state.router.summary().nodes;
    let mut members = Vec::with_capacity(items.len());
    for item in items {
        let id = item
            .as_u64()
            .ok_or_else(|| format!("bad member {}", item.emit()))?;
        if id as usize >= n {
            return Err(format!("member {id} out of range (graph has {n} nodes)"));
        }
        members.push(id as u32);
    }
    members.sort_unstable();
    members.dedup();
    if members.len() == n {
        return Err("subgraph must be a proper subset of the graph".into());
    }
    Ok(members)
}

fn parse_rank_params(state: &AppState, raw: &[u8]) -> Result<RankParams, String> {
    let text = std::str::from_utf8(raw).map_err(|_| "body is not utf-8".to_string())?;
    if text.trim().is_empty() {
        return Err("empty body; expected a JSON object".into());
    }
    let body = parse(text)?;
    let members = parse_members(state, &body)?;
    let algorithm = match body.get("algorithm") {
        None => Algorithm::ApproxRank,
        Some(v) => Algorithm::parse(v.as_str().ok_or("\"algorithm\" must be a string")?)?,
    };
    let damping = match body.get("damping") {
        None => 0.85,
        Some(v) => v.as_f64().ok_or("\"damping\" must be a number")?,
    };
    if !(damping > 0.0 && damping < 1.0) {
        return Err(format!("damping must be in (0,1), got {damping}"));
    }
    let tolerance = match body.get("tolerance") {
        None => 1e-5,
        Some(v) => v.as_f64().ok_or("\"tolerance\" must be a number")?,
    };
    if !(tolerance > 0.0 && tolerance.is_finite()) {
        return Err(format!("tolerance must be positive, got {tolerance}"));
    }
    let top = match body.get("top") {
        None => 0,
        Some(v) => v.as_u64().ok_or("\"top\" must be a non-negative integer")? as usize,
    };
    // Estimator knobs (used by "mc" and "push"; harmless — but still
    // validated — when an exact algorithm ignores them).
    let mut estimator = EstimatorOptions::default();
    if let Some(v) = body.get("walks") {
        let walks = v.as_u64().ok_or("\"walks\" must be a positive integer")?;
        if walks == 0 || walks > u32::MAX as u64 {
            return Err(format!("walks must be in 1..=2^32-1, got {walks}"));
        }
        estimator.walks = walks as u32;
    }
    if let Some(v) = body.get("epsilon") {
        let epsilon = v.as_f64().ok_or("\"epsilon\" must be a number")?;
        if !(epsilon > 0.0 && epsilon.is_finite()) {
            return Err(format!("epsilon must be positive, got {epsilon}"));
        }
        estimator.epsilon = epsilon;
    }
    if let Some(v) = body.get("seed") {
        estimator.seed = v
            .as_u64()
            .ok_or("\"seed\" must be a non-negative integer")?;
    }
    Ok(RankParams {
        members,
        algorithm,
        damping,
        tolerance,
        estimator,
        top,
    })
}

fn scores_json(scores: &[(u32, f64)], top: usize) -> Json {
    let mut pairs: Vec<(u32, f64)> = scores.to_vec();
    pairs.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let take = if top == 0 {
        pairs.len()
    } else {
        top.min(pairs.len())
    };
    Json::Arr(
        pairs
            .into_iter()
            .take(take)
            .map(|(page, score)| {
                obj(vec![
                    ("page", Json::Num(page as f64)),
                    ("score", Json::Num(score)),
                ])
            })
            .collect(),
    )
}

fn result_body(
    algorithm: &str,
    result: &CachedResult,
    top: usize,
    cached: bool,
    shards: usize,
    extra: Vec<(&str, Json)>,
) -> Json {
    let mut pairs = vec![
        ("algorithm", Json::Str(algorithm.into())),
        ("converged", Json::Bool(result.converged)),
        ("iterations", Json::Num(result.iterations as f64)),
        ("lambda", result.lambda.map(Json::Num).unwrap_or(Json::Null)),
        ("cached", Json::Bool(cached)),
        ("shards", Json::Num(shards as f64)),
        ("scores", scores_json(&result.scores, top)),
    ];
    if let Some(est) = result.estimate {
        pairs.push((
            "estimate",
            obj(vec![
                ("walks", Json::Num(est.walks as f64)),
                ("epsilon", Json::Num(est.epsilon)),
                ("residual", Json::Num(est.residual)),
            ]),
        ));
    }
    pairs.extend(extra);
    obj(pairs)
}

fn rank(state: &AppState, request: &Request, obs: &dyn Observer) -> Response {
    let params = match parse_rank_params(state, &request.body) {
        Ok(p) => p,
        Err(e) => return Response::error(400, &e),
    };
    let _span = obs.span("http.rank");
    let routed = match state.router.rank(&params.to_request(), obs) {
        Ok(r) => r,
        Err(e) => return engine_error(e),
    };
    Response::json(
        200,
        result_body(
            params.algorithm.name(),
            &routed.outcome.result,
            params.top,
            routed.outcome.cached,
            routed.shards,
            vec![],
        )
        .emit(),
    )
}

/// What `POST /keyword` parsed out of its body: the membership, the
/// resolved base set, and the keyword text (when the base came from one).
struct KeywordParams {
    members: Vec<u32>,
    base: Vec<u32>,
    keyword: Option<String>,
    damping: f64,
    tolerance: f64,
    top: usize,
}

/// Resolves the request's personalization: an explicit `"base"` id list,
/// XOR a `"keyword"` matched against the page labels (the configured
/// labels file, or generated `page-<i>` labels without one) under the
/// ObjectRank rule shared with the `objectrank` crate. The error carries
/// its HTTP status: a keyword matching nothing is a 404, everything else
/// a 400.
fn resolve_base(
    state: &AppState,
    body: &Json,
) -> Result<(Vec<u32>, Option<String>), (u16, String)> {
    let n = state.router.summary().nodes;
    match (body.get("keyword"), body.get("base")) {
        (Some(_), Some(_)) => Err((
            400,
            "give either \"keyword\" or \"base\", not both".to_string(),
        )),
        (None, None) => Err((400, "missing \"keyword\" or \"base\"".to_string())),
        (None, Some(value)) => {
            let items = value
                .as_array()
                .ok_or((400, "\"base\" must be an array".to_string()))?;
            if items.is_empty() {
                return Err((400, "\"base\" must be non-empty".to_string()));
            }
            let mut base = Vec::with_capacity(items.len());
            for item in items {
                let id = item
                    .as_u64()
                    .ok_or_else(|| (400, format!("bad base page {}", item.emit())))?;
                if id as usize >= n {
                    return Err((
                        400,
                        format!("base page {id} out of range (graph has {n} nodes)"),
                    ));
                }
                base.push(id as u32);
            }
            base.sort_unstable();
            base.dedup();
            Ok((base, None))
        }
        (Some(value), None) => {
            let kw = value
                .as_str()
                .ok_or((400, "\"keyword\" must be a string".to_string()))?;
            if kw.is_empty() {
                return Err((400, "\"keyword\" must be non-empty".to_string()));
            }
            let base = match &state.labels {
                Some(labels) => base_set_from_labels(labels.iter().map(String::as_str), kw),
                None => {
                    let generated: Vec<String> = (0..n).map(|i| format!("page-{i}")).collect();
                    base_set_from_labels(generated.iter().map(String::as_str), kw)
                }
            };
            if base.is_empty() {
                return Err((404, format!("keyword {kw:?} matches no page")));
            }
            Ok((base, Some(kw.to_string())))
        }
    }
}

fn parse_keyword_params(state: &AppState, raw: &[u8]) -> Result<KeywordParams, (u16, String)> {
    let text = std::str::from_utf8(raw).map_err(|_| (400, "body is not utf-8".to_string()))?;
    if text.trim().is_empty() {
        return Err((400, "empty body; expected a JSON object".to_string()));
    }
    let body = parse(text).map_err(|e| (400, e))?;
    let members = parse_members(state, &body).map_err(|e| (400, e))?;
    let (base, keyword) = resolve_base(state, &body)?;
    let damping = match body.get("damping") {
        None => 0.85,
        Some(v) => v
            .as_f64()
            .ok_or((400, "\"damping\" must be a number".to_string()))?,
    };
    if !(damping > 0.0 && damping < 1.0) {
        return Err((400, format!("damping must be in (0,1), got {damping}")));
    }
    let tolerance = match body.get("tolerance") {
        None => 1e-5,
        Some(v) => v
            .as_f64()
            .ok_or((400, "\"tolerance\" must be a number".to_string()))?,
    };
    if !(tolerance > 0.0 && tolerance.is_finite()) {
        return Err((400, format!("tolerance must be positive, got {tolerance}")));
    }
    let top = match body.get("top") {
        None => 0,
        Some(v) => v
            .as_u64()
            .ok_or((400, "\"top\" must be a non-negative integer".to_string()))?
            as usize,
    };
    Ok(KeywordParams {
        members,
        base,
        keyword,
        damping,
        tolerance,
        top,
    })
}

/// `POST /keyword`: ObjectRank keyword ranking of a membership — the
/// random surfer teleports to the keyword's base set instead of
/// uniformly, and the subgraph is ranked through the same Λ-collapse as
/// `/rank`. Answers are cached per (membership, base, damping,
/// tolerance, graph epoch); concurrent distinct queries are coalesced
/// into multi-vector solves by the engines' batch scheduler.
fn keyword(state: &AppState, request: &Request, obs: &dyn Observer) -> Response {
    let params = match parse_keyword_params(state, &request.body) {
        Ok(p) => p,
        Err((status, e)) => return Response::error(status, &e),
    };
    let _span = obs.span("http.keyword");
    let mut extra = vec![("base_pages", Json::Num(params.base.len() as f64))];
    if let Some(kw) = &params.keyword {
        extra.push(("keyword", Json::Str(kw.clone())));
    }
    let key = KeywordKey {
        members: params.members.clone(),
        base: params.base.clone(),
        damping_bits: params.damping.to_bits(),
        tolerance_bits: params.tolerance.to_bits(),
        epoch: state.router.graph_epoch(),
    };
    if let Some((result, shards)) = state.keyword_cache.get(&key) {
        return Response::json(
            200,
            result_body("objectrank", &result, params.top, true, shards, extra).emit(),
        );
    }
    let routed = match state.router.keyword(
        &KeywordRequest {
            members: params.members,
            base: params.base,
            damping: params.damping,
            tolerance: params.tolerance,
        },
        obs,
    ) {
        Ok(r) => r,
        Err(e) => return engine_error(e),
    };
    state
        .keyword_cache
        .insert(key, (routed.outcome.result.clone(), routed.shards));
    Response::json(
        200,
        result_body(
            "objectrank",
            &routed.outcome.result,
            params.top,
            false,
            routed.shards,
            extra,
        )
        .emit(),
    )
}

/// Parses an optional edge-list field: an array of `[source, target]`
/// pairs. Endpoint range is checked by the delta layer (inserts may
/// legitimately extend the graph in single mode), so only the shape is
/// validated here.
fn parse_edge_list(body: &Json, field: &str) -> Result<Vec<(u32, u32)>, String> {
    let Some(value) = body.get(field) else {
        return Ok(Vec::new());
    };
    let items = value
        .as_array()
        .ok_or_else(|| format!("{field:?} must be an array of [source, target] pairs"))?;
    let mut edges = Vec::with_capacity(items.len());
    for item in items {
        let pair = item.as_array().filter(|p| p.len() == 2).ok_or_else(|| {
            format!(
                "bad edge {} in {field:?}: want [source, target]",
                item.emit()
            )
        })?;
        let mut ends = [0u32; 2];
        for (slot, v) in ends.iter_mut().zip(pair) {
            let id = v
                .as_u64()
                .filter(|&id| id <= u32::MAX as u64)
                .ok_or_else(|| format!("bad page id {} in {field:?}", v.emit()))?;
            *slot = id as u32;
        }
        edges.push((ends[0], ends[1]));
    }
    Ok(edges)
}

/// `POST /graph/edges`: applies one edge-mutation batch to the live
/// graph and reports the new epoch. The answer's `nodes`/`edges` reflect
/// the post-mutation graph, so a client can confirm the shape it now
/// queries against.
fn graph_edges(state: &AppState, request: &Request, obs: &dyn Observer) -> Response {
    let text = match std::str::from_utf8(&request.body) {
        Ok(t) if !t.trim().is_empty() => t,
        _ => return Response::error(400, "empty body; expected {\"insert\":[…],\"delete\":[…]}"),
    };
    let body = match parse(text) {
        Ok(b) => b,
        Err(e) => return Response::error(400, &e),
    };
    let insert = match parse_edge_list(&body, "insert") {
        Ok(v) => v,
        Err(e) => return Response::error(400, &e),
    };
    let delete = match parse_edge_list(&body, "delete") {
        Ok(v) => v,
        Err(e) => return Response::error(400, &e),
    };
    if insert.is_empty() && delete.is_empty() {
        return Response::error(400, "mutation batch is empty (no \"insert\" or \"delete\")");
    }
    let _span = obs.span("http.graph_edges");
    let outcome = match state.router.mutate_graph(&insert, &delete, obs) {
        Ok(o) => o,
        Err(e) => return engine_error(e),
    };
    let graph = state.router.summary();
    Response::json(
        200,
        obj(vec![
            ("epoch", Json::Num(outcome.epoch as f64)),
            ("inserted", Json::Num(outcome.inserted as f64)),
            ("deleted", Json::Num(outcome.deleted as f64)),
            ("touched_pages", Json::Num(outcome.touched_pages as f64)),
            ("structural", Json::Bool(outcome.structural)),
            (
                "sessions_restarted",
                Json::Num(outcome.sessions_repaired as f64),
            ),
            ("shards", Json::Num(state.router.num_shards() as f64)),
            ("nodes", Json::Num(graph.nodes as f64)),
            ("edges", Json::Num(graph.edges as f64)),
        ])
        .emit(),
    )
}

fn session_create(state: &AppState, request: &Request, obs: &dyn Observer) -> Response {
    let params = match parse_rank_params(state, &request.body) {
        Ok(p) => p,
        Err(e) => return Response::error(400, &e),
    };
    if !matches!(params.algorithm, Algorithm::ApproxRank | Algorithm::Mc) {
        return Response::error(
            400,
            "sessions support only algorithms \"approxrank\" and \"mc\"",
        );
    }
    let _span = obs.span("http.session_create");
    let (id, result) = match state.router.session_create(&params.to_request(), obs) {
        Ok(created) => created,
        Err(e) => return engine_error(e),
    };
    Response::json(
        200,
        result_body(
            params.algorithm.name(),
            &result,
            params.top,
            false,
            1,
            vec![
                ("id", Json::Num(id as f64)),
                ("members", Json::Num(params.members.len() as f64)),
            ],
        )
        .emit(),
    )
}

fn parse_id_list(state: &AppState, body: &Json, field: &str) -> Result<Vec<u32>, String> {
    let Some(value) = body.get(field) else {
        return Ok(Vec::new());
    };
    let items = value
        .as_array()
        .ok_or_else(|| format!("{field:?} must be an array"))?;
    let n = state.router.summary().nodes;
    let mut ids = Vec::with_capacity(items.len());
    for item in items {
        let id = item
            .as_u64()
            .ok_or_else(|| format!("bad id {} in {field:?}", item.emit()))?;
        if id as usize >= n {
            return Err(format!("id {id} out of range (graph has {n} nodes)"));
        }
        ids.push(id as u32);
    }
    Ok(ids)
}

fn session_update(state: &AppState, id: u64, request: &Request, obs: &dyn Observer) -> Response {
    let text = match std::str::from_utf8(&request.body) {
        Ok(t) if !t.trim().is_empty() => t,
        _ => return Response::error(400, "empty body; expected {\"add\":[…],\"remove\":[…]}"),
    };
    let body = match parse(text) {
        Ok(b) => b,
        Err(e) => return Response::error(400, &e),
    };
    let add = match parse_id_list(state, &body, "add") {
        Ok(v) => v,
        Err(e) => return Response::error(400, &e),
    };
    let remove = match parse_id_list(state, &body, "remove") {
        Ok(v) => v,
        Err(e) => return Response::error(400, &e),
    };
    let top = match body.get("top").map(|v| v.as_u64()) {
        None => 0,
        Some(Some(v)) => v as usize,
        Some(None) => return Response::error(400, "\"top\" must be a non-negative integer"),
    };

    let _span = obs.span("http.session_update");
    let (members, result) = match state.router.session_update(id, &add, &remove, obs) {
        Ok(updated) => updated,
        Err(e) => return engine_error(e),
    };
    // Estimator sessions are recognizable by their estimate block; the
    // router doesn't surface the session's algorithm separately.
    let algorithm = if result.estimate.is_some() {
        "mc"
    } else {
        "approxrank"
    };
    Response::json(
        200,
        result_body(
            algorithm,
            &result,
            top,
            false,
            1,
            vec![
                ("id", Json::Num(id as f64)),
                ("members", Json::Num(members.len() as f64)),
                ("warm_start", Json::Bool(true)),
            ],
        )
        .emit(),
    )
}

fn session_get(state: &AppState, id: u64) -> Response {
    let view = match state.router.session_view(id) {
        Ok(Some(view)) => view,
        Ok(None) => return Response::error(404, &format!("no session {id}")),
        Err(e) => return engine_error(e),
    };
    let body = obj(vec![
        ("id", Json::Num(id as f64)),
        (
            "members",
            Json::Arr(view.members.iter().map(|&m| Json::Num(m as f64)).collect()),
        ),
        ("last_iterations", Json::Num(view.last_iterations as f64)),
        ("damping", Json::Num(view.damping)),
        ("tolerance", Json::Num(view.tolerance)),
        // The last solution, served without re-solving — also what the
        // crash-recovery smoke test diffs across a restart.
        (
            "lambda",
            view.solution
                .as_ref()
                .map(|&(_, lambda)| Json::Num(lambda))
                .unwrap_or(Json::Null),
        ),
        (
            "scores",
            view.solution
                .as_ref()
                .map(|(scores, _)| scores_json(scores, 0))
                .unwrap_or(Json::Arr(vec![])),
        ),
    ]);
    Response::json(200, body.emit())
}

fn session_delete(state: &AppState, id: u64, obs: &dyn Observer) -> Response {
    match state.router.session_delete(id, obs) {
        Ok(true) => {}
        Ok(false) => return Response::error(404, &format!("no session {id}")),
        Err(e) => return engine_error(e),
    }
    Response::json(
        200,
        obj(vec![
            ("id", Json::Num(id as f64)),
            ("deleted", Json::Bool(true)),
        ])
        .emit(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ServeConfig;
    use approxrank_core::ApproxRank;
    use approxrank_core::SubgraphRanker;
    use approxrank_graph::{DiGraph, NodeSet, Subgraph};
    use approxrank_pagerank::PageRankOptions;

    /// The paper's Figure 4 graph: locals A–D (0–3), externals X–Z.
    fn fig4_graph() -> DiGraph {
        DiGraph::from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (0, 4),
                (0, 6),
                (1, 3),
                (2, 1),
                (2, 3),
                (3, 0),
                (4, 2),
                (4, 5),
                (4, 6),
                (5, 2),
                (5, 6),
                (6, 2),
                (6, 3),
            ],
        )
    }

    fn fig4_state() -> AppState {
        AppState::new(fig4_graph(), ServeConfig::default()).unwrap()
    }

    /// Shadows the real `route` for the tests below: they exercise the
    /// handlers, not the per-request tee the dispatcher builds, so the
    /// metrics registry alone is the observer (exactly what dispatch
    /// contributes beyond the recorder).
    fn route(state: &AppState, request: &Request) -> (Endpoint, Response) {
        super::route(state, request, &state.metrics)
    }

    /// A 2-shard state over a 200-node ring (range partitioning puts
    /// 0..100 on shard 0 and 100..200 on shard 1).
    fn sharded_state() -> AppState {
        let n = 200u32;
        let edges: Vec<(u32, u32)> = (0..n)
            .flat_map(|i| [(i, (i + 1) % n), (i, (i * 13 + 7) % n)])
            .collect();
        AppState::new(
            DiGraph::from_edges(n as usize, &edges),
            ServeConfig {
                shards: 2,
                ..ServeConfig::default()
            },
        )
        .unwrap()
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            headers: vec![],
            body: body.as_bytes().to_vec(),
        }
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".into(),
            path: path.into(),
            headers: vec![],
            body: vec![],
        }
    }

    fn body_json(r: &Response) -> Json {
        parse(std::str::from_utf8(&r.body).unwrap()).unwrap()
    }

    #[test]
    fn healthz_and_stats() {
        let state = fig4_state();
        let (_, r) = route(&state, &get("/healthz"));
        assert_eq!(r.status, 200);
        let (_, r) = route(&state, &get("/stats"));
        assert_eq!(r.status, 200);
        let v = body_json(&r);
        assert_eq!(
            v.get("graph").unwrap().get("nodes").unwrap().as_u64(),
            Some(7)
        );
        assert_eq!(v.get("shards").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn rank_matches_offline_bitwise_and_caches() {
        let state = fig4_state();
        let req = post("/rank", r#"{"members":[0,1,2,3],"tolerance":1e-8}"#);
        let (_, first) = route(&state, &req);
        assert_eq!(first.status, 200, "{:?}", first.body);
        let v1 = body_json(&first);
        assert_eq!(v1.get("cached").unwrap().as_bool(), Some(false));
        assert_eq!(v1.get("shards").unwrap().as_u64(), Some(1));

        // Offline reference: the same call the CLI makes.
        let graph = fig4_graph();
        let options = PageRankOptions::paper().with_tolerance(1e-8);
        let nodes = NodeSet::from_sorted(7, [0u32, 1, 2, 3]);
        let sub = Subgraph::extract(&graph, nodes);
        let offline = ApproxRank::new(options).rank(&graph, &sub);
        let mut by_page: Vec<(u64, f64)> = v1
            .get("scores")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|s| {
                (
                    s.get("page").unwrap().as_u64().unwrap(),
                    s.get("score").unwrap().as_f64().unwrap(),
                )
            })
            .collect();
        by_page.sort_by_key(|&(p, _)| p);
        for (i, &(page, score)) in by_page.iter().enumerate() {
            assert_eq!(page, i as u64);
            assert_eq!(
                score.to_bits(),
                offline.local_scores[i].to_bits(),
                "page {page} differs from offline solve"
            );
        }

        // Second identical request: served from cache, same bits.
        let (_, second) = route(&state, &req);
        let v2 = body_json(&second);
        assert_eq!(v2.get("cached").unwrap().as_bool(), Some(true));
        assert_eq!(v1.get("scores"), v2.get("scores"));
        assert_eq!(state.cache_stats().hits, 1);
    }

    #[test]
    fn rank_validates_input() {
        let state = fig4_state();
        for (body, needle) in [
            ("", "empty body"),
            ("{not json", "expected"),
            (r#"{"members":[]}"#, "non-empty"),
            (r#"{"members":[99]}"#, "out of range"),
            (r#"{"members":[0,1,2,3,4,5,6]}"#, "proper subset"),
            (
                r#"{"members":[0],"algorithm":"bogus"}"#,
                "unknown algorithm",
            ),
            (r#"{"members":[0],"damping":1.5}"#, "damping"),
            (r#"{"members":[0],"tolerance":-1}"#, "tolerance"),
            (r#"{"members":"zero"}"#, "array"),
            (r#"{"members":[0],"walks":0}"#, "walks"),
            (r#"{"members":[0],"walks":"many"}"#, "walks"),
            (r#"{"members":[0],"epsilon":-0.5}"#, "epsilon"),
            (r#"{"members":[0],"seed":"abc"}"#, "seed"),
        ] {
            let (_, r) = route(&state, &post("/rank", body));
            assert_eq!(r.status, 400, "{body}");
            let msg = body_json(&r);
            assert!(
                msg.get("error").unwrap().as_str().unwrap().contains(needle),
                "{body} → {:?}",
                msg
            );
        }
    }

    #[test]
    fn every_algorithm_ranks() {
        let state = fig4_state();
        for algo in [
            "approxrank",
            "idealrank",
            "local",
            "lpr2",
            "sc",
            "mc",
            "push",
        ] {
            let (_, r) = route(
                &state,
                &post(
                    "/rank",
                    &format!(r#"{{"members":[0,1,2,3],"algorithm":"{algo}"}}"#),
                ),
            );
            assert_eq!(
                r.status,
                200,
                "{algo}: {:?}",
                String::from_utf8_lossy(&r.body)
            );
            let v = body_json(&r);
            assert_eq!(v.get("scores").unwrap().as_array().unwrap().len(), 4);
        }
    }

    #[test]
    fn top_truncates() {
        let state = fig4_state();
        let (_, r) = route(&state, &post("/rank", r#"{"members":[0,1,2,3],"top":2}"#));
        let v = body_json(&r);
        let scores = v.get("scores").unwrap().as_array().unwrap();
        assert_eq!(scores.len(), 2);
        // Descending by score.
        assert!(
            scores[0].get("score").unwrap().as_f64().unwrap()
                >= scores[1].get("score").unwrap().as_f64().unwrap()
        );
    }

    #[test]
    fn session_lifecycle_with_invalidation() {
        let state = fig4_state();
        // A cold /rank seeds a cache entry for the membership the session
        // will mutate — the update must evict it.
        let (_, seeded) = route(
            &state,
            &post("/rank", r#"{"members":[0,1,2],"tolerance":1e-9}"#),
        );
        assert_eq!(seeded.status, 200);
        assert_eq!(state.cache_stats().entries, 1);

        let (_, created) = route(
            &state,
            &post("/session", r#"{"members":[0,1,2],"tolerance":1e-9}"#),
        );
        assert_eq!(created.status, 200);
        let id = body_json(&created).get("id").unwrap().as_u64().unwrap();
        assert_eq!(state.session_count(), 1);

        // Update: add a page, drop a page; warm start re-solve.
        let (_, updated) = route(
            &state,
            &post(
                &format!("/session/{id}/update"),
                r#"{"add":[3],"remove":[0]}"#,
            ),
        );
        assert_eq!(
            updated.status,
            200,
            "{:?}",
            String::from_utf8_lossy(&updated.body)
        );
        let v = body_json(&updated);
        assert_eq!(v.get("members").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("warm_start").unwrap().as_bool(), Some(true));
        assert!(state.cache_stats().invalidations >= 1);

        // The warm scores match a cold session solve within tolerance.
        let (_, got) = route(&state, &get(&format!("/session/{id}")));
        let members: Vec<u64> = body_json(&got)
            .get("members")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|m| m.as_u64().unwrap())
            .collect();
        assert_eq!(members, vec![1, 2, 3]);

        let (_, deleted) = route(&state, &get_delete(&format!("/session/{id}")));
        assert_eq!(deleted.status, 200);
        assert_eq!(state.session_count(), 0);
        let (_, gone) = route(&state, &get(&format!("/session/{id}")));
        assert_eq!(gone.status, 404);
    }

    fn get_delete(path: &str) -> Request {
        Request {
            method: "DELETE".into(),
            path: path.into(),
            headers: vec![],
            body: vec![],
        }
    }

    #[test]
    fn session_update_rejects_emptying_and_bad_ids() {
        let state = fig4_state();
        let (_, created) = route(&state, &post("/session", r#"{"members":[1,2]}"#));
        let id = body_json(&created).get("id").unwrap().as_u64().unwrap();
        let (_, r) = route(
            &state,
            &post(&format!("/session/{id}/update"), r#"{"remove":[1,2]}"#),
        );
        assert_eq!(r.status, 400);
        let (_, r) = route(
            &state,
            &post(&format!("/session/{id}/update"), r#"{"add":[999]}"#),
        );
        assert_eq!(r.status, 400);
        // Session still healthy afterwards.
        let (_, r) = route(
            &state,
            &post(&format!("/session/{id}/update"), r#"{"add":[3]}"#),
        );
        assert_eq!(r.status, 200);
    }

    #[test]
    fn session_rejects_non_approxrank() {
        let state = fig4_state();
        let (_, r) = route(
            &state,
            &post("/session", r#"{"members":[0,1],"algorithm":"sc"}"#),
        );
        assert_eq!(r.status, 400);
        // Push has no warm-update story (no visit counts to reuse).
        let (_, r) = route(
            &state,
            &post("/session", r#"{"members":[0,1],"algorithm":"push"}"#),
        );
        assert_eq!(r.status, 400);
    }

    #[test]
    fn estimator_rank_reports_estimate_block() {
        let state = fig4_state();
        let (_, r) = route(
            &state,
            &post(
                "/rank",
                r#"{"members":[0,1,2,3],"algorithm":"mc","walks":64,"seed":7}"#,
            ),
        );
        assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));
        let v = body_json(&r);
        let est = v.get("estimate").expect("mc answer carries an estimate");
        assert_eq!(est.get("walks").unwrap().as_u64(), Some(4 * 64));
        assert!(est.get("residual").unwrap().as_f64().unwrap() > 0.0);
        // Same request: an estimator answer is cacheable under its
        // (walks, epsilon, seed) fingerprint.
        let (_, again) = route(
            &state,
            &post(
                "/rank",
                r#"{"members":[0,1,2,3],"algorithm":"mc","walks":64,"seed":7}"#,
            ),
        );
        assert_eq!(
            body_json(&again).get("cached").unwrap().as_bool(),
            Some(true)
        );
        // A different seed is a different answer, not a cache hit.
        let (_, other) = route(
            &state,
            &post(
                "/rank",
                r#"{"members":[0,1,2,3],"algorithm":"mc","walks":64,"seed":8}"#,
            ),
        );
        assert_eq!(
            body_json(&other).get("cached").unwrap().as_bool(),
            Some(false)
        );
        // Exact answers never grow an estimate block.
        let (_, exact) = route(&state, &post("/rank", r#"{"members":[0,1,2,3]}"#));
        assert!(body_json(&exact).get("estimate").is_none());
        // Push reports its residual bound with zero walks.
        let (_, p) = route(
            &state,
            &post(
                "/rank",
                r#"{"members":[0,1,2,3],"algorithm":"push","epsilon":0.001}"#,
            ),
        );
        assert_eq!(p.status, 200, "{:?}", String::from_utf8_lossy(&p.body));
        let est = body_json(&p).get("estimate").unwrap().clone();
        assert_eq!(est.get("walks").unwrap().as_u64(), Some(0));
        assert!(est.get("residual").unwrap().as_f64().unwrap() <= 0.001);
    }

    #[test]
    fn mc_session_lifecycle() {
        let state = fig4_state();
        let (_, created) = route(
            &state,
            &post(
                "/session",
                r#"{"members":[0,1,2],"algorithm":"mc","walks":64,"seed":3}"#,
            ),
        );
        assert_eq!(
            created.status,
            200,
            "{:?}",
            String::from_utf8_lossy(&created.body)
        );
        let v = body_json(&created);
        assert_eq!(v.get("algorithm").unwrap().as_str(), Some("mc"));
        assert!(v.get("estimate").is_some());
        let id = v.get("id").unwrap().as_u64().unwrap();

        // Warm update keeps the estimate block and re-solves.
        let (_, updated) = route(
            &state,
            &post(
                &format!("/session/{id}/update"),
                r#"{"add":[3],"remove":[0]}"#,
            ),
        );
        assert_eq!(
            updated.status,
            200,
            "{:?}",
            String::from_utf8_lossy(&updated.body)
        );
        let v = body_json(&updated);
        assert_eq!(v.get("algorithm").unwrap().as_str(), Some("mc"));
        assert_eq!(v.get("members").unwrap().as_u64(), Some(3));
        assert!(v.get("estimate").is_some());

        // The warm answer is bitwise the cold rank of the new membership.
        let (_, cold) = route(
            &state,
            &post(
                "/rank",
                r#"{"members":[1,2,3],"algorithm":"mc","walks":64,"seed":3}"#,
            ),
        );
        let cold_v = body_json(&cold);
        assert_eq!(cold_v.get("cached").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("scores"), cold_v.get("scores"));

        let (_, deleted) = route(&state, &get_delete(&format!("/session/{id}")));
        assert_eq!(deleted.status, 200);
        assert_eq!(state.session_count(), 0);
    }

    #[test]
    fn unknown_routes_404_known_paths_405() {
        let state = fig4_state();
        let (_, r) = route(&state, &get("/nope"));
        assert_eq!(r.status, 404);
        let (_, r) = route(&state, &post("/healthz", ""));
        assert_eq!(r.status, 405);
        let (_, r) = route(&state, &get("/session/abc"));
        assert_eq!(r.status, 400);
        let (_, r) = route(&state, &get("/session/12345"));
        assert_eq!(r.status, 404);
    }

    #[test]
    fn metrics_exposes_cache_and_solver_telemetry() {
        let state = fig4_state();
        let (_, _) = route(&state, &post("/rank", r#"{"members":[0,1,2,3]}"#));
        let (endpoint, r) = route(&state, &get("/metrics"));
        assert_eq!(endpoint.label(), "metrics");
        let text = String::from_utf8(r.body).unwrap();
        assert!(text.contains("approxrank_cache_misses_total 1"), "{text}");
        assert!(text.contains("approxrank_graph_nodes 7"), "{text}");
        assert!(text.contains("span_count{name=\"http.rank\"} 1"), "{text}");
        assert!(text.contains("shard_count 1"), "{text}");
        // The solver streamed its iteration events into the registry.
        assert!(text.contains("solver_iterations_total"), "{text}");
    }

    #[test]
    fn debug_requests_serves_the_trace_ring() {
        let state = fig4_state();
        // Empty ring: a well-formed empty array.
        let (endpoint, r) = route(&state, &get("/debug/requests"));
        assert_eq!(endpoint.label(), "debug_requests");
        assert_eq!(r.status, 200);
        assert_eq!(r.body, b"[]");
        // POST is a known path, so it answers 405 not 404.
        let (_, r) = route(&state, &post("/debug/requests", ""));
        assert_eq!(r.status, 405);

        // Push a trace the way the dispatcher does and read it back.
        let recorder = approxrank_trace::RequestRecorder::new("tid1".into());
        {
            let obs: &dyn Observer = &recorder;
            let _span = obs.span("http.rank");
        }
        state.traces.push(recorder.finish("POST", "/rank", 200));
        let (_, r) = route(&state, &get("/debug/requests"));
        let parsed = approxrank_trace::request::parse_lines(
            std::str::from_utf8(&r.body)
                .unwrap()
                .trim_matches(['[', ']']),
        );
        assert_eq!(parsed.skipped, 0);
        assert_eq!(parsed.traces.len(), 1);
        assert_eq!(parsed.traces[0].trace_id, "tid1");
        assert_eq!(parsed.traces[0].root.children[0].name, "http.rank");
    }

    #[test]
    fn sharded_rank_is_bit_identical_for_resident_members() {
        let single = AppState::new(
            {
                let n = 200u32;
                let edges: Vec<(u32, u32)> = (0..n)
                    .flat_map(|i| [(i, (i + 1) % n), (i, (i * 13 + 7) % n)])
                    .collect();
                DiGraph::from_edges(n as usize, &edges)
            },
            ServeConfig::default(),
        )
        .unwrap();
        let sharded = sharded_state();
        let req = post("/rank", r#"{"members":[10,11,12,13,14],"tolerance":1e-8}"#);
        let (_, a) = route(&single, &req);
        let (_, b) = route(&sharded, &req);
        assert_eq!(a.status, 200);
        assert_eq!(b.status, 200);
        // Shard-resident: the full response bodies are byte-identical,
        // including the `"shards":1` marker.
        assert_eq!(a.body, b.body);
    }

    #[test]
    fn sharded_cross_shard_rank_merges() {
        let state = sharded_state();
        let (_, r) = route(
            &state,
            &post("/rank", r#"{"members":[98,99,100,101],"tolerance":1e-8}"#),
        );
        assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));
        let v = body_json(&r);
        assert_eq!(v.get("shards").unwrap().as_u64(), Some(2));
        let mass: f64 = v
            .get("scores")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|s| s.get("score").unwrap().as_f64().unwrap())
            .sum::<f64>()
            + v.get("lambda").unwrap().as_f64().unwrap();
        assert!((mass - 1.0).abs() < 1e-9, "mixture mass {mass}");
        // Global-state algorithms cannot span shards.
        let (_, r) = route(
            &state,
            &post("/rank", r#"{"members":[98,100],"algorithm":"idealrank"}"#),
        );
        assert_eq!(r.status, 400);
    }

    #[test]
    fn sharded_sessions_and_metrics() {
        let state = sharded_state();
        let (_, created) = route(&state, &post("/session", r#"{"members":[150,151]}"#));
        assert_eq!(created.status, 200);
        let id = body_json(&created).get("id").unwrap().as_u64().unwrap();
        assert_eq!(id, 2, "shard 1 strides ids 2, 4, …");
        // Spanning memberships are refused at create time.
        let (_, r) = route(&state, &post("/session", r#"{"members":[99,100]}"#));
        assert_eq!(r.status, 400);
        assert!(
            String::from_utf8_lossy(&r.body).contains("span"),
            "{:?}",
            String::from_utf8_lossy(&r.body)
        );
        let (_, r) = route(&state, &get("/metrics"));
        let text = String::from_utf8(r.body).unwrap();
        assert!(text.contains("shard_count 2"), "{text}");
        assert!(
            text.contains("shard_sessions_open{shard=\"1\"} 1"),
            "{text}"
        );
        let (_, got) = route(&state, &get(&format!("/session/{id}")));
        assert_eq!(got.status, 200);
        let (_, deleted) = route(&state, &get_delete(&format!("/session/{id}")));
        assert_eq!(deleted.status, 200);
    }

    /// Runs the same `/rank` body against a state and returns the
    /// (page, score) rows sorted by page.
    fn rank_rows(state: &AppState, body: &str) -> Vec<(u64, f64)> {
        let (_, r) = route(state, &post("/rank", body));
        assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));
        let mut rows: Vec<(u64, f64)> = body_json(&r)
            .get("scores")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|s| {
                (
                    s.get("page").unwrap().as_u64().unwrap(),
                    s.get("score").unwrap().as_f64().unwrap(),
                )
            })
            .collect();
        rows.sort_by_key(|&(p, _)| p);
        rows
    }

    #[test]
    fn keyword_matches_explicit_base_and_caches() {
        let state = fig4_state();
        // No labels file: keywords match the generated page-<i> labels.
        let (ep, by_kw) = route(
            &state,
            &post(
                "/keyword",
                r#"{"members":[0,1,2,3],"keyword":"page-5","tolerance":1e-8}"#,
            ),
        );
        assert_eq!(ep, Endpoint::Keyword);
        assert_eq!(
            by_kw.status,
            200,
            "{:?}",
            String::from_utf8_lossy(&by_kw.body)
        );
        let v1 = body_json(&by_kw);
        assert_eq!(v1.get("algorithm").unwrap().as_str(), Some("objectrank"));
        assert_eq!(v1.get("cached").unwrap().as_bool(), Some(false));
        assert_eq!(v1.get("keyword").unwrap().as_str(), Some("page-5"));
        assert_eq!(v1.get("base_pages").unwrap().as_u64(), Some(1));

        // The same query with an explicit base resolves to the same cache
        // key: a hit, identical scores.
        let (_, by_base) = route(
            &state,
            &post(
                "/keyword",
                r#"{"members":[0,1,2,3],"base":[5],"tolerance":1e-8}"#,
            ),
        );
        let v2 = body_json(&by_base);
        assert_eq!(v2.get("cached").unwrap().as_bool(), Some(true));
        assert_eq!(v1.get("scores"), v2.get("scores"));
        assert_eq!(state.keyword_cache.stats().0, 1, "one keyword-cache hit");

        // Base-set teleportation is a different walk than uniform /rank.
        let (_, uniform) = route(
            &state,
            &post("/rank", r#"{"members":[0,1,2,3],"tolerance":1e-8}"#),
        );
        assert_ne!(v1.get("scores"), body_json(&uniform).get("scores"));

        // The batch and keyword-cache counters surface on /metrics.
        let (_, m) = route(&state, &get("/metrics"));
        let text = String::from_utf8(m.body).unwrap();
        assert!(text.contains("batch_keyword_solves_total 1"), "{text}");
        assert!(text.contains("keyword_cache_hits_total 1"), "{text}");
        assert!(text.contains("keyword_cache_misses_total 1"), "{text}");
    }

    #[test]
    fn keyword_validates_input() {
        let state = fig4_state();
        for (body, status, needle) in [
            (r#"{"members":[0,1]}"#, 400, "missing"),
            (
                r#"{"members":[0,1],"keyword":"x","base":[1]}"#,
                400,
                "not both",
            ),
            (r#"{"members":[0,1],"base":[]}"#, 400, "non-empty"),
            (r#"{"members":[0,1],"base":[99]}"#, 400, "out of range"),
            (r#"{"members":[0,1],"base":"x"}"#, 400, "array"),
            (r#"{"members":[0,1],"keyword":""}"#, 400, "non-empty"),
            (r#"{"members":[0,1],"keyword":7}"#, 400, "string"),
            (
                r#"{"members":[0,1],"keyword":"zebra"}"#,
                404,
                "matches no page",
            ),
            (
                r#"{"members":[0,1],"keyword":"page-1","damping":2}"#,
                400,
                "damping",
            ),
            (
                r#"{"members":[0,1],"keyword":"page-1","tolerance":-1}"#,
                400,
                "tolerance",
            ),
        ] {
            let (_, r) = route(&state, &post("/keyword", body));
            assert_eq!(r.status, status, "{body}");
            let text = String::from_utf8_lossy(&r.body).to_string();
            assert!(text.contains(needle), "{body} -> {text}");
        }
    }

    #[test]
    fn keyword_resolves_against_a_labels_file() {
        let path = std::env::temp_dir().join(format!(
            "approxrank-serve-labels-{}.txt",
            std::process::id()
        ));
        std::fs::write(
            &path,
            "alpha\nbeta\ngamma subgraph\ndelta\nepsilon\nzeta\nSubgraph eta\n",
        )
        .unwrap();
        let state = AppState::new(
            fig4_graph(),
            ServeConfig {
                labels: Some(path.clone()),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let (_, r) = route(
            &state,
            &post("/keyword", r#"{"members":[0,1,2,3],"keyword":"subgraph"}"#),
        );
        assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));
        // Lines 2 and 6 match, case-insensitively.
        assert_eq!(body_json(&r).get("base_pages").unwrap().as_u64(), Some(2));

        // A labels file that does not cover the graph refuses to boot.
        std::fs::write(&path, "one\ntwo\n").unwrap();
        let err = AppState::new(
            fig4_graph(),
            ServeConfig {
                labels: Some(path.clone()),
                ..ServeConfig::default()
            },
        )
        .err()
        .expect("short labels file must refuse to boot");
        assert!(err.contains("2 lines"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sharded_keyword_routes_like_rank() {
        let single = AppState::new(
            {
                let n = 200u32;
                let edges: Vec<(u32, u32)> = (0..n)
                    .flat_map(|i| [(i, (i + 1) % n), (i, (i * 13 + 7) % n)])
                    .collect();
                DiGraph::from_edges(n as usize, &edges)
            },
            ServeConfig::default(),
        )
        .unwrap();
        let sharded = sharded_state();
        // Shard-resident: full response bodies byte-identical.
        let req = post(
            "/keyword",
            r#"{"members":[10,11,12],"base":[0,150],"tolerance":1e-8}"#,
        );
        let (_, a) = route(&single, &req);
        let (_, b) = route(&sharded, &req);
        assert_eq!(a.status, 200, "{:?}", String::from_utf8_lossy(&a.body));
        assert_eq!(a.body, b.body);
        // Cross-shard: merged mixture over both shards.
        let (_, r) = route(
            &sharded,
            &post(
                "/keyword",
                r#"{"members":[98,99,100,101],"base":[0,150],"tolerance":1e-8}"#,
            ),
        );
        assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));
        let v = body_json(&r);
        assert_eq!(v.get("shards").unwrap().as_u64(), Some(2));
        let mass: f64 = v
            .get("scores")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|s| s.get("score").unwrap().as_f64().unwrap())
            .sum::<f64>()
            + v.get("lambda").unwrap().as_f64().unwrap();
        assert!((mass - 1.0).abs() < 1e-9, "mixture mass {mass}");
    }

    #[test]
    fn graph_edges_mutates_and_matches_rebuilt_graph() {
        let state = fig4_state();
        let rank_body = r#"{"members":[0,1,2,3],"tolerance":1e-8}"#;
        let before = rank_rows(&state, rank_body);

        let (ep, r) = route(
            &state,
            &post(
                "/graph/edges",
                r#"{"insert":[[1,2],[3,2]],"delete":[[0,6]]}"#,
            ),
        );
        assert_eq!(ep, Endpoint::GraphEdges);
        assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));
        let v = body_json(&r);
        assert_eq!(v.get("epoch").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("inserted").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("deleted").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("structural").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("edges").unwrap().as_u64(), Some(16));

        // /stats reflects the live (post-mutation) shape and epoch.
        let (_, r) = route(&state, &get("/stats"));
        let g = body_json(&r);
        let graph = g.get("graph").unwrap();
        assert_eq!(graph.get("edges").unwrap().as_u64(), Some(16));
        assert_eq!(graph.get("epoch").unwrap().as_u64(), Some(1));
        assert_eq!(graph.get("mutations").unwrap().as_u64(), Some(1));

        // Answers now match a server booted on the mutated graph bitwise.
        let after = rank_rows(&state, rank_body);
        assert_ne!(before, after, "mutation must change the solution");
        let mut edges: Vec<(u32, u32)> = fig4_graph().edges().collect();
        edges.retain(|&e| e != (0, 6));
        edges.extend([(1, 2), (3, 2)]);
        edges.sort_unstable();
        let fresh = AppState::new(DiGraph::from_edges(7, &edges), ServeConfig::default()).unwrap();
        assert_eq!(after, rank_rows(&fresh, rank_body));
    }

    #[test]
    fn graph_edges_rejects_malformed_batches() {
        let state = fig4_state();
        for (body, want) in [
            ("", "empty body"),
            ("{}", "batch is empty"),
            (r#"{"insert":[],"delete":[]}"#, "batch is empty"),
            (r#"{"insert":[[1]]}"#, "bad edge"),
            (r#"{"insert":[[1,2,3]]}"#, "bad edge"),
            (r#"{"insert":[[1,"x"]]}"#, "bad page id"),
            (r#"{"insert":[[1,4294967296]]}"#, "bad page id"),
            (r#"{"insert":7}"#, "must be an array"),
        ] {
            let (_, r) = route(&state, &post("/graph/edges", body));
            assert_eq!(r.status, 400, "{body}");
            let text = String::from_utf8_lossy(&r.body).to_string();
            assert!(text.contains(want), "{body} -> {text}");
        }
        // Nothing above reached the delta.
        assert_eq!(state.router.graph_epoch(), 0);
        assert_eq!(state.router.graph_mutations(), 0);
    }

    #[test]
    fn sharded_graph_edges_shares_one_delta() {
        let state = sharded_state();
        // A cross-shard edge lands in both shards' view of the shared
        // delta: source 50 is on shard 0, target 150 on shard 1.
        let (_, r) = route(&state, &post("/graph/edges", r#"{"insert":[[50,150]]}"#));
        assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));
        let v = body_json(&r);
        assert_eq!(v.get("epoch").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("shards").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("edges").unwrap().as_u64(), Some(401));

        // Both shards answer against the mutated graph, bitwise equal to
        // a sharded server booted on it.
        let n = 200u32;
        let mut edges: Vec<(u32, u32)> = (0..n)
            .flat_map(|i| [(i, (i + 1) % n), (i, (i * 13 + 7) % n)])
            .collect();
        edges.push((50, 150));
        edges.sort_unstable();
        let fresh = AppState::new(
            DiGraph::from_edges(n as usize, &edges),
            ServeConfig {
                shards: 2,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        for members in ["[49,50,51]", "[149,150,151]"] {
            let body = format!("{{\"members\":{members},\"tolerance\":1e-9}}");
            assert_eq!(
                rank_rows(&state, &body),
                rank_rows(&fresh, &body),
                "{members}"
            );
        }

        // Node inserts need a single-shard deployment: page 200 does not
        // exist and no shard would own it.
        let (_, r) = route(&state, &post("/graph/edges", r#"{"insert":[[0,200]]}"#));
        assert_eq!(r.status, 400);
        assert!(
            String::from_utf8_lossy(&r.body).contains("single-shard"),
            "{:?}",
            String::from_utf8_lossy(&r.body)
        );

        // /metrics carries the epoch and stale-eviction rows.
        let (_, r) = route(&state, &get("/metrics"));
        let text = String::from_utf8(r.body).unwrap();
        assert!(text.contains("approxrank_graph_epoch 1"), "{text}");
        assert!(
            text.contains("approxrank_graph_mutations_total 1"),
            "{text}"
        );
        assert!(
            text.contains("approxrank_cache_stale_evictions_total"),
            "{text}"
        );
    }
}
