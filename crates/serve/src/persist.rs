//! Durability glue at the service level: opens one store per engine and
//! fans snapshot/flush calls out across the router.
//!
//! The conversions between live state and
//! [`approxrank_store`] records live in `approxrank-engine` — this module
//! only decides the on-disk layout. A single-shard deployment keeps its
//! store directly in the data dir (so existing data dirs keep working);
//! a sharded deployment gives engine `k` its own store under
//! `shard-k/`, which keeps WALs independent and recovery per-shard.
//! Remote engines are invisible here: each shard server owns its own
//! data dir, so router-side persistence only covers in-process engines.

use std::io;
use std::path::Path;

pub use approxrank_engine::RecoverySummary;

use crate::state::AppState;

/// Opens (or creates) the durable store(s) under `dir` and recovers their
/// contents into the router's engines. Returns the summed summary for the
/// boot banner.
pub fn open_store(state: &AppState, dir: &Path) -> io::Result<RecoverySummary> {
    let engines = state.router.local_engines();
    if let [engine] = engines {
        return engine.open_store(dir);
    }
    let mut summary = RecoverySummary::default();
    for (k, engine) in engines.iter().enumerate() {
        summary.merge(engine.open_store(&dir.join(format!("shard-{k}")))?);
    }
    Ok(summary)
}

/// Writes a snapshot of every engine's sessions and hot cache entries.
/// A no-op for engines without a store.
pub fn snapshot_now(state: &AppState) -> io::Result<()> {
    for engine in state.router.local_engines() {
        engine.snapshot_now()?;
    }
    Ok(())
}

/// Flushes every engine's WAL to stable storage (clean-shutdown path).
/// A no-op for engines without a store.
pub fn flush(state: &AppState) -> io::Result<()> {
    for engine in state.router.local_engines() {
        engine.flush()?;
    }
    Ok(())
}
