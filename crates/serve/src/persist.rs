//! The bridge between live serving state and the durable
//! [`approxrank_store`] layer: type conversions, boot-time recovery, WAL
//! appends on the session-mutation path, and snapshot collection.
//!
//! The store speaks only primitive types, so this module owns every
//! conversion: [`crate::state::ServerSession`] ↔
//! [`approxrank_store::SessionRecord`] and cache entries ↔
//! [`approxrank_store::CacheRecord`]. WAL appends are best-effort from
//! the request path's point of view — a failing disk degrades durability,
//! never availability — with failures counted and logged.

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use approxrank_core::SubgraphSession;
use approxrank_graph::NodeSet;
use approxrank_pagerank::PageRankOptions;
use approxrank_store::{CacheRecord, SessionRecord, SessionStore, StoreConfig, WalEvent};

use crate::cache::{CacheKey, CachedResult};
use crate::state::{AppState, ServerSession};

/// How many result-cache entries a snapshot persists, hottest first.
const HOT_CACHE_LIMIT: usize = 256;

/// WAL appends that failed (disk trouble). Process-wide because the
/// request path has nowhere better to put them; surfaced on `/metrics`.
static WAL_ERRORS: AtomicU64 = AtomicU64::new(0);

/// WAL append failures observed so far in this process.
pub fn wal_errors() -> u64 {
    WAL_ERRORS.load(Ordering::Relaxed)
}

/// What [`open_store`] reconstructed, for the boot banner.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoverySummary {
    /// Sessions re-registered into the session table.
    pub sessions: usize,
    /// Sessions on disk that no longer fit the loaded graph and were
    /// dropped (e.g. the server was restarted with a different graph).
    pub skipped: usize,
    /// Result-cache entries rewarmed.
    pub cache_entries: usize,
    /// Torn/corrupt WAL tails truncated during replay.
    pub truncated_records: u64,
}

/// Opens (or creates) the durable store in `dir`, recovers its contents
/// into `state` — re-registering sessions, restoring their last
/// solutions so the next solve is warm, re-publishing their cache
/// invalidation keys, and rewarming hot cache entries — and installs the
/// store so the request path starts appending WAL events.
pub fn open_store(state: &AppState, dir: &Path) -> io::Result<RecoverySummary> {
    let config = StoreConfig {
        fsync: state.config.fsync,
        ..StoreConfig::default()
    };
    let (store, recovered) = SessionStore::open(dir, config)?;

    let mut summary = RecoverySummary {
        truncated_records: recovered.truncated_records,
        ..RecoverySummary::default()
    };
    let mut max_id = 0u64;
    {
        let mut sessions = state.lock_sessions();
        for record in recovered.sessions {
            max_id = max_id.max(record.id);
            match revive_session(state, &record) {
                Some(session) => {
                    sessions.insert(record.id, Arc::new(Mutex::new(session)));
                    summary.sessions += 1;
                }
                None => summary.skipped += 1,
            }
        }
    }
    // Ids keep growing from where the previous process stopped, so a
    // recovered id is never handed out twice.
    let next = state
        .next_session_id
        .load(Ordering::Relaxed)
        .max(max_id + 1);
    state.next_session_id.store(next, Ordering::Relaxed);

    for record in recovered.cache {
        if let Some((key, value)) = revive_cache_entry(state, &record) {
            state.cache.insert(key, value);
            summary.cache_entries += 1;
        }
    }

    let _ = state.store.set(Arc::new(store));
    Ok(summary)
}

/// Rebuilds a live warm session from its persisted record. Returns
/// `None` when the record does not fit the loaded graph (member out of
/// range, empty membership, or a full-graph membership) — a stale data
/// dir must not poison a fresh boot.
fn revive_session(state: &AppState, record: &SessionRecord) -> Option<ServerSession> {
    let n = state.graph.num_nodes();
    if record.members.is_empty()
        || record.members.len() >= n
        || record.members.iter().any(|&m| m as usize >= n)
        || !(record.damping > 0.0 && record.damping < 1.0)
        || !(record.tolerance > 0.0 && record.tolerance.is_finite())
    {
        return None;
    }
    let nodes = NodeSet::from_iter_order(n, record.members.iter().copied());
    let mut session = SubgraphSession::with_precomputation(
        &state.graph,
        nodes,
        options_for(record.damping, record.tolerance),
        state.precomputation.clone(),
    );
    if let Some((scores, lambda)) = &record.solution {
        session.restore(scores.clone(), *lambda, record.iterations as usize);
    }
    let mut server_session = ServerSession {
        session,
        published_key: None,
        damping: record.damping,
        tolerance: record.tolerance,
    };
    if record.solution.is_some() {
        // The previous process had published this membership; re-publish
        // the key so the next mutation invalidates any cold `/rank` entry
        // that may also be rewarmed below.
        server_session.published_key = Some(session_key(&server_session));
    }
    Some(server_session)
}

fn options_for(damping: f64, tolerance: f64) -> PageRankOptions {
    PageRankOptions::paper()
        .with_damping(damping)
        .with_tolerance(tolerance)
}

/// The cache key a session's current membership occupies (ApproxRank —
/// the only algorithm sessions run).
fn session_key(session: &ServerSession) -> CacheKey {
    crate::cache::cache_key(
        crate::handlers::Algorithm::ApproxRank.code(),
        session.damping,
        session.tolerance,
        session.session.members(),
    )
}

fn revive_cache_entry(state: &AppState, record: &CacheRecord) -> Option<(CacheKey, CachedResult)> {
    let n = state.graph.num_nodes();
    if record.members.is_empty()
        || record.members.iter().any(|&m| m as usize >= n)
        || !record.members.windows(2).all(|w| w[0] < w[1])
    {
        return None;
    }
    let key = CacheKey {
        algorithm: record.algorithm,
        damping_bits: record.damping_bits,
        tolerance_bits: record.tolerance_bits,
        members: record.members.as_slice().into(),
    };
    let value = CachedResult {
        scores: Arc::new(record.scores.clone()),
        lambda: record.lambda,
        iterations: record.iterations as usize,
        converged: record.converged,
    };
    Some((key, value))
}

/// Appends one lifecycle event if a store is installed. Errors degrade to
/// a counter and a log line — the request still succeeds.
pub fn log_event(state: &AppState, event: WalEvent) {
    if let Some(store) = state.store.get() {
        if let Err(e) = store.append(&event) {
            WAL_ERRORS.fetch_add(1, Ordering::Relaxed);
            eprintln!(
                "approxrank-serve: WAL append failed for session {}: {e}",
                event.session_id()
            );
        }
    }
}

/// Converts a live session to its persistent record.
pub fn session_record(id: u64, session: &ServerSession) -> SessionRecord {
    SessionRecord {
        id,
        damping: session.damping,
        tolerance: session.tolerance,
        iterations: session.session.last_iterations() as u64,
        members: session.session.members().to_vec(),
        solution: session
            .session
            .last_solution()
            .map(|(scores, lambda)| (scores.to_vec(), lambda)),
    }
}

/// Collects the full session table as records. Per-session locks are
/// taken one at a time, so a long re-solve delays only its own entry.
fn collect_sessions(state: &AppState) -> Vec<SessionRecord> {
    let entries: Vec<(u64, Arc<Mutex<ServerSession>>)> = state
        .lock_sessions()
        .iter()
        .map(|(&id, entry)| (id, Arc::clone(entry)))
        .collect();
    let mut records: Vec<SessionRecord> = entries
        .into_iter()
        .map(|(id, entry)| {
            let session = entry.lock().unwrap_or_else(|e| e.into_inner());
            session_record(id, &session)
        })
        .collect();
    records.sort_by_key(|r| r.id);
    records
}

fn collect_cache(state: &AppState) -> Vec<CacheRecord> {
    state
        .cache
        .hot_entries(HOT_CACHE_LIMIT)
        .into_iter()
        .map(|(key, value)| CacheRecord {
            algorithm: key.algorithm,
            damping_bits: key.damping_bits,
            tolerance_bits: key.tolerance_bits,
            members: key.members.to_vec(),
            scores: value.scores.as_ref().clone(),
            lambda: value.lambda,
            iterations: value.iterations as u64,
            converged: value.converged,
        })
        .collect()
}

/// Writes a snapshot of the current sessions and hot cache entries. A
/// no-op without a store.
pub fn snapshot_now(state: &AppState) -> io::Result<()> {
    let Some(store) = state.store.get() else {
        return Ok(());
    };
    store.snapshot(collect_sessions(state), collect_cache(state))
}

/// Flushes the WAL to stable storage (clean-shutdown path). A no-op
/// without a store.
pub fn flush(state: &AppState) -> io::Result<()> {
    match state.store.get() {
        Some(store) => store.flush(),
        None => Ok(()),
    }
}
