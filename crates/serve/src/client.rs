//! A minimal blocking HTTP/1.1 client for the service.
//!
//! Shared by the integration tests, the `loadgen` bench binary, and the
//! CI smoke script — all of which need exactly one thing: fire a request
//! at a `subrank serve` instance over a keep-alive connection and read
//! the JSON (or text) back. Not a general HTTP client: fixed-length
//! bodies only, no redirects, no TLS.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One status + body exchange.
#[derive(Clone, Debug)]
pub struct ClientResponse {
    /// The HTTP status code.
    pub status: u16,
    /// The raw body.
    pub body: Vec<u8>,
    /// Whether the server announced `Connection: close`.
    pub closed: bool,
    /// The `X-Request-Id` the server echoed, if any — the trace id to
    /// quote when digging into this exchange server-side.
    pub request_id: Option<String>,
    /// The `Retry-After` seconds on a 429 load-shed answer, if any.
    pub retry_after: Option<u64>,
}

impl ClientResponse {
    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// The body parsed as JSON.
    pub fn json(&self) -> Result<crate::json::Json, String> {
        crate::json::parse(&self.text())
    }
}

/// A keep-alive connection to one server.
pub struct Client {
    addr: String,
    stream: Option<BufReader<TcpStream>>,
    timeout: Duration,
    tenant: Option<String>,
}

impl Client {
    /// A client for `addr` (e.g. `127.0.0.1:7878`). Connects lazily on
    /// the first request and reconnects transparently after the server
    /// closes the connection.
    pub fn new(addr: &str) -> Client {
        Client {
            addr: addr.to_string(),
            stream: None,
            timeout: Duration::from_secs(10),
            tenant: None,
        }
    }

    /// Overrides the per-exchange I/O timeout (default 10 s).
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    /// Sends an `X-Tenant` header on every request, so the server's
    /// admission control attributes this client's traffic.
    pub fn with_tenant(mut self, tenant: &str) -> Client {
        self.tenant = Some(tenant.to_string());
        self
    }

    fn connection(&mut self) -> std::io::Result<&mut BufReader<TcpStream>> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.set_write_timeout(Some(self.timeout))?;
            stream.set_nodelay(true)?;
            self.stream = Some(BufReader::new(stream));
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    /// `GET path`.
    pub fn get(&mut self, path: &str) -> std::io::Result<ClientResponse> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON body.
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<ClientResponse> {
        self.request("POST", path, Some(body))
    }

    /// `POST path` with a JSON body and a caller-chosen `X-Request-Id`,
    /// for propagating a trace id into the server.
    pub fn post_with_id(
        &mut self,
        path: &str,
        body: &str,
        request_id: &str,
    ) -> std::io::Result<ClientResponse> {
        self.request_with_id("POST", path, Some(body), Some(request_id))
    }

    /// `DELETE path`.
    pub fn delete(&mut self, path: &str) -> std::io::Result<ClientResponse> {
        self.request("DELETE", path, None)
    }

    /// One request/response exchange, reconnecting once if the pooled
    /// connection turned out to be dead.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<ClientResponse> {
        self.request_with_id(method, path, body, None)
    }

    /// Like [`Client::request`], optionally sending an `X-Request-Id`
    /// header so the server adopts the caller's trace id.
    pub fn request_with_id(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        request_id: Option<&str>,
    ) -> std::io::Result<ClientResponse> {
        let had_connection = self.stream.is_some();
        match self.try_request(method, path, body, request_id) {
            Ok(response) => Ok(response),
            Err(e) if had_connection => {
                // A stale keep-alive connection (server restarted or timed
                // us out); retry exactly once on a fresh one.
                let _ = e;
                self.stream = None;
                self.try_request(method, path, body, request_id)
            }
            Err(e) => Err(e),
        }
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        request_id: Option<&str>,
    ) -> std::io::Result<ClientResponse> {
        let payload = body.unwrap_or("");
        let id_header = match request_id {
            Some(id) => format!("X-Request-Id: {id}\r\n"),
            None => String::new(),
        };
        let tenant_header = match &self.tenant {
            Some(tenant) => format!("X-Tenant: {tenant}\r\n"),
            None => String::new(),
        };
        let reader = self.connection()?;
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: approxrank\r\n{id_header}{tenant_header}\
             Content-Length: {}\r\n\r\n",
            payload.len()
        );
        {
            let stream = reader.get_mut();
            stream.write_all(head.as_bytes())?;
            stream.write_all(payload.as_bytes())?;
            stream.flush()?;
        }
        let response = read_response(reader)?;
        if response.closed {
            self.stream = None;
        }
        Ok(response)
    }
}

fn bad_data(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

fn read_line<R: BufRead>(reader: &mut R) -> std::io::Result<String> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed mid-response",
        ));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

fn read_response<R: BufRead>(reader: &mut R) -> std::io::Result<ClientResponse> {
    let status_line = read_line(reader)?;
    let mut parts = status_line.split_whitespace();
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(bad_data(format!("bad status line {status_line:?}")));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad_data(format!("bad status in {status_line:?}")))?;

    let mut content_length = 0usize;
    let mut closed = false;
    let mut request_id = None;
    let mut retry_after = None;
    loop {
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad_data(format!("bad header {line:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| bad_data(format!("bad content-length {value:?}")))?;
        } else if name == "connection" && value.eq_ignore_ascii_case("close") {
            closed = true;
        } else if name == "x-request-id" {
            request_id = Some(value.to_string());
        } else if name == "retry-after" {
            retry_after = value.parse().ok();
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(ClientResponse {
        status,
        body,
        closed,
        request_id,
        retry_after,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_response() {
        let raw = "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\nConnection: keep-alive\r\n\r\n{}";
        let r = read_response(&mut BufReader::new(Cursor::new(raw))).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.text(), "{}");
        assert!(!r.closed);
        assert_eq!(r.request_id, None);
    }

    #[test]
    fn captures_request_id_header() {
        let raw = "HTTP/1.1 200 OK\r\nX-Request-Id: cafef00d\r\nContent-Length: 2\r\n\r\n{}";
        let r = read_response(&mut BufReader::new(Cursor::new(raw))).unwrap();
        assert_eq!(r.request_id.as_deref(), Some("cafef00d"));
    }

    #[test]
    fn captures_retry_after_header() {
        let raw = "HTTP/1.1 429 Too Many Requests\r\nRetry-After: 3\r\nContent-Length: 0\r\n\r\n";
        let r = read_response(&mut BufReader::new(Cursor::new(raw))).unwrap();
        assert_eq!(r.status, 429);
        assert_eq!(r.retry_after, Some(3));
        let raw = "HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n";
        let r = read_response(&mut BufReader::new(Cursor::new(raw))).unwrap();
        assert_eq!(r.retry_after, None);
    }

    #[test]
    fn detects_close() {
        let raw =
            "HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\nConnection: close\r\n\r\n";
        let r = read_response(&mut BufReader::new(Cursor::new(raw))).unwrap();
        assert_eq!(r.status, 503);
        assert!(r.closed);
    }

    #[test]
    fn rejects_garbage() {
        let raw = "SPDY nonsense\r\n\r\n";
        assert!(read_response(&mut BufReader::new(Cursor::new(raw))).is_err());
    }

    #[test]
    fn truncated_body_is_an_error() {
        let raw = "HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nabc";
        assert!(read_response(&mut BufReader::new(Cursor::new(raw))).is_err());
    }
}
