//! A deliberately small HTTP/1.1 implementation.
//!
//! Just enough of the protocol for a JSON service on a trusted network:
//! request-line + headers + `Content-Length` bodies in, fixed-length
//! responses out, keep-alive by default. Chunked transfer encoding,
//! multipart, and everything else are rejected with clear status codes.
//! All limits (head size, body size) are enforced *before* the bytes are
//! buffered, so a misbehaving client cannot balloon server memory.

use std::io::{BufRead, Write};

/// Maximum bytes for the request line plus headers.
pub const MAX_HEAD: usize = 16 * 1024;

/// A parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// The path component, query string stripped.
    pub path: String,
    /// Header pairs with lowercased names.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == &name.to_ascii_lowercase())
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange.
    pub fn wants_close(&self) -> bool {
        matches!(self.header("connection"), Some(v) if v.eq_ignore_ascii_case("close"))
    }
}

/// Why reading a request failed, and what (if anything) to tell the
/// client about it.
#[derive(Debug)]
pub enum ReadError {
    /// The connection closed cleanly before a request started — the
    /// normal end of a keep-alive exchange, not an error to report.
    Closed,
    /// Transport failure or timeout mid-request.
    Io(std::io::Error),
    /// Unparseable request head → respond 400.
    Malformed(String),
    /// Body larger than the configured cap → respond 413.
    BodyTooLarge,
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Reads one request from the stream.
///
/// `max_body` caps `Content-Length`; the head is capped at [`MAX_HEAD`].
pub fn read_request<R: BufRead>(reader: &mut R, max_body: usize) -> Result<Request, ReadError> {
    let request_line = match read_line(reader, true)? {
        None => return Err(ReadError::Closed),
        Some(l) => l,
    };
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!("bad version {version:?}")));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut headers = Vec::new();
    let mut head_bytes = request_line.len();
    loop {
        let line = read_line(reader, false)?
            .ok_or_else(|| ReadError::Malformed("eof inside headers".into()))?;
        if line.is_empty() {
            break;
        }
        head_bytes += line.len();
        if head_bytes > MAX_HEAD {
            return Err(ReadError::Malformed("request head too large".into()));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ReadError::Malformed(format!("bad header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    if headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Err(ReadError::Malformed("chunked bodies not supported".into()));
    }

    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        None => 0,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|e| ReadError::Malformed(format!("bad content-length {v:?}: {e}")))?,
    };
    if content_length > max_body {
        return Err(ReadError::BodyTooLarge);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// Reads a CRLF- (or bare-LF-) terminated line, without the terminator.
/// `None` means the stream ended before any byte arrived; reaching EOF
/// mid-line is an error when `at_start`, reported by the caller.
fn read_line<R: BufRead>(reader: &mut R, at_start: bool) -> Result<Option<String>, ReadError> {
    let mut buf = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if buf.is_empty() && at_start {
                    return Ok(None);
                }
                return Err(ReadError::Malformed("unexpected eof".into()));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    return String::from_utf8(buf)
                        .map(Some)
                        .map_err(|_| ReadError::Malformed("non-utf8 header bytes".into()));
                }
                if buf.len() > MAX_HEAD {
                    return Err(ReadError::Malformed("line too long".into()));
                }
                buf.push(byte[0]);
            }
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
}

/// A response about to be written.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// The body bytes.
    pub body: Vec<u8>,
    /// When true, advertise and perform `Connection: close`.
    pub close: bool,
    /// The request's trace id, echoed as an `X-Request-Id` response
    /// header when set (the dispatcher fills this in; handlers leave it
    /// `None` so success bodies stay byte-identical).
    pub request_id: Option<String>,
    /// Seconds to advertise in a `Retry-After` header — set on 429
    /// load-shed answers so a well-behaved client backs off instead of
    /// hammering an exhausted tenant quota.
    pub retry_after: Option<u64>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            close: false,
            request_id: None,
            retry_after: None,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into_bytes(),
            close: false,
            request_id: None,
            retry_after: None,
        }
    }

    /// A JSON error envelope `{"error": message}`, stamped with the
    /// active trace id (when one is in scope) so a client can quote the
    /// exact failing request back to an operator.
    pub fn error(status: u16, message: &str) -> Response {
        let mut pairs = vec![("error", crate::json::Json::Str(message.into()))];
        if let Some(id) = approxrank_trace::logging::current_trace_id() {
            pairs.push(("trace_id", crate::json::Json::Str(id)));
        }
        Response::json(status, crate::json::obj(pairs).emit())
    }
}

/// The reason phrase for the status codes this service emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes the response (status line, headers, body) and flushes.
pub fn write_response<W: Write>(writer: &mut W, response: &Response) -> std::io::Result<()> {
    let request_id = match &response.request_id {
        Some(id) => format!("X-Request-Id: {id}\r\n"),
        None => String::new(),
    };
    let retry_after = match response.retry_after {
        Some(secs) => format!("Retry-After: {secs}\r\n"),
        None => String::new(),
    };
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{}{}Connection: {}\r\n\r\n",
        response.status,
        status_text(response.status),
        response.content_type,
        response.body.len(),
        request_id,
        retry_after,
        if response.close {
            "close"
        } else {
            "keep-alive"
        },
    );
    writer.write_all(head.as_bytes())?;
    writer.write_all(&response.body)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufReader, Cursor};

    fn parse(raw: &str) -> Result<Request, ReadError> {
        read_request(&mut BufReader::new(Cursor::new(raw.as_bytes())), 1024)
    }

    #[test]
    fn parses_get() {
        let r = parse("GET /healthz?x=1 HTTP/1.1\r\nHost: a\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert_eq!(r.header("host"), Some("a"));
        assert!(r.body.is_empty());
        assert!(!r.wants_close());
    }

    #[test]
    fn parses_post_with_body() {
        let r = parse("POST /rank HTTP/1.1\r\nContent-Length: 4\r\nConnection: close\r\n\r\nabcd")
            .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"abcd");
        assert!(r.wants_close());
    }

    #[test]
    fn bare_lf_lines_accepted() {
        let r = parse("GET / HTTP/1.1\nHost: a\n\n").unwrap();
        assert_eq!(r.path, "/");
    }

    #[test]
    fn clean_close_is_distinguished() {
        assert!(matches!(parse(""), Err(ReadError::Closed)));
        assert!(matches!(parse("GET / HT"), Err(ReadError::Malformed(_))));
    }

    #[test]
    fn rejects_oversized_body() {
        let r = parse("POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n");
        assert!(matches!(r, Err(ReadError::BodyTooLarge)));
    }

    #[test]
    fn rejects_chunked() {
        let r = parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
        assert!(matches!(r, Err(ReadError::Malformed(_))));
    }

    #[test]
    fn rejects_bad_request_line() {
        assert!(matches!(
            parse("GARBAGE\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / SPDY/3\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, "{}".into())).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn error_envelope() {
        let r = Response::error(400, "bad \"thing\"");
        let v = crate::json::parse(std::str::from_utf8(&r.body).unwrap()).unwrap();
        assert_eq!(v.get("error").unwrap().as_str(), Some("bad \"thing\""));
    }

    #[test]
    fn request_id_header_written_when_set() {
        let mut r = Response::json(200, "{}".into());
        r.request_id = Some("deadbeef01234567".into());
        let mut out = Vec::new();
        write_response(&mut out, &r).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.contains("X-Request-Id: deadbeef01234567\r\n"),
            "{text}"
        );

        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, "{}".into())).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(!text.contains("X-Request-Id"), "{text}");
    }

    #[test]
    fn retry_after_header_written_when_set() {
        let mut r = Response::error(429, "tenant over quota");
        r.retry_after = Some(1);
        let mut out = Vec::new();
        write_response(&mut out, &r).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{text}"
        );
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");

        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, "{}".into())).unwrap();
        assert!(!String::from_utf8(out).unwrap().contains("Retry-After"));
    }

    #[test]
    fn error_envelope_carries_scoped_trace_id() {
        let _scope = approxrank_trace::logging::trace_scope("tid42");
        let r = Response::error(404, "nope");
        let v = crate::json::parse(std::str::from_utf8(&r.body).unwrap()).unwrap();
        assert_eq!(v.get("trace_id").unwrap().as_str(), Some("tid42"));
    }
}
