//! The shard routing tier: one [`Router`] in front of `N`
//! [`approxrank_engine::Engine`]s.
//!
//! In the default single-shard mode the router is a transparent shim over
//! one global engine — every request goes straight through, and answers
//! are bit-identical to the pre-router service. With
//! [`crate::ServeConfig::shards`] `> 1` the graph is partitioned at boot
//! ([`assign_shards`]) and each shard gets its own engine — a
//! [`DeltaShardView`] over one shared live [`DeltaGraph`] — with its own
//! result cache, session table, and (under a data dir) its own durable
//! store in `dir/shard-k`. Mutation batches ([`Router::mutate_graph`])
//! are applied to the shared delta once and absorbed by every engine.
//!
//! Routing rules in sharded mode:
//!
//! * A `/rank` whose members all live on one shard goes to that shard's
//!   engine and is **bit-identical** to the single-shard answer (the
//!   Λ-collapse consumes only global aggregates; see
//!   [`approxrank_core::GlobalAggregates`]).
//! * A `/rank` spanning shards fans out one sub-solve per touched shard
//!   on the router's own small executor — never the serve worker pool,
//!   whose lanes are all occupied by connection loops — and merges the
//!   per-shard distributions as a uniform mixture (each shard solves its
//!   resident members against the same global Λ). ApproxRank and its
//!   estimator variants (`mc`, `push`) support this — all three consume
//!   only global aggregates; the exact baselines need global state and
//!   answer 400. Estimator sub-answers also merge their `estimate`
//!   blocks (walks summed, residual averaged).
//! * Sessions must fit one shard. Ids are strided (engine `k` of `S`
//!   hands out `k+1, k+1+S, …`), so the owner of session `id` is
//!   recovered as `(id-1) % S` without any shared table.
//!
//! The router dispatches through [`EngineHandle`], not [`Engine`]
//! directly, so a shard's engine can live in this process
//! ([`Router::single`]/[`Router::sharded`]) or on another host behind the
//! RPC layer ([`Router::remote`], one
//! [`approxrank_rpc::RemoteEngine`] replica set per shard). The routing
//! rules above are identical in remote mode — the router keeps only the
//! node→shard assignment locally and never materializes shard views.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use approxrank_engine::{
    Algorithm, BatchStats, CacheStats, CachedResult, DeltaGraph, DeltaShardView, Engine,
    EngineConfig, EngineError, EngineHandle, Estimate, KeywordRequest, MutationOutcome,
    RankOutcome, RankRequest, SessionView,
};
use approxrank_exec::Executor;
use approxrank_graph::{assign_shards, DiGraph, PartitionStrategy};
use approxrank_rpc::{RemoteConfig, RemoteEngine};
use approxrank_trace::{logging, Observer, Stopwatch};

/// Shape of the global graph, captured at boot for `/stats`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GraphSummary {
    /// Global node count.
    pub nodes: usize,
    /// Global edge count.
    pub edges: usize,
    /// Global dangling-page count.
    pub dangling: usize,
}

/// A routed `/rank` answer: the (possibly merged) result plus how many
/// shards contributed. Single-shard deployments always report 1, so a
/// shard-resident request's response body is identical across
/// deployments.
#[derive(Clone, Debug)]
pub struct RoutedRank {
    /// The merged or pass-through outcome.
    pub outcome: RankOutcome,
    /// Shards that contributed to the answer (1 unless the membership
    /// spans shards).
    pub shards: usize,
}

/// Widest fan-out pool a router will spawn; cross-shard merges are
/// latency-bound on the slowest shard, so a few lanes go a long way.
const MAX_FANOUT_LANES: usize = 8;

/// `N` engines plus the routing logic between them.
pub struct Router {
    /// Dispatch surface, shard order: in-process engines, remote replica
    /// sets, or (in principle) a mix.
    engines: Vec<Arc<dyn EngineHandle>>,
    /// The in-process engines, shard order — empty in remote mode.
    /// Persistence and store metrics iterate these.
    local: Vec<Arc<Engine>>,
    /// The remote replica sets, shard order — empty in local mode.
    /// The `rpc_*` metrics lines iterate these.
    remote: Vec<Arc<RemoteEngine>>,
    /// `node → shard`, present only in sharded mode.
    assignment: Option<Arc<Vec<u32>>>,
    /// The live graph, shared by every in-process engine — `None` in
    /// remote mode, where each shard server owns its own delta.
    delta: Option<Arc<DeltaGraph>>,
    strategy: Option<PartitionStrategy>,
    /// Graph shape at boot; [`Router::summary`] reads the live delta
    /// instead when one is present.
    summary: GraphSummary,
    /// Dedicated pool for cross-shard fan-out (absent in single mode).
    fanout: Option<Executor>,
    /// `/rank` sub-requests answered by each shard's engine.
    shard_rank_requests: Vec<AtomicU64>,
    /// `/rank` requests whose membership spanned more than one shard.
    cross_rank_requests: AtomicU64,
    /// Accepted `POST /graph/edges` mutation batches.
    graph_mutations: AtomicU64,
}

fn summarize(graph: &DiGraph) -> GraphSummary {
    GraphSummary {
        nodes: graph.num_nodes(),
        edges: graph.num_edges(),
        dangling: graph.nodes().filter(|&u| graph.is_dangling(u)).count(),
    }
}

impl Router {
    /// A single-engine router over the whole graph: the transparent
    /// pass-through every pre-shard deployment runs.
    pub fn single(graph: DiGraph, engine_config: EngineConfig) -> Router {
        let summary = summarize(&graph);
        let config = EngineConfig {
            first_session_id: 1,
            session_id_stride: 1,
            ..engine_config
        };
        let engine = Arc::new(Engine::new_global(Arc::new(graph), config));
        Router {
            engines: vec![engine.clone() as Arc<dyn EngineHandle>],
            delta: engine.delta().cloned(),
            local: vec![engine],
            remote: Vec::new(),
            assignment: None,
            strategy: None,
            summary,
            fanout: None,
            shard_rank_requests: vec![AtomicU64::new(0)],
            cross_rank_requests: AtomicU64::new(0),
            graph_mutations: AtomicU64::new(0),
        }
    }

    /// Partitions `graph` into `shards` engines under `strategy`. Each
    /// engine gets an equal slice of the cache budget, a disjoint
    /// session-id stride, and a [`DeltaShardView`] over one *shared*
    /// live [`DeltaGraph`] — a mutation batch is applied to the delta
    /// once and every engine absorbs it, so sharded answers track the
    /// live graph exactly as a single-engine deployment would.
    ///
    /// # Panics
    /// Panics if `shards < 2` (use [`Router::single`]).
    pub fn sharded(
        graph: &DiGraph,
        shards: usize,
        strategy: PartitionStrategy,
        engine_config: EngineConfig,
    ) -> Router {
        assert!(shards >= 2, "sharded router needs at least two shards");
        let summary = summarize(graph);
        let assignment = Arc::new(assign_shards(graph, shards, strategy));
        let delta = Arc::new(DeltaGraph::new(Arc::new(graph.clone())));
        let per_engine_cache = engine_config.cache_entries.div_ceil(shards).max(1);
        let local: Vec<Arc<Engine>> = (0..shards)
            .map(|k| {
                let config = EngineConfig {
                    cache_entries: per_engine_cache,
                    first_session_id: k as u64 + 1,
                    session_id_stride: shards as u64,
                    ..engine_config.clone()
                };
                let view = Arc::new(DeltaShardView::new(
                    Arc::clone(&delta),
                    Arc::clone(&assignment),
                    k as u32,
                ));
                Arc::new(Engine::new_delta_shard(view, config))
            })
            .collect();
        Router {
            shard_rank_requests: (0..local.len()).map(|_| AtomicU64::new(0)).collect(),
            engines: local
                .iter()
                .map(|e| e.clone() as Arc<dyn EngineHandle>)
                .collect(),
            local,
            remote: Vec::new(),
            assignment: Some(assignment),
            delta: Some(delta),
            strategy: Some(strategy),
            summary,
            fanout: Some(Executor::new(shards.min(MAX_FANOUT_LANES))),
            cross_rank_requests: AtomicU64::new(0),
            graph_mutations: AtomicU64::new(0),
        }
    }

    /// A router whose shard engines live in other processes: one
    /// [`RemoteEngine`] replica set per shard, with the same node→shard
    /// assignment a local sharded router would compute (the assignment is
    /// a pure function of the graph, so router and shard servers agree by
    /// construction). No shard views are materialized here — the router
    /// keeps only the global graph and the assignment vector.
    ///
    /// Every replica is probed once at boot: an unreachable replica is a
    /// warning (it may simply not be up yet — the health checker will
    /// recover it), but a replica that answers with the wrong graph shape
    /// is a hard error, because byte-identity with a local deployment
    /// would silently break.
    pub fn remote(
        graph: &DiGraph,
        strategy: PartitionStrategy,
        replica_lists: &[Vec<String>],
        rpc: RemoteConfig,
    ) -> Result<Router, String> {
        let shards = replica_lists.len();
        if shards < 2 {
            return Err(
                "remote mode needs at least two shards (one --remote-shard per shard)".into(),
            );
        }
        let summary = summarize(graph);
        let assignment = assign_shards(graph, shards, strategy);
        let remote: Vec<Arc<RemoteEngine>> = replica_lists
            .iter()
            .enumerate()
            .map(|(k, addrs)| Arc::new(RemoteEngine::new(k as u32, addrs.clone(), rpc.clone())))
            .collect();
        for engine in &remote {
            let mut reachable = 0;
            for (addr, result) in engine.probe_all() {
                match result {
                    Ok(info) => {
                        if info.global_nodes != summary.nodes as u64 {
                            return Err(format!(
                                "replica {addr} of shard {} serves a {}-node graph, \
                                 router loaded {} nodes — wrong graph or wrong cluster",
                                engine.shard(),
                                info.global_nodes,
                                summary.nodes
                            ));
                        }
                        reachable += 1;
                    }
                    Err(e) => logging::log_with(
                        logging::Level::Warn,
                        "router",
                        "replica unreachable at boot",
                        &[
                            ("shard", &engine.shard().to_string()),
                            ("replica", &addr),
                            ("error", &e),
                        ],
                    ),
                }
            }
            if reachable == 0 {
                logging::log_with(
                    logging::Level::Warn,
                    "router",
                    "no replica of shard reachable at boot; serving anyway, health checks will recover it",
                    &[("shard", &engine.shard().to_string())],
                );
            }
        }
        Ok(Router {
            shard_rank_requests: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            engines: remote
                .iter()
                .map(|e| e.clone() as Arc<dyn EngineHandle>)
                .collect(),
            local: Vec::new(),
            remote,
            assignment: Some(Arc::new(assignment)),
            delta: None,
            strategy: Some(strategy),
            summary,
            fanout: Some(Executor::new(shards.min(MAX_FANOUT_LANES))),
            cross_rank_requests: AtomicU64::new(0),
            graph_mutations: AtomicU64::new(0),
        })
    }

    /// The dispatch handles behind this router, shard order (one entry in
    /// single mode).
    pub fn handles(&self) -> &[Arc<dyn EngineHandle>] {
        &self.engines
    }

    /// The in-process engines, shard order — empty in remote mode.
    /// Persistence and store metrics iterate these.
    pub fn local_engines(&self) -> &[Arc<Engine>] {
        &self.local
    }

    /// The remote replica sets, shard order — empty in local mode.
    pub fn remote_engines(&self) -> &[Arc<RemoteEngine>] {
        &self.remote
    }

    /// True when the shard engines live in other processes.
    pub fn is_remote(&self) -> bool {
        !self.remote.is_empty()
    }

    /// Number of shards (1 in single mode).
    pub fn num_shards(&self) -> usize {
        self.engines.len()
    }

    /// True when the graph is partitioned across multiple engines.
    pub fn is_sharded(&self) -> bool {
        self.assignment.is_some()
    }

    /// The partitioning strategy, in sharded mode.
    pub fn strategy(&self) -> Option<PartitionStrategy> {
        self.strategy
    }

    /// Current graph shape: live (from the shared delta) for in-process
    /// deployments, the boot-time snapshot in remote mode.
    pub fn summary(&self) -> GraphSummary {
        match &self.delta {
            Some(delta) => GraphSummary {
                nodes: delta.num_nodes(),
                edges: delta.num_edges(),
                dangling: delta.num_dangling(),
            },
            None => self.summary,
        }
    }

    /// The global graph at its current epoch, in single mode (shard
    /// engines hold only views).
    pub fn graph(&self) -> Option<Arc<DiGraph>> {
        self.local.first().and_then(|e| e.graph())
    }

    /// The current graph epoch: read off the shared delta when there is
    /// one, otherwise (remote mode) asked of shard 0's replica set.
    pub fn graph_epoch(&self) -> u64 {
        match &self.delta {
            Some(delta) => delta.epoch(),
            None => self.engines.first().map(|e| e.graph_epoch()).unwrap_or(0),
        }
    }

    /// Mutation batches accepted since boot.
    pub fn graph_mutations(&self) -> u64 {
        self.graph_mutations.load(Ordering::Relaxed)
    }

    /// Result-cache counters summed across every engine.
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for engine in &self.engines {
            let s = engine.cache_stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.invalidations += s.invalidations;
            total.stale_evictions += s.stale_evictions;
            total.entries += s.entries;
            total.capacity += s.capacity;
        }
        total
    }

    /// Open sessions summed across every engine.
    pub fn session_count(&self) -> usize {
        self.engines.iter().map(|e| e.session_count()).sum()
    }

    /// WAL append failures summed across every engine.
    pub fn wal_errors(&self) -> u64 {
        self.engines.iter().map(|e| e.wal_errors()).sum()
    }

    /// True when at least one in-process engine has a durable store open
    /// (remote engines persist on their own hosts).
    pub fn has_store(&self) -> bool {
        self.local.iter().any(|e| e.store().is_some())
    }

    /// `/rank` sub-requests answered by shard `k`.
    pub fn shard_rank_requests(&self, shard: usize) -> u64 {
        self.shard_rank_requests[shard].load(Ordering::Relaxed)
    }

    /// `/rank` requests whose membership spanned more than one shard.
    pub fn cross_rank_requests(&self) -> u64 {
        self.cross_rank_requests.load(Ordering::Relaxed)
    }

    /// Ranks a member list, routing to the owning shard or fanning out
    /// and merging when the membership spans shards.
    pub fn rank(
        &self,
        params: &RankRequest,
        obs: &dyn Observer,
    ) -> Result<RoutedRank, EngineError> {
        let Some(assignment) = &self.assignment else {
            self.shard_rank_requests[0].fetch_add(1, Ordering::Relaxed);
            let outcome = self.engines[0].rank(params, obs)?;
            return Ok(RoutedRank { outcome, shards: 1 });
        };

        let _dispatch = obs.span("router.dispatch");
        let mut per_shard: Vec<Vec<u32>> = vec![Vec::new(); self.engines.len()];
        for &m in &params.members {
            per_shard[assignment[m as usize] as usize].push(m);
        }
        let touched: Vec<usize> = (0..per_shard.len())
            .filter(|&s| !per_shard[s].is_empty())
            .collect();

        if let [only] = touched[..] {
            self.shard_rank_requests[only].fetch_add(1, Ordering::Relaxed);
            let outcome = self.engines[only].rank(params, obs)?;
            return Ok(RoutedRank { outcome, shards: 1 });
        }
        // Cross-shard merging needs only global aggregates per sub-solve,
        // which ApproxRank and its estimators all satisfy; the exact
        // baselines need global state and cannot span.
        if !matches!(
            params.algorithm,
            Algorithm::ApproxRank | Algorithm::Mc | Algorithm::Push
        ) {
            return Err(EngineError::BadRequest(format!(
                "algorithm {:?} cannot span shards (approxrank, mc, and push only)",
                params.algorithm.name()
            )));
        }
        self.cross_rank_requests.fetch_add(1, Ordering::Relaxed);
        for &s in &touched {
            self.shard_rank_requests[s].fetch_add(1, Ordering::Relaxed);
        }

        // One sub-solve per touched shard, in parallel on the router's own
        // pool. Slots are per-index, so tasks never contend. Each task
        // opens a `router.shard{k}` span on its fan-out thread — the
        // request recorder parents the first span of a foreign thread to
        // the trace root, so the engine's spans nest under it. The
        // caller's trace id is re-entered on each lane so fan-out log
        // lines — and remote sub-calls, which stamp it onto the wire —
        // stay attributable.
        let trace_id = logging::current_trace_id();
        let slots: Vec<Mutex<Option<Result<RankOutcome, EngineError>>>> =
            touched.iter().map(|_| Mutex::new(None)).collect();
        let fanout = self.fanout.as_ref().expect("sharded router has a pool");
        let queue_wait_ns = fanout.run_chunks_timed(touched.len(), |i| {
            let _trace = trace_id.as_deref().map(logging::trace_scope);
            let s = touched[i];
            let _shard_span = obs.span(&format!("router.shard{s}"));
            let solve = Stopwatch::start(obs);
            let sub = RankRequest {
                members: per_shard[s].clone(),
                ..params.clone()
            };
            let answer = self.engines[s].rank(&sub, obs);
            obs.counter(&format!("shard_solve_us_{s}"), solve.elapsed_ns() / 1_000);
            *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(answer);
        });
        if queue_wait_ns > 0 {
            obs.counter("exec_queue_wait_us", queue_wait_ns / 1_000);
        }
        let _merge = obs.span("router.merge");
        let mut outcomes = Vec::with_capacity(touched.len());
        for slot in &slots {
            let answer = slot
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("fan-out slot filled");
            outcomes.push(answer?);
        }
        Ok(RoutedRank {
            outcome: merge(&outcomes),
            shards: touched.len(),
        })
    }

    /// Batch-scheduler counters summed across every engine (remote
    /// handles report zeros — each shard server exports its own).
    pub fn batch_stats(&self) -> BatchStats {
        let mut total = BatchStats::default();
        for engine in &self.engines {
            let s = engine.batch_stats();
            total.rank_leaders += s.rank_leaders;
            total.rank_coalesced += s.rank_coalesced;
            total.keyword_solves += s.keyword_solves;
            total.keyword_columns += s.keyword_columns;
            total.keyword_coalesced += s.keyword_coalesced;
        }
        total
    }

    /// Ranks a member list under a keyword (base-set) personalization,
    /// with the same routing shape as [`Router::rank`]: shard-resident
    /// memberships pass straight through (bit-identical to single-shard),
    /// cross-shard memberships fan out one sub-solve per touched shard —
    /// each solving its resident members against the **full** base set,
    /// which stays global exactly like the Λ aggregates — and merge as a
    /// uniform mixture. The engines batch concurrent keyword queries into
    /// multi-vector solves underneath; the router never sees that.
    pub fn keyword(
        &self,
        params: &KeywordRequest,
        obs: &dyn Observer,
    ) -> Result<RoutedRank, EngineError> {
        let Some(assignment) = &self.assignment else {
            self.shard_rank_requests[0].fetch_add(1, Ordering::Relaxed);
            let result = self.engines[0].keyword_rank(params, obs)?;
            return Ok(RoutedRank {
                outcome: RankOutcome {
                    result,
                    cached: false,
                },
                shards: 1,
            });
        };

        let _dispatch = obs.span("router.dispatch");
        let mut per_shard: Vec<Vec<u32>> = vec![Vec::new(); self.engines.len()];
        for &m in &params.members {
            per_shard[assignment[m as usize] as usize].push(m);
        }
        let touched: Vec<usize> = (0..per_shard.len())
            .filter(|&s| !per_shard[s].is_empty())
            .collect();

        if let [only] = touched[..] {
            self.shard_rank_requests[only].fetch_add(1, Ordering::Relaxed);
            let result = self.engines[only].keyword_rank(params, obs)?;
            return Ok(RoutedRank {
                outcome: RankOutcome {
                    result,
                    cached: false,
                },
                shards: 1,
            });
        }
        self.cross_rank_requests.fetch_add(1, Ordering::Relaxed);
        for &s in &touched {
            self.shard_rank_requests[s].fetch_add(1, Ordering::Relaxed);
        }
        let trace_id = logging::current_trace_id();
        let slots: Vec<Mutex<Option<Result<CachedResult, EngineError>>>> =
            touched.iter().map(|_| Mutex::new(None)).collect();
        let fanout = self.fanout.as_ref().expect("sharded router has a pool");
        let queue_wait_ns = fanout.run_chunks_timed(touched.len(), |i| {
            let _trace = trace_id.as_deref().map(logging::trace_scope);
            let s = touched[i];
            let _shard_span = obs.span(&format!("router.shard{s}"));
            let solve = Stopwatch::start(obs);
            let sub = KeywordRequest {
                members: per_shard[s].clone(),
                ..params.clone()
            };
            let answer = self.engines[s].keyword_rank(&sub, obs);
            obs.counter(&format!("shard_solve_us_{s}"), solve.elapsed_ns() / 1_000);
            *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(answer);
        });
        if queue_wait_ns > 0 {
            obs.counter("exec_queue_wait_us", queue_wait_ns / 1_000);
        }
        let _merge = obs.span("router.merge");
        let mut outcomes = Vec::with_capacity(touched.len());
        for slot in &slots {
            let answer = slot
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("fan-out slot filled");
            outcomes.push(RankOutcome {
                result: answer?,
                cached: false,
            });
        }
        Ok(RoutedRank {
            outcome: merge(&outcomes),
            shards: touched.len(),
        })
    }

    /// Applies one edge-mutation batch to the live graph, whatever the
    /// deployment shape:
    ///
    /// * **single** — straight through to the one engine.
    /// * **local sharded** — the batch is applied to the shared delta
    ///   once, then every engine absorbs the summary (WAL-logs it and
    ///   repairs its intersecting sessions). `sessions_repaired` is the
    ///   fleet total.
    /// * **remote** — fanned out to *every* shard's replica set (each
    ///   shard server holds its own copy of the live graph). Any shard
    ///   failing to apply is an error: a partial broadcast means the
    ///   cluster diverged, which the operator must reconcile before
    ///   trusting cross-shard answers (see the operations handbook).
    ///
    /// Node inserts (edge endpoints at or beyond the current page count)
    /// are accepted only in single mode — the shard assignment is fixed
    /// at boot, so a page appended later would be owned by nobody.
    pub fn mutate_graph(
        &self,
        insert: &[(u32, u32)],
        delete: &[(u32, u32)],
        obs: &dyn Observer,
    ) -> Result<MutationOutcome, EngineError> {
        let _span = obs.span("router.mutate");
        if self.assignment.is_some() {
            let n = self.summary().nodes as u64;
            if let Some(&(u, v)) = insert
                .iter()
                .find(|&&(u, v)| u as u64 >= n || v as u64 >= n)
            {
                return Err(EngineError::BadRequest(format!(
                    "edge ({u}, {v}) references a page beyond the current {n}-node graph; \
                     node inserts require a single-shard deployment"
                )));
            }
        }
        let outcome = if self.assignment.is_none() {
            self.engines[0].mutate_graph(insert, delete, obs)?
        } else if let Some(delta) = &self.delta {
            let summary = delta
                .apply(insert, delete)
                .map_err(|e| EngineError::BadRequest(e.0))?;
            let mut outcome = MutationOutcome {
                epoch: summary.epoch,
                inserted: summary.inserted,
                deleted: summary.deleted,
                touched_pages: summary.touched.len(),
                structural: summary.structural,
                sessions_repaired: 0,
            };
            for engine in &self.local {
                outcome.sessions_repaired += engine
                    .absorb_mutation(&summary, insert, delete, obs)
                    .sessions_repaired;
            }
            outcome
        } else {
            // Remote: every shard must apply. Attempt all of them even
            // after a failure so healthy shards are not left behind by
            // iteration order, then surface the first error.
            let mut merged: Option<MutationOutcome> = None;
            let mut first_err: Option<EngineError> = None;
            for engine in &self.engines {
                match engine.mutate_graph(insert, delete, obs) {
                    Ok(o) => match &mut merged {
                        None => merged = Some(o),
                        Some(m) => {
                            m.epoch = m.epoch.max(o.epoch);
                            m.structural |= o.structural;
                            m.sessions_repaired += o.sessions_repaired;
                        }
                    },
                    Err(e) => {
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                    }
                }
            }
            if let Some(e) = first_err {
                return Err(e);
            }
            merged.ok_or_else(|| EngineError::Unavailable("no shard engines configured".into()))?
        };
        self.graph_mutations.fetch_add(1, Ordering::Relaxed);
        Ok(outcome)
    }

    /// The engine owning session `id` under the stride scheme; `None` for
    /// id 0 (never issued).
    fn engine_for_session(&self, id: u64) -> Option<&Arc<dyn EngineHandle>> {
        if id == 0 {
            return None;
        }
        let idx = ((id - 1) % self.engines.len() as u64) as usize;
        Some(&self.engines[idx])
    }

    /// Opens a session on the shard owning every member. Memberships
    /// spanning shards are refused — a warm session is one solver, and a
    /// solver lives on one engine.
    pub fn session_create(
        &self,
        params: &RankRequest,
        obs: &dyn Observer,
    ) -> Result<(u64, CachedResult), EngineError> {
        let members = &params.members;
        let engine = match &self.assignment {
            None => &self.engines[0],
            Some(assignment) => {
                let shard = assignment[members[0] as usize];
                if let Some(&stray) = members.iter().find(|&&m| assignment[m as usize] != shard) {
                    return Err(EngineError::BadRequest(format!(
                        "session members span shards ({} is on shard {}, {stray} on shard {}); \
                         a session must fit one shard",
                        members[0], shard, assignment[stray as usize]
                    )));
                }
                &self.engines[shard as usize]
            }
        };
        engine.session_create(params, obs)
    }

    /// Routes a session update to the owning engine.
    pub fn session_update(
        &self,
        id: u64,
        add: &[u32],
        remove: &[u32],
        obs: &dyn Observer,
    ) -> Result<(Vec<u32>, CachedResult), EngineError> {
        match self.engine_for_session(id) {
            Some(engine) => engine.session_update(id, add, remove, obs),
            None => Err(EngineError::NoSuchSession(id)),
        }
    }

    /// A read-only snapshot of session `id`, from its owning engine.
    /// `Ok(None)` means the session does not exist; `Err` means the
    /// owning engine could not be asked (remote replicas down).
    pub fn session_view(&self, id: u64) -> Result<Option<SessionView>, EngineError> {
        match self.engine_for_session(id) {
            Some(engine) => engine.session_view(id),
            None => Ok(None),
        }
    }

    /// Closes session `id`; `Ok(false)` when it did not exist.
    pub fn session_delete(&self, id: u64, obs: &dyn Observer) -> Result<bool, EngineError> {
        match self.engine_for_session(id) {
            Some(engine) => engine.session_delete(id, obs),
            None => Ok(false),
        }
    }
}

/// Merges per-shard ApproxRank distributions as a uniform mixture: each
/// shard's sub-solve is a probability vector over its resident members
/// plus the same global Λ, so `score/k` (and `λ = Σλ_s/k`) is again a
/// distribution over the union. Iterations report the slowest shard;
/// `converged`/`cached` hold only if every shard's sub-answer did.
/// Estimator sub-answers merge their `estimate` blocks too: walks sum,
/// and the mixture's residual is the mean of the per-shard residuals
/// (`‖(1/k)Σπ_s − (1/k)Σp̂_s‖₁ ≤ (1/k)Σ r_s`).
fn merge(outcomes: &[RankOutcome]) -> RankOutcome {
    let k = outcomes.len() as f64;
    let mut scores: Vec<(u32, f64)> = outcomes
        .iter()
        .flat_map(|o| o.result.scores.iter().map(|&(p, s)| (p, s / k)))
        .collect();
    scores.sort_by_key(|&(p, _)| p);
    let lambda = outcomes
        .iter()
        .map(|o| o.result.lambda.unwrap_or(0.0))
        .sum::<f64>()
        / k;
    let estimates: Vec<Estimate> = outcomes.iter().filter_map(|o| o.result.estimate).collect();
    let estimate = (estimates.len() == outcomes.len() && !estimates.is_empty()).then(|| Estimate {
        walks: estimates.iter().map(|e| e.walks).sum(),
        epsilon: estimates[0].epsilon,
        residual: estimates.iter().map(|e| e.residual).sum::<f64>() / k,
    });
    RankOutcome {
        result: CachedResult {
            scores: Arc::new(scores),
            lambda: Some(lambda),
            iterations: outcomes
                .iter()
                .map(|o| o.result.iterations)
                .max()
                .unwrap_or(0),
            converged: outcomes.iter().all(|o| o.result.converged),
            estimate,
        },
        cached: outcomes.iter().all(|o| o.cached),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxrank_engine::EstimatorOptions;
    use approxrank_trace::null;

    fn ring(n: u32) -> DiGraph {
        let edges: Vec<(u32, u32)> = (0..n)
            .flat_map(|i| [(i, (i + 1) % n), (i, (i * 13 + 7) % n)])
            .collect();
        DiGraph::from_edges(n as usize, &edges)
    }

    fn request(members: Vec<u32>) -> RankRequest {
        RankRequest {
            members,
            algorithm: Algorithm::ApproxRank,
            damping: 0.85,
            tolerance: 1e-8,
            estimator: EstimatorOptions::default(),
        }
    }

    fn routers(n: u32) -> (Router, Router) {
        let g = ring(n);
        let single = Router::single(g.clone(), EngineConfig::default());
        let sharded = Router::sharded(&g, 2, PartitionStrategy::Range, EngineConfig::default());
        (single, sharded)
    }

    #[test]
    fn shard_resident_rank_is_bit_identical_to_single() {
        let (single, sharded) = routers(200);
        // Range over 200 nodes: shard 0 owns 0..100.
        let req = request((10..40).collect());
        let a = single.rank(&req, null()).unwrap();
        let b = sharded.rank(&req, null()).unwrap();
        assert_eq!((a.shards, b.shards), (1, 1));
        for ((pa, sa), (pb, sb)) in a
            .outcome
            .result
            .scores
            .iter()
            .zip(b.outcome.result.scores.iter())
        {
            assert_eq!(pa, pb);
            assert_eq!(sa.to_bits(), sb.to_bits(), "page {pa}");
        }
        assert_eq!(
            a.outcome.result.lambda.unwrap().to_bits(),
            b.outcome.result.lambda.unwrap().to_bits()
        );
        assert_eq!(sharded.shard_rank_requests(0), 1);
        assert_eq!(sharded.shard_rank_requests(1), 0);
        assert_eq!(sharded.cross_rank_requests(), 0);
    }

    #[test]
    fn cross_shard_rank_merges_a_distribution() {
        let (_, sharded) = routers(200);
        let members: Vec<u32> = (90..110).collect(); // straddles the 100 boundary
        let routed = sharded.rank(&request(members.clone()), null()).unwrap();
        assert_eq!(routed.shards, 2);
        assert!(!routed.outcome.cached);
        let pages: Vec<u32> = routed
            .outcome
            .result
            .scores
            .iter()
            .map(|&(p, _)| p)
            .collect();
        assert_eq!(pages, members, "merged scores cover the union in order");
        let mass: f64 = routed
            .outcome
            .result
            .scores
            .iter()
            .map(|&(_, s)| s)
            .sum::<f64>()
            + routed.outcome.result.lambda.unwrap();
        assert!((mass - 1.0).abs() < 1e-9, "mixture mass {mass}");
        assert_eq!(sharded.cross_rank_requests(), 1);
        assert_eq!(sharded.shard_rank_requests(0), 1);
        assert_eq!(sharded.shard_rank_requests(1), 1);
        // Same request again: both sub-solves hit their shard caches.
        let again = sharded.rank(&request(members), null()).unwrap();
        assert!(again.outcome.cached);
        assert_eq!(again.outcome.result.scores, routed.outcome.result.scores);
    }

    #[test]
    fn cross_shard_rejects_global_algorithms() {
        let (_, sharded) = routers(200);
        let mut req = request(vec![10, 150]);
        req.algorithm = Algorithm::IdealRank;
        let err = sharded.rank(&req, null()).unwrap_err();
        assert!(matches!(err, EngineError::BadRequest(ref m) if m.contains("span")));
    }

    #[test]
    fn cross_shard_mc_merges_estimates() {
        let (_, sharded) = routers(200);
        let mut req = request((90..110).collect()); // straddles the 100 boundary
        req.algorithm = Algorithm::Mc;
        let routed = sharded.rank(&req, null()).unwrap();
        assert_eq!(routed.shards, 2);
        let mass: f64 = routed
            .outcome
            .result
            .scores
            .iter()
            .map(|&(_, s)| s)
            .sum::<f64>()
            + routed.outcome.result.lambda.unwrap();
        assert!((mass - 1.0).abs() < 1e-9, "mixture mass {mass}");
        let est = routed
            .outcome
            .result
            .estimate
            .expect("merged mc answer keeps its estimate block");
        // Each shard walks its own 10 resident members with the default
        // per-source budget; the merged block sums the shard totals.
        let per_source = u64::from(req.estimator.walks);
        assert_eq!(est.walks, 20 * per_source);
        assert_eq!(est.epsilon, req.estimator.epsilon);
        assert!(est.residual > 0.0);
    }

    fn keyword_request(members: Vec<u32>) -> KeywordRequest {
        KeywordRequest {
            members,
            base: vec![0, 50, 150],
            damping: 0.85,
            tolerance: 1e-8,
        }
    }

    #[test]
    fn shard_resident_keyword_is_bit_identical_to_single() {
        let (single, sharded) = routers(200);
        let req = keyword_request((10..40).collect());
        let a = single.keyword(&req, null()).unwrap();
        let b = sharded.keyword(&req, null()).unwrap();
        assert_eq!((a.shards, b.shards), (1, 1));
        for ((pa, sa), (pb, sb)) in a
            .outcome
            .result
            .scores
            .iter()
            .zip(b.outcome.result.scores.iter())
        {
            assert_eq!(pa, pb);
            assert_eq!(sa.to_bits(), sb.to_bits(), "page {pa}");
        }
        assert_eq!(sharded.batch_stats().keyword_solves, 1);
    }

    #[test]
    fn cross_shard_keyword_merges_a_distribution() {
        let (_, sharded) = routers(200);
        let members: Vec<u32> = (90..110).collect(); // straddles the 100 boundary
        let routed = sharded
            .keyword(&keyword_request(members.clone()), null())
            .unwrap();
        assert_eq!(routed.shards, 2);
        let pages: Vec<u32> = routed
            .outcome
            .result
            .scores
            .iter()
            .map(|&(p, _)| p)
            .collect();
        assert_eq!(pages, members, "merged scores cover the union in order");
        let mass: f64 = routed
            .outcome
            .result
            .scores
            .iter()
            .map(|&(_, s)| s)
            .sum::<f64>()
            + routed.outcome.result.lambda.unwrap();
        assert!((mass - 1.0).abs() < 1e-9, "mixture mass {mass}");
        assert_eq!(sharded.cross_rank_requests(), 1);
    }

    #[test]
    fn sessions_route_by_stride_and_stay_on_one_shard() {
        let (_, sharded) = routers(200);
        let (id0, _) = sharded
            .session_create(&request(vec![5, 6, 7]), null())
            .unwrap();
        let (id1, _) = sharded
            .session_create(&request(vec![150, 151]), null())
            .unwrap();
        assert_eq!((id0, id1), (1, 2)); // shard 0 strides 1,3,…; shard 1 strides 2,4,…
        assert!(sharded.session_view(id0).unwrap().is_some());
        assert!(sharded.session_view(id1).unwrap().is_some());
        let err = sharded
            .session_create(&request(vec![99, 100]), null())
            .unwrap_err();
        assert!(matches!(err, EngineError::BadRequest(ref m) if m.contains("span")));
        let (members, _) = sharded.session_update(id1, &[152], &[], null()).unwrap();
        assert_eq!(members, vec![150, 151, 152]);
        // Adding a foreign page routes to shard 1, which refuses it.
        let err = sharded.session_update(id1, &[5], &[], null()).unwrap_err();
        assert!(matches!(err, EngineError::BadRequest(ref m) if m.contains("not on shard")));
        assert!(sharded.session_delete(id0, null()).unwrap());
        assert!(!sharded.session_delete(0, null()).unwrap());
        assert_eq!(sharded.session_count(), 1);
    }
}
