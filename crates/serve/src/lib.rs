//! `approxrank-serve`: a zero-dependency ranking service.
//!
//! Serves the workspace's subgraph-ranking algorithms over HTTP/1.1 on
//! nothing but `std`: a hand-rolled server ([`Server`]) over
//! `std::net::TcpListener` with a bounded accept queue, per-connection
//! timeouts, and worker lanes driven by an [`approxrank_exec::Executor`]
//! work pool. One global graph is loaded at startup; every request ranks
//! a subgraph of it.
//!
//! # Endpoints
//!
//! | Route | What it does |
//! |---|---|
//! | `POST /rank` | Rank a member list (`approxrank`, `idealrank`, `local`, `lpr2`, `sc`); answers are cached and bit-identical to the offline CLI |
//! | `POST /keyword` | ObjectRank keyword ranking: teleport to a base set (`"keyword"` resolved against page labels, or explicit `"base"` ids); answers cached per (membership, base, epoch), concurrent queries coalesced into multi-vector solves |
//! | `POST /session` | Open a long-lived [`approxrank_core::SubgraphSession`] (warm-start re-solves) |
//! | `POST /session/{id}/update` | Add/remove pages and warm-start re-solve; invalidates cache entries for the touched memberships |
//! | `GET /session/{id}` / `DELETE /session/{id}` | Inspect / close a session |
//! | `GET /stats` | JSON snapshot: graph shape, cache counters, open sessions |
//! | `GET /metrics` | Text exposition: request counts/latency histograms, cache counters, `pool_*` work-pool telemetry, solver spans |
//! | `GET /healthz` | Liveness |
//! | `GET /debug/requests` | JSON array of the last N completed request traces (span trees with per-layer timings) |
//!
//! # Tracing
//!
//! Every request gets a trace id — adopted from an inbound
//! `X-Request-Id` header when present and valid, generated otherwise —
//! and the same id is echoed back as an `X-Request-Id` response header
//! and stamped into JSON error envelopes. While the request runs, a
//! [`approxrank_trace::RequestRecorder`] assembles a span tree across
//! router dispatch, per-shard engine work (cache probe, solve, session
//! ops), and store WAL appends; finished traces land in a bounded ring
//! behind `GET /debug/requests`, and those slower than
//! [`ServeConfig::slow_ms`] are additionally appended to a
//! `slow_requests.jsonl` under the data dir. Per-layer counters
//! (`engine_cache_probe_us`, `store_fsync_us`, `solve_iterations`,
//! `shard_solve_us_{k}`, `exec_queue_wait_us`) feed `/metrics`
//! histograms whose slowest bucket carries the offending trace id as an
//! exemplar.
//!
//! # Sharding
//!
//! With [`ServeConfig::shards`] > 1 the graph is partitioned at startup
//! ([`approxrank_graph::PartitionStrategy`]) and each shard gets its own
//! [`approxrank_engine::Engine`] — cache slice, session table, and
//! (optionally) durable store under `shard-k/`. A [`Router`] fronts the
//! engines: shard-resident requests are answered bit-identically to a
//! single-shard deployment, cross-shard ApproxRank requests fan out and
//! merge as a uniform mixture (marked by `"shards" > 1` in the response),
//! and sessions are pinned to one shard via strided ids.
//!
//! With [`ServeConfig::remote_shards`] non-empty the same [`Router`]
//! fronts engines living in *other processes*: each shard slot holds an
//! [`approxrank_rpc::RemoteEngine`] (a replica set of RPC clients with
//! health checks, retries, and failover, tuned by
//! [`ServeConfig::rpc`]) instead of an in-process engine. Routing,
//! merging, and response bytes are identical either way; an exhausted
//! retry budget surfaces as a 503 carrying the request's trace id, and
//! transport telemetry appears as `rpc_*` counters on `/metrics`.
//!
//! # Multi-tenancy
//!
//! Every request names a tenant via the `X-Tenant` header (`"default"`
//! without one); the tenant is stamped onto log lines and remote shard
//! calls. With `--tenant-quota N` a [`tenant::TenantGovernor`] admits at
//! most `N` concurrent solving (`POST`) requests per tenant: over-quota
//! requests queue (bounded by `--tenant-queue`, waiting at most the
//! request timeout) and are shed with `429 Too Many Requests` plus a
//! `Retry-After` header once the queue overflows or the wait expires.
//! One tenant saturating its quota only ever queues its *own* traffic.
//! Per-tenant counters (`tenant_requests_total`, `tenant_shed_total`,
//! `tenant_in_flight`, `tenant_queue_depth`) appear on `/metrics`.
//!
//! # Consistency
//!
//! `/rank` responses are *bit-identical* to `subrank rank` for the same
//! members and options: both run the same cold-solve entry points, and
//! the result cache only ever stores cold solves. Warm session re-solves
//! (which converge to the same fixed point but along a different
//! iteration path) are returned to the session's caller and **never**
//! inserted into the shared cache; mutating a session invalidates the
//! cache keys of both its previous and new membership.
//!
//! # Durability
//!
//! With [`ServeConfig::data_dir`] set, sessions survive restarts: every
//! session lifecycle event is appended to a write-ahead log (fsynced per
//! [`FsyncPolicy`]), a background thread periodically folds the log into
//! checksummed snapshots, and [`Server::bind`] recovers whatever a
//! previous process left behind — re-registering sessions with their
//! converged scores (so the first re-solve is warm) and rewarming hot
//! result-cache entries. See [`persist`] and the `approxrank-store`
//! crate. Without a data dir the server is purely in-memory, as before.
//!
//! # Shutdown
//!
//! `SIGINT`/`SIGTERM` (via [`shutdown_on_signal`]) or
//! [`ServerHandle::shutdown`] start a graceful drain: the listener stops
//! accepting, in-flight requests complete and are answered with
//! `Connection: close`, queued-but-unstarted connections are shed with
//! 503, and [`Server::serve`] returns a [`ServeSummary`].

#![deny(missing_docs)]

pub mod client;
pub mod handlers;
pub mod http;
pub mod json;
pub mod metrics;
pub mod persist;
pub mod router;
pub mod server;
pub mod state;
pub mod tenant;

pub use approxrank_store::FsyncPolicy;
pub use client::{Client, ClientResponse};
pub use router::{GraphSummary, RoutedRank, Router};
pub use server::{on_shutdown_signal, shutdown_on_signal, ServeSummary, Server, ServerHandle};
pub use state::{AppState, KeywordCache, KeywordKey, ServeConfig};
pub use tenant::{Admission, TenantGovernor, TenantPermit, TenantSnapshot};
