//! JSON for the service — a re-export of the workspace's single codec.
//!
//! The hand-rolled parser/emitter used to live here; it moved to
//! [`approxrank_store::json`] so the sharded-layout manifest and the HTTP
//! bodies share one float-formatting policy (shortest round-trip `f64`).
//! Handlers keep importing through this path.

pub use approxrank_store::json::{obj, parse, Json};
