//! Request metrics and trace aggregation for `/metrics`.
//!
//! [`Metrics`] is both the service's counter registry *and* an
//! [`approxrank_trace::Observer`]: handlers open request spans through
//! the trace API, and solvers invoked with this observer stream their
//! `pool_*` counters/gauges and per-solver iteration events straight
//! into the same registry. Events are folded into fixed-size aggregates
//! on arrival, so memory stays bounded no matter how long the server
//! runs.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use approxrank_trace::{Event, Observer};

/// Endpoint labels for per-endpoint counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// `GET /healthz`
    Healthz,
    /// `GET /stats`
    Stats,
    /// `GET /metrics`
    Metrics,
    /// `POST /rank`
    Rank,
    /// `POST /keyword`
    Keyword,
    /// `POST /graph/edges`
    GraphEdges,
    /// `POST /session`
    SessionCreate,
    /// `POST /session/{id}/update`
    SessionUpdate,
    /// `GET /session/{id}`
    SessionGet,
    /// `DELETE /session/{id}`
    SessionDelete,
    /// `GET /debug/requests`
    DebugRequests,
    /// Anything unrouted.
    Other,
}

const ENDPOINTS: [Endpoint; 12] = [
    Endpoint::Healthz,
    Endpoint::Stats,
    Endpoint::Metrics,
    Endpoint::Rank,
    Endpoint::Keyword,
    Endpoint::GraphEdges,
    Endpoint::SessionCreate,
    Endpoint::SessionUpdate,
    Endpoint::SessionGet,
    Endpoint::SessionDelete,
    Endpoint::DebugRequests,
    Endpoint::Other,
];

impl Endpoint {
    fn index(self) -> usize {
        ENDPOINTS.iter().position(|&e| e == self).expect("listed")
    }

    /// The label rendered in `/metrics`.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Healthz => "healthz",
            Endpoint::Stats => "stats",
            Endpoint::Metrics => "metrics",
            Endpoint::Rank => "rank",
            Endpoint::Keyword => "keyword",
            Endpoint::GraphEdges => "graph_edges",
            Endpoint::SessionCreate => "session_create",
            Endpoint::SessionUpdate => "session_update",
            Endpoint::SessionGet => "session_get",
            Endpoint::SessionDelete => "session_delete",
            Endpoint::DebugRequests => "debug_requests",
            Endpoint::Other => "other",
        }
    }
}

/// Upper bounds (microseconds) of the request latency histogram buckets;
/// an implicit `+Inf` bucket follows.
const LATENCY_BOUNDS_US: [u64; 8] = [100, 300, 1_000, 3_000, 10_000, 30_000, 100_000, 300_000];

/// Upper bounds for the per-layer *microsecond* histograms (cache
/// probes, fsyncs, per-shard solves); finer at the bottom than the
/// request buckets because these layers are sub-millisecond on the
/// happy path.
const LAYER_US_BOUNDS: [u64; 10] = [
    10, 30, 100, 300, 1_000, 3_000, 10_000, 30_000, 100_000, 300_000,
];

/// Upper bounds for the `solve_iterations` histogram (a count, not a
/// duration).
const ITER_BOUNDS: [u64; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// Picks the bucket index for `value` among `bounds` (the last index is
/// the implicit `+Inf` bucket). A value exactly on a bound lands in
/// that bound's bucket (`le` semantics).
fn bucket_index(bounds: &[u64], value: u64) -> usize {
    bounds.partition_point(|&b| b < value)
}

#[derive(Default)]
struct PerEndpoint {
    requests: AtomicU64,
    latency_sum_us: AtomicU64,
    buckets: [AtomicU64; LATENCY_BOUNDS_US.len() + 1],
}

/// One bounded per-layer histogram, with the slowest observation's
/// trace id kept as an exemplar so an operator can jump from a bad
/// bucket straight to the request that filled it.
struct LayerHistogram {
    bounds: &'static [u64],
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    /// `(value, trace_id)` of the largest observation so far.
    slowest: Option<(u64, String)>,
}

impl LayerHistogram {
    fn new(bounds: &'static [u64]) -> LayerHistogram {
        LayerHistogram {
            bounds,
            buckets: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            slowest: None,
        }
    }

    fn observe(&mut self, value: u64, trace_id: Option<&str>) {
        self.buckets[bucket_index(self.bounds, value)] += 1;
        self.count += 1;
        self.sum += value;
        let beats = self.slowest.as_ref().is_none_or(|(v, _)| value > *v);
        if beats {
            if let Some(id) = trace_id {
                self.slowest = Some((value, id.to_string()));
            }
        }
    }
}

/// The per-layer histogram names [`Metrics`] accepts from trace
/// counters; anything else stays a plain last/sum counter. Prefix names
/// cover the per-shard families (`shard_solve_us_0`, …).
fn layer_bounds(name: &str) -> Option<&'static [u64]> {
    match name {
        "engine_cache_probe_us" | "store_fsync_us" | "exec_queue_wait_us" => Some(&LAYER_US_BOUNDS),
        "solve_iterations" => Some(&ITER_BOUNDS),
        _ if name.starts_with("shard_solve_us_") => Some(&LAYER_US_BOUNDS),
        _ => None,
    }
}

/// Aggregates folded out of trace events.
#[derive(Default)]
struct TraceAggregates {
    /// span name → (count, total ns).
    spans: BTreeMap<String, (u64, u64)>,
    /// counter name → (last value, running sum).
    counters: BTreeMap<String, (u64, u64)>,
    /// gauge name → last value.
    gauges: BTreeMap<String, f64>,
    /// solver name → iteration events seen.
    iterations: BTreeMap<String, u64>,
}

/// The registry behind `GET /metrics`.
pub struct Metrics {
    started: Instant,
    per_endpoint: Vec<PerEndpoint>,
    /// Response counts by status class index (2xx → 0, 3xx → 1, …).
    status_classes: [AtomicU64; 4],
    connections: AtomicU64,
    panics: AtomicU64,
    rejected_accepts: AtomicU64,
    slow_requests: AtomicU64,
    trace: Mutex<TraceAggregates>,
    /// Per-layer histograms keyed by counter name; bounded because only
    /// the names [`layer_bounds`] accepts are ever inserted.
    layers: Mutex<BTreeMap<String, LayerHistogram>>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// A fresh registry; `uptime` is measured from this call.
    pub fn new() -> Self {
        Metrics {
            started: Instant::now(),
            per_endpoint: ENDPOINTS.iter().map(|_| PerEndpoint::default()).collect(),
            status_classes: Default::default(),
            connections: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            rejected_accepts: AtomicU64::new(0),
            slow_requests: AtomicU64::new(0),
            trace: Mutex::new(TraceAggregates::default()),
            layers: Mutex::new(BTreeMap::new()),
        }
    }

    /// Records one finished request.
    pub fn observe_request(&self, endpoint: Endpoint, status: u16, latency_us: u64) {
        let e = &self.per_endpoint[endpoint.index()];
        e.requests.fetch_add(1, Ordering::Relaxed);
        e.latency_sum_us.fetch_add(latency_us, Ordering::Relaxed);
        let bucket = bucket_index(&LATENCY_BOUNDS_US, latency_us);
        e.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        let class = (status / 100) as usize;
        if (2..=5).contains(&class) {
            self.status_classes[class - 2].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one accepted connection.
    pub fn observe_connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a handler panic (turned into a 500 by the worker).
    pub fn observe_panic(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection shed because the accept queue was full.
    pub fn observe_rejected_accept(&self) {
        self.rejected_accepts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request whose wall-clock time crossed the `--slow-ms`
    /// threshold (and was therefore written to the slow-query log when
    /// one is configured).
    pub fn observe_slow_request(&self) {
        self.slow_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds one per-layer observation into its histogram, attaching
    /// `trace_id` as the exemplar when this is the slowest observation
    /// so far. Only names accepted by `layer_bounds` are recorded.
    pub fn observe_layer(&self, name: &str, value: u64, trace_id: Option<&str>) {
        let Some(bounds) = layer_bounds(name) else {
            return;
        };
        let mut layers = self.layers.lock().unwrap_or_else(|e| e.into_inner());
        layers
            .entry(name.to_string())
            .or_insert_with(|| LayerHistogram::new(bounds))
            .observe(value, trace_id);
    }

    /// Total requests across endpoints.
    pub fn total_requests(&self) -> u64 {
        self.per_endpoint
            .iter()
            .map(|e| e.requests.load(Ordering::Relaxed))
            .sum()
    }

    /// Total connections accepted.
    pub fn total_connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Seconds since the registry was created.
    pub fn uptime_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    fn lock_trace(&self) -> std::sync::MutexGuard<'_, TraceAggregates> {
        self.trace.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Renders the whole registry in the text exposition format.
    /// `extra` lines (graph/cache/session/pool gauges computed by the
    /// caller) are appended verbatim.
    pub fn render(&self, extra: &str) -> String {
        let mut out = String::new();
        let push = |out: &mut String, line: String| {
            out.push_str(&line);
            out.push('\n');
        };
        push(
            &mut out,
            format!("approxrank_uptime_seconds {:.3}", self.uptime_seconds()),
        );
        push(
            &mut out,
            format!("approxrank_connections_total {}", self.total_connections()),
        );
        push(
            &mut out,
            format!(
                "approxrank_accept_rejected_total {}",
                self.rejected_accepts.load(Ordering::Relaxed)
            ),
        );
        push(
            &mut out,
            format!(
                "approxrank_handler_panics_total {}",
                self.panics.load(Ordering::Relaxed)
            ),
        );
        push(
            &mut out,
            format!(
                "approxrank_slow_requests_total {}",
                self.slow_requests.load(Ordering::Relaxed)
            ),
        );
        for (i, endpoint) in ENDPOINTS.iter().enumerate() {
            let e = &self.per_endpoint[i];
            let requests = e.requests.load(Ordering::Relaxed);
            if requests == 0 {
                continue;
            }
            let label = endpoint.label();
            push(
                &mut out,
                format!("approxrank_requests_total{{endpoint=\"{label}\"}} {requests}"),
            );
            push(
                &mut out,
                format!(
                    "approxrank_request_latency_us_sum{{endpoint=\"{label}\"}} {}",
                    e.latency_sum_us.load(Ordering::Relaxed)
                ),
            );
            let mut cumulative = 0u64;
            for (b, bound) in LATENCY_BOUNDS_US.iter().enumerate() {
                cumulative += e.buckets[b].load(Ordering::Relaxed);
                push(
                    &mut out,
                    format!(
                        "approxrank_request_latency_us_bucket{{endpoint=\"{label}\",le=\"{bound}\"}} {cumulative}"
                    ),
                );
            }
            cumulative += e.buckets[LATENCY_BOUNDS_US.len()].load(Ordering::Relaxed);
            push(
                &mut out,
                format!(
                    "approxrank_request_latency_us_bucket{{endpoint=\"{label}\",le=\"+Inf\"}} {cumulative}"
                ),
            );
        }
        for (class, count) in self.status_classes.iter().enumerate() {
            let count = count.load(Ordering::Relaxed);
            if count > 0 {
                push(
                    &mut out,
                    format!(
                        "approxrank_responses_total{{class=\"{}xx\"}} {count}",
                        class + 2
                    ),
                );
            }
        }
        {
            let trace = self.lock_trace();
            for (name, (count, total_ns)) in &trace.spans {
                push(&mut out, format!("span_count{{name=\"{name}\"}} {count}"));
                push(
                    &mut out,
                    format!("span_total_ns{{name=\"{name}\"}} {total_ns}"),
                );
            }
            for (name, (last, sum)) in &trace.counters {
                push(&mut out, format!("{name} {last}"));
                push(&mut out, format!("{name}_sum {sum}"));
            }
            for (name, last) in &trace.gauges {
                push(&mut out, format!("{name} {last:?}"));
            }
            for (solver, count) in &trace.iterations {
                push(
                    &mut out,
                    format!("solver_iterations_total{{solver=\"{solver}\"}} {count}"),
                );
            }
        }
        {
            let layers = self.layers.lock().unwrap_or_else(|e| e.into_inner());
            for (name, hist) in layers.iter() {
                push(&mut out, format!("{name}_count {}", hist.count));
                push(&mut out, format!("{name}_sum {}", hist.sum));
                let mut cumulative = 0u64;
                for (b, bound) in hist.bounds.iter().enumerate() {
                    cumulative += hist.buckets[b];
                    push(
                        &mut out,
                        format!("{name}_bucket{{le=\"{bound}\"}} {cumulative}"),
                    );
                }
                cumulative += hist.buckets[hist.bounds.len()];
                push(
                    &mut out,
                    format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}"),
                );
                if let Some((value, trace_id)) = &hist.slowest {
                    push(
                        &mut out,
                        format!("{name}_slowest{{trace_id=\"{trace_id}\"}} {value}"),
                    );
                }
            }
        }
        out.push_str(extra);
        out
    }
}

impl Observer for Metrics {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, event: Event) {
        // Counters with a per-layer histogram go to it (under their own
        // lock) instead of the last/sum fold — one name, one exposition.
        if let Event::Counter { name, value } = &event {
            if layer_bounds(name).is_some() {
                self.observe_layer(name, *value, None);
                return;
            }
        }
        let mut trace = self.lock_trace();
        match event {
            Event::SpanStart { .. } => {}
            Event::SpanEnd { name, elapsed_ns } => {
                let entry = trace.spans.entry(name).or_insert((0, 0));
                entry.0 += 1;
                entry.1 += elapsed_ns;
            }
            Event::Counter { name, value } => {
                let entry = trace.counters.entry(name).or_insert((0, 0));
                entry.0 = value;
                entry.1 += value;
            }
            Event::Gauge { name, value } => {
                trace.gauges.insert(name, value);
            }
            Event::Iteration { solver, .. } => {
                *trace.iterations.entry(solver).or_insert(0) += 1;
            }
        }
    }
}

/// A per-request view of [`Metrics`] that knows the active trace id:
/// counter events with a per-layer histogram carry the id as a
/// candidate exemplar, everything else passes straight through. One is
/// built per dispatched request and teed with the request's
/// [`approxrank_trace::RequestRecorder`].
pub struct MetricsWithTrace<'a> {
    metrics: &'a Metrics,
    trace_id: &'a str,
}

impl<'a> MetricsWithTrace<'a> {
    /// Binds `metrics` to one request's trace id.
    pub fn new(metrics: &'a Metrics, trace_id: &'a str) -> MetricsWithTrace<'a> {
        MetricsWithTrace { metrics, trace_id }
    }
}

impl Observer for MetricsWithTrace<'_> {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, event: Event) {
        if let Event::Counter { name, value } = &event {
            if layer_bounds(name).is_some() {
                self.metrics
                    .observe_layer(name, *value, Some(self.trace_id));
                return;
            }
        }
        self.metrics.record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_counters_render() {
        let m = Metrics::new();
        m.observe_request(Endpoint::Rank, 200, 1_500);
        m.observe_request(Endpoint::Rank, 400, 50);
        m.observe_request(Endpoint::Healthz, 200, 20);
        let text = m.render("");
        assert!(
            text.contains("approxrank_requests_total{endpoint=\"rank\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("approxrank_responses_total{class=\"2xx\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("approxrank_responses_total{class=\"4xx\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("approxrank_request_latency_us_bucket{endpoint=\"rank\",le=\"100\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("approxrank_request_latency_us_bucket{endpoint=\"rank\",le=\"+Inf\"} 2"),
            "{text}"
        );
    }

    #[test]
    fn trace_events_fold_into_aggregates() {
        let m = Metrics::new();
        let obs: &dyn Observer = &m;
        {
            let _span = obs.span("http.rank");
        }
        {
            let _span = obs.span("http.rank");
        }
        obs.counter("pool_threads", 4);
        obs.gauge("pool_imbalance", 1.25);
        obs.iteration(approxrank_trace::IterationEvent {
            solver: "extended",
            iteration: 0,
            residual: 0.1,
            dangling_mass: 0.0,
            elapsed_ns: 5,
        });
        let text = m.render("");
        assert!(text.contains("span_count{name=\"http.rank\"} 2"), "{text}");
        assert!(text.contains("pool_threads 4"), "{text}");
        assert!(text.contains("pool_imbalance 1.25"), "{text}");
        assert!(
            text.contains("solver_iterations_total{solver=\"extended\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn extra_lines_appended() {
        let m = Metrics::new();
        let text = m.render("pool_threads 8\n");
        assert!(text.ends_with("pool_threads 8\n"));
    }

    #[test]
    fn latency_exactly_on_a_bound_lands_in_that_bucket() {
        // `le` semantics: an observation equal to a bound counts toward
        // that bound's bucket, not the next one up.
        for (i, &bound) in LATENCY_BOUNDS_US.iter().enumerate() {
            assert_eq!(bucket_index(&LATENCY_BOUNDS_US, bound), i, "bound {bound}");
            assert_eq!(
                bucket_index(&LATENCY_BOUNDS_US, bound + 1),
                i + 1,
                "just past bound {bound}"
            );
        }
        assert_eq!(bucket_index(&LATENCY_BOUNDS_US, 0), 0);
        assert_eq!(
            bucket_index(&LATENCY_BOUNDS_US, u64::MAX),
            LATENCY_BOUNDS_US.len(),
            "overflow goes to +Inf"
        );

        let m = Metrics::new();
        m.observe_request(Endpoint::Rank, 200, 300); // == the 2nd bound
        let text = m.render("");
        assert!(
            text.contains("approxrank_request_latency_us_bucket{endpoint=\"rank\",le=\"300\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("approxrank_request_latency_us_bucket{endpoint=\"rank\",le=\"100\"} 0"),
            "{text}"
        );
    }

    #[test]
    fn layer_histograms_render_with_exemplar() {
        let m = Metrics::new();
        let traced = MetricsWithTrace::new(&m, "abc123");
        let obs: &dyn Observer = &traced;
        obs.counter("engine_cache_probe_us", 25);
        obs.counter("engine_cache_probe_us", 120);
        obs.counter("solve_iterations", 17);
        obs.counter("shard_solve_us_1", 2_500);
        // A plain counter stays a plain counter.
        obs.counter("pool_jobs", 3);
        let text = m.render("");
        assert!(text.contains("engine_cache_probe_us_count 2"), "{text}");
        assert!(text.contains("engine_cache_probe_us_sum 145"), "{text}");
        assert!(
            text.contains("engine_cache_probe_us_bucket{le=\"30\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("engine_cache_probe_us_slowest{trace_id=\"abc123\"} 120"),
            "{text}"
        );
        assert!(
            text.contains("solve_iterations_bucket{le=\"32\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("shard_solve_us_1_slowest{trace_id=\"abc123\"} 2500"),
            "{text}"
        );
        assert!(text.contains("pool_jobs 3"), "{text}");
        // The histogram names never show up as bare last/sum counters.
        assert!(!text.contains("\nengine_cache_probe_us 120"), "{text}");
    }

    #[test]
    fn untraced_layer_counters_fold_without_exemplar() {
        let m = Metrics::new();
        let obs: &dyn Observer = &m;
        obs.counter("store_fsync_us", 90);
        let text = m.render("");
        assert!(text.contains("store_fsync_us_count 1"), "{text}");
        assert!(!text.contains("store_fsync_us_slowest"), "{text}");
    }

    #[test]
    fn memory_is_bounded_by_name_cardinality() {
        let m = Metrics::new();
        let obs: &dyn Observer = &m;
        for _ in 0..10_000 {
            obs.counter("pool_jobs", 1);
        }
        assert_eq!(m.lock_trace().counters.len(), 1);
    }
}
