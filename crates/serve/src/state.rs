//! Shared service state: the engine router, the metrics registry, and
//! the serving configuration.
//!
//! Everything *per graph* — precomputation, the result cache, warm
//! sessions, durable-store glue — lives in [`approxrank_engine::Engine`];
//! the state here owns one [`Router`] over those engines plus the
//! transport-level registries the handlers share.

use std::fs::{File, OpenOptions};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use approxrank_engine::{CacheStats, EngineConfig};
use approxrank_exec::{ExecStats, Executor};
use approxrank_graph::{DiGraph, PartitionStrategy};
use approxrank_rpc::RemoteConfig;
use approxrank_store::FsyncPolicy;
use approxrank_trace::{logging, TraceRing};

use crate::metrics::Metrics;
use crate::router::Router;

/// File name of the slow-query log under the data dir.
pub const SLOW_LOG_FILE: &str = "slow_requests.jsonl";

/// Tunables for [`crate::Server`], mirrored by the `subrank serve` flags.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7878` (`:0` for an ephemeral
    /// port).
    pub addr: String,
    /// Total worker lanes handling connections (including the thread
    /// that calls `serve`); 1 means a single serving lane.
    pub threads: usize,
    /// Total result-cache entries across all shards.
    pub cache_entries: usize,
    /// Largest accepted request body, in bytes.
    pub max_body: usize,
    /// Per-connection read/write timeout.
    pub request_timeout: Duration,
    /// Connections queued between the acceptor and the workers before
    /// new arrivals are shed with 503.
    pub accept_queue: usize,
    /// When set, sessions are made durable: lifecycle events go to a WAL
    /// in this directory, a background thread snapshots periodically, and
    /// boot recovers whatever a previous process left behind.
    pub data_dir: Option<PathBuf>,
    /// WAL fsync policy (only meaningful with `data_dir`).
    pub fsync: FsyncPolicy,
    /// How often the background snapshotter folds the WAL into a fresh
    /// snapshot (only meaningful with `data_dir`).
    pub snapshot_interval: Duration,
    /// Engines the graph is partitioned across. 1 (the default) serves
    /// the whole graph from one engine, exactly as before sharding
    /// existed.
    pub shards: usize,
    /// How nodes are assigned to shards (only meaningful with
    /// `shards > 1`).
    pub partition: PartitionStrategy,
    /// Slow-query threshold in milliseconds: a finished request whose
    /// wall-clock time is `>=` this is counted in `/metrics` and (with
    /// `data_dir`) appended to [`SLOW_LOG_FILE`]. `None` disables the
    /// slow log; `Some(0)` captures every request.
    pub slow_ms: Option<u64>,
    /// How many completed request traces `GET /debug/requests` keeps.
    pub trace_ring: usize,
    /// Remote mode: one entry per shard, each a replica address list
    /// (`host:port`). Empty (the default) keeps every engine in-process.
    /// When non-empty, `shards`/`data_dir` are ignored — the shard
    /// servers own partitioning-by-assignment and persistence.
    pub remote_shards: Vec<Vec<String>>,
    /// RPC transport tunables (timeouts, retry budget, health-check
    /// cadence). Only meaningful with `remote_shards`.
    pub rpc: RemoteConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".into(),
            threads: 2,
            cache_entries: 4096,
            max_body: 1 << 20,
            request_timeout: Duration::from_millis(5_000),
            accept_queue: 128,
            data_dir: None,
            fsync: FsyncPolicy::Interval(Duration::from_millis(100)),
            snapshot_interval: Duration::from_secs(30),
            shards: 1,
            partition: PartitionStrategy::Range,
            slow_ms: None,
            trace_ring: 128,
            remote_shards: Vec::new(),
            rpc: RemoteConfig::default(),
        }
    }
}

/// Everything the request handlers share. One instance per server,
/// behind an `Arc`.
pub struct AppState {
    /// The engine router: one global engine, or one engine per shard.
    pub router: Router,
    /// Counters and trace aggregates behind `/metrics`.
    pub metrics: Metrics,
    /// The configuration the server was started with.
    pub config: ServeConfig,
    /// The worker-lane executor, installed by the server at startup so
    /// `/metrics` can expose `pool_*` telemetry.
    pub pool: OnceLock<Arc<Executor>>,
    /// The last N completed request traces, served by
    /// `GET /debug/requests`.
    pub traces: TraceRing,
    /// Append handle for the slow-query JSONL log (open only when both
    /// `slow_ms` and `data_dir` are configured).
    pub slow_log: Option<Mutex<File>>,
}

impl AppState {
    /// Builds the state for a graph: partitions it per `config` (a shard
    /// count of 1 keeps the whole graph on one engine), or — when
    /// `remote_shards` is set — fronts out-of-process shard servers
    /// instead. Only the remote wiring can fail (misconfigured replica
    /// lists, a reachable replica serving the wrong graph).
    pub fn new(graph: DiGraph, config: ServeConfig) -> Result<Self, String> {
        let engine_config = EngineConfig {
            cache_entries: config.cache_entries,
            fsync: config.fsync,
            ..EngineConfig::default()
        };
        let router = if !config.remote_shards.is_empty() {
            Router::remote(
                &graph,
                config.partition,
                &config.remote_shards,
                config.rpc.clone(),
            )?
        } else if config.shards <= 1 {
            Router::single(graph, engine_config)
        } else {
            Router::sharded(&graph, config.shards, config.partition, engine_config)
        };
        let slow_log = open_slow_log(&config);
        Ok(AppState {
            router,
            metrics: Metrics::new(),
            traces: TraceRing::new(config.trace_ring),
            slow_log,
            config,
            pool: OnceLock::new(),
        })
    }

    /// Snapshot of the serving pool's lifetime telemetry, if a server has
    /// installed its executor.
    pub fn pool_stats(&self) -> Option<ExecStats> {
        self.pool.get().map(|exec| exec.stats())
    }

    /// Result-cache counters summed across every engine.
    pub fn cache_stats(&self) -> CacheStats {
        self.router.cache_stats()
    }

    /// Open session count across every engine.
    pub fn session_count(&self) -> usize {
        self.router.session_count()
    }
}

/// Opens the slow-query log in append mode when the config asks for one.
/// Failures degrade to "no slow log" with a warning — observability
/// must never stop the service from booting.
fn open_slow_log(config: &ServeConfig) -> Option<Mutex<File>> {
    let dir = config.data_dir.as_ref()?;
    config.slow_ms?;
    if let Err(e) = std::fs::create_dir_all(dir) {
        logging::log(
            logging::Level::Warn,
            "serve",
            &format!(
                "cannot create data dir {} for the slow log: {e}",
                dir.display()
            ),
        );
        return None;
    }
    match OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join(SLOW_LOG_FILE))
    {
        Ok(file) => Some(Mutex::new(file)),
        Err(e) => {
            logging::log(
                logging::Level::Warn,
                "serve",
                &format!("cannot open slow-query log under {}: {e}", dir.display()),
            );
            None
        }
    }
}
