//! Shared service state: the global graph, its precomputation, open
//! sessions, the result cache, and the metrics registry.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use approxrank_core::{GlobalPrecomputation, SubgraphSession};
use approxrank_exec::{ExecStats, Executor};
use approxrank_graph::DiGraph;
use approxrank_store::{FsyncPolicy, SessionStore};

use crate::cache::{CacheKey, ShardedCache};
use crate::metrics::Metrics;

/// Tunables for [`crate::Server`], mirrored by the `subrank serve` flags.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7878` (`:0` for an ephemeral
    /// port).
    pub addr: String,
    /// Total worker lanes handling connections (including the thread
    /// that calls `serve`); 1 means a single serving lane.
    pub threads: usize,
    /// Total result-cache entries across all shards.
    pub cache_entries: usize,
    /// Largest accepted request body, in bytes.
    pub max_body: usize,
    /// Per-connection read/write timeout.
    pub request_timeout: Duration,
    /// Connections queued between the acceptor and the workers before
    /// new arrivals are shed with 503.
    pub accept_queue: usize,
    /// When set, sessions are made durable: lifecycle events go to a WAL
    /// in this directory, a background thread snapshots periodically, and
    /// boot recovers whatever a previous process left behind.
    pub data_dir: Option<PathBuf>,
    /// WAL fsync policy (only meaningful with `data_dir`).
    pub fsync: FsyncPolicy,
    /// How often the background snapshotter folds the WAL into a fresh
    /// snapshot (only meaningful with `data_dir`).
    pub snapshot_interval: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".into(),
            threads: 2,
            cache_entries: 4096,
            max_body: 1 << 20,
            request_timeout: Duration::from_millis(5_000),
            accept_queue: 128,
            data_dir: None,
            fsync: FsyncPolicy::Interval(Duration::from_millis(100)),
            snapshot_interval: Duration::from_secs(30),
        }
    }
}

/// One live `/session`: the warm solver plus the cache key of the last
/// membership it published (invalidated on mutation).
pub struct ServerSession {
    /// The warm-start solver.
    pub session: SubgraphSession,
    /// Cache key for the membership at the last solve, if any.
    pub published_key: Option<CacheKey>,
    /// Damping the session was opened with (sessions pin their options).
    pub damping: f64,
    /// Tolerance the session was opened with.
    pub tolerance: f64,
}

/// Everything the request handlers share. One instance per server,
/// behind an `Arc`.
pub struct AppState {
    /// The global graph, loaded once at startup.
    pub graph: DiGraph,
    /// Degree/dangling aggregates shared by every ApproxRank build.
    pub precomputation: GlobalPrecomputation,
    /// Global PageRank scores, computed lazily on the first `idealrank`
    /// request and reused forever after.
    pub global_scores: OnceLock<Vec<f64>>,
    /// Open sessions by id. Each session has its own lock so long
    /// re-solves don't block the table.
    pub sessions: Mutex<HashMap<u64, Arc<Mutex<ServerSession>>>>,
    /// Monotonic session id source.
    pub next_session_id: AtomicU64,
    /// The sharded LRU result cache.
    pub cache: ShardedCache,
    /// Counters and trace aggregates behind `/metrics`.
    pub metrics: Metrics,
    /// The configuration the server was started with.
    pub config: ServeConfig,
    /// The worker-lane executor, installed by the server at startup so
    /// `/metrics` can expose `pool_*` telemetry.
    pub pool: OnceLock<Arc<Executor>>,
    /// The durable session store, installed by
    /// [`crate::persist::open_store`] when the server runs with a data
    /// directory. Absent in the default in-memory mode.
    pub store: OnceLock<Arc<SessionStore>>,
}

impl AppState {
    /// Builds the state for a graph: runs the `O(N)` precomputation and
    /// sizes the cache per `config`.
    pub fn new(graph: DiGraph, config: ServeConfig) -> Self {
        let precomputation = GlobalPrecomputation::compute(&graph);
        AppState {
            graph,
            precomputation,
            global_scores: OnceLock::new(),
            sessions: Mutex::new(HashMap::new()),
            next_session_id: AtomicU64::new(1),
            cache: ShardedCache::new(config.cache_entries),
            metrics: Metrics::new(),
            config,
            pool: OnceLock::new(),
            store: OnceLock::new(),
        }
    }

    /// Snapshot of the serving pool's lifetime telemetry, if a server has
    /// installed its executor.
    pub fn pool_stats(&self) -> Option<ExecStats> {
        self.pool.get().map(|exec| exec.stats())
    }

    /// Locks the session table, recovering from a poisoned lock (session
    /// state is only mutated under the per-session lock).
    pub fn lock_sessions(
        &self,
    ) -> std::sync::MutexGuard<'_, HashMap<u64, Arc<Mutex<ServerSession>>>> {
        self.sessions.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Open session count.
    pub fn session_count(&self) -> usize {
        self.lock_sessions().len()
    }
}
