//! Shared service state: the engine router, the metrics registry, and
//! the serving configuration.
//!
//! Everything *per graph* — precomputation, the result cache, warm
//! sessions, durable-store glue — lives in [`approxrank_engine::Engine`];
//! the state here owns one [`Router`] over those engines plus the
//! transport-level registries the handlers share.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use approxrank_engine::{BatchConfig, CacheStats, CachedResult, EngineConfig};
use approxrank_exec::{ExecStats, Executor};
use approxrank_graph::{DiGraph, PartitionStrategy};
use approxrank_rpc::RemoteConfig;
use approxrank_store::FsyncPolicy;
use approxrank_trace::{logging, TraceRing};

use crate::metrics::Metrics;
use crate::router::Router;
use crate::tenant::TenantGovernor;

/// File name of the slow-query log under the data dir.
pub const SLOW_LOG_FILE: &str = "slow_requests.jsonl";

/// Tunables for [`crate::Server`], mirrored by the `subrank serve` flags.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7878` (`:0` for an ephemeral
    /// port).
    pub addr: String,
    /// Total worker lanes handling connections (including the thread
    /// that calls `serve`); 1 means a single serving lane.
    pub threads: usize,
    /// Total result-cache entries across all shards.
    pub cache_entries: usize,
    /// Largest accepted request body, in bytes.
    pub max_body: usize,
    /// Per-connection read/write timeout.
    pub request_timeout: Duration,
    /// Connections queued between the acceptor and the workers before
    /// new arrivals are shed with 503.
    pub accept_queue: usize,
    /// When set, sessions are made durable: lifecycle events go to a WAL
    /// in this directory, a background thread snapshots periodically, and
    /// boot recovers whatever a previous process left behind.
    pub data_dir: Option<PathBuf>,
    /// WAL fsync policy (only meaningful with `data_dir`).
    pub fsync: FsyncPolicy,
    /// How often the background snapshotter folds the WAL into a fresh
    /// snapshot (only meaningful with `data_dir`).
    pub snapshot_interval: Duration,
    /// Engines the graph is partitioned across. 1 (the default) serves
    /// the whole graph from one engine, exactly as before sharding
    /// existed.
    pub shards: usize,
    /// How nodes are assigned to shards (only meaningful with
    /// `shards > 1`).
    pub partition: PartitionStrategy,
    /// Slow-query threshold in milliseconds: a finished request whose
    /// wall-clock time is `>=` this is counted in `/metrics` and (with
    /// `data_dir`) appended to [`SLOW_LOG_FILE`]. `None` disables the
    /// slow log; `Some(0)` captures every request.
    pub slow_ms: Option<u64>,
    /// How many completed request traces `GET /debug/requests` keeps.
    pub trace_ring: usize,
    /// Remote mode: one entry per shard, each a replica address list
    /// (`host:port`). Empty (the default) keeps every engine in-process.
    /// When non-empty, `shards`/`data_dir` are ignored — the shard
    /// servers own partitioning-by-assignment and persistence.
    pub remote_shards: Vec<Vec<String>>,
    /// RPC transport tunables (timeouts, retry budget, health-check
    /// cadence). Only meaningful with `remote_shards`.
    pub rpc: RemoteConfig,
    /// Coalescing knobs for every in-process engine's
    /// [`approxrank_engine::BatchConfig`]: how long a keyword gather
    /// window stays open and how many personalization columns one
    /// multi-vector solve carries.
    pub batch: BatchConfig,
    /// Per-tenant concurrency quota for the solving (`POST`) endpoints.
    /// `0` (the default) disables admission control entirely — no
    /// governor is built and no request is ever queued or shed.
    pub tenant_quota: usize,
    /// Requests a tenant may queue while over quota before further
    /// arrivals are shed immediately with 429 (only meaningful with
    /// `tenant_quota > 0`). A queued request waits at most
    /// `request_timeout` for a slot.
    pub tenant_queue: usize,
    /// Page labels for `POST /keyword` keyword resolution: a text file
    /// with one label per line, line `i` naming page `i`. Without it,
    /// keywords match against generated `page-<i>` labels.
    pub labels: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".into(),
            threads: 2,
            cache_entries: 4096,
            max_body: 1 << 20,
            request_timeout: Duration::from_millis(5_000),
            accept_queue: 128,
            data_dir: None,
            fsync: FsyncPolicy::Interval(Duration::from_millis(100)),
            snapshot_interval: Duration::from_secs(30),
            shards: 1,
            partition: PartitionStrategy::Range,
            slow_ms: None,
            trace_ring: 128,
            remote_shards: Vec::new(),
            rpc: RemoteConfig::default(),
            batch: BatchConfig::default(),
            tenant_quota: 0,
            tenant_queue: 16,
            labels: None,
        }
    }
}

/// Cache key for one `POST /keyword` answer. The graph epoch is part of
/// the key, so a live mutation implicitly invalidates every earlier
/// keyword answer — stale entries age out of the LRU instead of being
/// chased down.
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
pub struct KeywordKey {
    /// The ranked membership (sorted, deduped).
    pub members: Vec<u32>,
    /// The resolved base set (sorted, deduped global ids).
    pub base: Vec<u32>,
    /// `f64::to_bits` of the damping factor.
    pub damping_bits: u64,
    /// `f64::to_bits` of the convergence tolerance.
    pub tolerance_bits: u64,
    /// Graph epoch the answer was solved under.
    pub epoch: u64,
}

struct KeywordCacheInner {
    map: HashMap<KeywordKey, (u64, (CachedResult, usize))>,
    stamp: u64,
    hits: u64,
    misses: u64,
}

/// A small LRU for served keyword answers. The engine's result cache
/// cannot hold these — its key has no room for a base set — so the serve
/// layer owns them: same capacity philosophy, approximate LRU (evict the
/// least-recently-stamped entry on overflow).
pub struct KeywordCache {
    capacity: usize,
    inner: Mutex<KeywordCacheInner>,
}

impl KeywordCache {
    /// A cache holding at most `capacity` keyword answers.
    pub fn new(capacity: usize) -> KeywordCache {
        KeywordCache {
            capacity: capacity.max(1),
            inner: Mutex::new(KeywordCacheInner {
                map: HashMap::new(),
                stamp: 0,
                hits: 0,
                misses: 0,
            }),
        }
    }

    /// Looks up `key`, refreshing its recency on a hit. The cached value
    /// carries the shard count of the original answer so a hit's response
    /// body differs from the solve only in its `"cached"` flag.
    pub fn get(&self, key: &KeywordKey) -> Option<(CachedResult, usize)> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.stamp += 1;
        let stamp = inner.stamp;
        match inner.map.get_mut(key) {
            Some((at, result)) => {
                *at = stamp;
                let result = result.clone();
                inner.hits += 1;
                Some(result)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Inserts an answer, evicting the least-recently-used entry when
    /// full.
    pub fn insert(&self, key: KeywordKey, result: (CachedResult, usize)) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.stamp += 1;
        let stamp = inner.stamp;
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
            if let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, (at, _))| *at)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&oldest);
            }
        }
        inner.map.insert(key, (stamp, result));
    }

    /// `(hits, misses, entries)` for `/metrics`.
    pub fn stats(&self) -> (u64, u64, usize) {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        (inner.hits, inner.misses, inner.map.len())
    }
}

/// Everything the request handlers share. One instance per server,
/// behind an `Arc`.
pub struct AppState {
    /// The engine router: one global engine, or one engine per shard.
    pub router: Router,
    /// Counters and trace aggregates behind `/metrics`.
    pub metrics: Metrics,
    /// The configuration the server was started with.
    pub config: ServeConfig,
    /// The worker-lane executor, installed by the server at startup so
    /// `/metrics` can expose `pool_*` telemetry.
    pub pool: OnceLock<Arc<Executor>>,
    /// The last N completed request traces, served by
    /// `GET /debug/requests`.
    pub traces: TraceRing,
    /// Append handle for the slow-query JSONL log (open only when both
    /// `slow_ms` and `data_dir` are configured).
    pub slow_log: Option<Mutex<File>>,
    /// Page labels for keyword resolution, line `i` naming page `i`
    /// (`None` when no labels file was configured — keywords then match
    /// generated `page-<i>` labels).
    pub labels: Option<Vec<String>>,
    /// Served `POST /keyword` answers (the engine's result cache cannot
    /// key a base set).
    pub keyword_cache: KeywordCache,
    /// Per-tenant admission control, present only with
    /// [`ServeConfig::tenant_quota`] `> 0`.
    pub tenants: Option<TenantGovernor>,
}

impl AppState {
    /// Builds the state for a graph: partitions it per `config` (a shard
    /// count of 1 keeps the whole graph on one engine), or — when
    /// `remote_shards` is set — fronts out-of-process shard servers
    /// instead. Only the remote wiring can fail (misconfigured replica
    /// lists, a reachable replica serving the wrong graph).
    pub fn new(graph: DiGraph, config: ServeConfig) -> Result<Self, String> {
        let labels = load_labels(&config, graph.num_nodes())?;
        let engine_config = EngineConfig {
            cache_entries: config.cache_entries,
            fsync: config.fsync,
            batch: config.batch.clone(),
            ..EngineConfig::default()
        };
        let router = if !config.remote_shards.is_empty() {
            Router::remote(
                &graph,
                config.partition,
                &config.remote_shards,
                config.rpc.clone(),
            )?
        } else if config.shards <= 1 {
            Router::single(graph, engine_config)
        } else {
            Router::sharded(&graph, config.shards, config.partition, engine_config)
        };
        let slow_log = open_slow_log(&config);
        let tenants = (config.tenant_quota > 0).then(|| {
            TenantGovernor::new(
                config.tenant_quota,
                config.tenant_queue,
                config.request_timeout,
            )
        });
        Ok(AppState {
            router,
            metrics: Metrics::new(),
            traces: TraceRing::new(config.trace_ring),
            slow_log,
            labels,
            keyword_cache: KeywordCache::new(config.cache_entries),
            tenants,
            config,
            pool: OnceLock::new(),
        })
    }

    /// Snapshot of the serving pool's lifetime telemetry, if a server has
    /// installed its executor.
    pub fn pool_stats(&self) -> Option<ExecStats> {
        self.pool.get().map(|exec| exec.stats())
    }

    /// Result-cache counters summed across every engine.
    pub fn cache_stats(&self) -> CacheStats {
        self.router.cache_stats()
    }

    /// Open session count across every engine.
    pub fn session_count(&self) -> usize {
        self.router.session_count()
    }
}

/// Reads the labels file when one is configured: one label per line,
/// line `i` naming page `i`. A missing or short/long file is a hard boot
/// error — serving keyword answers against misaligned labels would be
/// silently wrong, the one failure mode worse than not booting.
fn load_labels(config: &ServeConfig, nodes: usize) -> Result<Option<Vec<String>>, String> {
    let Some(path) = &config.labels else {
        return Ok(None);
    };
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read labels file {}: {e}", path.display()))?;
    let labels: Vec<String> = text.lines().map(str::to_string).collect();
    if labels.len() != nodes {
        return Err(format!(
            "labels file {} has {} lines but the graph has {} nodes",
            path.display(),
            labels.len(),
            nodes
        ));
    }
    Ok(Some(labels))
}

/// Opens the slow-query log in append mode when the config asks for one.
/// Failures degrade to "no slow log" with a warning — observability
/// must never stop the service from booting.
fn open_slow_log(config: &ServeConfig) -> Option<Mutex<File>> {
    let dir = config.data_dir.as_ref()?;
    config.slow_ms?;
    if let Err(e) = std::fs::create_dir_all(dir) {
        logging::log(
            logging::Level::Warn,
            "serve",
            &format!(
                "cannot create data dir {} for the slow log: {e}",
                dir.display()
            ),
        );
        return None;
    }
    match OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join(SLOW_LOG_FILE))
    {
        Ok(file) => Some(Mutex::new(file)),
        Err(e) => {
            logging::log(
                logging::Level::Warn,
                "serve",
                &format!("cannot open slow-query log under {}: {e}", dir.display()),
            );
            None
        }
    }
}
