//! End-to-end tests: a real server on an ephemeral port, driven over TCP
//! by the crate's own [`Client`].

use std::sync::Arc;
use std::time::Duration;

use approxrank_core::{ApproxRank, SubgraphRanker};
use approxrank_graph::{DiGraph, NodeSet, Subgraph};
use approxrank_pagerank::PageRankOptions;
use approxrank_serve::{AppState, Client, ServeConfig, ServeSummary, Server, ServerHandle};

/// A graph with enough structure for multi-page subgraphs.
fn test_graph() -> DiGraph {
    let n = 200u32;
    let mut edges = Vec::new();
    for i in 0..n {
        edges.push((i, (i + 1) % n));
        edges.push((i, (i * 7 + 3) % n));
        if i % 5 == 0 {
            edges.push((i, (i + n / 2) % n));
        }
    }
    DiGraph::from_edges(n as usize, &edges)
}

struct Running {
    handle: ServerHandle,
    state: Arc<AppState>,
    thread: Option<std::thread::JoinHandle<ServeSummary>>,
}

impl Running {
    fn start(config: ServeConfig) -> Running {
        let server = Server::bind(test_graph(), config).expect("bind ephemeral port");
        let handle = server.handle();
        let state = server.state();
        let thread = std::thread::spawn(move || server.serve());
        Running {
            handle,
            state,
            thread: Some(thread),
        }
    }

    fn client(&self) -> Client {
        Client::new(&self.handle.addr().to_string()).with_timeout(Duration::from_secs(5))
    }

    fn stop(&mut self) -> ServeSummary {
        self.handle.shutdown();
        self.thread
            .take()
            .expect("still running")
            .join()
            .expect("serve thread panicked")
    }
}

impl Drop for Running {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.stop();
        }
    }
}

fn config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        request_timeout: Duration::from_millis(2_000),
        ..ServeConfig::default()
    }
}

#[test]
fn healthz_stats_metrics() {
    let mut server = Running::start(config());
    let mut client = server.client();

    let r = client.get("/healthz").unwrap();
    assert_eq!(r.status, 200);
    assert_eq!(
        r.json().unwrap().get("status").unwrap().as_str(),
        Some("ok")
    );

    let r = client.get("/stats").unwrap();
    assert_eq!(r.status, 200);
    let stats = r.json().unwrap();
    assert_eq!(
        stats.get("graph").unwrap().get("nodes").unwrap().as_u64(),
        Some(200)
    );

    let r = client.get("/metrics").unwrap();
    assert_eq!(r.status, 200);
    let text = r.text();
    assert!(text.contains("approxrank_uptime_seconds"), "{text}");
    assert!(
        text.contains("approxrank_requests_total{endpoint=\"healthz\"} 1"),
        "{text}"
    );
    // The serving work pool's telemetry is exposed.
    assert!(text.contains("pool_threads 2"), "{text}");

    let summary = server.stop();
    assert!(summary.requests >= 3);
    assert!(summary.connections >= 1);
}

#[test]
fn rank_is_bit_identical_to_offline_and_cache_hits() {
    let mut server = Running::start(config());
    let mut client = server.client();

    let body = r#"{"members":[10,11,12,13,14,15],"tolerance":1e-8}"#;
    let first = client.post("/rank", body).unwrap();
    assert_eq!(first.status, 200, "{}", first.text());
    let v1 = first.json().unwrap();
    assert_eq!(v1.get("cached").unwrap().as_bool(), Some(false));

    // The offline reference: the same entry point the CLI runs.
    let graph = test_graph();
    let nodes = NodeSet::from_sorted(graph.num_nodes(), 10..16u32);
    let sub = Subgraph::extract(&graph, nodes);
    let offline = ApproxRank::new(PageRankOptions::paper().with_tolerance(1e-8)).rank(&graph, &sub);

    let mut served: Vec<(u64, f64)> = v1
        .get("scores")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|s| {
            (
                s.get("page").unwrap().as_u64().unwrap(),
                s.get("score").unwrap().as_f64().unwrap(),
            )
        })
        .collect();
    served.sort_by_key(|&(p, _)| p);
    assert_eq!(served.len(), offline.local_scores.len());
    for (i, &(page, score)) in served.iter().enumerate() {
        assert_eq!(page, (10 + i) as u64);
        assert_eq!(
            score.to_bits(),
            offline.local_scores[i].to_bits(),
            "page {page}: served {score} != offline {}",
            offline.local_scores[i]
        );
    }

    // Same request again: cache hit, identical payload.
    let second = client.post("/rank", body).unwrap();
    let v2 = second.json().unwrap();
    assert_eq!(v2.get("cached").unwrap().as_bool(), Some(true));
    assert_eq!(v1.get("scores"), v2.get("scores"));
    assert_eq!(server.state.cache_stats().hits, 1);
    server.stop();
}

#[test]
fn session_warm_start_over_http() {
    let mut server = Running::start(config());
    let mut client = server.client();

    let created = client
        .post(
            "/session",
            r#"{"members":[0,1,2,3,4,5,6,7],"tolerance":1e-10}"#,
        )
        .unwrap();
    assert_eq!(created.status, 200, "{}", created.text());
    let id = created.json().unwrap().get("id").unwrap().as_u64().unwrap();

    let updated = client
        .post(
            &format!("/session/{id}/update"),
            r#"{"add":[8,9],"remove":[0]}"#,
        )
        .unwrap();
    assert_eq!(updated.status, 200, "{}", updated.text());
    let v = updated.json().unwrap();
    assert_eq!(v.get("warm_start").unwrap().as_bool(), Some(true));
    assert_eq!(v.get("members").unwrap().as_u64(), Some(9));

    // The warm scores agree with a cold solve of the final membership to
    // solver tolerance.
    let graph = test_graph();
    let nodes = NodeSet::from_sorted(graph.num_nodes(), 1..10u32);
    let sub = Subgraph::extract(&graph, nodes);
    let cold = ApproxRank::new(PageRankOptions::paper().with_tolerance(1e-10)).rank(&graph, &sub);
    let mut warm: Vec<(u64, f64)> = v
        .get("scores")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|s| {
            (
                s.get("page").unwrap().as_u64().unwrap(),
                s.get("score").unwrap().as_f64().unwrap(),
            )
        })
        .collect();
    warm.sort_by_key(|&(p, _)| p);
    for (i, &(page, score)) in warm.iter().enumerate() {
        assert_eq!(page, (1 + i) as u64);
        assert!(
            (score - cold.local_scores[i]).abs() < 1e-7,
            "page {page}: warm {score} vs cold {}",
            cold.local_scores[i]
        );
    }

    let got = client.get(&format!("/session/{id}")).unwrap();
    assert_eq!(got.status, 200);
    let deleted = client.delete(&format!("/session/{id}")).unwrap();
    assert_eq!(deleted.status, 200);
    let gone = client.get(&format!("/session/{id}")).unwrap();
    assert_eq!(gone.status, 404);
    server.stop();
}

#[test]
fn error_paths_over_http() {
    let mut server = Running::start(ServeConfig {
        max_body: 512,
        ..config()
    });
    let mut client = server.client();

    // Malformed JSON → 400 with an error envelope.
    let r = client.post("/rank", "{oops").unwrap();
    assert_eq!(r.status, 400);
    assert!(r.json().unwrap().get("error").is_some());

    // Out-of-range member → 400.
    let r = client.post("/rank", r#"{"members":[12345]}"#).unwrap();
    assert_eq!(r.status, 400);

    // Unknown route → 404.
    let r = client.get("/nope").unwrap();
    assert_eq!(r.status, 404);

    // Oversized body → 413 and the server closes the connection.
    let huge = format!(
        r#"{{"members":[{}]}}"#,
        (0..200)
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(",")
    );
    assert!(huge.len() > 512);
    let r = client.post("/rank", &huge).unwrap();
    assert_eq!(r.status, 413);
    assert!(r.closed);

    // The client transparently reconnects afterwards.
    let r = client.get("/healthz").unwrap();
    assert_eq!(r.status, 200);
    server.stop();
}

#[test]
fn concurrent_clients() {
    let mut server = Running::start(ServeConfig {
        threads: 4,
        ..config()
    });
    let addr = server.handle.addr().to_string();

    let workers: Vec<_> = (0..8)
        .map(|w| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::new(&addr).with_timeout(Duration::from_secs(10));
                for i in 0..10 {
                    // Each worker walks its 5 keys twice: the second lap
                    // is guaranteed cache hits.
                    let lo = (w * 10 + i % 5) % 150;
                    let body = format!(
                        r#"{{"members":[{},{},{}],"tolerance":1e-7}}"#,
                        lo,
                        lo + 1,
                        lo + 2
                    );
                    let r = client.post("/rank", &body).expect("request");
                    assert_eq!(r.status, 200, "{}", r.text());
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }

    let stats = server.state.cache_stats();
    // 80 requests over 40 keys, each worker revisiting its own keys: the
    // second lap is all hits.
    assert_eq!(stats.hits + stats.misses, 80);
    assert!(stats.hits >= 40, "{stats:?}");
    let summary = server.stop();
    assert_eq!(summary.requests, 80);
}

#[test]
fn graceful_shutdown_completes_in_flight_requests() {
    let mut server = Running::start(config());
    let mut client = server.client();
    assert_eq!(client.get("/healthz").unwrap().status, 200);

    // Shut down while a keep-alive connection is idle: serve() must
    // return promptly (the idle connection cannot hold the drain).
    let started = std::time::Instant::now();
    let summary = server.stop();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "drain took {:?}",
        started.elapsed()
    );
    assert!(summary.requests >= 1);

    // And the port no longer answers.
    assert!(client.get("/healthz").is_err());
}

#[test]
fn keep_alive_reuses_one_connection() {
    let mut server = Running::start(config());
    let mut client = server.client();
    for _ in 0..5 {
        assert_eq!(client.get("/healthz").unwrap().status, 200);
    }
    assert_eq!(server.state.metrics.total_connections(), 1);
    server.stop();
}
