//! Durability integration tests: sessions created through the HTTP
//! routing layer must survive a process boundary — via a snapshot, via
//! WAL replay alone, and via a real server's graceful-shutdown snapshot —
//! with `GET /session/{id}` responses byte-identical across the restart.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use approxrank_graph::DiGraph;
use approxrank_serve::handlers::route as route_with_obs;
use approxrank_serve::http::{Request, Response};
use approxrank_serve::persist;
use approxrank_serve::{AppState, Client, FsyncPolicy, ServeConfig, Server};

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "approxrank-serve-persist-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A graph with enough structure for multi-page subgraphs.
fn test_graph() -> DiGraph {
    let n = 60u32;
    let mut edges = Vec::new();
    for i in 0..n {
        edges.push((i, (i + 1) % n));
        edges.push((i, (i * 7 + 3) % n));
        if i % 5 == 0 {
            edges.push((i, (i + n / 2) % n));
        }
    }
    DiGraph::from_edges(n as usize, &edges)
}

fn config() -> ServeConfig {
    ServeConfig {
        fsync: FsyncPolicy::Always,
        ..ServeConfig::default()
    }
}

fn state() -> AppState {
    AppState::new(test_graph(), config()).unwrap()
}

fn post(path: &str, body: &str) -> Request {
    Request {
        method: "POST".into(),
        path: path.into(),
        headers: vec![],
        body: body.as_bytes().to_vec(),
    }
}

fn get(path: &str) -> Request {
    Request {
        method: "GET".into(),
        path: path.into(),
        headers: vec![],
        body: vec![],
    }
}

fn route(state: &AppState, request: &Request) -> (approxrank_serve::metrics::Endpoint, Response) {
    route_with_obs(state, request, approxrank_trace::null())
}

fn ok(state: &AppState, request: &Request) -> Response {
    let (_, response) = route(state, request);
    assert_eq!(
        response.status,
        200,
        "{} {}: {}",
        request.method,
        request.path,
        String::from_utf8_lossy(&response.body)
    );
    response
}

/// Creates two sessions and mutates the first, mirroring a small live
/// workload. Returns the ids.
fn seed_sessions(state: &AppState) -> Vec<u64> {
    ok(state, &post("/session", r#"{"members": [1, 2, 3, 4]}"#));
    ok(
        state,
        &post("/session", r#"{"members": [10, 11, 12], "damping": 0.9}"#),
    );
    ok(
        state,
        &post("/session/1/update", r#"{"add": [5, 6], "remove": [2]}"#),
    );
    vec![1, 2]
}

#[test]
fn snapshot_restart_roundtrip_is_byte_identical() {
    let dir = tempdir("snapshot");
    let old = state();
    persist::open_store(&old, &dir).expect("open fresh store");
    let ids = seed_sessions(&old);
    let before: Vec<Vec<u8>> = ids
        .iter()
        .map(|id| ok(&old, &get(&format!("/session/{id}"))).body)
        .collect();
    persist::snapshot_now(&old).expect("snapshot");
    drop(old);

    let new = state();
    let summary = persist::open_store(&new, &dir).expect("recover");
    assert_eq!(summary.sessions, ids.len());
    assert_eq!(summary.skipped, 0);
    for (id, body) in ids.iter().zip(&before) {
        let after = ok(&new, &get(&format!("/session/{id}")));
        assert_eq!(
            &after.body, body,
            "GET /session/{id} changed across restart"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn wal_replay_alone_recovers_sessions() {
    let dir = tempdir("wal-only");
    let old = state();
    persist::open_store(&old, &dir).expect("open fresh store");
    let ids = seed_sessions(&old);
    // Close the second session; replay must forget it.
    let (_, response) = route(
        &old,
        &Request {
            method: "DELETE".into(),
            path: "/session/2".into(),
            headers: vec![],
            body: vec![],
        },
    );
    assert_eq!(response.status, 200);
    let before = ok(&old, &get("/session/1")).body;
    // No snapshot: recovery must come entirely from the WAL.
    drop(old);

    let new = state();
    let summary = persist::open_store(&new, &dir).expect("recover");
    assert_eq!(summary.sessions, 1);
    let after = ok(&new, &get("/session/1"));
    assert_eq!(after.body, before);
    let (_, gone) = route(&new, &get("/session/2"));
    assert_eq!(gone.status, 404, "closed session must stay closed");
    let _ = ids;
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn recovered_sessions_keep_serving_updates_identically() {
    // The same mutation applied to a recovered session and to one that
    // never left memory must produce byte-identical responses: restore
    // hands the warm solver exactly the scores it had before the crash.
    let dir = tempdir("warm");
    let control = state();
    let old = state();
    persist::open_store(&old, &dir).expect("open fresh store");
    seed_sessions(&control);
    seed_sessions(&old);
    persist::snapshot_now(&old).expect("snapshot");
    drop(old);

    let recovered = state();
    persist::open_store(&recovered, &dir).expect("recover");
    let update = post("/session/1/update", r#"{"add": [20, 21], "remove": [3]}"#);
    let from_control = ok(&control, &update);
    let from_recovered = ok(&recovered, &update);
    assert_eq!(from_recovered.body, from_control.body);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn fresh_ids_continue_past_recovered_ones() {
    let dir = tempdir("ids");
    let old = state();
    persist::open_store(&old, &dir).expect("open fresh store");
    seed_sessions(&old);
    persist::snapshot_now(&old).expect("snapshot");
    drop(old);

    let new = state();
    persist::open_store(&new, &dir).expect("recover");
    let created = ok(&new, &post("/session", r#"{"members": [30, 31]}"#));
    let body = String::from_utf8(created.body).unwrap();
    assert!(
        body.contains("\"id\":3") || body.contains("\"id\": 3"),
        "expected the next id after the recovered ones, got {body}"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn metrics_expose_store_counters() {
    let dir = tempdir("metrics");
    let state = state();
    persist::open_store(&state, &dir).expect("open fresh store");
    seed_sessions(&state);
    persist::snapshot_now(&state).expect("snapshot");
    let body = String::from_utf8(ok(&state, &get("/metrics")).body).unwrap();
    for line in [
        "store_wal_appends ",
        "store_wal_bytes ",
        "store_fsyncs ",
        "store_snapshots 1",
        "store_snapshot_ms ",
        "store_recovered_sessions 0",
        "store_truncated_records 0",
        "store_wal_errors ",
    ] {
        assert!(body.contains(line), "missing `{line}` in:\n{body}");
    }
    // 2 creates + 3 solves + 1 add + 1 remove.
    assert!(body.contains("store_wal_appends 7"), "{body}");
    let _ = fs::remove_dir_all(&dir);
}

/// Ranks the same subgraph on a state and returns the response body.
fn rank_body(state: &AppState) -> Vec<u8> {
    ok(
        state,
        &post("/rank", r#"{"members":[1,2,3,4,5],"tolerance":1e-9}"#),
    )
    .body
}

#[test]
fn mutation_wal_replay_converges_to_same_epoch_and_ranks() {
    // No snapshot and no graceful close: everything the restarted
    // process knows about the mutations comes from WAL replay, exactly
    // the kill -9 recovery path (fsync is Always in `config()`).
    let dir = tempdir("mutate-wal");
    let old = state();
    persist::open_store(&old, &dir).expect("open fresh store");
    ok(
        &old,
        &post(
            "/graph/edges",
            r#"{"insert":[[2,5],[4,1]],"delete":[[1,2]]}"#,
        ),
    );
    ok(&old, &post("/graph/edges", r#"{"insert":[[5,3]]}"#));
    assert_eq!(old.router.graph_epoch(), 2);
    let before = rank_body(&old);
    drop(old);

    let new = state();
    persist::open_store(&new, &dir).expect("recover");
    assert_eq!(new.router.graph_epoch(), 2, "replay must reach the epoch");
    assert_eq!(
        rank_body(&new),
        before,
        "post-replay /rank must be byte-identical"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn mutations_split_across_snapshot_and_wal_tail_replay_once() {
    // One mutation lands in the snapshot prefix, one in the WAL tail;
    // the epoch guard must apply each exactly once.
    let dir = tempdir("mutate-split");
    let old = state();
    persist::open_store(&old, &dir).expect("open fresh store");
    ok(&old, &post("/graph/edges", r#"{"insert":[[2,5]]}"#));
    seed_sessions(&old);
    persist::snapshot_now(&old).expect("snapshot");
    ok(&old, &post("/graph/edges", r#"{"delete":[[1,2]]}"#));
    let before_rank = rank_body(&old);
    let before_session = ok(&old, &get("/session/1")).body;
    drop(old);

    let new = state();
    persist::open_store(&new, &dir).expect("recover");
    assert_eq!(new.router.graph_epoch(), 2);
    let summary = new.router.summary();
    // 132 base edges + (2,5) - (1,2).
    assert_eq!(summary.edges, 132);
    assert_eq!(rank_body(&new), before_rank);
    assert_eq!(ok(&new, &get("/session/1")).body, before_session);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn sharded_mutation_replay_converges_per_shard() {
    // Two shards share one delta; each engine WAL-logs the batch into
    // its own shard store, and replay must stay idempotent across them.
    let dir = tempdir("mutate-sharded");
    let sharded = || {
        AppState::new(
            test_graph(),
            ServeConfig {
                shards: 2,
                fsync: FsyncPolicy::Always,
                ..ServeConfig::default()
            },
        )
        .unwrap()
    };
    let old = sharded();
    persist::open_store(&old, &dir).expect("open fresh store");
    ok(
        &old,
        &post("/graph/edges", r#"{"insert":[[2,40]],"delete":[[40,41]]}"#),
    );
    let before_rank = rank_body(&old);
    let before_far = ok(
        &old,
        &post("/rank", r#"{"members":[39,40,41],"tolerance":1e-9}"#),
    )
    .body;
    drop(old);

    let new = sharded();
    persist::open_store(&new, &dir).expect("recover");
    assert_eq!(new.router.graph_epoch(), 1, "one shared epoch, not two");
    assert_eq!(rank_body(&new), before_rank);
    let after_far = ok(
        &new,
        &post("/rank", r#"{"members":[39,40,41],"tolerance":1e-9}"#),
    )
    .body;
    assert_eq!(after_far, before_far);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn real_server_restart_preserves_sessions() {
    let dir = tempdir("server");
    let serve_config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        request_timeout: Duration::from_millis(2_000),
        data_dir: Some(dir.clone()),
        fsync: FsyncPolicy::Always,
        ..ServeConfig::default()
    };

    let before;
    {
        let server = Server::bind(test_graph(), serve_config.clone()).expect("bind");
        let handle = server.handle();
        let thread = std::thread::spawn(move || server.serve());
        let mut client =
            Client::new(&handle.addr().to_string()).with_timeout(Duration::from_secs(5));
        let created = client
            .post("/session", r#"{"members": [7, 8, 9, 10]}"#)
            .expect("create session");
        assert_eq!(created.status, 200);
        let updated = client
            .post("/session/1/update", r#"{"add": [11]}"#)
            .expect("update session");
        assert_eq!(updated.status, 200);
        before = client.get("/session/1").expect("inspect").body;
        handle.shutdown();
        thread.join().expect("serve thread");
    }

    let server = Server::bind(test_graph(), serve_config).expect("re-bind");
    let state: Arc<AppState> = server.state();
    assert_eq!(state.session_count(), 1, "session must survive the restart");
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.serve());
    let mut client = Client::new(&handle.addr().to_string()).with_timeout(Duration::from_secs(5));
    let after = client.get("/session/1").expect("inspect").body;
    assert_eq!(after, before, "GET /session/1 changed across restart");
    handle.shutdown();
    thread.join().expect("serve thread");
    let _ = fs::remove_dir_all(&dir);
}
