//! End-to-end remote-deployment tests: real RPC shard servers behind a
//! real HTTP router, compared byte-for-byte against local deployments.

use std::sync::Arc;
use std::time::Duration;

use approxrank_engine::{DeltaGraph, DeltaShardView, Engine, EngineConfig};
use approxrank_graph::{assign_shards, DiGraph, PartitionStrategy};
use approxrank_rpc::{RemoteConfig, ShardServer};
use approxrank_serve::{Client, ServeConfig, Server, ServerHandle};

const SHARDS: usize = 2;

/// A graph with enough structure for multi-page subgraphs. Range
/// partitioning into two shards puts 0..100 on shard 0, 100..200 on 1.
fn test_graph() -> DiGraph {
    let n = 200u32;
    let mut edges = Vec::new();
    for i in 0..n {
        edges.push((i, (i + 1) % n));
        edges.push((i, (i * 7 + 3) % n));
    }
    DiGraph::from_edges(n as usize, &edges)
}

/// Engine `k` of the partitioning, configured exactly as the CLI's
/// `--shard-server K` mode configures it.
fn shard_engine(k: usize) -> Arc<Engine> {
    let graph = test_graph();
    let assignment = Arc::new(assign_shards(&graph, SHARDS, PartitionStrategy::Range));
    let delta = Arc::new(DeltaGraph::new(Arc::new(graph)));
    let view = Arc::new(DeltaShardView::new(delta, assignment, k as u32));
    Arc::new(Engine::new_delta_shard(
        view,
        EngineConfig {
            first_session_id: k as u64 + 1,
            session_id_stride: SHARDS as u64,
            ..EngineConfig::default()
        },
    ))
}

/// One RPC shard server on an ephemeral port.
struct RunningShard {
    addr: String,
    server: Arc<ShardServer>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl RunningShard {
    fn start(k: usize) -> RunningShard {
        let server = Arc::new(
            ShardServer::bind("127.0.0.1:0", shard_engine(k), Duration::from_secs(3600))
                .expect("bind shard server"),
        );
        let addr = server.local_addr().expect("local addr").to_string();
        let thread = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.serve().expect("shard serve"))
        };
        RunningShard {
            addr,
            server,
            thread: Some(thread),
        }
    }

    fn stop(&mut self) {
        self.server.handle().shutdown();
        if let Some(thread) = self.thread.take() {
            thread.join().expect("shard serve thread panicked");
        }
    }
}

impl Drop for RunningShard {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One HTTP server (local or remote routing) on an ephemeral port.
struct RunningHttp {
    handle: ServerHandle,
    thread: Option<std::thread::JoinHandle<approxrank_serve::ServeSummary>>,
}

impl RunningHttp {
    fn start(config: ServeConfig) -> RunningHttp {
        let server = Server::bind(test_graph(), config).expect("bind http server");
        let handle = server.handle();
        let thread = std::thread::spawn(move || server.serve());
        RunningHttp {
            handle,
            thread: Some(thread),
        }
    }

    fn client(&self) -> Client {
        Client::new(&self.handle.addr().to_string()).with_timeout(Duration::from_secs(5))
    }

    fn stop(&mut self) {
        self.handle.shutdown();
        if let Some(thread) = self.thread.take() {
            thread.join().expect("http serve thread panicked");
        }
    }
}

impl Drop for RunningHttp {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.stop();
        }
    }
}

/// A remote-mode config over the given per-shard replica lists, with a
/// fast-failing retry budget so 503 paths don't slow the suite.
fn remote_config(replicas: Vec<Vec<String>>) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        request_timeout: Duration::from_millis(5_000),
        remote_shards: replicas,
        rpc: RemoteConfig {
            connect_timeout: Duration::from_millis(250),
            io_timeout: Duration::from_millis(2_000),
            attempts: 2,
            backoff_base: Duration::from_millis(5),
            health_interval: Duration::from_millis(50),
        },
        ..ServeConfig::default()
    }
}

#[test]
fn remote_two_shard_deployment_is_byte_identical_to_local() {
    let shard0 = RunningShard::start(0);
    let shard1 = RunningShard::start(1);
    let mut remote = RunningHttp::start(remote_config(vec![
        vec![shard0.addr.clone()],
        vec![shard1.addr.clone()],
    ]));
    let mut local_single = RunningHttp::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..ServeConfig::default()
    });
    let mut local_sharded = RunningHttp::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards: SHARDS,
        ..ServeConfig::default()
    });

    let mut remote_client = remote.client();
    let mut single_client = local_single.client();
    let mut sharded_client = local_sharded.client();

    // Each body is sent exactly once per deployment: a repeat would flip
    // the `"cached"` field wherever a result cache already held it.
    let resident = r#"{"members":[10,11,12,13,14],"tolerance":1e-8}"#;
    let cross = r#"{"members":[50,51,150,151],"tolerance":1e-8}"#;

    // Shard-resident: all three deployments answer byte-identically.
    let via_remote = remote_client.post("/rank", resident).unwrap();
    let via_single = single_client.post("/rank", resident).unwrap();
    let via_sharded = sharded_client.post("/rank", resident).unwrap();
    assert_eq!(via_remote.status, 200);
    assert_eq!(via_remote.body, via_single.body, "remote vs 1-shard local");
    assert_eq!(via_remote.body, via_sharded.body, "remote vs 2-shard local");

    // Cross-shard: the mixture merge runs router-side either way, so
    // remote matches the local sharded deployment byte-for-byte.
    let via_remote = remote_client.post("/rank", cross).unwrap();
    let via_sharded = sharded_client.post("/rank", cross).unwrap();
    assert_eq!(via_remote.status, 200);
    assert_eq!(
        via_remote.body, via_sharded.body,
        "cross-shard remote vs local"
    );

    // Sessions ride the same strided id space remotely.
    let created = remote_client
        .post("/session", r#"{"members":[100,101,102]}"#)
        .unwrap();
    assert_eq!(created.status, 200, "{}", created.text());
    let id = created
        .json()
        .unwrap()
        .get("id")
        .and_then(|v| v.as_u64())
        .unwrap();
    let fetched = remote_client.get(&format!("/session/{id}")).unwrap();
    assert_eq!(fetched.status, 200);
    let deleted = remote_client.delete(&format!("/session/{id}")).unwrap();
    assert_eq!(deleted.status, 200);

    local_sharded.stop();
    local_single.stop();
    remote.stop();
}

#[test]
fn replica_kill_fails_over_without_errors() {
    // Shard 0 runs two replicas; shard 1 runs one.
    let mut replica_a = RunningShard::start(0);
    let replica_b = RunningShard::start(0);
    let shard1 = RunningShard::start(1);
    let mut remote = RunningHttp::start(remote_config(vec![
        vec![replica_a.addr.clone(), replica_b.addr.clone()],
        vec![shard1.addr.clone()],
    ]));
    let mut client = remote.client();

    let body = r#"{"members":[20,21,22],"tolerance":1e-8}"#;
    let before = client.post("/rank", body).unwrap();
    assert_eq!(before.status, 200);

    // Kill one replica of shard 0 and keep hammering resident keys:
    // every request must still answer 200 with the same scores. (Only
    // the scores, not the whole body — the surviving replica's result
    // cache warms up during the loop and flips the `"cached"` field.)
    replica_a.stop();
    let scores_of = |r: &approxrank_serve::ClientResponse| {
        let v = r.json().unwrap();
        format!("{:?}", v.get("scores"))
    };
    let expected = scores_of(&before);
    for _ in 0..6 {
        let after = client.post("/rank", body).unwrap();
        assert_eq!(after.status, 200, "{}", after.text());
        assert_eq!(scores_of(&after), expected);
    }

    // /metrics records the transport's view of the incident.
    let metrics = client.get("/metrics").unwrap().text();
    assert!(metrics.contains("rpc_requests_total"), "{metrics}");
    assert!(metrics.contains("rpc_replicas{shard=\"0\"} 2"), "{metrics}");
    assert!(
        metrics.contains("rpc_replicas_healthy{shard=\"0\"} 1"),
        "{metrics}"
    );
    remote.stop();
}

#[test]
fn remote_mutation_broadcast_reaches_every_shard_and_replica() {
    // Shard 0 runs two replicas so the broadcast fan-out is visible.
    let replica_a = RunningShard::start(0);
    let replica_b = RunningShard::start(0);
    let shard1 = RunningShard::start(1);
    let mut remote = RunningHttp::start(remote_config(vec![
        vec![replica_a.addr.clone(), replica_b.addr.clone()],
        vec![shard1.addr.clone()],
    ]));
    let mut client = remote.client();

    // Apply one cross-shard mutation through the HTTP tier.
    let applied = client
        .post(
            "/graph/edges",
            r#"{"insert":[[50,150]],"delete":[[10,11]]}"#,
        )
        .unwrap();
    assert_eq!(applied.status, 200, "{}", applied.text());
    let v = applied.json().unwrap();
    assert_eq!(v.get("epoch").and_then(|x| x.as_u64()), Some(1));
    assert_eq!(v.get("inserted").and_then(|x| x.as_u64()), Some(1));
    assert_eq!(v.get("deleted").and_then(|x| x.as_u64()), Some(1));

    // Every shard server's own live graph carries the new epoch.
    for (name, shard) in [
        ("shard0/a", &replica_a),
        ("shard0/b", &replica_b),
        ("shard1", &shard1),
    ] {
        assert_eq!(shard.server.engine().graph_epoch(), 1, "{name}");
    }

    // Node inserts are refused cluster-wide: page 200 does not exist and
    // the boot-time assignment gives it no owner.
    let refused = client
        .post("/graph/edges", r#"{"insert":[[0,200]]}"#)
        .unwrap();
    assert_eq!(refused.status, 400, "{}", refused.text());

    // Post-mutation answers are byte-identical to a local sharded
    // deployment given the same batch.
    let mut local = RunningHttp::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards: SHARDS,
        ..ServeConfig::default()
    });
    let mut local_client = local.client();
    let applied = local_client
        .post(
            "/graph/edges",
            r#"{"insert":[[50,150]],"delete":[[10,11]]}"#,
        )
        .unwrap();
    assert_eq!(applied.status, 200, "{}", applied.text());
    for body in [
        r#"{"members":[9,10,11,12],"tolerance":1e-8}"#,
        r#"{"members":[49,50,150,151],"tolerance":1e-8}"#,
    ] {
        let via_remote = client.post("/rank", body).unwrap();
        let via_local = local_client.post("/rank", body).unwrap();
        assert_eq!(via_remote.status, 200, "{}", via_remote.text());
        assert_eq!(via_remote.body, via_local.body, "{body}");
    }
    local.stop();
    remote.stop();
}

#[test]
fn exhausted_retries_surface_as_503_with_a_trace_id() {
    // Both shards point at ports with nothing behind them.
    let dead = |_: usize| {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().to_string()
    };
    let mut remote = RunningHttp::start(remote_config(vec![vec![dead(0)], vec![dead(1)]]));
    let mut client = remote.client();

    let response = client
        .post("/rank", r#"{"members":[10,11,12],"tolerance":1e-8}"#)
        .unwrap();
    assert_eq!(response.status, 503, "{}", response.text());
    // The envelope carries the trace id — the operator's handle into
    // logs and /debug/requests — and names the exhausted budget.
    let id = response.request_id.clone().expect("X-Request-Id header");
    assert!(!id.is_empty());
    let text = response.text();
    assert!(text.contains("unreachable"), "{text}");

    // Session reads against dead shards are 503 too, never a bogus 404.
    let response = client.get("/session/1").unwrap();
    assert_eq!(response.status, 503, "{}", response.text());
    remote.stop();
}
