//! Telemetry contracts of the instrumented solvers: the disabled path
//! records nothing, the enabled path tells a consistent story about the
//! iteration it just ran.

use approxrank_graph::DiGraph;
use approxrank_pagerank::{
    pagerank, pagerank_adaptive_observed, pagerank_gauss_seidel_observed, pagerank_observed,
    PageRankOptions,
};
use approxrank_trace::{Event, NullObserver, Observer, Recorder};

fn fixture() -> DiGraph {
    let n = 50u32;
    let mut edges = Vec::new();
    for i in 0..n {
        edges.push((i, (i + 1) % n));
        edges.push((i, (i * 7 + 3) % n));
        if i % 5 == 0 {
            edges.push((i, 0));
        }
    }
    DiGraph::from_edges(n as usize, &edges)
}

fn opts() -> PageRankOptions {
    PageRankOptions::paper().with_tolerance(1e-10)
}

#[test]
fn noop_observer_adds_zero_events_and_identical_scores() {
    let g = fixture();
    let null = NullObserver;
    let obs: &dyn Observer = &null;
    assert!(!obs.enabled());
    // Spans, counters, gauges against the no-op observer are all inert.
    {
        let _span = obs.span("anything");
        obs.counter("c", 1);
        obs.gauge("g", 0.5);
    }
    let plain = pagerank(&g, &opts());
    let observed = pagerank_observed(&g, &opts(), approxrank_trace::null());
    assert_eq!(
        plain, observed,
        "the disabled path must not perturb results"
    );
}

#[test]
fn power_iteration_residuals_monotonically_non_increasing() {
    let g = fixture();
    let rec = Recorder::new();
    let result = pagerank_observed(&g, &opts(), &rec);
    assert!(result.converged);
    let residuals: Vec<f64> = rec
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::Iteration {
                solver, residual, ..
            } if solver == "power" => Some(*residual),
            _ => None,
        })
        .collect();
    assert_eq!(residuals.len(), result.iterations);
    for w in residuals.windows(2) {
        assert!(
            w[1] <= w[0] * (1.0 + 1e-12),
            "power-iteration residual rose: {} -> {}",
            w[0],
            w[1]
        );
    }
}

#[test]
fn iteration_events_are_sequential_and_span_brackets_them() {
    let g = fixture();
    let rec = Recorder::new();
    let result = pagerank_observed(&g, &opts(), &rec);
    let events = rec.events();
    assert!(matches!(&events[0], Event::SpanStart { name } if name == "power"));
    assert!(
        matches!(events.last().unwrap(), Event::SpanEnd { name, .. } if name == "power"),
        "span must close after the last iteration"
    );
    let mut expected = 0usize;
    for e in &events {
        if let Event::Iteration { iteration, .. } = e {
            assert_eq!(*iteration, expected);
            expected += 1;
        }
    }
    assert_eq!(expected, result.iterations);
}

#[test]
fn elapsed_wall_time_is_plausible() {
    let g = fixture();
    let result = pagerank(&g, &opts());
    // Generous sanity bounds only: positive, and far below a minute.
    assert!(result.elapsed.as_nanos() > 0);
    assert!(result.elapsed.as_secs() < 60);
}

#[test]
fn other_solvers_emit_their_own_solver_names() {
    let g = fixture();
    let rec = Recorder::new();
    pagerank_gauss_seidel_observed(&g, &opts(), &rec);
    pagerank_adaptive_observed(&g, &opts(), &rec);
    let events = rec.events();
    let has = |name: &str| {
        events
            .iter()
            .any(|e| matches!(e, Event::Iteration { solver, .. } if solver == name))
    };
    assert!(has("gauss_seidel"));
    assert!(has("adaptive"));
    assert!(
        events
            .iter()
            .any(|e| matches!(e, Event::Gauge { name, .. } if name == "frozen_fraction")),
        "adaptive reports its frozen fraction"
    );
}
