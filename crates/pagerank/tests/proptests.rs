//! Property-based tests for the PageRank engine.

use approxrank_graph::DiGraph;
use approxrank_pagerank::authority::{authority_flow, FlowModel};
use approxrank_pagerank::{
    pagerank, pagerank_multi, pagerank_with_start, PageRankOptions, WeightedDiGraph,
};
use proptest::prelude::*;

fn graphs() -> impl Strategy<Value = DiGraph> {
    (2usize..50).prop_flat_map(|n| {
        let edge = (0u32..n as u32, 0u32..n as u32);
        proptest::collection::vec(edge, 0..180).prop_map(move |es| DiGraph::from_edges(n, &es))
    })
}

fn tight() -> PageRankOptions {
    PageRankOptions::paper().with_tolerance(1e-12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scores_are_a_probability_distribution(g in graphs()) {
        let r = pagerank(&g, &tight());
        prop_assert!(r.converged);
        prop_assert!((r.total_mass() - 1.0).abs() < 1e-8);
        let n = g.num_nodes() as f64;
        for &s in &r.scores {
            // Teleport floor: every page keeps at least (1−ε)/N.
            prop_assert!(s >= 0.15 / n - 1e-12, "score {s} below teleport floor");
            prop_assert!(s < 1.0);
        }
    }

    #[test]
    fn fixed_point_is_stable(g in graphs()) {
        let r = pagerank(&g, &tight());
        let n = g.num_nodes();
        let p = vec![1.0 / n as f64; n];
        let again = pagerank_with_start(&g, &tight(), &p, &r.scores);
        prop_assert!(again.iterations <= 2, "restarting at the fixed point");
        for (a, b) in r.scores.iter().zip(&again.scores) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn parallel_equals_serial(g in graphs()) {
        let serial = pagerank(&g, &tight());
        for threads in [2usize, 5] {
            let par = pagerank(&g, &tight().with_threads(threads));
            prop_assert_eq!(serial.iterations, par.iterations);
            for (a, b) in serial.scores.iter().zip(&par.scores) {
                prop_assert_eq!(a, b, "bit-identical per-node summation");
            }
        }
    }

    #[test]
    fn more_in_links_never_hurt(g in graphs(), extra in 0u32..40) {
        // Adding an in-link to a page never decreases its score.
        let n = g.num_nodes();
        prop_assume!(n >= 3);
        let target = extra % n as u32;
        let source = (extra + 1) % n as u32;
        prop_assume!(source != target);
        prop_assume!(!g.has_edge(source, target));
        prop_assume!(g.out_degree(source) == 0); // dangling → gains a link
        let before = pagerank(&g, &tight());
        let mut edges: Vec<(u32, u32)> = g.edges().collect();
        edges.push((source, target));
        let g2 = DiGraph::from_edges(n, &edges);
        let after = pagerank(&g2, &tight());
        // The dangling page previously spread 1/n to `target`; now it sends
        // its whole mass there.
        prop_assert!(after.scores[target as usize] >= before.scores[target as usize] - 1e-9);
    }

    #[test]
    fn authority_flow_stochastic_matches_pagerank(g in graphs()) {
        let w = WeightedDiGraph::from_unweighted(&g);
        let n = g.num_nodes();
        let p = vec![1.0 / n as f64; n];
        let a = authority_flow(&w, &tight(), &p, FlowModel::Stochastic);
        let b = pagerank(&g, &tight());
        for (x, y) in a.scores.iter().zip(&b.scores) {
            prop_assert!((x - y).abs() < 1e-8, "{x} vs {y}");
        }
    }

    #[test]
    fn damping_sweep_converges(g in graphs(), damping in 0.05f64..0.95) {
        let o = PageRankOptions::default()
            .with_damping(damping)
            .with_tolerance(1e-10);
        let r = pagerank(&g, &o);
        prop_assert!(r.converged);
        prop_assert!((r.total_mass() - 1.0).abs() < 1e-7);
    }

    /// The batched-solving contract: a k-column multi-vector solve is
    /// *bitwise* identical to k sequential singleton solves of the same
    /// (personalization, start) pairs — on random graphs, random
    /// personalizations, and every thread width. This is what lets the
    /// engine coalesce concurrent keyword queries into one solve without
    /// changing a single answered byte.
    #[test]
    fn multi_vector_batch_is_bitwise_singleton(
        g in graphs(),
        k in 1usize..4,
        seed in 1u64..1_000_000,
    ) {
        let n = g.num_nodes();
        // k deterministic, distinct personalization distributions.
        let personalizations: Vec<Vec<f64>> = (0..k)
            .map(|j| {
                let w: Vec<f64> = (0..n)
                    .map(|v| ((seed.wrapping_mul(j as u64 + 1).wrapping_add(v as u64 * 31)) % 97 + 1) as f64)
                    .collect();
                let total: f64 = w.iter().sum();
                w.into_iter().map(|x| x / total).collect()
            })
            .collect();
        let starts = personalizations.clone();
        for threads in [1usize, 2, 5] {
            let o = PageRankOptions::paper()
                .with_tolerance(1e-10)
                .with_threads(threads);
            let batch = pagerank_multi(
                &g,
                &o,
                &personalizations,
                &starts,
                approxrank_trace::null(),
            );
            prop_assert_eq!(batch.len(), k);
            for (j, column) in batch.iter().enumerate() {
                let single = pagerank_with_start(&g, &o, &personalizations[j], &starts[j]);
                prop_assert_eq!(column.iterations, single.iterations, "column {} iterations", j);
                prop_assert_eq!(column.converged, single.converged);
                for (v, (a, b)) in column.scores.iter().zip(&single.scores).enumerate() {
                    prop_assert_eq!(
                        a.to_bits(), b.to_bits(),
                        "column {} node {} ({} threads): {} vs {}", j, v, threads, a, b
                    );
                }
            }
        }
    }
}
