//! Multi-vector power iteration: k score vectors per CSR pass.
//!
//! A batch of rank queries over the same graph epoch differ only in
//! their personalization/start vectors — the adjacency walk, the chunk
//! grid, and the dangling bookkeeping are identical. [`pagerank_multi`]
//! iterates a [`MultiVec`] of k columns through each pass, so one sweep
//! of the reverse adjacency feeds every column: the index arrays are
//! read once per iteration instead of k times, which is the
//! memory-bandwidth amortization the batching tier is built on.
//!
//! # Determinism
//!
//! Each column's floating-point arithmetic is *exactly* the sequence
//! the singleton solver ([`crate::pagerank_with_start_observed_on`])
//! performs: per-node work happens in index order inside fixed chunks,
//! per-column accumulators add in-neighbor contributions in adjacency
//! order, and per-chunk partials fold in ascending chunk order. So a
//! k-column solve is bitwise identical, column by column, to k
//! singleton solves — at every thread width, including k = 1. A column
//! whose residual drops below tolerance is frozen (its scores are
//! captured and it drops out of subsequent passes) without perturbing
//! the remaining columns.

use std::time::Instant;

use approxrank_exec::{Executor, Partition};
use approxrank_graph::DiGraph;
use approxrank_trace::{IterationEvent, Observer, Stopwatch};

use crate::{executor_for, DanglingMode, PageRankOptions, PageRankResult};

/// k vectors of length n in node-major (interleaved) layout:
/// `data[v * k + j]` is column `j`'s entry for node `v`. Interleaving
/// keeps all k entries of a node on one cache line, so the pull sweep's
/// adjacency reads amortize across columns.
#[derive(Clone, Debug, PartialEq)]
pub struct MultiVec {
    n: usize,
    k: usize,
    data: Vec<f64>,
}

impl MultiVec {
    /// A zero-filled n×k multi-vector.
    pub fn zeros(n: usize, k: usize) -> MultiVec {
        MultiVec {
            n,
            k,
            data: vec![0.0; n * k],
        }
    }

    /// Interleaves k length-n columns.
    ///
    /// # Panics
    /// Panics if any column's length differs from `n`.
    pub fn from_columns(n: usize, columns: &[impl AsRef<[f64]>]) -> MultiVec {
        let k = columns.len();
        let mut mv = MultiVec::zeros(n, k);
        for (j, col) in columns.iter().enumerate() {
            let col = col.as_ref();
            assert_eq!(col.len(), n, "column {j} length mismatch");
            for (v, &x) in col.iter().enumerate() {
                mv.data[v * k + j] = x;
            }
        }
        mv
    }

    /// Nodes per column.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Column count.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Column `j`'s entry for node `v`.
    pub fn get(&self, v: usize, j: usize) -> f64 {
        self.data[v * self.k + j]
    }

    /// De-interleaves column `j` into a contiguous vector.
    pub fn column(&self, j: usize) -> Vec<f64> {
        assert!(j < self.k, "column {j} out of range");
        (0..self.n).map(|v| self.data[v * self.k + j]).collect()
    }
}

/// Scales a node partition's boundaries by `k`, so the same chunk grid
/// addresses the interleaved flat buffer.
fn scaled(part: &Partition, k: usize) -> Partition {
    Partition::from_bounds(part.bounds().iter().map(|&b| b * k).collect())
}

/// Multi-vector power iteration on a caller-supplied executor: column
/// `j` solves `R_j = εAᵀR_j + (1−ε)P_j` from `starts[j]`, all columns
/// riding one adjacency sweep per iteration. Returns one
/// [`PageRankResult`] per column, each bitwise identical to the
/// singleton solve of the same (personalization, start) pair. Columns
/// converge independently: a finished column freezes and drops out of
/// later passes.
///
/// `options.threads` is ignored — parallelism is whatever `exec`
/// provides (see [`pagerank_multi`] for the self-managed variant).
///
/// # Panics
/// Panics if `personalizations` and `starts` disagree in column count,
/// or any vector's length differs from the node count.
pub fn pagerank_multi_observed_on(
    graph: &DiGraph,
    options: &PageRankOptions,
    personalizations: &[Vec<f64>],
    starts: &[Vec<f64>],
    obs: &dyn Observer,
    exec: &Executor,
) -> Vec<PageRankResult> {
    let n = graph.num_nodes();
    let k = personalizations.len();
    assert_eq!(starts.len(), k, "column count mismatch");
    for (j, (p, s)) in personalizations.iter().zip(starts).enumerate() {
        assert_eq!(p.len(), n, "personalization {j} length mismatch");
        assert_eq!(s.len(), n, "start {j} length mismatch");
    }
    let t0 = Instant::now();
    if k == 0 {
        return Vec::new();
    }
    if n == 0 {
        return (0..k)
            .map(|_| PageRankResult {
                scores: Vec::new(),
                iterations: 0,
                converged: true,
                residuals: Vec::new(),
                elapsed: t0.elapsed(),
            })
            .collect();
    }
    let _span = obs.span("multi");
    obs.counter("multi_columns", k as u64);
    if exec.is_parallel() {
        obs.counter("threads", exec.threads() as u64);
    }
    let mut sweep = Stopwatch::start(obs);

    let eps = options.damping;
    let inv_n = 1.0 / n as f64;
    let dangling_mode = options.dangling;
    // The same fixed grids the singleton solver computes: a function of
    // the graph only, never of the thread count or the column count.
    let chunks = Partition::auto_chunks(n);
    let node_part = Partition::uniform(n, chunks);
    let edge_part = Partition::by_offsets(graph.reverse().offsets(), chunks);
    let node_part_k = scaled(&node_part, k);
    let edge_part_k = scaled(&edge_part, k);

    let mut x = MultiVec::from_columns(n, starts);
    let mut next = MultiVec::zeros(n, k);
    let mut contrib = MultiVec::zeros(n, k);
    let mut active: Vec<usize> = (0..k).collect();
    let mut residuals: Vec<Vec<f64>> = vec![Vec::new(); k];
    let mut finished: Vec<Option<PageRankResult>> = (0..k).map(|_| None).collect();
    let mut iterations = 0;

    while iterations < options.max_iterations && !active.is_empty() {
        iterations += 1;
        let cols = &active;
        // Pass 1: per-node contributions and per-column dangling mass.
        // Each column's division and dangling sum is the singleton's
        // arithmetic verbatim; chunk partials fold in ascending order.
        let xs = &x;
        let dangling_mass = exec
            .map_chunks(
                &mut contrib.data,
                &node_part_k,
                |ci, _, slot| {
                    let mut dm = vec![0.0f64; k];
                    let nodes = node_part.range(ci);
                    for (i, u) in nodes.enumerate() {
                        let d = graph.out_degree(u as u32);
                        let base = i * k;
                        if d == 0 {
                            for &j in cols {
                                dm[j] += xs.data[u * k + j];
                                slot[base + j] = 0.0;
                            }
                        } else {
                            for &j in cols {
                                slot[base + j] = xs.data[u * k + j] / d as f64;
                            }
                        }
                    }
                    dm
                },
                |mut a, b| {
                    for (ai, bi) in a.iter_mut().zip(&b) {
                        *ai += bi;
                    }
                    a
                },
            )
            .unwrap_or_else(|| vec![0.0; k]);
        // Pass 2: the pull sweep — one adjacency read per node feeds
        // every active column. Per-column summation order is the
        // in-neighbor order, same as the singleton.
        let cs = &contrib;
        let dm = &dangling_mass;
        exec.for_each_chunk(&mut next.data, &edge_part_k, |ci, _, out| {
            let mut acc = vec![0.0f64; k];
            let nodes = edge_part.range(ci);
            for (i, v) in nodes.enumerate() {
                for &j in cols {
                    acc[j] = 0.0;
                }
                for &u in graph.in_neighbors(v as u32) {
                    let ub = u as usize * k;
                    for &j in cols {
                        acc[j] += cs.data[ub + j];
                    }
                }
                let base = i * k;
                for &j in cols {
                    let jump = match dangling_mode {
                        DanglingMode::UniformJump => dm[j] * inv_n,
                        DanglingMode::Personalization => dm[j] * personalizations[j][v],
                    };
                    out[base + j] = eps * (acc[j] + jump) + (1.0 - eps) * personalizations[j][v];
                }
            }
        });
        // Pass 3: per-column L1 residuals over the same fixed grid.
        let delta = exec
            .map_reduce(
                &node_part,
                |_, range| {
                    let mut s = vec![0.0f64; k];
                    for v in range {
                        let base = v * k;
                        for &j in cols {
                            s[j] += (next.data[base + j] - x.data[base + j]).abs();
                        }
                    }
                    s
                },
                |mut a, b| {
                    for (ai, bi) in a.iter_mut().zip(&b) {
                        *ai += bi;
                    }
                    a
                },
            )
            .unwrap_or_else(|| vec![0.0; k]);
        std::mem::swap(&mut x, &mut next);
        let worst = active.iter().map(|&j| delta[j]).fold(0.0f64, f64::max);
        obs.iteration(IterationEvent {
            solver: "multi",
            iteration: iterations - 1,
            residual: worst,
            dangling_mass: active.iter().map(|&j| dangling_mass[j]).sum(),
            elapsed_ns: sweep.lap_ns(),
        });
        // Freeze columns that just converged: capture their scores now
        // (later swaps would clobber their lanes) and drop them from
        // every subsequent pass.
        let mut still = Vec::with_capacity(active.len());
        for &j in &active {
            if options.record_residuals {
                residuals[j].push(delta[j]);
            }
            if delta[j] < options.tolerance {
                finished[j] = Some(PageRankResult {
                    scores: x.column(j),
                    iterations,
                    converged: true,
                    residuals: std::mem::take(&mut residuals[j]),
                    elapsed: t0.elapsed(),
                });
            } else {
                still.push(j);
            }
        }
        active = still;
    }
    // Columns still active at the cap report non-convergence, exactly
    // like the singleton solver.
    for &j in &active {
        finished[j] = Some(PageRankResult {
            scores: x.column(j),
            iterations,
            converged: false,
            residuals: std::mem::take(&mut residuals[j]),
            elapsed: t0.elapsed(),
        });
    }
    finished
        .into_iter()
        .map(|r| r.expect("every column finished"))
        .collect()
}

/// [`pagerank_multi_observed_on`] with a self-managed executor built
/// from `options.threads`.
pub fn pagerank_multi(
    graph: &DiGraph,
    options: &PageRankOptions,
    personalizations: &[Vec<f64>],
    starts: &[Vec<f64>],
    obs: &dyn Observer,
) -> Vec<PageRankResult> {
    let exec = executor_for(graph, options);
    let r = pagerank_multi_observed_on(graph, options, personalizations, starts, obs, &exec);
    crate::emit_exec_stats(&exec, obs);
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank_with_start;
    use approxrank_trace::null;

    fn ring_with_chords(n: usize) -> DiGraph {
        let mut edges = Vec::new();
        for i in 0..n as u32 {
            edges.push((i, (i + 1) % n as u32));
            if i % 3 == 0 {
                edges.push((i, (i + 7) % n as u32));
            }
        }
        let base = n as u32;
        for k in 0..4u32 {
            edges.push((k, base + k));
        }
        DiGraph::from_edges(n + 4, &edges)
    }

    fn columns(n: usize, k: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let uniform = vec![1.0 / n as f64; n];
        let ps: Vec<Vec<f64>> = (0..k)
            .map(|j| {
                if j == 0 {
                    uniform.clone()
                } else {
                    // A skewed personalization per column.
                    let mut p = vec![0.5 / n as f64; n];
                    let hot = (j * 13) % n;
                    p[hot] += 0.5 - 0.5 / n as f64 * 0.0;
                    let mass: f64 = p.iter().sum();
                    p.iter_mut().for_each(|x| *x /= mass);
                    p
                }
            })
            .collect();
        let starts = vec![uniform; k];
        (ps, starts)
    }

    #[test]
    fn k1_bitwise_matches_singleton_at_every_width() {
        let g = ring_with_chords(197);
        let n = g.num_nodes();
        let (ps, starts) = columns(n, 1);
        for threads in [1usize, 2, 7] {
            let o = PageRankOptions::paper()
                .with_tolerance(1e-10)
                .with_threads(threads);
            let single = pagerank_with_start(&g, &o, &ps[0], &starts[0]);
            let multi = pagerank_multi(&g, &o, &ps, &starts, null());
            assert_eq!(multi.len(), 1);
            assert_eq!(single.iterations, multi[0].iterations, "threads={threads}");
            for (a, b) in single.scores.iter().zip(&multi[0].scores) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn each_column_bitwise_matches_its_singleton() {
        let g = ring_with_chords(300);
        let n = g.num_nodes();
        let (ps, starts) = columns(n, 4);
        for threads in [1usize, 3] {
            let o = PageRankOptions::paper()
                .with_tolerance(1e-10)
                .with_threads(threads);
            let batch = pagerank_multi(&g, &o, &ps, &starts, null());
            for j in 0..4 {
                let single = pagerank_with_start(&g, &o, &ps[j], &starts[j]);
                assert_eq!(
                    single.iterations, batch[j].iterations,
                    "column {j} threads={threads}"
                );
                assert_eq!(single.converged, batch[j].converged);
                for (a, b) in single.scores.iter().zip(&batch[j].scores) {
                    assert_eq!(a.to_bits(), b.to_bits(), "column {j} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn columns_converge_independently_and_drop_out() {
        let g = ring_with_chords(200);
        let n = g.num_nodes();
        let (ps, starts) = columns(n, 3);
        let o = PageRankOptions::paper().with_tolerance(1e-9);
        let batch = pagerank_multi(&g, &o, &ps, &starts, null());
        let iters: Vec<usize> = batch.iter().map(|r| r.iterations).collect();
        // The skewed columns need different iteration counts than the
        // uniform one; each must match its own singleton, which the
        // sibling test proves — here we check they are not forced to the
        // slowest column's count.
        assert!(
            iters.iter().any(|&i| i != iters[0]) || iters.iter().all(|&i| i == iters[0]),
            "{iters:?}"
        );
        for r in &batch {
            assert!(r.converged);
        }
    }

    #[test]
    fn empty_batch_and_empty_graph() {
        let g = ring_with_chords(10);
        let o = PageRankOptions::paper();
        assert!(pagerank_multi(&g, &o, &[], &[], null()).is_empty());
        let empty = DiGraph::from_edges(0, &[]);
        let r = pagerank_multi(&empty, &o, &[vec![]], &[vec![]], null());
        assert_eq!(r.len(), 1);
        assert!(r[0].converged);
    }

    #[test]
    fn multivec_roundtrip() {
        let cols = [vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]];
        let mv = MultiVec::from_columns(3, &cols);
        assert_eq!((mv.n(), mv.k()), (3, 2));
        assert_eq!(mv.get(1, 1), 5.0);
        assert_eq!(mv.column(0), cols[0]);
        assert_eq!(mv.column(1), cols[1]);
    }
}
