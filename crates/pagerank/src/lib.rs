//! Global PageRank and authority-flow engine.
//!
//! Implements the random-walk machinery the ApproxRank paper builds on:
//!
//! * [`power::pagerank`] — power iteration on a [`approxrank_graph::DiGraph`]
//!   with the standard damping model `R = εAᵀR + (1−ε)P`, rank-1 dangling
//!   correction, and L1 convergence detection (the paper's setting:
//!   ε = 0.85, tolerance 1e-5).
//! * [`parallel`] — a multi-threaded pull-style iteration for large global
//!   graphs (used when computing the ground-truth global PageRank the
//!   experiments compare against).
//! * [`weighted`] + [`authority`] — per-edge weighted authority flow in the
//!   style of ObjectRank, for the semantic-ranking scenario of the paper's
//!   introduction (Figures 2–3).
//!
//! The *effective* transition model is shared with `approxrank-core`:
//! a page with out-links moves to each target with probability
//! `1/out_degree`; a dangling page jumps uniformly to all `N` pages.

pub mod adaptive;
pub mod authority;
pub mod blockrank;
pub mod extrapolation;
pub mod gauss_seidel;
pub mod hits;
pub mod multi;
pub mod options;
pub mod parallel;
pub mod power;
pub mod result;
pub mod weighted;

pub use multi::{pagerank_multi, pagerank_multi_observed_on, MultiVec};
pub use options::{DanglingMode, PageRankOptions};
pub use parallel::{emit_exec_stats, executor_for, pagerank_with_start_observed_on};
pub use power::{pagerank, pagerank_observed, pagerank_with_start, pagerank_with_start_observed};
pub use result::PageRankResult;
pub use weighted::WeightedDiGraph;

pub use adaptive::{pagerank_adaptive, pagerank_adaptive_observed};
pub use blockrank::{blockrank, BlockRankResult};
pub use extrapolation::{pagerank_extrapolated, pagerank_extrapolated_observed};
pub use gauss_seidel::{
    pagerank_gauss_seidel, pagerank_gauss_seidel_observed, pagerank_gauss_seidel_red_black,
    pagerank_gauss_seidel_red_black_observed, pagerank_gauss_seidel_red_black_on,
};
pub use hits::{hits, HitsOptions, HitsResult};
