//! Edge-weighted directed graphs for authority-flow (ObjectRank-style)
//! ranking.
//!
//! The paper's semantic-ranking motivation (Figures 2–3) assigns each edge
//! an *authority transfer rate* chosen by a domain expert; rates out of a
//! node need not sum to one. [`WeightedDiGraph`] stores those rates in CSR
//! form with forward and reverse views.

use approxrank_graph::NodeId;

/// A directed graph with an `f64` weight per edge.
///
/// Parallel edges given at construction are merged by *summing* weights.
#[derive(Clone, Debug, PartialEq)]
pub struct WeightedDiGraph {
    out_offsets: Vec<usize>,
    out_targets: Vec<NodeId>,
    out_weights: Vec<f64>,
    in_offsets: Vec<usize>,
    in_sources: Vec<NodeId>,
    in_weights: Vec<f64>,
}

impl WeightedDiGraph {
    /// Builds from `(source, target, weight)` triples.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints or non-finite/negative weights.
    pub fn from_edges(num_nodes: usize, edges: &[(NodeId, NodeId, f64)]) -> Self {
        for &(s, t, w) in edges {
            assert!(
                (s as usize) < num_nodes && (t as usize) < num_nodes,
                "edge ({s},{t}) out of bounds"
            );
            assert!(w.is_finite() && w >= 0.0, "weight must be finite and >= 0");
        }
        let mut sorted: Vec<(NodeId, NodeId, f64)> = edges.to_vec();
        sorted.sort_by_key(|a| (a.0, a.1));
        // Merge duplicates by summing.
        let mut merged: Vec<(NodeId, NodeId, f64)> = Vec::with_capacity(sorted.len());
        for (s, t, w) in sorted {
            match merged.last_mut() {
                Some(last) if last.0 == s && last.1 == t => last.2 += w,
                _ => merged.push((s, t, w)),
            }
        }
        let build = |key: fn(&(NodeId, NodeId, f64)) -> (NodeId, NodeId)| {
            let mut items = merged.clone();
            items.sort_by_key(&key);
            let mut offsets = vec![0usize; num_nodes + 1];
            let mut nbrs = Vec::with_capacity(items.len());
            let mut weights = Vec::with_capacity(items.len());
            for it in &items {
                let (row, col) = key(it);
                offsets[row as usize + 1] += 1;
                nbrs.push(col);
                weights.push(it.2);
            }
            for i in 1..=num_nodes {
                offsets[i] += offsets[i - 1];
            }
            (offsets, nbrs, weights)
        };
        let (out_offsets, out_targets, out_weights) = build(|e| (e.0, e.1));
        let (in_offsets, in_sources, in_weights) = build(|e| (e.1, e.0));
        WeightedDiGraph {
            out_offsets,
            out_targets,
            out_weights,
            in_offsets,
            in_sources,
            in_weights,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Number of merged edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Out-edges of `u` as parallel `(targets, weights)` slices.
    #[inline]
    pub fn out_edges(&self, u: NodeId) -> (&[NodeId], &[f64]) {
        let (lo, hi) = (
            self.out_offsets[u as usize],
            self.out_offsets[u as usize + 1],
        );
        (&self.out_targets[lo..hi], &self.out_weights[lo..hi])
    }

    /// In-edges of `v` as parallel `(sources, weights)` slices.
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> (&[NodeId], &[f64]) {
        let (lo, hi) = (self.in_offsets[v as usize], self.in_offsets[v as usize + 1]);
        (&self.in_sources[lo..hi], &self.in_weights[lo..hi])
    }

    /// Sum of weights on `u`'s out-edges.
    pub fn out_weight_sum(&self, u: NodeId) -> f64 {
        self.out_edges(u).1.iter().sum()
    }

    /// Lifts an unweighted graph: every edge gets weight `1/out_degree`,
    /// i.e. the standard PageRank transition row.
    pub fn from_unweighted(graph: &approxrank_graph::DiGraph) -> Self {
        let mut edges = Vec::with_capacity(graph.num_edges());
        for u in graph.nodes() {
            let d = graph.out_degree(u);
            for &v in graph.out_neighbors(u) {
                edges.push((u, v, 1.0 / d as f64));
            }
        }
        WeightedDiGraph::from_edges(graph.num_nodes(), &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let g = WeightedDiGraph::from_edges(3, &[(0, 1, 0.5), (0, 2, 0.3), (2, 0, 1.0)]);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        let (t, w) = g.out_edges(0);
        assert_eq!(t, &[1, 2]);
        assert_eq!(w, &[0.5, 0.3]);
        assert!((g.out_weight_sum(0) - 0.8).abs() < 1e-12);
        let (s, w) = g.in_edges(0);
        assert_eq!(s, &[2]);
        assert_eq!(w, &[1.0]);
    }

    #[test]
    fn duplicates_merge_by_sum() {
        let g = WeightedDiGraph::from_edges(2, &[(0, 1, 0.25), (0, 1, 0.25)]);
        assert_eq!(g.num_edges(), 1);
        assert!((g.out_edges(0).1[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lift_unweighted() {
        let d = approxrank_graph::DiGraph::from_edges(3, &[(0, 1), (0, 2), (1, 0)]);
        let g = WeightedDiGraph::from_unweighted(&d);
        assert!((g.out_weight_sum(0) - 1.0).abs() < 1e-12);
        assert!((g.out_weight_sum(1) - 1.0).abs() < 1e-12);
        assert_eq!(g.out_weight_sum(2), 0.0);
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn rejects_negative_weight() {
        WeightedDiGraph::from_edges(2, &[(0, 1, -0.1)]);
    }
}
