//! BlockRank: exploiting the web's block structure (Kamvar, Haveliwala,
//! Manning & Golub, 2003 — the ApproxRank paper's reference \[27\]).
//!
//! The three-stage algorithm the paper's §II-B describes:
//!
//! 1. compute **local PageRank** within every block (host/domain);
//! 2. build the **block graph** — blocks as nodes, edge weight from
//!    block `I` to `J` the local-PageRank-weighted sum of the crossing
//!    transition probabilities — and rank it (*BlockRank*);
//! 3. run **standard global PageRank** started from the aggregated
//!    vector `x₀[u] = LPR(u) · BlockRank(block(u))`.
//!
//! Unlike ServerRank (which stops after the combination), BlockRank's
//! third stage converges to the *exact* global PageRank; the aggregation
//! only buys a better starting point. The tests measure that saving.

use approxrank_graph::{DiGraph, NodeId};

use crate::authority::{authority_flow, FlowModel};
use crate::power::pagerank_with_start;
use crate::{PageRankOptions, PageRankResult, WeightedDiGraph};

/// Outcome of a BlockRank solve.
#[derive(Clone, Debug)]
pub struct BlockRankResult {
    /// The exact global PageRank (stage 3's output).
    pub result: PageRankResult,
    /// Block-level importance (stage 2's output).
    pub block_scores: Vec<f64>,
    /// Global iterations stage 3 needed from the aggregated start.
    pub global_iterations: usize,
}

/// Runs the three-stage BlockRank algorithm.
///
/// `block_of[page]` assigns each page a block id in `0..num_blocks`.
///
/// # Panics
/// Panics on a malformed partition.
pub fn blockrank(
    graph: &DiGraph,
    block_of: &[u32],
    num_blocks: usize,
    options: &PageRankOptions,
) -> BlockRankResult {
    let n = graph.num_nodes();
    assert_eq!(block_of.len(), n, "one block id per page");
    assert!(
        block_of.iter().all(|&b| (b as usize) < num_blocks),
        "block id out of range"
    );

    // Stage 1: local PageRank per block.
    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); num_blocks];
    let mut local_index = vec![0u32; n];
    for (page, &b) in block_of.iter().enumerate() {
        local_index[page] = members[b as usize].len() as u32;
        members[b as usize].push(page as NodeId);
    }
    let mut local_edges: Vec<Vec<(NodeId, NodeId)>> = vec![Vec::new(); num_blocks];
    for (u, v) in graph.edges() {
        let (bu, bv) = (block_of[u as usize], block_of[v as usize]);
        if bu == bv {
            local_edges[bu as usize].push((local_index[u as usize], local_index[v as usize]));
        }
    }
    let mut lpr = vec![0.0f64; n];
    for b in 0..num_blocks {
        if members[b].is_empty() {
            continue;
        }
        let local = DiGraph::from_edges(members[b].len(), &local_edges[b]);
        let r = crate::pagerank(&local, options);
        for (li, &page) in members[b].iter().enumerate() {
            lpr[page as usize] = r.scores[li];
        }
    }

    // Stage 2: the block graph, edges weighted by LPR-weighted crossing
    // probability B_IJ = Σ_{u∈I, u→v∈J} lpr(u)/D_u (including I = J).
    let mut block_edge_weights: std::collections::HashMap<(u32, u32), f64> =
        std::collections::HashMap::new();
    for u in graph.nodes() {
        let d = graph.out_degree(u);
        if d == 0 {
            continue;
        }
        let share = lpr[u as usize] / d as f64;
        let bu = block_of[u as usize];
        for &v in graph.out_neighbors(u) {
            *block_edge_weights
                .entry((bu, block_of[v as usize]))
                .or_insert(0.0) += share;
        }
    }
    let block_edges: Vec<(u32, u32, f64)> = block_edge_weights
        .into_iter()
        .map(|((a, b), w)| (a, b, w))
        .collect();
    let block_graph = WeightedDiGraph::from_edges(num_blocks, &block_edges);
    let p = vec![1.0 / num_blocks as f64; num_blocks];
    let block_scores = authority_flow(&block_graph, options, &p, FlowModel::Stochastic).scores;

    // Stage 3: global PageRank from the aggregated start vector.
    let mut start: Vec<f64> = (0..n)
        .map(|u| lpr[u] * block_scores[block_of[u] as usize])
        .collect();
    let mass: f64 = start.iter().sum();
    if mass > 0.0 {
        for v in start.iter_mut() {
            *v /= mass;
        }
    } else {
        start.fill(1.0 / n as f64);
    }
    let personalization = vec![1.0 / n as f64; n];
    let result = pagerank_with_start(graph, options, &personalization, &start);
    let global_iterations = result.iterations;

    BlockRankResult {
        result,
        block_scores,
        global_iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank;

    /// Block-structured graph in the regime Kamvar et al. target: each
    /// block mixes fast internally (an expander), while blocks exchange
    /// mass through sparse, *asymmetric* coupling — so the dominant slow
    /// mode of the global walk is the block-level mass distribution,
    /// which stages 1–2 estimate well.
    fn blocky() -> (DiGraph, Vec<u32>, usize) {
        let blocks = 5usize;
        let per = 60u32;
        let n = blocks as u32 * per;
        let mut edges = Vec::new();
        let mut block_of = vec![0u32; n as usize];
        for b in 0..blocks as u32 {
            let base = b * per;
            for i in 0..per {
                block_of[(base + i) as usize] = b;
                // Expander: seven coprime affine maps.
                for (j, m) in [7u32, 11, 13, 17, 19, 23, 29].iter().enumerate() {
                    edges.push((base + i, base + (i * m + j as u32) % per));
                }
            }
            // Asymmetric coupling: block b sends 3(b+1) links to the next
            // block, so the stationary block masses differ strongly.
            for k in 0..3 * (b + 1) {
                edges.push((base + k % per, ((b + 1) % blocks as u32) * per + k % per));
            }
        }
        (DiGraph::from_edges(n as usize, &edges), block_of, blocks)
    }

    #[test]
    fn exact_global_pagerank() {
        let (g, block_of, blocks) = blocky();
        let o = PageRankOptions::paper().with_tolerance(1e-11);
        let truth = pagerank(&g, &o);
        let br = blockrank(&g, &block_of, blocks, &o);
        assert!(br.result.converged);
        for (a, b) in truth.scores.iter().zip(&br.result.scores) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn warm_start_saves_global_iterations() {
        let (g, block_of, blocks) = blocky();
        let o = PageRankOptions::paper().with_tolerance(1e-11);
        let cold = pagerank(&g, &o);
        let br = blockrank(&g, &block_of, blocks, &o);
        assert!(
            br.global_iterations < cold.iterations,
            "BlockRank stage-3 {} vs cold {}",
            br.global_iterations,
            cold.iterations
        );
    }

    #[test]
    fn block_scores_form_distribution() {
        let (g, block_of, blocks) = blocky();
        let br = blockrank(&g, &block_of, blocks, &PageRankOptions::paper());
        assert_eq!(br.block_scores.len(), blocks);
        assert!((br.block_scores.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }
}
