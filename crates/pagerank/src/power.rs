//! Serial power-iteration PageRank.
//!
//! Pull-style iteration over the reverse adjacency:
//!
//! ```text
//! x'[v] = ε · ( Σ_{u→v} x[u]/D_u  +  dangling_mass · jump(v) ) + (1−ε) · P[v]
//! ```
//!
//! where `jump(v)` is `1/N` under [`crate::DanglingMode::UniformJump`]
//! (the paper's model) or `P[v]` under
//! [`crate::DanglingMode::Personalization`].

use approxrank_graph::DiGraph;
use approxrank_trace::Observer;

use crate::{PageRankOptions, PageRankResult};

/// L1 norm of the difference of two equal-length vectors.
pub(crate) fn l1_delta(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Runs PageRank with a uniform personalization vector.
///
/// ```
/// use approxrank_graph::DiGraph;
/// use approxrank_pagerank::{pagerank, PageRankOptions};
///
/// // 1 and 2 both endorse 0; 0 endorses only 1.
/// let g = DiGraph::from_edges(3, &[(1, 0), (2, 0), (0, 1)]);
/// let r = pagerank(&g, &PageRankOptions::paper());
/// assert!(r.converged);
/// assert!(r.scores[0] > r.scores[1]);
/// assert!(r.scores[1] > r.scores[2]);
/// assert!((r.total_mass() - 1.0).abs() < 1e-6);
/// ```
pub fn pagerank(graph: &DiGraph, options: &PageRankOptions) -> PageRankResult {
    pagerank_observed(graph, options, approxrank_trace::null())
}

/// [`pagerank`] with telemetry: spans and per-iteration events flow to
/// `obs`. With [`approxrank_trace::null()`] this is exactly [`pagerank`].
pub fn pagerank_observed(
    graph: &DiGraph,
    options: &PageRankOptions,
    obs: &dyn Observer,
) -> PageRankResult {
    let n = graph.num_nodes();
    let uniform = vec![1.0 / n.max(1) as f64; n];
    let start = uniform.clone();
    pagerank_with_start_observed(graph, options, &uniform, &start, obs)
}

/// Runs PageRank with an explicit personalization vector `p`
/// (must be a probability distribution over the nodes).
pub fn pagerank_personalized(
    graph: &DiGraph,
    options: &PageRankOptions,
    personalization: &[f64],
) -> PageRankResult {
    pagerank_personalized_observed(graph, options, personalization, approxrank_trace::null())
}

/// [`pagerank_personalized`] with telemetry.
pub fn pagerank_personalized_observed(
    graph: &DiGraph,
    options: &PageRankOptions,
    personalization: &[f64],
    obs: &dyn Observer,
) -> PageRankResult {
    let n = graph.num_nodes();
    let start = vec![1.0 / n.max(1) as f64; n];
    pagerank_with_start_observed(graph, options, personalization, &start, obs)
}

/// Runs PageRank from an explicit starting vector.
///
/// Warm starts matter for the SC baseline, which re-solves PageRank on a
/// slightly-grown supergraph 25 times; starting from the previous solution
/// roughly halves its iteration counts (and is what the KDD'06 authors do).
///
/// # Panics
/// Panics if vector lengths disagree with the node count.
pub fn pagerank_with_start(
    graph: &DiGraph,
    options: &PageRankOptions,
    personalization: &[f64],
    start: &[f64],
) -> PageRankResult {
    pagerank_with_start_observed(
        graph,
        options,
        personalization,
        start,
        approxrank_trace::null(),
    )
}

/// [`pagerank_with_start`] with telemetry.
///
/// The implementation lives in [`crate::parallel`]: one chunked sweep
/// shared by the serial and parallel paths, so `threads == 1` and
/// `threads == k` produce bit-identical scores. This entry builds an
/// executor per call ([`crate::executor_for`]) and forwards its pool
/// telemetry; hold your own [`approxrank_exec::Executor`] and call
/// [`crate::pagerank_with_start_observed_on`] to amortize thread startup
/// across repeated solves.
///
/// # Panics
/// Panics if vector lengths disagree with the node count.
pub fn pagerank_with_start_observed(
    graph: &DiGraph,
    options: &PageRankOptions,
    personalization: &[f64],
    start: &[f64],
    obs: &dyn Observer,
) -> PageRankResult {
    let exec = crate::parallel::executor_for(graph, options);
    let result = crate::parallel::pagerank_with_start_observed_on(
        graph,
        options,
        personalization,
        start,
        obs,
        &exec,
    );
    crate::parallel::emit_exec_stats(&exec, obs);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DanglingMode;
    use approxrank_graph::DiGraph;

    fn opts() -> PageRankOptions {
        PageRankOptions::paper().with_tolerance(1e-12)
    }

    #[test]
    fn cycle_is_uniform() {
        // On a directed cycle every page is symmetric: scores = 1/n.
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let r = pagerank(&g, &opts());
        assert!(r.converged);
        for s in &r.scores {
            assert!((s - 0.25).abs() < 1e-9, "{s}");
        }
    }

    #[test]
    fn mass_conserved() {
        let g = DiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (3, 1), (0, 4)]);
        let r = pagerank(&g, &opts());
        assert!((r.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dangling_only_graph() {
        // No edges at all: every iteration redistributes uniformly,
        // so the uniform vector is stationary.
        let g = DiGraph::from_edges(3, &[]);
        let r = pagerank(&g, &opts());
        assert!(r.converged);
        for s in &r.scores {
            assert!((s - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn star_center_dominates() {
        // 1,2,3 all point at 0; 0 dangling.
        let g = DiGraph::from_edges(4, &[(1, 0), (2, 0), (3, 0)]);
        let r = pagerank(&g, &opts());
        assert!(r.scores[0] > r.scores[1]);
        assert!((r.scores[1] - r.scores[2]).abs() < 1e-12);
        assert!((r.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn analytic_two_node() {
        // 0 -> 1, 1 -> 0. Symmetric: 0.5 each.
        let g = DiGraph::from_edges(2, &[(0, 1), (1, 0)]);
        let r = pagerank(&g, &opts());
        assert!((r.scores[0] - 0.5).abs() < 1e-10);
    }

    #[test]
    fn known_fixed_point_hand_check() {
        // 0 -> 1; 1 dangling; N = 2, ε = 0.5 for easy algebra.
        // x0 = 0.5*(dang/2) + 0.25 ; x1 = 0.5*(x0 + dang/2) + 0.25
        // with dang = x1. Solving: x0 = 0.25 + x1/4, x1 = 0.25 + x0/2 + x1/4
        // => x1 = (0.25 + x0/2)/0.75 ... verify numerically instead.
        let g = DiGraph::from_edges(2, &[(0, 1)]);
        let o = PageRankOptions::default()
            .with_damping(0.5)
            .with_tolerance(1e-14);
        let r = pagerank(&g, &o);
        let (x0, x1) = (r.scores[0], r.scores[1]);
        // Fixed-point equations must hold exactly.
        assert!((x0 - (0.5 * (x1 / 2.0) + 0.25)).abs() < 1e-10);
        assert!((x1 - (0.5 * (x0 + x1 / 2.0) + 0.25)).abs() < 1e-10);
    }

    #[test]
    fn personalization_biases_scores() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let p = vec![0.8, 0.1, 0.1];
        let r = pagerank_personalized(&g, &opts(), &p);
        // Node 0 receives most of the teleport mass; its successor inherits.
        assert!(r.scores[0] > r.scores[2]);
        assert!((r.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dangling_personalization_mode() {
        let g = DiGraph::from_edges(2, &[(0, 1)]);
        let o = PageRankOptions {
            dangling: DanglingMode::Personalization,
            tolerance: 1e-12,
            ..PageRankOptions::default()
        };
        let p = vec![1.0, 0.0];
        let r = pagerank_personalized(&g, &o, &p);
        // All teleports and dangling jumps go to node 0.
        assert!(r.scores[0] > 0.5);
        assert!((r.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn residual_recording_monotone_tail() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let o = opts().with_residuals();
        let r = pagerank(&g, &o);
        assert_eq!(r.residuals.len(), r.iterations);
        assert!(r.residuals.last().unwrap() < &1e-12);
    }

    #[test]
    fn iteration_cap_reports_nonconvergence() {
        // Asymmetric graph: the uniform start is far from the fixed point.
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0), (0, 2)]);
        let o = PageRankOptions::default()
            .with_tolerance(1e-15)
            .with_max_iterations(2);
        let r = pagerank(&g, &o);
        assert!(!r.converged);
        assert_eq!(r.iterations, 2);
    }

    #[test]
    fn warm_start_converges_faster() {
        let g = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)]);
        let cold = pagerank(&g, &opts());
        let p = vec![1.0 / 6.0; 6];
        let warm = pagerank_with_start(&g, &opts(), &p, &cold.scores);
        assert!(warm.iterations <= 2, "warm start from the fixed point");
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::from_edges(0, &[]);
        let r = pagerank(&g, &PageRankOptions::default());
        assert!(r.scores.is_empty());
        assert!(r.converged);
    }
}
