//! Adaptive PageRank (Kamvar, Haveliwala & Golub, 2003 — the paper's
//! reference \[26\]): pages whose scores have individually converged are
//! frozen and skipped in later iterations.
//!
//! Web PageRank converges very non-uniformly — low-rank pages settle in a
//! handful of iterations while hubs keep moving. Freezing settled pages
//! saves a large fraction of the per-iteration pull work at a small,
//! controlled accuracy cost.

use std::time::Instant;

use approxrank_graph::DiGraph;
use approxrank_trace::{IterationEvent, Observer, Stopwatch};

use crate::power::l1_delta;
use crate::{DanglingMode, PageRankOptions, PageRankResult};

/// Relative per-page convergence threshold (Kamvar et al. use 1e-3):
/// page `v` freezes once `|x'[v] − x[v]| / x'[v]` drops below it.
pub const PAGE_FREEZE_THRESHOLD: f64 = 1e-4;

/// Outcome of an adaptive solve, with the extra bookkeeping the ablation
/// bench reports.
#[derive(Clone, Debug, PartialEq)]
pub struct AdaptiveResult {
    /// The standard result (scores, iterations, converged, residuals).
    pub result: PageRankResult,
    /// Total pull-work saved: sum over iterations of the frozen fraction.
    pub skipped_fraction: f64,
}

/// Runs adaptive PageRank with a uniform personalization vector.
pub fn pagerank_adaptive(graph: &DiGraph, options: &PageRankOptions) -> AdaptiveResult {
    pagerank_adaptive_observed(graph, options, approxrank_trace::null())
}

/// [`pagerank_adaptive`] with telemetry; the frozen-page fraction is
/// reported as a `frozen_fraction` gauge each sweep.
pub fn pagerank_adaptive_observed(
    graph: &DiGraph,
    options: &PageRankOptions,
    obs: &dyn Observer,
) -> AdaptiveResult {
    let t0 = Instant::now();
    let n = graph.num_nodes();
    if n == 0 {
        return AdaptiveResult {
            result: PageRankResult {
                scores: Vec::new(),
                iterations: 0,
                converged: true,
                residuals: Vec::new(),
                elapsed: t0.elapsed(),
            },
            skipped_fraction: 0.0,
        };
    }
    let _span = obs.span("adaptive");
    let mut sweep = Stopwatch::start(obs);
    let inv_n = 1.0 / n as f64;
    let eps = options.damping;

    let mut x = vec![inv_n; n];
    let mut next = vec![inv_n; n];
    let mut contrib = vec![0.0f64; n];
    let mut frozen = vec![false; n];
    let mut iterations = 0;
    let mut converged = false;
    let mut residuals = Vec::new();
    let mut skipped_total = 0usize;

    while iterations < options.max_iterations {
        iterations += 1;
        let mut dangling_mass = 0.0;
        for u in 0..n {
            let d = graph.out_degree(u as u32);
            if d == 0 {
                dangling_mass += x[u];
                contrib[u] = 0.0;
            } else {
                contrib[u] = x[u] / d as f64;
            }
        }
        let mut skipped = 0usize;
        for v in 0..n {
            if frozen[v] {
                next[v] = x[v];
                skipped += 1;
                continue;
            }
            let mut acc = 0.0;
            for &u in graph.in_neighbors(v as u32) {
                acc += contrib[u as usize];
            }
            let jump = match options.dangling {
                DanglingMode::UniformJump => dangling_mass * inv_n,
                DanglingMode::Personalization => dangling_mass * inv_n,
            };
            next[v] = eps * (acc + jump) + (1.0 - eps) * inv_n;
            if iterations > 1 && (next[v] - x[v]).abs() < PAGE_FREEZE_THRESHOLD * next[v] {
                frozen[v] = true;
            }
        }
        skipped_total += skipped;
        let delta = l1_delta(&next, &x);
        std::mem::swap(&mut x, &mut next);
        obs.iteration(IterationEvent {
            solver: "adaptive",
            iteration: iterations - 1,
            residual: delta,
            dangling_mass,
            elapsed_ns: sweep.lap_ns(),
        });
        obs.gauge("frozen_fraction", skipped as f64 / n as f64);
        if options.record_residuals {
            residuals.push(delta);
        }
        if delta < options.tolerance {
            converged = true;
            break;
        }
    }

    AdaptiveResult {
        result: PageRankResult {
            scores: x,
            iterations,
            converged,
            residuals,
            elapsed: t0.elapsed(),
        },
        skipped_fraction: skipped_total as f64 / (iterations * n) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank;

    fn hubby_graph() -> DiGraph {
        // A hub (0) plus a tail of low-degree pages that settle quickly.
        let n = 300u32;
        let mut edges = Vec::new();
        for i in 1..n {
            edges.push((i, 0));
            edges.push((0, i));
            if i % 3 == 0 {
                edges.push((i, (i + 1) % n));
            }
        }
        DiGraph::from_edges(n as usize, &edges)
    }

    #[test]
    fn close_to_exact_pagerank() {
        let g = hubby_graph();
        let o = PageRankOptions::paper().with_tolerance(1e-8);
        let exact = pagerank(&g, &o);
        let adaptive = pagerank_adaptive(&g, &o);
        assert!(adaptive.result.converged);
        let err: f64 = exact
            .scores
            .iter()
            .zip(&adaptive.result.scores)
            .map(|(a, b)| (a - b).abs())
            .sum();
        // Freezing at relative threshold 1e-4 costs bounded accuracy.
        assert!(err < 1e-3, "L1 error {err}");
    }

    #[test]
    fn actually_skips_work() {
        let g = hubby_graph();
        let o = PageRankOptions::paper().with_tolerance(1e-8);
        let adaptive = pagerank_adaptive(&g, &o);
        assert!(
            adaptive.skipped_fraction > 0.05,
            "skipped only {:.1}%",
            adaptive.skipped_fraction * 100.0
        );
    }

    #[test]
    fn ranking_preserved() {
        let g = hubby_graph();
        let o = PageRankOptions::paper().with_tolerance(1e-8);
        let exact = pagerank(&g, &o);
        let adaptive = pagerank_adaptive(&g, &o).result;
        // The hub must stay on top.
        assert_eq!(exact.ranking()[0], adaptive.ranking()[0]);
    }
}
