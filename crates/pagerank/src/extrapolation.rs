//! `A_ε` extrapolation for PageRank (Kamvar, Haveliwala, Manning & Golub,
//! WWW'03 — the paper's reference \[22\]).
//!
//! On web-scale graphs the second eigenvalue of the damped transition
//! matrix is (almost exactly) the damping factor `ε` itself, with the
//! slow-converging error component lying along its eigenvector. Assuming
//! `λ₂ = ε`, two consecutive iterates determine that component exactly,
//! and
//!
//! ```text
//! x* ≈ (x_m − ε · x_{m−1}) / (1 − ε)
//! ```
//!
//! removes it in one step. The extrapolation is applied once, after a
//! short warm-up; power iteration then polishes the result (and safely
//! re-damps the perturbation on graphs where the assumption is off).

use std::time::Instant;

use approxrank_graph::DiGraph;
use approxrank_trace::{IterationEvent, Observer, Stopwatch};

use crate::power::l1_delta;
use crate::{DanglingMode, PageRankOptions, PageRankResult};

/// Warm-up iterations before the single `A_ε` extrapolation step.
pub const EXTRAPOLATION_WARMUP: usize = 8;

/// Power iteration with one `A_ε` extrapolation after
/// [`EXTRAPOLATION_WARMUP`] iterations.
///
/// Produces the same fixed point as [`crate::pagerank`]; on graphs with
/// `λ₂ ≈ ε` (loosely coupled clusters, the web's block structure) it
/// converges in substantially fewer iterations.
pub fn pagerank_extrapolated(graph: &DiGraph, options: &PageRankOptions) -> PageRankResult {
    pagerank_extrapolated_observed(graph, options, approxrank_trace::null())
}

/// [`pagerank_extrapolated`] with telemetry; the single `A_ε` jump is
/// marked by an `extrapolation_jump` counter carrying its iteration.
pub fn pagerank_extrapolated_observed(
    graph: &DiGraph,
    options: &PageRankOptions,
    obs: &dyn Observer,
) -> PageRankResult {
    let t0 = Instant::now();
    let n = graph.num_nodes();
    if n == 0 {
        return PageRankResult {
            scores: Vec::new(),
            iterations: 0,
            converged: true,
            residuals: Vec::new(),
            elapsed: t0.elapsed(),
        };
    }
    let _span = obs.span("extrapolation");
    let mut sweep = Stopwatch::start(obs);
    let inv_n = 1.0 / n as f64;
    let personalization = vec![inv_n; n];
    let eps = options.damping;
    let mut x = personalization.clone();
    let mut next = vec![0.0f64; n];
    let mut contrib = vec![0.0f64; n];
    let mut prev: Vec<f64> = vec![0.0f64; n];
    let mut iterations = 0;
    let mut converged = false;
    let mut residuals = Vec::new();
    let mut extrapolated = false;

    while iterations < options.max_iterations {
        iterations += 1;
        let mut dangling_mass = 0.0;
        for u in 0..n {
            let d = graph.out_degree(u as u32);
            if d == 0 {
                dangling_mass += x[u];
                contrib[u] = 0.0;
            } else {
                contrib[u] = x[u] / d as f64;
            }
        }
        for v in 0..n {
            let mut acc = 0.0;
            for &u in graph.in_neighbors(v as u32) {
                acc += contrib[u as usize];
            }
            let jump = match options.dangling {
                DanglingMode::UniformJump => dangling_mass * inv_n,
                DanglingMode::Personalization => dangling_mass * personalization[v],
            };
            next[v] = eps * (acc + jump) + (1.0 - eps) * personalization[v];
        }
        let delta = l1_delta(&next, &x);
        // Rotate buffers: prev <- current, x <- newest, next <- scratch.
        std::mem::swap(&mut prev, &mut x);
        std::mem::swap(&mut x, &mut next);
        obs.iteration(IterationEvent {
            solver: "extrapolation",
            iteration: iterations - 1,
            residual: delta,
            dangling_mass,
            elapsed_ns: sweep.lap_ns(),
        });
        if options.record_residuals {
            residuals.push(delta);
        }
        if delta < options.tolerance {
            converged = true;
            break;
        }
        if !extrapolated && iterations >= EXTRAPOLATION_WARMUP {
            extrapolated = true;
            a_eps_jump(&mut x, &prev, eps);
            obs.counter("extrapolation_jump", iterations as u64);
        }
    }

    PageRankResult {
        scores: x,
        iterations,
        converged,
        residuals,
        elapsed: t0.elapsed(),
    }
}

/// In-place `x ← (x − ε·prev)/(1−ε)`, clamped to stay non-negative and
/// renormalized to unit mass.
fn a_eps_jump(x: &mut [f64], prev: &[f64], eps: f64) {
    for (xi, &pi) in x.iter_mut().zip(prev) {
        *xi = ((*xi - eps * pi) / (1.0 - eps)).max(0.0);
    }
    let mass: f64 = x.iter().sum();
    if mass > 0.0 {
        for v in x.iter_mut() {
            *v /= mass;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank;

    /// Two loosely-coupled clusters: the canonical λ₂ ≈ ε structure the
    /// extrapolation targets (the web's block structure in miniature).
    fn two_cluster_graph() -> DiGraph {
        // Asymmetric sizes: the stationary cluster masses differ from the
        // uniform start, so the slow cluster-exchange mode (λ₂ ≈ ε, real)
        // is strongly excited — the regime A_ε extrapolation targets.
        let sizes = [220u32, 80u32];
        let mut edges = Vec::new();
        let mut base = 0u32;
        for &size in &sizes {
            for i in 0..size {
                // Eight coprime affine maps make each cluster an expander:
                // the within-cluster modes decay fast, leaving the
                // cluster-exchange mode as the unique slow (≈ ε) mode.
                for (j, m) in [7u32, 9, 13, 17, 19, 23, 27, 29].iter().enumerate() {
                    edges.push((base + i, base + (i * m + j as u32) % size));
                }
            }
            base += size;
        }
        // One weak link each way.
        edges.push((0, sizes[0]));
        edges.push((sizes[0], 0));
        DiGraph::from_edges((sizes[0] + sizes[1]) as usize, &edges)
    }

    #[test]
    fn same_fixed_point_as_power_iteration() {
        let g = two_cluster_graph();
        let o = PageRankOptions::paper().with_tolerance(1e-11);
        let a = pagerank(&g, &o);
        let b = pagerank_extrapolated(&g, &o);
        assert!(b.converged);
        for (x, y) in a.scores.iter().zip(&b.scores) {
            assert!((x - y).abs() < 1e-8, "{x} vs {y}");
        }
    }

    #[test]
    fn faster_on_block_structured_graphs() {
        let g = two_cluster_graph();
        let o = PageRankOptions::paper()
            .with_tolerance(1e-11)
            .with_max_iterations(5_000);
        let plain = pagerank(&g, &o);
        let fast = pagerank_extrapolated(&g, &o);
        assert!(
            fast.iterations < plain.iterations,
            "extrapolated {} vs plain {}",
            fast.iterations,
            plain.iterations
        );
    }

    #[test]
    fn harmless_on_fast_mixing_graphs() {
        // A dense expander converges quickly; the jump must not break it.
        let n = 60u32;
        let mut edges = Vec::new();
        for i in 0..n {
            for k in [1u32, 7, 13, 29] {
                edges.push((i, (i + k) % n));
            }
        }
        let g = DiGraph::from_edges(n as usize, &edges);
        let o = PageRankOptions::paper().with_tolerance(1e-11);
        let a = pagerank(&g, &o);
        let b = pagerank_extrapolated(&g, &o);
        for (x, y) in a.scores.iter().zip(&b.scores) {
            assert!((x - y).abs() < 1e-8);
        }
    }

    #[test]
    fn mass_stays_normalized() {
        let g = two_cluster_graph();
        let r = pagerank_extrapolated(&g, &PageRankOptions::paper());
        assert!((r.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::from_edges(0, &[]);
        let r = pagerank_extrapolated(&g, &PageRankOptions::paper());
        assert!(r.converged && r.scores.is_empty());
    }
}
