//! Solver configuration.

/// Where the probability mass of dangling pages goes each step.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DanglingMode {
    /// A dangling page jumps uniformly to every page (`1/N` each).
    ///
    /// This is the model the paper's formulas assume and the one the
    /// extended-local-graph collapse in `approxrank-core` mirrors, so it is
    /// the default.
    #[default]
    UniformJump,
    /// A dangling page jumps according to the personalization vector.
    Personalization,
}

/// Parameters of the power iteration.
#[derive(Clone, Debug, PartialEq)]
pub struct PageRankOptions {
    /// Damping factor ε: probability of following a hyperlink
    /// (paper default 0.85).
    pub damping: f64,
    /// Convergence threshold on the L1 residual `‖x_{m} − x_{m−1}‖₁`
    /// (paper default 1e-5).
    pub tolerance: f64,
    /// Iteration cap; the solver reports non-convergence when reached.
    pub max_iterations: usize,
    /// Dangling-page model.
    pub dangling: DanglingMode,
    /// Worker threads for the parallel solver (1 = serial path).
    pub threads: usize,
    /// Record the residual after every iteration (for convergence plots).
    pub record_residuals: bool,
}

impl Default for PageRankOptions {
    fn default() -> Self {
        PageRankOptions {
            damping: 0.85,
            tolerance: 1e-5,
            max_iterations: 1000,
            dangling: DanglingMode::UniformJump,
            threads: 1,
            record_residuals: false,
        }
    }
}

impl PageRankOptions {
    /// The paper's experimental setting (ε = 0.85, L1 < 1e-5).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Builder-style damping override.
    ///
    /// # Panics
    /// Panics unless `0 < damping < 1`.
    pub fn with_damping(mut self, damping: f64) -> Self {
        assert!(
            damping > 0.0 && damping < 1.0,
            "damping must be in (0,1), got {damping}"
        );
        self.damping = damping;
        self
    }

    /// Builder-style tolerance override.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        assert!(tolerance > 0.0, "tolerance must be positive");
        self.tolerance = tolerance;
        self
    }

    /// Builder-style iteration cap override.
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Builder-style thread-count override.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one thread");
        self.threads = threads;
        self
    }

    /// Builder-style residual recording toggle.
    pub fn with_residuals(mut self) -> Self {
        self.record_residuals = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let o = PageRankOptions::paper();
        assert_eq!(o.damping, 0.85);
        assert_eq!(o.tolerance, 1e-5);
        assert_eq!(o.dangling, DanglingMode::UniformJump);
    }

    #[test]
    fn builders() {
        let o = PageRankOptions::default()
            .with_damping(0.9)
            .with_tolerance(1e-8)
            .with_max_iterations(10)
            .with_threads(4)
            .with_residuals();
        assert_eq!(o.damping, 0.9);
        assert_eq!(o.tolerance, 1e-8);
        assert_eq!(o.max_iterations, 10);
        assert_eq!(o.threads, 4);
        assert!(o.record_residuals);
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn damping_bounds() {
        PageRankOptions::default().with_damping(1.0);
    }
}
