//! Power iteration on the persistent work pool.
//!
//! One [`Executor`] is created per solve and reused by every iteration;
//! its workers park between jobs, so nothing is spawned per sweep. All
//! three passes of an iteration run on the pool:
//!
//! 1. contribution + dangling mass (`x[u]/deg(u)`, reduced over chunks),
//! 2. the pull sweep over the reverse adjacency (disjoint output chunks,
//!    partitioned by in-degree so hub-heavy graphs stay balanced),
//! 3. the L1 convergence residual (reduced over chunks).
//!
//! # Determinism
//!
//! The chunk grid depends only on the graph, and partial sums fold in
//! ascending chunk order on the dispatching thread, so scores are
//! bit-for-bit identical at any `threads` setting — including 1, which
//! runs the very same chunk walk inline ([`Executor::sequential`]).

use std::time::Instant;

use approxrank_exec::{Executor, Partition};
use approxrank_graph::DiGraph;
use approxrank_trace::{IterationEvent, Observer, Stopwatch};

use crate::{DanglingMode, PageRankOptions, PageRankResult};

/// Power iteration from an explicit start vector on a caller-supplied
/// executor. This is the single implementation behind both the serial and
/// parallel public entry points; see [`crate::pagerank_with_start`] for
/// the semantics and [`crate::emit_exec_stats`] for the telemetry hookup.
///
/// `options.threads` is ignored here — parallelism is whatever `exec`
/// provides. Reuse one executor across repeated solves (warm restarts,
/// the SC expansion loop) to amortize thread startup.
///
/// # Panics
/// Panics if vector lengths disagree with the node count.
pub fn pagerank_with_start_observed_on(
    graph: &DiGraph,
    options: &PageRankOptions,
    personalization: &[f64],
    start: &[f64],
    obs: &dyn Observer,
    exec: &Executor,
) -> PageRankResult {
    let n = graph.num_nodes();
    assert_eq!(personalization.len(), n, "personalization length mismatch");
    assert_eq!(start.len(), n, "start vector length mismatch");
    let t0 = Instant::now();
    if n == 0 {
        return PageRankResult {
            scores: Vec::new(),
            iterations: 0,
            converged: true,
            residuals: Vec::new(),
            elapsed: t0.elapsed(),
        };
    }
    let solver = if exec.is_parallel() {
        "parallel"
    } else {
        "power"
    };
    let _span = obs.span(solver);
    if exec.is_parallel() {
        obs.counter("threads", exec.threads() as u64);
    }
    let mut sweep = Stopwatch::start(obs);

    let eps = options.damping;
    let inv_n = 1.0 / n as f64;
    let dangling_mode = options.dangling;
    // Fixed chunk grids: a function of the graph only, never of the
    // thread count (the determinism guarantee hangs on this). The pull
    // sweep is partitioned by in-degree; the O(n) passes uniformly.
    let chunks = Partition::auto_chunks(n);
    let node_part = Partition::uniform(n, chunks);
    let edge_part = Partition::by_offsets(graph.reverse().offsets(), chunks);

    let mut x = start.to_vec();
    let mut next = vec![0.0f64; n];
    let mut contrib = vec![0.0f64; n];
    let mut residuals = Vec::new();
    let mut iterations = 0;
    let mut converged = false;

    while iterations < options.max_iterations {
        iterations += 1;
        // Pass 1: per-node contributions and the dangling-mass reduction.
        let xs = &x;
        let dangling_mass = exec
            .map_chunks(
                &mut contrib,
                &node_part,
                |_, range, slot| {
                    let mut dm = 0.0;
                    for (u, c) in range.zip(slot.iter_mut()) {
                        let d = graph.out_degree(u as u32);
                        if d == 0 {
                            dm += xs[u];
                            *c = 0.0;
                        } else {
                            *c = xs[u] / d as f64;
                        }
                    }
                    dm
                },
                |a, b| a + b,
            )
            .unwrap_or(0.0);
        // Pass 2: the pull sweep, each task owning a disjoint slice of
        // `next`. Per-node summation order is the in-neighbor order, same
        // as ever.
        let cs = &contrib;
        exec.for_each_chunk(&mut next, &edge_part, |_, range, out| {
            for (v, slot) in range.zip(out.iter_mut()) {
                let mut acc = 0.0;
                for &u in graph.in_neighbors(v as u32) {
                    acc += cs[u as usize];
                }
                let jump = match dangling_mode {
                    DanglingMode::UniformJump => dangling_mass * inv_n,
                    DanglingMode::Personalization => dangling_mass * personalization[v],
                };
                *slot = eps * (acc + jump) + (1.0 - eps) * personalization[v];
            }
        });
        // Pass 3: L1 residual, reduced over the same fixed grid.
        let delta = exec
            .map_reduce(
                &node_part,
                |_, range| {
                    let mut s = 0.0;
                    for v in range {
                        s += (next[v] - x[v]).abs();
                    }
                    s
                },
                |a, b| a + b,
            )
            .unwrap_or(0.0);
        std::mem::swap(&mut x, &mut next);
        obs.iteration(IterationEvent {
            solver,
            iteration: iterations - 1,
            residual: delta,
            dangling_mass,
            elapsed_ns: sweep.lap_ns(),
        });
        if options.record_residuals {
            residuals.push(delta);
        }
        if delta < options.tolerance {
            converged = true;
            break;
        }
    }

    PageRankResult {
        scores: x,
        iterations,
        converged,
        residuals,
        elapsed: t0.elapsed(),
    }
}

/// Parallel PageRank with a self-managed pool; invoked via
/// [`crate::pagerank_with_start`] when `options.threads > 1`. Prefer
/// [`pagerank_with_start_observed_on`] when you already hold an
/// [`Executor`] — this convenience spins one up per call.
pub fn pagerank_parallel(
    graph: &DiGraph,
    options: &PageRankOptions,
    personalization: &[f64],
    start: &[f64],
    obs: &dyn Observer,
) -> PageRankResult {
    let exec = executor_for(graph, options);
    let r = pagerank_with_start_observed_on(graph, options, personalization, start, obs, &exec);
    emit_exec_stats(&exec, obs);
    r
}

/// Builds the executor `options.threads` asks for, clamped so a tiny
/// graph never spawns more workers than it has nodes.
pub fn executor_for(graph: &DiGraph, options: &PageRankOptions) -> Executor {
    Executor::new(options.threads.min(graph.num_nodes().max(1)))
}

/// Forwards an executor's lifetime telemetry to an observer: counters
/// `pool_threads` / `pool_jobs` / `pool_tasks`, one `pool_worker_busy_ms`
/// gauge per lane (the spread across lanes is the imbalance story in
/// `subrank report`), and the `pool_imbalance` gauge (busiest lane ÷ mean
/// lane; 1.0 is perfectly balanced).
///
/// No-op for sequential executors and disabled observers.
pub fn emit_exec_stats(exec: &Executor, obs: &dyn Observer) {
    if !obs.enabled() || !exec.is_parallel() {
        return;
    }
    let s = exec.stats();
    obs.counter("pool_threads", s.threads as u64);
    obs.counter("pool_jobs", s.jobs);
    obs.counter("pool_tasks", s.tasks);
    for &ns in &s.busy_ns {
        obs.gauge("pool_worker_busy_ms", ns as f64 / 1e6);
    }
    obs.gauge("pool_imbalance", s.imbalance());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank;
    use approxrank_graph::DiGraph;

    fn ring_with_chords(n: usize) -> DiGraph {
        let mut edges = Vec::new();
        for i in 0..n as u32 {
            edges.push((i, (i + 1) % n as u32));
            if i % 3 == 0 {
                edges.push((i, (i + 7) % n as u32));
            }
        }
        // Add a few dangling pages: n..n+4 receive links but emit none.
        let base = n as u32;
        for k in 0..4u32 {
            edges.push((k, base + k));
        }
        DiGraph::from_edges(n + 4, &edges)
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let g = ring_with_chords(197);
        let serial = pagerank(&g, &PageRankOptions::paper().with_tolerance(1e-10));
        for threads in [2, 3, 8] {
            let par = pagerank(
                &g,
                &PageRankOptions::paper()
                    .with_tolerance(1e-10)
                    .with_threads(threads),
            );
            assert_eq!(serial.iterations, par.iterations);
            for (a, b) in serial.scores.iter().zip(&par.scores) {
                assert_eq!(a, b, "bit-identical summation order expected");
            }
        }
    }

    #[test]
    fn regression_byte_identical_across_one_two_seven_threads() {
        // The ISSUE's contract, on a graph big enough for several chunks
        // and with dangling pages so every reduction path is exercised.
        let g = ring_with_chords(1000);
        let mut runs = Vec::new();
        for threads in [1usize, 2, 7] {
            let r = pagerank(
                &g,
                &PageRankOptions::paper()
                    .with_tolerance(1e-12)
                    .with_threads(threads),
            );
            runs.push((threads, r));
        }
        let (_, reference) = &runs[0];
        for (threads, r) in &runs[1..] {
            assert_eq!(reference.iterations, r.iterations, "threads={threads}");
            let same_bytes = reference
                .scores
                .iter()
                .zip(&r.scores)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same_bytes, "threads={threads}: scores differ in some bit");
        }
    }

    #[test]
    fn shared_executor_reused_across_solves() {
        // The SC pattern: many warm-started solves over one pool. The
        // whole sequence must be bit-identical to the same sequence run
        // sequentially, and the pool's telemetry must accumulate.
        let g = ring_with_chords(300);
        let o = PageRankOptions::paper().with_tolerance(1e-10);
        let n = g.num_nodes();
        let p = vec![1.0 / n as f64; n];
        let chain = |exec: &Executor| {
            let mut warm = p.clone();
            for _ in 0..3 {
                let r = pagerank_with_start_observed_on(
                    &g,
                    &o,
                    &p,
                    &warm,
                    approxrank_trace::null(),
                    exec,
                );
                warm = r.scores;
            }
            warm
        };
        let pooled = Executor::new(4);
        let par = chain(&pooled);
        let seq = chain(&Executor::sequential());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a, b);
        }
        assert!(pooled.stats().jobs > 0, "the pool actually ran the solves");
    }

    #[test]
    fn more_threads_than_nodes() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let r = pagerank(&g, &PageRankOptions::paper().with_threads(64));
        assert!(r.converged);
        assert!((r.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pool_stats_reach_the_observer() {
        use approxrank_trace::{Event, Recorder};
        let g = ring_with_chords(500);
        let rec = Recorder::new();
        pagerank_parallel(
            &g,
            &PageRankOptions::paper().with_threads(3),
            &vec![1.0 / g.num_nodes() as f64; g.num_nodes()],
            &vec![1.0 / g.num_nodes() as f64; g.num_nodes()],
            &rec,
        );
        let events = rec.events();
        let counter = |name: &str| {
            events.iter().any(
                |e| matches!(e, Event::Counter { name: n, value, .. } if n == name && *value > 0),
            )
        };
        assert!(counter("pool_threads"));
        assert!(counter("pool_jobs"));
        assert!(counter("pool_tasks"));
        let busy = events
            .iter()
            .filter(|e| matches!(e, Event::Gauge { name, .. } if name == "pool_worker_busy_ms"))
            .count();
        assert_eq!(busy, 3, "one busy gauge per lane");
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::Gauge { name, .. } if name == "pool_imbalance")));
    }
}

#[cfg(test)]
mod edge_case_tests {
    use crate::{pagerank, pagerank_with_start, PageRankOptions};
    use approxrank_graph::DiGraph;

    #[test]
    fn single_node_graph_parallel() {
        let g = DiGraph::from_edges(1, &[]);
        let r = pagerank(&g, &PageRankOptions::paper().with_threads(8));
        assert!(r.converged);
        assert!((r.scores[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_personalized_matches_serial() {
        let g = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let p = [0.5, 0.1, 0.1, 0.1, 0.1, 0.1];
        let start = vec![1.0 / 6.0; 6];
        let o_serial = PageRankOptions::paper().with_tolerance(1e-11);
        let o_par = o_serial.clone().with_threads(3);
        let a = pagerank_with_start(&g, &o_serial, &p, &start);
        let b = pagerank_with_start(&g, &o_par, &p, &start);
        assert_eq!(a.scores, b.scores);
    }
}
