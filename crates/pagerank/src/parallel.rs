//! Multi-threaded pull-style power iteration.
//!
//! Each iteration computes per-node contributions serially (O(n)), then
//! splits the pull step — the O(edges) part — across scoped threads on
//! disjoint chunks of the output vector. No locks: every thread writes a
//! distinct slice and only reads the shared immutable state.

use std::time::Instant;

use approxrank_graph::DiGraph;
use approxrank_trace::{IterationEvent, Observer, Stopwatch};

use crate::power::l1_delta;
use crate::{DanglingMode, PageRankOptions, PageRankResult};

/// Parallel PageRank; invoked via [`crate::pagerank_with_start`] when
/// `options.threads > 1`. Produces bit-for-bit the same iteration sequence
/// as the serial path (same summation order per node).
///
/// Telemetry goes to `obs` (pass [`approxrank_trace::null()`] for none);
/// events are emitted from the coordinating thread only, so any
/// thread-safe [`Observer`] works unmodified.
pub fn pagerank_parallel(
    graph: &DiGraph,
    options: &PageRankOptions,
    personalization: &[f64],
    start: &[f64],
    obs: &dyn Observer,
) -> PageRankResult {
    let t0 = Instant::now();
    let n = graph.num_nodes();
    let threads = options.threads.min(n.max(1));
    let _span = obs.span("parallel");
    obs.counter("threads", threads as u64);
    let mut sweep = Stopwatch::start(obs);
    let eps = options.damping;
    let inv_n = 1.0 / n as f64;
    let mut x = start.to_vec();
    let mut next = vec![0.0f64; n];
    let mut contrib = vec![0.0f64; n];
    let mut residuals = Vec::new();
    let mut iterations = 0;
    let mut converged = false;

    while iterations < options.max_iterations {
        iterations += 1;
        let mut dangling_mass = 0.0;
        for u in 0..n {
            let d = graph.out_degree(u as u32);
            if d == 0 {
                dangling_mass += x[u];
                contrib[u] = 0.0;
            } else {
                contrib[u] = x[u] / d as f64;
            }
        }
        let chunk = n.div_ceil(threads);
        let contrib_ref = &contrib;
        let pers_ref = personalization;
        let dangling_mode = options.dangling;
        std::thread::scope(|scope| {
            let mut remaining: &mut [f64] = &mut next;
            let mut base = 0usize;
            let mut handles = Vec::with_capacity(threads);
            while !remaining.is_empty() {
                let take = chunk.min(remaining.len());
                let (head, tail) = remaining.split_at_mut(take);
                remaining = tail;
                let start_v = base;
                base += take;
                handles.push(scope.spawn(move || {
                    for (i, slot) in head.iter_mut().enumerate() {
                        let v = (start_v + i) as u32;
                        let mut acc = 0.0;
                        for &u in graph.in_neighbors(v) {
                            acc += contrib_ref[u as usize];
                        }
                        let jump = match dangling_mode {
                            DanglingMode::UniformJump => dangling_mass * inv_n,
                            DanglingMode::Personalization => dangling_mass * pers_ref[v as usize],
                        };
                        *slot = eps * (acc + jump) + (1.0 - eps) * pers_ref[v as usize];
                    }
                }));
            }
            for h in handles {
                h.join().expect("pagerank worker panicked");
            }
        });
        let delta = l1_delta(&next, &x);
        std::mem::swap(&mut x, &mut next);
        obs.iteration(IterationEvent {
            solver: "parallel",
            iteration: iterations - 1,
            residual: delta,
            dangling_mass,
            elapsed_ns: sweep.lap_ns(),
        });
        if options.record_residuals {
            residuals.push(delta);
        }
        if delta < options.tolerance {
            converged = true;
            break;
        }
    }

    PageRankResult {
        scores: x,
        iterations,
        converged,
        residuals,
        elapsed: t0.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank;
    use approxrank_graph::DiGraph;

    fn ring_with_chords(n: usize) -> DiGraph {
        let mut edges = Vec::new();
        for i in 0..n as u32 {
            edges.push((i, (i + 1) % n as u32));
            if i % 3 == 0 {
                edges.push((i, (i + 7) % n as u32));
            }
            if i % 5 == 0 {
                // make some dangling pages by not giving them the ring edge
            }
        }
        // Add a few dangling pages: n..n+4 receive links but emit none.
        let base = n as u32;
        for k in 0..4u32 {
            edges.push((k, base + k));
        }
        DiGraph::from_edges(n + 4, &edges)
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let g = ring_with_chords(197);
        let serial = pagerank(&g, &PageRankOptions::paper().with_tolerance(1e-10));
        for threads in [2, 3, 8] {
            let par = pagerank(
                &g,
                &PageRankOptions::paper()
                    .with_tolerance(1e-10)
                    .with_threads(threads),
            );
            assert_eq!(serial.iterations, par.iterations);
            for (a, b) in serial.scores.iter().zip(&par.scores) {
                assert_eq!(a, b, "bit-identical summation order expected");
            }
        }
    }

    #[test]
    fn more_threads_than_nodes() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let r = pagerank(&g, &PageRankOptions::paper().with_threads(64));
        assert!(r.converged);
        assert!((r.total_mass() - 1.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod edge_case_tests {
    use crate::{pagerank, pagerank_with_start, PageRankOptions};
    use approxrank_graph::DiGraph;

    #[test]
    fn single_node_graph_parallel() {
        let g = DiGraph::from_edges(1, &[]);
        let r = pagerank(&g, &PageRankOptions::paper().with_threads(8));
        assert!(r.converged);
        assert!((r.scores[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_personalized_matches_serial() {
        let g = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let p = [0.5, 0.1, 0.1, 0.1, 0.1, 0.1];
        let start = vec![1.0 / 6.0; 6];
        let o_serial = PageRankOptions::paper().with_tolerance(1e-11);
        let o_par = o_serial.clone().with_threads(3);
        let a = pagerank_with_start(&g, &o_serial, &p, &start);
        let b = pagerank_with_start(&g, &o_par, &p, &start);
        assert_eq!(a.scores, b.scores);
    }
}
