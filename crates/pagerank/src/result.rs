//! Solver output.

use std::time::Duration;

/// The outcome of a power-iteration solve.
#[derive(Clone, Debug)]
pub struct PageRankResult {
    /// Final score per node; sums to 1 for stochastic walks.
    pub scores: Vec<f64>,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Whether the L1 residual dropped below tolerance before the cap.
    pub converged: bool,
    /// Per-iteration residuals, when requested via
    /// [`crate::PageRankOptions::record_residuals`].
    pub residuals: Vec<f64>,
    /// Wall-clock time of the solve; always populated by the solvers.
    pub elapsed: Duration,
}

/// Timing is run-dependent, so equality compares everything *except*
/// `elapsed` — two solves of the same system are equal results.
impl PartialEq for PageRankResult {
    fn eq(&self, other: &Self) -> bool {
        self.scores == other.scores
            && self.iterations == other.iterations
            && self.converged == other.converged
            && self.residuals == other.residuals
    }
}

impl PageRankResult {
    /// Total probability mass (≈ 1 for stochastic models).
    pub fn total_mass(&self) -> f64 {
        self.scores.iter().sum()
    }

    /// Node indices sorted by descending score (ties by ascending id).
    pub fn ranking(&self) -> Vec<u32> {
        let mut idx: Vec<u32> = (0..self.scores.len() as u32).collect();
        idx.sort_by(|&a, &b| {
            self.scores[b as usize]
                .partial_cmp(&self.scores[a as usize])
                .expect("scores must not be NaN")
                .then(a.cmp(&b))
        });
        idx
    }

    /// The `k` highest-scoring nodes with their scores.
    pub fn top_k(&self, k: usize) -> Vec<(u32, f64)> {
        self.ranking()
            .into_iter()
            .take(k)
            .map(|i| (i, self.scores[i as usize]))
            .collect()
    }

    /// One-line human summary of the solve, e.g.
    /// `converged in 42 iterations, 1.3ms (residual 8.2e-6)`.
    pub fn summary(&self) -> String {
        let outcome = if self.converged {
            "converged in"
        } else {
            "hit iteration cap at"
        };
        let time = approxrank_trace::report::fmt_ns(self.elapsed.as_nanos() as u64);
        match self.residuals.last() {
            Some(r) => format!(
                "{outcome} {} iterations, {time} (residual {r:.1e})",
                self.iterations
            ),
            None => format!("{outcome} {} iterations, {time}", self.iterations),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r() -> PageRankResult {
        PageRankResult {
            scores: vec![0.1, 0.4, 0.2, 0.3],
            iterations: 5,
            converged: true,
            residuals: vec![],
            elapsed: Duration::from_micros(1500),
        }
    }

    #[test]
    fn ranking_descending() {
        assert_eq!(r().ranking(), vec![1, 3, 2, 0]);
    }

    #[test]
    fn ranking_tie_breaks_by_id() {
        let res = PageRankResult {
            scores: vec![0.5, 0.5, 0.2],
            iterations: 1,
            converged: true,
            residuals: vec![],
            elapsed: Duration::ZERO,
        };
        assert_eq!(res.ranking(), vec![0, 1, 2]);
    }

    #[test]
    fn top_k() {
        assert_eq!(r().top_k(2), vec![(1, 0.4), (3, 0.3)]);
        assert_eq!(r().top_k(10).len(), 4);
    }

    #[test]
    fn mass() {
        assert!((r().total_mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn equality_ignores_elapsed() {
        let mut a = r();
        let b = r();
        a.elapsed = Duration::from_secs(9);
        assert_eq!(a, b);
    }

    #[test]
    fn summary_mentions_outcome_and_time() {
        let s = r().summary();
        assert!(s.contains("converged in 5 iterations"), "{s}");
        assert!(s.contains("1.5µs") || s.contains("ms"), "{s}");

        let mut nc = r();
        nc.converged = false;
        nc.residuals = vec![0.5, 0.02];
        let s = nc.summary();
        assert!(s.contains("hit iteration cap"), "{s}");
        assert!(s.contains("2.0e-2"), "{s}");
    }
}
