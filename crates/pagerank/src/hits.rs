//! HITS — Hyperlink-Induced Topic Search (Kleinberg, JACM'99; the
//! paper's reference \[3\] and, with PageRank, one of the "two seminal
//! approaches" its introduction builds on).
//!
//! HITS separates each page's role into a *hub* score (how well it points
//! at good authorities) and an *authority* score (how well it is pointed
//! at by good hubs), computed by the mutually recursive power iteration
//!
//! ```text
//! a ← Lᵀh,   h ← La,   then L2-normalize both
//! ```
//!
//! over the link matrix `L`. Unlike PageRank it has no damping and is
//! usually run on a query-focused subgraph — which makes it a natural
//! companion for the subgraph machinery in `approxrank-core`.

use approxrank_graph::DiGraph;

/// Outcome of a HITS computation.
#[derive(Clone, Debug, PartialEq)]
pub struct HitsResult {
    /// Hub score per node (L2-normalized).
    pub hubs: Vec<f64>,
    /// Authority score per node (L2-normalized).
    pub authorities: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether both vectors converged within tolerance.
    pub converged: bool,
}

/// Options for the HITS iteration.
#[derive(Clone, Debug, PartialEq)]
pub struct HitsOptions {
    /// L1 convergence threshold on both vectors.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for HitsOptions {
    fn default() -> Self {
        HitsOptions {
            tolerance: 1e-8,
            max_iterations: 1000,
        }
    }
}

fn l2_normalize(v: &mut [f64]) {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

/// Runs HITS on `graph`.
pub fn hits(graph: &DiGraph, options: &HitsOptions) -> HitsResult {
    let n = graph.num_nodes();
    if n == 0 {
        return HitsResult {
            hubs: Vec::new(),
            authorities: Vec::new(),
            iterations: 0,
            converged: true,
        };
    }
    let init = 1.0 / (n as f64).sqrt();
    let mut hubs = vec![init; n];
    let mut authorities = vec![init; n];
    let mut new_h = vec![0.0f64; n];
    let mut new_a = vec![0.0f64; n];
    let mut iterations = 0;
    let mut converged = false;

    while iterations < options.max_iterations {
        iterations += 1;
        // a ← Lᵀ h
        for (v, slot) in new_a.iter_mut().enumerate() {
            *slot = graph
                .in_neighbors(v as u32)
                .iter()
                .map(|&u| hubs[u as usize])
                .sum();
        }
        l2_normalize(&mut new_a);
        // h ← L a (using the fresh authorities, the standard update).
        for (u, slot) in new_h.iter_mut().enumerate() {
            *slot = graph
                .out_neighbors(u as u32)
                .iter()
                .map(|&v| new_a[v as usize])
                .sum();
        }
        l2_normalize(&mut new_h);
        let delta: f64 = new_a
            .iter()
            .zip(&authorities)
            .chain(new_h.iter().zip(&hubs))
            .map(|(x, y)| (x - y).abs())
            .sum();
        std::mem::swap(&mut authorities, &mut new_a);
        std::mem::swap(&mut hubs, &mut new_h);
        if delta < options.tolerance {
            converged = true;
            break;
        }
    }

    HitsResult {
        hubs,
        authorities,
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_and_authority_separate_roles() {
        // 0 and 1 are hubs pointing at authorities 2, 3; 4 is noise.
        let g = DiGraph::from_edges(5, &[(0, 2), (0, 3), (1, 2), (1, 3), (4, 0)]);
        let r = hits(&g, &HitsOptions::default());
        assert!(r.converged);
        // Authorities 2,3 dominate the authority vector.
        assert!(r.authorities[2] > r.authorities[0]);
        assert!(r.authorities[3] > r.authorities[4]);
        // Hubs 0,1 dominate the hub vector.
        assert!(r.hubs[0] > r.hubs[2]);
        assert!(r.hubs[1] > r.hubs[3]);
        // 0 also receives a link, but it's from a weak hub.
        assert!(r.authorities[2] > r.authorities[0]);
    }

    #[test]
    fn vectors_are_l2_normalized() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let r = hits(&g, &HitsOptions::default());
        let norm = |v: &[f64]| v.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm(&r.hubs) - 1.0).abs() < 1e-9);
        assert!((norm(&r.authorities) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bipartite_core_is_the_fixed_point() {
        // Complete bipartite 2x2 core plus an isolated page: the classic
        // HITS motivating structure.
        let g = DiGraph::from_edges(5, &[(0, 2), (0, 3), (1, 2), (1, 3)]);
        let r = hits(&g, &HitsOptions::default());
        assert!((r.hubs[0] - r.hubs[1]).abs() < 1e-9, "symmetric hubs");
        assert!(
            (r.authorities[2] - r.authorities[3]).abs() < 1e-9,
            "symmetric authorities"
        );
        assert!((r.hubs[0] - 1.0 / 2f64.sqrt()).abs() < 1e-6);
        assert_eq!(r.hubs[4], 0.0);
        assert_eq!(r.authorities[4], 0.0);
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let r = hits(&DiGraph::from_edges(0, &[]), &HitsOptions::default());
        assert!(r.converged && r.hubs.is_empty());
        let r = hits(&DiGraph::from_edges(3, &[]), &HitsOptions::default());
        assert!(r.hubs.iter().all(|&h| h == 0.0));
    }
}
