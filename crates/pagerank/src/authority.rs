//! ObjectRank-style authority flow on weighted graphs.
//!
//! The semantic-ranking scenario of the paper (Figures 2–3) replaces the
//! uniform `1/out_degree` transition with per-edge *authority transfer
//! rates* set by a domain expert. Two flow models are supported:
//!
//! * [`FlowModel::Stochastic`] — rows are normalized so each node emits
//!   exactly its own mass (a proper random walk; total mass conserved).
//! * [`FlowModel::Raw`] — rates are used as-is, as in ObjectRank, where a
//!   node may transfer less (leak) or more (amplify) than its own mass.
//!   The iteration still converges for damping < 1 / spectral-radius, which
//!   holds for the sub-stochastic assignments used in practice.

use std::time::Instant;

use approxrank_trace::{IterationEvent, Observer, Stopwatch};

use crate::{PageRankOptions, PageRankResult, WeightedDiGraph};

/// How edge weights become transition probabilities.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FlowModel {
    /// Normalize each node's out-weights to sum to one; nodes with zero
    /// out-weight behave like dangling pages (uniform jump).
    #[default]
    Stochastic,
    /// Use the raw authority transfer rates (ObjectRank semantics).
    Raw,
}

/// Runs damped authority flow `x' = ε·Wᵀx (+ dangling) + (1−ε)·p`.
///
/// # Panics
/// Panics if `personalization.len() != graph.num_nodes()`.
pub fn authority_flow(
    graph: &WeightedDiGraph,
    options: &PageRankOptions,
    personalization: &[f64],
    model: FlowModel,
) -> PageRankResult {
    authority_flow_observed(
        graph,
        options,
        personalization,
        model,
        approxrank_trace::null(),
    )
}

/// [`authority_flow`] with telemetry.
///
/// # Panics
/// Panics if `personalization.len() != graph.num_nodes()`.
pub fn authority_flow_observed(
    graph: &WeightedDiGraph,
    options: &PageRankOptions,
    personalization: &[f64],
    model: FlowModel,
    obs: &dyn Observer,
) -> PageRankResult {
    let t0 = Instant::now();
    let n = graph.num_nodes();
    assert_eq!(personalization.len(), n, "personalization length mismatch");
    if n == 0 {
        return PageRankResult {
            scores: Vec::new(),
            iterations: 0,
            converged: true,
            residuals: Vec::new(),
            elapsed: t0.elapsed(),
        };
    }
    let _span = obs.span("authority_flow");
    let mut sweep = Stopwatch::start(obs);
    let eps = options.damping;
    let inv_n = 1.0 / n as f64;
    // Per-node emission scale: 1/out_weight_sum for Stochastic, 1 for Raw.
    let scale: Vec<f64> = (0..n as u32)
        .map(|u| {
            let s = graph.out_weight_sum(u);
            match model {
                FlowModel::Stochastic if s > 0.0 => 1.0 / s,
                FlowModel::Stochastic => 0.0, // dangling, handled below
                FlowModel::Raw => 1.0,
            }
        })
        .collect();

    let mut x = vec![inv_n; n];
    let mut next = vec![0.0f64; n];
    let mut iterations = 0;
    let mut converged = false;
    let mut residuals = Vec::new();

    while iterations < options.max_iterations {
        iterations += 1;
        let dangling_mass: f64 = if model == FlowModel::Stochastic {
            (0..n)
                .filter(|&u| graph.out_weight_sum(u as u32) == 0.0)
                .map(|u| x[u])
                .sum()
        } else {
            0.0
        };
        for v in 0..n {
            let (sources, weights) = graph.in_edges(v as u32);
            let mut acc = 0.0;
            for (&u, &w) in sources.iter().zip(weights) {
                acc += x[u as usize] * w * scale[u as usize];
            }
            next[v] = eps * (acc + dangling_mass * inv_n) + (1.0 - eps) * personalization[v];
        }
        let delta = crate::power::l1_delta(&next, &x);
        std::mem::swap(&mut x, &mut next);
        obs.iteration(IterationEvent {
            solver: "authority_flow",
            iteration: iterations - 1,
            residual: delta,
            dangling_mass,
            elapsed_ns: sweep.lap_ns(),
        });
        if options.record_residuals {
            residuals.push(delta);
        }
        if delta < options.tolerance {
            converged = true;
            break;
        }
    }

    PageRankResult {
        scores: x,
        iterations,
        converged,
        residuals,
        elapsed: t0.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxrank_graph::DiGraph;

    fn opts() -> PageRankOptions {
        PageRankOptions::paper().with_tolerance(1e-12)
    }

    #[test]
    fn stochastic_matches_unweighted_pagerank() {
        let d = DiGraph::from_edges(5, &[(0, 1), (0, 2), (1, 2), (2, 0), (3, 0)]);
        let w = WeightedDiGraph::from_unweighted(&d);
        let p = vec![0.2; 5];
        let a = authority_flow(&w, &opts(), &p, FlowModel::Stochastic);
        let b = crate::pagerank(&d, &opts());
        for (x, y) in a.scores.iter().zip(&b.scores) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn raw_model_respects_transfer_rates() {
        // 0 transfers 0.9 of its authority to 1 and only 0.1 to 2.
        let g = WeightedDiGraph::from_edges(3, &[(0, 1, 0.9), (0, 2, 0.1)]);
        let p = vec![1.0 / 3.0; 3];
        let r = authority_flow(&g, &opts(), &p, FlowModel::Raw);
        assert!(r.converged);
        assert!(r.scores[1] > r.scores[2]);
    }

    #[test]
    fn raw_model_leaks_mass() {
        // Sub-stochastic rows: total mass < 1 at the fixed point.
        let g = WeightedDiGraph::from_edges(2, &[(0, 1, 0.5), (1, 0, 0.5)]);
        let p = vec![0.5, 0.5];
        let r = authority_flow(&g, &opts(), &p, FlowModel::Raw);
        assert!(r.total_mass() < 1.0);
        assert!(r.total_mass() > 0.0);
    }

    #[test]
    fn stochastic_conserves_mass() {
        let g = WeightedDiGraph::from_edges(3, &[(0, 1, 2.0), (0, 2, 6.0), (1, 0, 1.0)]);
        let p = vec![1.0 / 3.0; 3];
        let r = authority_flow(&g, &opts(), &p, FlowModel::Stochastic);
        assert!((r.total_mass() - 1.0).abs() < 1e-9);
        // 0 sends 3/4 of its walk mass to 2, 1/4 to 1.
        assert!(r.scores[2] > r.scores[1]);
    }

    #[test]
    fn empty_graph() {
        let g = WeightedDiGraph::from_edges(0, &[]);
        let r = authority_flow(&g, &opts(), &[], FlowModel::Raw);
        assert!(r.converged && r.scores.is_empty());
    }
}
