//! Gauss–Seidel PageRank: in-place updates that consume fresh values
//! within the same sweep.
//!
//! Related-work context for the paper's §II-B: solving the PageRank
//! linear system `(I − εAᵀ)x = (1−ε)p` with Gauss–Seidel sweeps converges
//! roughly twice as fast as Jacobi-style power iteration on web graphs.
//! The harness uses it as an independent solver to cross-validate the
//! power iteration's fixed point.

use std::time::Instant;

use approxrank_exec::{Executor, Partition};
use approxrank_graph::DiGraph;
use approxrank_trace::{IterationEvent, Observer, Stopwatch};

use crate::{PageRankOptions, PageRankResult};

/// Gauss–Seidel solve of the PageRank system with uniform
/// personalization and uniform dangling jumps.
///
/// Uses the *lumped* formulation (Langville & Meyer): because the
/// dangling jump distribution equals the uniform personalization vector,
/// the PageRank vector is the normalized solution of the dangling-free
/// linear system `x = εĀᵀx + (1−ε)/N` (where `Ā` zeroes dangling rows).
/// Gauss–Seidel sweeps that system in ascending id order, consuming
/// fresh values within the sweep, and normalizes at the end.
pub fn pagerank_gauss_seidel(graph: &DiGraph, options: &PageRankOptions) -> PageRankResult {
    pagerank_gauss_seidel_observed(graph, options, approxrank_trace::null())
}

/// [`pagerank_gauss_seidel`] with telemetry.
pub fn pagerank_gauss_seidel_observed(
    graph: &DiGraph,
    options: &PageRankOptions,
    obs: &dyn Observer,
) -> PageRankResult {
    let t0 = Instant::now();
    let n = graph.num_nodes();
    if n == 0 {
        return PageRankResult {
            scores: Vec::new(),
            iterations: 0,
            converged: true,
            residuals: Vec::new(),
            elapsed: t0.elapsed(),
        };
    }
    let _span = obs.span("gauss_seidel");
    let mut sweep = Stopwatch::start(obs);
    let inv_n = 1.0 / n as f64;
    let eps = options.damping;
    let mut x = vec![inv_n; n];
    let mut iterations = 0;
    let mut converged = false;
    let mut residuals = Vec::new();

    // Cache reciprocal degrees once.
    let inv_deg: Vec<f64> = (0..n as u32)
        .map(|u| {
            let d = graph.out_degree(u);
            if d == 0 {
                0.0
            } else {
                1.0 / d as f64
            }
        })
        .collect();

    while iterations < options.max_iterations {
        iterations += 1;
        let mut delta = 0.0;
        for v in 0..n {
            let mut acc = 0.0;
            for &u in graph.in_neighbors(v as u32) {
                acc += x[u as usize] * inv_deg[u as usize];
            }
            let new = eps * acc + (1.0 - eps) * inv_n;
            delta += (new - x[v]).abs();
            x[v] = new;
        }
        // The lumped solution's mass is below 1; compare the residual at
        // the scale of the final normalized vector so the tolerance means
        // the same thing as in the power iteration.
        let mass: f64 = x.iter().sum();
        let scaled = if mass > 0.0 { delta / mass } else { delta };
        obs.iteration(IterationEvent {
            solver: "gauss_seidel",
            iteration: iterations - 1,
            residual: scaled,
            // The lumped system has no explicit dangling term; the leaked
            // mass (1 − Σx before normalization) plays that role.
            dangling_mass: (1.0 - mass).max(0.0),
            elapsed_ns: sweep.lap_ns(),
        });
        if options.record_residuals {
            residuals.push(scaled);
        }
        if scaled < options.tolerance {
            converged = true;
            break;
        }
    }

    // Undo the lumping: the true PageRank is the normalized solution.
    let mass: f64 = x.iter().sum();
    if mass > 0.0 {
        for v in x.iter_mut() {
            *v /= mass;
        }
    }

    PageRankResult {
        scores: x,
        iterations,
        converged,
        residuals,
        elapsed: t0.elapsed(),
    }
}

/// Red/black (two-color) Gauss–Seidel: the parallelizable variant.
///
/// Nodes are colored by id parity. Each sweep updates all even nodes,
/// then all odd nodes; within a color the updates read a snapshot taken
/// at the start of the half-sweep (Jacobi within color, Gauss–Seidel
/// across colors), which makes every update independent of its
/// same-color peers — so the half-sweep fans out over the pool and the
/// result is bit-identical at any thread count. Converges between Jacobi
/// and true sequential Gauss–Seidel; same lumped formulation and final
/// normalization as [`pagerank_gauss_seidel`].
pub fn pagerank_gauss_seidel_red_black(
    graph: &DiGraph,
    options: &PageRankOptions,
) -> PageRankResult {
    pagerank_gauss_seidel_red_black_observed(graph, options, approxrank_trace::null())
}

/// [`pagerank_gauss_seidel_red_black`] with telemetry. Builds an executor
/// per call from `options.threads`; use
/// [`pagerank_gauss_seidel_red_black_on`] to reuse one.
pub fn pagerank_gauss_seidel_red_black_observed(
    graph: &DiGraph,
    options: &PageRankOptions,
    obs: &dyn Observer,
) -> PageRankResult {
    let exec = crate::parallel::executor_for(graph, options);
    let r = pagerank_gauss_seidel_red_black_on(graph, options, obs, &exec);
    crate::parallel::emit_exec_stats(&exec, obs);
    r
}

/// [`pagerank_gauss_seidel_red_black`] on a caller-supplied executor.
pub fn pagerank_gauss_seidel_red_black_on(
    graph: &DiGraph,
    options: &PageRankOptions,
    obs: &dyn Observer,
    exec: &Executor,
) -> PageRankResult {
    let t0 = Instant::now();
    let n = graph.num_nodes();
    if n == 0 {
        return PageRankResult {
            scores: Vec::new(),
            iterations: 0,
            converged: true,
            residuals: Vec::new(),
            elapsed: t0.elapsed(),
        };
    }
    let _span = obs.span("gauss_seidel_rb");
    let mut sweep = Stopwatch::start(obs);
    let inv_n = 1.0 / n as f64;
    let eps = options.damping;
    let chunks = Partition::auto_chunks(n);
    let node_part = Partition::uniform(n, chunks);
    let edge_part = Partition::by_offsets(graph.reverse().offsets(), chunks);
    let mut x = vec![inv_n; n];
    let mut snap = vec![0.0f64; n];
    let mut iterations = 0;
    let mut converged = false;
    let mut residuals = Vec::new();

    let inv_deg: Vec<f64> = (0..n as u32)
        .map(|u| {
            let d = graph.out_degree(u);
            if d == 0 {
                0.0
            } else {
                1.0 / d as f64
            }
        })
        .collect();

    while iterations < options.max_iterations {
        iterations += 1;
        let mut delta = 0.0;
        for color in 0..2usize {
            // The half-sweep reads this frozen copy (which already holds
            // the other color's fresh values) and writes only its own
            // color's entries of `x` — disjoint chunks, no aliasing.
            snap.copy_from_slice(&x);
            let frozen = &snap;
            let ideg = &inv_deg;
            delta += exec
                .map_chunks(
                    &mut x,
                    &edge_part,
                    |_, range, slot| {
                        let mut d = 0.0;
                        for (v, xv) in range.zip(slot.iter_mut()) {
                            if v % 2 != color {
                                continue;
                            }
                            let mut acc = 0.0;
                            for &u in graph.in_neighbors(v as u32) {
                                acc += frozen[u as usize] * ideg[u as usize];
                            }
                            let new = eps * acc + (1.0 - eps) * inv_n;
                            d += (new - *xv).abs();
                            *xv = new;
                        }
                        d
                    },
                    |a, b| a + b,
                )
                .unwrap_or(0.0);
        }
        let mass = exec
            .map_reduce(
                &node_part,
                |_, range| {
                    let mut s = 0.0;
                    for v in range {
                        s += x[v];
                    }
                    s
                },
                |a, b| a + b,
            )
            .unwrap_or(0.0);
        let scaled = if mass > 0.0 { delta / mass } else { delta };
        obs.iteration(IterationEvent {
            solver: "gauss_seidel_rb",
            iteration: iterations - 1,
            residual: scaled,
            dangling_mass: (1.0 - mass).max(0.0),
            elapsed_ns: sweep.lap_ns(),
        });
        if options.record_residuals {
            residuals.push(scaled);
        }
        if scaled < options.tolerance {
            converged = true;
            break;
        }
    }

    let mass: f64 = x.iter().sum();
    if mass > 0.0 {
        for v in x.iter_mut() {
            *v /= mass;
        }
    }

    PageRankResult {
        scores: x,
        iterations,
        converged,
        residuals,
        elapsed: t0.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank;

    fn graph() -> DiGraph {
        let n = 250u32;
        let mut edges = Vec::new();
        for i in 0..n {
            edges.push((i, (i * 7 + 3) % n));
            if i % 4 != 0 {
                edges.push((i, (i + 1) % n));
            }
        }
        DiGraph::from_edges(n as usize, &edges)
    }

    #[test]
    fn agrees_with_power_iteration() {
        let g = graph();
        let o = PageRankOptions::paper().with_tolerance(1e-12);
        let a = pagerank(&g, &o);
        let b = pagerank_gauss_seidel(&g, &o);
        assert!(b.converged);
        for (x, y) in a.scores.iter().zip(&b.scores) {
            assert!((x - y).abs() < 1e-8, "{x} vs {y}");
        }
    }

    #[test]
    fn converges_in_fewer_sweeps() {
        let g = graph();
        let o = PageRankOptions::paper().with_tolerance(1e-12);
        let power = pagerank(&g, &o);
        let gs = pagerank_gauss_seidel(&g, &o);
        assert!(
            gs.iterations < power.iterations,
            "GS {} vs power {}",
            gs.iterations,
            power.iterations
        );
    }

    #[test]
    fn handles_dangling_pages() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (0, 3)]);
        let o = PageRankOptions::paper().with_tolerance(1e-12);
        let a = pagerank(&g, &o);
        let b = pagerank_gauss_seidel(&g, &o);
        for (x, y) in a.scores.iter().zip(&b.scores) {
            assert!((x - y).abs() < 1e-8);
        }
        assert!((b.total_mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn red_black_agrees_with_power_iteration() {
        let g = graph();
        let o = PageRankOptions::paper().with_tolerance(1e-12);
        let a = pagerank(&g, &o);
        let b = pagerank_gauss_seidel_red_black(&g, &o);
        assert!(b.converged);
        for (x, y) in a.scores.iter().zip(&b.scores) {
            assert!((x - y).abs() < 1e-8, "{x} vs {y}");
        }
    }

    #[test]
    fn red_black_bit_identical_across_thread_counts() {
        let g = graph();
        let reference =
            pagerank_gauss_seidel_red_black(&g, &PageRankOptions::paper().with_tolerance(1e-12));
        for threads in [2usize, 7] {
            let r = pagerank_gauss_seidel_red_black(
                &g,
                &PageRankOptions::paper()
                    .with_tolerance(1e-12)
                    .with_threads(threads),
            );
            assert_eq!(reference.iterations, r.iterations);
            assert!(
                reference
                    .scores
                    .iter()
                    .zip(&r.scores)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn red_black_handles_dangling_and_conserves_mass() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (0, 3)]);
        let o = PageRankOptions::paper().with_tolerance(1e-12);
        let a = pagerank(&g, &o);
        let b = pagerank_gauss_seidel_red_black(&g, &o);
        for (x, y) in a.scores.iter().zip(&b.scores) {
            assert!((x - y).abs() < 1e-8);
        }
        assert!((b.total_mass() - 1.0).abs() < 1e-12);
    }
}
