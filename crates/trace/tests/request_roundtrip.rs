//! Property tests for the request-trace wire format: `emit ∘ parse_line`
//! must reproduce arbitrary span trees bit-for-bit (gauge floats
//! included), and the lenient multi-line parser must never lose a good
//! line to a bad neighbor.

use approxrank_trace::request::{emit, parse_line, parse_lines, RequestTrace, SpanNode};
use proptest::collection::vec;
use proptest::prelude::*;

/// Printable-ish names with JSON-hostile characters mixed in: the
/// selector appends a quote, backslash, newline, or control byte to an
/// arbitrary non-control base string.
fn name_strategy() -> impl Strategy<Value = String> {
    ("\\PC{1,8}", 0u32..6).prop_map(|(mut base, hostile)| {
        match hostile {
            0 => base.push('"'),
            1 => base.push('\\'),
            2 => base.push('\n'),
            3 => base.push('\u{1}'),
            4 => base.push('é'),
            _ => {}
        }
        base
    })
}

/// Arbitrary floats, with non-finite and signed-zero edge cases forced
/// in regularly.
fn gauge_strategy() -> impl Strategy<Value = f64> {
    (any::<f64>(), 0u32..8).prop_map(|(x, pick)| match pick {
        0 => f64::INFINITY,
        1 => f64::NEG_INFINITY,
        2 => -0.0,
        3 => 0.1,
        _ => x,
    })
}

fn leaf_strategy() -> impl Strategy<Value = SpanNode> {
    (
        name_strategy(),
        any::<u64>(),
        any::<u64>(),
        0u64..1000,
        vec((name_strategy(), any::<u64>()), 0..4),
        vec((name_strategy(), gauge_strategy()), 0..4),
    )
        .prop_map(
            |(name, start_ns, elapsed_ns, iterations, counters, gauges)| SpanNode {
                name,
                start_ns,
                elapsed_ns,
                iterations,
                counters,
                gauges,
                children: Vec::new(),
            },
        )
}

fn tree_strategy() -> impl Strategy<Value = SpanNode> {
    (
        leaf_strategy(),
        vec(leaf_strategy(), 0..4),
        vec(leaf_strategy(), 0..3),
    )
        .prop_map(|(mut root, children, grandchildren)| {
            root.children = children;
            if let Some(first) = root.children.first_mut() {
                first.children = grandchildren;
            }
            root
        })
}

fn trace_strategy() -> impl Strategy<Value = RequestTrace> {
    (
        name_strategy(),
        name_strategy(),
        name_strategy(),
        any::<u64>(),
        tree_strategy(),
    )
        .prop_map(|(trace_id, method, path, total_ns, root)| RequestTrace {
            trace_id,
            method,
            path,
            status: (total_ns % 600) as u16,
            total_ns,
            root,
        })
}

/// NaN gauges break `PartialEq`; compare through a second emit instead,
/// which is the actual bitwise guarantee (shortest round-trip floats).
fn assert_bitwise_equal(a: &RequestTrace, b: &RequestTrace) {
    assert_eq!(emit(a), emit(b));
}

proptest! {
    #[test]
    fn emit_parse_round_trips_bitwise(trace in trace_strategy()) {
        let line = emit(&trace);
        prop_assert!(!line.contains('\n'), "emit must stay single-line");
        let parsed = parse_line(&line).expect("emitted line must parse");
        assert_bitwise_equal(&parsed, &trace);
    }

    #[test]
    fn torn_neighbors_never_lose_good_lines(trace in trace_strategy(), cut in 1usize..200) {
        let good = emit(&trace);
        // Truncate at a char boundary strictly inside the line.
        let limit = cut.min(good.len() - 1);
        let end = (0..=limit).rev().find(|&i| good.is_char_boundary(i)).unwrap();
        let torn = &good[..end];
        let input = format!("{good}\n{torn}\n{good}\n");
        let parsed = parse_lines(&input);
        // Both intact lines always survive; the torn line either parses
        // (a cut inside trailing digits can still be valid JSON — it
        // just isn't the same trace) or is counted as skipped.
        prop_assert_eq!(
            parsed.traces.len() + parsed.skipped,
            if torn.is_empty() { 2 } else { 3 }
        );
        prop_assert!(parsed.traces.len() >= 2);
        assert_bitwise_equal(&parsed.traces[0], &trace);
        assert_bitwise_equal(parsed.traces.last().unwrap(), &trace);
    }
}
