//! Solver telemetry for the ApproxRank workspace.
//!
//! Every solver and ranker accepts a `&dyn Observer`. Instrumentation is
//! structured around three primitives:
//!
//! * **Spans** — named wall-clock intervals ([`Span`], created via
//!   `obs.span("solve")`), closed automatically on drop.
//! * **Counters / gauges** — one-off named values (`obs.counter`,
//!   `obs.gauge`).
//! * **Iteration events** — one [`Event::Iteration`] per solver sweep,
//!   carrying the iteration index, L1 residual, dangling mass, and the
//!   sweep's elapsed time.
//!
//! The disabled path is free by construction: every helper checks
//! [`Observer::enabled`] before reading the clock or allocating, so a
//! solver instrumented against [`null()`] performs no `Instant::now()`
//! calls and no heap traffic beyond what it already did.
//!
//! Collectors live in [`recorder`] (thread-safe in-memory [`Recorder`]),
//! with exporters in [`jsonl`] (line-delimited JSON, hand-rolled — this
//! crate has zero dependencies) and [`report`] (aggregated human-readable
//! tables). The serving stack's request-scoped layer lives in
//! [`request`] (trace ids, per-request span trees, the `/debug/requests`
//! ring) and [`logging`] (structured leveled JSONL logging that stamps
//! every line with the active trace id); [`Tee`] fans one event stream
//! out to two observers so a request recorder and the process metrics
//! both see every span.
//!
//! # Example
//!
//! Record a span, a counter, and a gauge, then aggregate them into a
//! run report:
//!
//! ```
//! use approxrank_trace::{Observer, Recorder, RunReport};
//!
//! let rec = Recorder::new();
//! let obs: &dyn Observer = &rec;
//! {
//!     let _span = obs.span("solve");
//!     obs.counter("pages", 4);
//!     obs.gauge("dangling_mass", 0.25);
//! }
//! let report = RunReport::from_events(&rec.events());
//! assert_eq!(report.spans[0].name, "solve");
//! assert_eq!(report.counters[0].last, 4);
//! assert_eq!(report.gauges[0].last, 0.25);
//! ```

#![deny(missing_docs)]

pub mod event;
pub mod jsonl;
pub mod logging;
pub mod recorder;
pub mod report;
pub mod request;

pub use event::{Event, IterationEvent};
pub use recorder::Recorder;
pub use report::RunReport;
pub use request::{RequestRecorder, RequestTrace, TraceId, TraceRing};

use std::time::Instant;

/// A sink for telemetry [`Event`]s.
///
/// Implementations must be cheap to query via [`enabled`](Self::enabled):
/// instrumented code calls it on hot paths to decide whether to read the
/// clock at all.
pub trait Observer: Sync {
    /// Whether this observer wants events. When `false`, instrumented
    /// code skips all timing and allocation.
    fn enabled(&self) -> bool;

    /// Accepts one event. Only called when [`enabled`](Self::enabled)
    /// returns `true`.
    fn record(&self, event: Event);
}

impl dyn Observer + '_ {
    /// Opens a named span; the matching [`Event::SpanEnd`] is recorded
    /// when the returned guard drops.
    pub fn span(&self, name: &str) -> Span<'_> {
        if self.enabled() {
            self.record(Event::SpanStart {
                name: name.to_string(),
            });
            Span {
                obs: self,
                live: Some((name.to_string(), Instant::now())),
            }
        } else {
            Span {
                obs: self,
                live: None,
            }
        }
    }

    /// Records a named integer value.
    pub fn counter(&self, name: &str, value: u64) {
        if self.enabled() {
            self.record(Event::Counter {
                name: name.to_string(),
                value,
            });
        }
    }

    /// Records a named float value.
    pub fn gauge(&self, name: &str, value: f64) {
        if self.enabled() {
            self.record(Event::Gauge {
                name: name.to_string(),
                value,
            });
        }
    }

    /// Records one solver sweep.
    pub fn iteration(&self, it: IterationEvent<'_>) {
        if self.enabled() {
            self.record(Event::Iteration {
                solver: it.solver.to_string(),
                iteration: it.iteration,
                residual: it.residual,
                dangling_mass: it.dangling_mass,
                elapsed_ns: it.elapsed_ns,
            });
        }
    }
}

/// RAII guard for a span: records [`Event::SpanEnd`] with the elapsed
/// time when dropped. Obtained from `obs.span(..)`.
pub struct Span<'a> {
    obs: &'a dyn Observer,
    live: Option<(String, Instant)>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some((name, start)) = self.live.take() {
            self.obs.record(Event::SpanEnd {
                name,
                elapsed_ns: start.elapsed().as_nanos() as u64,
            });
        }
    }
}

/// A clock that only ticks when the observer is enabled.
///
/// Solvers use this for per-iteration timings: on the disabled path it
/// holds no `Instant` and every query returns zero.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    start: Option<Instant>,
}

impl Stopwatch {
    /// Starts the clock if `obs` is enabled; otherwise a no-op watch.
    pub fn start(obs: &dyn Observer) -> Self {
        Stopwatch {
            start: obs.enabled().then(Instant::now),
        }
    }

    /// Nanoseconds since start (0 when disabled).
    pub fn elapsed_ns(&self) -> u64 {
        self.start
            .map(|s| s.elapsed().as_nanos() as u64)
            .unwrap_or(0)
    }

    /// Nanoseconds since start or the previous `lap_ns` call, restarting
    /// the interval (0 when disabled).
    pub fn lap_ns(&mut self) -> u64 {
        match self.start {
            Some(ref mut s) => {
                let now = Instant::now();
                let ns = now.duration_since(*s).as_nanos() as u64;
                *s = now;
                ns
            }
            None => 0,
        }
    }
}

/// Fans one event stream out to two observers — the serving layer tees
/// each request's [`RequestRecorder`] with the process-wide metrics
/// aggregator so both see every span.
pub struct Tee<'a>(
    /// First sink (receives each event first).
    pub &'a dyn Observer,
    /// Second sink.
    pub &'a dyn Observer,
);

impl Observer for Tee<'_> {
    fn enabled(&self) -> bool {
        self.0.enabled() || self.1.enabled()
    }

    fn record(&self, event: Event) {
        if self.0.enabled() {
            if self.1.enabled() {
                self.1.record(event.clone());
            }
            self.0.record(event);
        } else if self.1.enabled() {
            self.1.record(event);
        }
    }
}

/// The observer that ignores everything. [`enabled`](Observer::enabled)
/// is `false`, so instrumented code short-circuits before any work.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: Event) {}
}

/// The shared no-op observer — the default argument for every
/// instrumented entry point.
pub fn null() -> &'static dyn Observer {
    static NULL: NullObserver = NullObserver;
    &NULL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_observer_is_disabled() {
        let obs = null();
        assert!(!obs.enabled());
        // None of these should do anything (or panic).
        let _span = obs.span("noop");
        obs.counter("c", 1);
        obs.gauge("g", 1.0);
        obs.iteration(IterationEvent {
            solver: "power",
            iteration: 0,
            residual: 0.0,
            dangling_mass: 0.0,
            elapsed_ns: 0,
        });
    }

    #[test]
    fn span_records_start_and_end() {
        let rec = Recorder::new();
        let obs: &dyn Observer = &rec;
        {
            let _span = obs.span("solve");
            obs.counter("inner", 7);
        }
        let events = rec.events();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events[0],
            Event::SpanStart {
                name: "solve".into()
            }
        );
        assert!(matches!(
            events[1],
            Event::Counter { ref name, value: 7 } if name == "inner"
        ));
        assert!(matches!(
            events[2],
            Event::SpanEnd { ref name, .. } if name == "solve"
        ));
    }

    #[test]
    fn stopwatch_disabled_returns_zero() {
        let mut watch = Stopwatch::start(null());
        assert_eq!(watch.elapsed_ns(), 0);
        assert_eq!(watch.lap_ns(), 0);
    }

    #[test]
    fn stopwatch_enabled_ticks() {
        let rec = Recorder::new();
        let obs: &dyn Observer = &rec;
        let mut watch = Stopwatch::start(obs);
        std::hint::black_box((0..1000).sum::<u64>());
        let first = watch.lap_ns();
        let _second = watch.lap_ns();
        assert!(watch.elapsed_ns() > 0 || first > 0);
    }
}
