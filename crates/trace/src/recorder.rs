//! The in-memory event collector.

use std::sync::Mutex;

use crate::{Event, Observer};

/// Thread-safe in-memory collector: every recorded [`Event`] is appended
/// to an internal vector under a mutex.
///
/// Safe to share across the scoped threads of `pagerank_parallel`;
/// contention is negligible because solvers emit one event per sweep,
/// not per node.
#[derive(Debug, Default)]
pub struct Recorder {
    events: Mutex<Vec<Event>>,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// A snapshot of all events recorded so far, in order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("recorder poisoned").clone()
    }

    /// Removes and returns all events recorded so far.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().expect("recorder poisoned"))
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("recorder poisoned").len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Observer for Recorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, event: Event) {
        self.events.lock().expect("recorder poisoned").push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let rec = Recorder::new();
        let obs: &dyn Observer = &rec;
        obs.counter("a", 1);
        obs.counter("b", 2);
        let events = rec.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name(), "a");
        assert_eq!(events[1].name(), "b");
    }

    #[test]
    fn take_drains() {
        let rec = Recorder::new();
        let obs: &dyn Observer = &rec;
        obs.gauge("x", 0.5);
        assert_eq!(rec.take().len(), 1);
        assert!(rec.is_empty());
    }

    #[test]
    fn shared_across_threads() {
        let rec = Recorder::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let rec = &rec;
                scope.spawn(move || {
                    let obs: &dyn Observer = rec;
                    for i in 0..25 {
                        obs.counter("thread", t * 100 + i);
                    }
                });
            }
        });
        assert_eq!(rec.len(), 100);
    }
}
