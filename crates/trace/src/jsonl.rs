//! JSON-lines export and import for [`Event`] streams.
//!
//! One event per line, flat objects only. Both directions are hand
//! rolled — this crate has no serde. Floats are written with Rust's
//! shortest round-trip `{:?}` formatting, so `parse(&emit(events))`
//! reproduces the input bit-for-bit; non-finite floats emit as `NaN` /
//! `inf` / `-inf` (a deviation from strict JSON that only this parser
//! needs to read back).

use crate::Event;

/// Serializes events, one JSON object per line (trailing newline
/// included when non-empty).
pub fn emit(events: &[Event]) -> String {
    let mut out = String::new();
    for event in events {
        emit_event(&mut out, event);
        out.push('\n');
    }
    out
}

fn emit_event(out: &mut String, event: &Event) {
    match event {
        Event::SpanStart { name } => {
            out.push_str("{\"type\":\"span_start\",\"name\":");
            emit_str(out, name);
            out.push('}');
        }
        Event::SpanEnd { name, elapsed_ns } => {
            out.push_str("{\"type\":\"span_end\",\"name\":");
            emit_str(out, name);
            out.push_str(&format!(",\"elapsed_ns\":{elapsed_ns}}}"));
        }
        Event::Counter { name, value } => {
            out.push_str("{\"type\":\"counter\",\"name\":");
            emit_str(out, name);
            out.push_str(&format!(",\"value\":{value}}}"));
        }
        Event::Gauge { name, value } => {
            out.push_str("{\"type\":\"gauge\",\"name\":");
            emit_str(out, name);
            out.push_str(&format!(",\"value\":{value:?}}}"));
        }
        Event::Iteration {
            solver,
            iteration,
            residual,
            dangling_mass,
            elapsed_ns,
        } => {
            out.push_str("{\"type\":\"iteration\",\"solver\":");
            emit_str(out, solver);
            out.push_str(&format!(
                ",\"iteration\":{iteration},\"residual\":{residual:?},\
                 \"dangling_mass\":{dangling_mass:?},\"elapsed_ns\":{elapsed_ns}}}"
            ));
        }
    }
}

fn emit_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses the output of [`emit`] (blank lines ignored). Returns the
/// first malformed line's number and problem on error.
pub fn parse(input: &str) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    for (idx, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let event =
            parse_line(line).map_err(|e| format!("line {}: {} (in {:?})", idx + 1, e, line))?;
        events.push(event);
    }
    Ok(events)
}

/// A scanned field value: strings decoded, numbers kept raw so integer
/// fields parse without a float round-trip.
enum Value {
    Str(String),
    Num(String),
}

impl Value {
    fn as_str(&self) -> Result<&str, String> {
        match self {
            Value::Str(s) => Ok(s),
            Value::Num(n) => Err(format!("expected string, got number {n}")),
        }
    }

    fn as_u64(&self) -> Result<u64, String> {
        match self {
            Value::Num(n) => n.parse().map_err(|e| format!("bad integer {n}: {e}")),
            Value::Str(s) => Err(format!("expected number, got string {s:?}")),
        }
    }

    fn as_f64(&self) -> Result<f64, String> {
        match self {
            Value::Num(n) => match n.as_str() {
                "inf" => Ok(f64::INFINITY),
                "-inf" => Ok(f64::NEG_INFINITY),
                "NaN" => Ok(f64::NAN),
                n => n.parse().map_err(|e| format!("bad float {n}: {e}")),
            },
            Value::Str(s) => Err(format!("expected number, got string {s:?}")),
        }
    }
}

fn parse_line(line: &str) -> Result<Event, String> {
    let fields = scan_object(line)?;
    let get = |key: &str| -> Result<&Value, String> {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field {key:?}"))
    };
    match get("type")?.as_str()? {
        "span_start" => Ok(Event::SpanStart {
            name: get("name")?.as_str()?.to_string(),
        }),
        "span_end" => Ok(Event::SpanEnd {
            name: get("name")?.as_str()?.to_string(),
            elapsed_ns: get("elapsed_ns")?.as_u64()?,
        }),
        "counter" => Ok(Event::Counter {
            name: get("name")?.as_str()?.to_string(),
            value: get("value")?.as_u64()?,
        }),
        "gauge" => Ok(Event::Gauge {
            name: get("name")?.as_str()?.to_string(),
            value: get("value")?.as_f64()?,
        }),
        "iteration" => Ok(Event::Iteration {
            solver: get("solver")?.as_str()?.to_string(),
            iteration: get("iteration")?.as_u64()? as usize,
            residual: get("residual")?.as_f64()?,
            dangling_mass: get("dangling_mass")?.as_f64()?,
            elapsed_ns: get("elapsed_ns")?.as_u64()?,
        }),
        other => Err(format!("unknown event type {other:?}")),
    }
}

/// Scans a single flat JSON object `{"k": v, ...}` with string or number
/// values.
fn scan_object(line: &str) -> Result<Vec<(String, Value)>, String> {
    let mut chars = line.chars().peekable();
    let mut fields = Vec::new();
    expect(&mut chars, '{')?;
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
    } else {
        loop {
            skip_ws(&mut chars);
            let key = scan_string(&mut chars)?;
            skip_ws(&mut chars);
            expect(&mut chars, ':')?;
            skip_ws(&mut chars);
            let value = match chars.peek() {
                Some('"') => Value::Str(scan_string(&mut chars)?),
                Some(_) => Value::Num(scan_number(&mut chars)?),
                None => return Err("unexpected end of line".into()),
            };
            fields.push((key, value));
            skip_ws(&mut chars);
            match chars.next() {
                Some(',') => continue,
                Some('}') => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
    skip_ws(&mut chars);
    match chars.next() {
        None => Ok(fields),
        Some(c) => Err(format!("trailing character {c:?}")),
    }
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars>) {
    while chars.peek().is_some_and(|c| c.is_ascii_whitespace()) {
        chars.next();
    }
}

fn expect(chars: &mut std::iter::Peekable<std::str::Chars>, want: char) -> Result<(), String> {
    match chars.next() {
        Some(c) if c == want => Ok(()),
        other => Err(format!("expected {want:?}, got {other:?}")),
    }
}

fn scan_string(chars: &mut std::iter::Peekable<std::str::Chars>) -> Result<String, String> {
    expect(chars, '"')?;
    let mut s = String::new();
    loop {
        match chars.next() {
            None => return Err("unterminated string".into()),
            Some('"') => return Ok(s),
            Some('\\') => match chars.next() {
                Some('"') => s.push('"'),
                Some('\\') => s.push('\\'),
                Some('/') => s.push('/'),
                Some('n') => s.push('\n'),
                Some('t') => s.push('\t'),
                Some('r') => s.push('\r'),
                Some('b') => s.push('\u{0008}'),
                Some('f') => s.push('\u{000C}'),
                Some('u') => {
                    let code = scan_hex4(chars)?;
                    match char::from_u32(code) {
                        Some(c) => s.push(c),
                        // Surrogate pairs: names here are ASCII, so a
                        // lone surrogate is simply rejected.
                        None => return Err(format!("invalid \\u escape {code:04x}")),
                    }
                }
                other => return Err(format!("bad escape {other:?}")),
            },
            Some(c) => s.push(c),
        }
    }
}

fn scan_hex4(chars: &mut std::iter::Peekable<std::str::Chars>) -> Result<u32, String> {
    let mut code = 0u32;
    for _ in 0..4 {
        let c = chars.next().ok_or("truncated \\u escape")?;
        code = code * 16
            + c.to_digit(16)
                .ok_or_else(|| format!("bad hex digit {c:?}"))?;
    }
    Ok(code)
}

fn scan_number(chars: &mut std::iter::Peekable<std::str::Chars>) -> Result<String, String> {
    let mut s = String::new();
    while chars
        .peek()
        .is_some_and(|&c| c.is_ascii_alphanumeric() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
    {
        s.push(chars.next().unwrap());
    }
    if s.is_empty() {
        Err("expected a number".into())
    } else {
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::SpanStart {
                name: "solve".into(),
            },
            Event::Iteration {
                solver: "power".into(),
                iteration: 0,
                residual: 0.123456789,
                dangling_mass: 1e-7,
                elapsed_ns: 42_000,
            },
            Event::Counter {
                name: "boundary_nodes".into(),
                value: 17,
            },
            Event::Gauge {
                name: "skipped_fraction".into(),
                value: 0.1,
            },
            Event::SpanEnd {
                name: "solve".into(),
                elapsed_ns: 1_234_567,
            },
        ]
    }

    #[test]
    fn round_trip() {
        let events = sample_events();
        let text = emit(&events);
        assert_eq!(parse(&text).unwrap(), events);
    }

    #[test]
    fn escapes_round_trip() {
        let events = vec![Event::SpanStart {
            name: "odd \"name\"\\with\nstuff\u{1}".into(),
        }];
        assert_eq!(parse(&emit(&events)).unwrap(), events);
    }

    #[test]
    fn blank_lines_ignored() {
        let events = sample_events();
        let text = format!("\n{}\n\n", emit(&events));
        assert_eq!(parse(&text).unwrap(), events);
    }

    #[test]
    fn malformed_line_reports_position() {
        let err = parse("{\"type\":\"counter\",\"name\":\"x\"}").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        assert!(err.contains("value"), "{err}");
    }

    #[test]
    fn unknown_type_rejected() {
        assert!(parse("{\"type\":\"mystery\"}").is_err());
    }

    #[test]
    fn non_finite_gauges_round_trip() {
        let events = vec![
            Event::Gauge {
                name: "a".into(),
                value: f64::INFINITY,
            },
            Event::Gauge {
                name: "b".into(),
                value: f64::NEG_INFINITY,
            },
        ];
        assert_eq!(parse(&emit(&events)).unwrap(), events);
    }
}
