//! Request-scoped tracing: trace ids, per-request span trees, a ring
//! buffer of completed traces, and a JSONL wire format.
//!
//! The serving layer creates one [`RequestRecorder`] per inbound HTTP
//! request and threads it (as a `&dyn Observer`, usually teed with the
//! process-wide metrics observer) through router → engine → store →
//! solver. Spans nest into a tree by thread: each recording thread keeps
//! its own span stack, and a span opened on a thread with an empty stack
//! (a fan-out pool lane, say) parents to the root — the router labels
//! those with per-shard span names so attribution stays legible.
//!
//! Completed [`RequestTrace`]s are held in a fixed-capacity [`TraceRing`]
//! for `GET /debug/requests`, and serialized one-per-line by [`emit`] for
//! the slow-query log. [`parse_line`] is strict; [`parse_lines`] /
//! [`parse_lines_bytes`] are deliberately lenient (skip-and-count, never
//! panic) because slow-query files are appended by a live server and may
//! end mid-line or interleave torn writes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::Instant;

use crate::{Event, Observer};

/// Trace-id helpers: 16-hex-char request identifiers.
pub struct TraceId;

impl TraceId {
    /// Generates a fresh id: 16 lowercase hex chars mixed from the wall
    /// clock, the process id, and a per-process counter (splitmix64
    /// finalizer — no RNG dependency, negligible collision odds within
    /// one trace ring).
    pub fn generate() -> String {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let mut x =
            nanos ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ ((std::process::id() as u64) << 32);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        format!("{x:016x}")
    }

    /// Whether an inbound `X-Request-Id` header value is acceptable for
    /// propagation: 1–64 chars of `[0-9A-Za-z._-]`. Anything else gets a
    /// fresh id instead (headers are attacker-controlled; ids end up in
    /// log lines and metric labels).
    pub fn is_valid(s: &str) -> bool {
        !s.is_empty()
            && s.len() <= 64
            && s.bytes()
                .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
    }
}

/// One node of a request's span tree.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanNode {
    /// Span name (`"http.rank"`, `"engine.solve"`, `"store.wal_append"`,
    /// or a solver span like `"solve"`).
    pub name: String,
    /// Offset of the span's start from the request's start.
    pub start_ns: u64,
    /// Wall-clock length of the span (0 while still open).
    pub elapsed_ns: u64,
    /// Solver sweeps recorded while this span was the active one.
    pub iterations: u64,
    /// Counters recorded while this span was active, in order (dupes
    /// kept).
    pub counters: Vec<(String, u64)>,
    /// Gauges recorded while this span was active, in order.
    pub gauges: Vec<(String, f64)>,
    /// Child spans, in start order per thread.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    fn new(name: String, start_ns: u64) -> SpanNode {
        SpanNode {
            name,
            start_ns,
            elapsed_ns: 0,
            iterations: 0,
            counters: Vec::new(),
            gauges: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Self time: elapsed minus the children's elapsed (saturating, since
    /// concurrent children on fan-out lanes can overlap the parent).
    pub fn self_ns(&self) -> u64 {
        let children: u64 = self.children.iter().map(|c| c.elapsed_ns).sum();
        self.elapsed_ns.saturating_sub(children)
    }

    /// Depth-first walk over the node and all descendants.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a SpanNode)) {
        f(self);
        for child in &self.children {
            child.walk(f);
        }
    }
}

/// One completed request: identity, outcome, and the span tree.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestTrace {
    /// The request's trace id (echoed as `X-Request-Id`).
    pub trace_id: String,
    /// HTTP method.
    pub method: String,
    /// Request path.
    pub path: String,
    /// Response status code.
    pub status: u16,
    /// End-to-end handling time.
    pub total_ns: u64,
    /// The span tree; the root's name is `"request"`.
    pub root: SpanNode,
}

struct RecorderInner {
    root: SpanNode,
    /// Per-thread span stacks as index paths from the root, so spans
    /// recorded concurrently from fan-out lanes nest under their own
    /// lineage instead of corrupting each other's.
    stacks: HashMap<ThreadId, Vec<usize>>,
}

impl RecorderInner {
    fn node_at(&mut self, path: &[usize]) -> &mut SpanNode {
        let mut node = &mut self.root;
        for &i in path {
            node = &mut node.children[i];
        }
        node
    }
}

/// Builds one request's span tree from [`Event`]s. Always enabled; one
/// recorder per request, so the mutex is effectively uncontended except
/// during cross-shard fan-out (a handful of events per shard).
pub struct RequestRecorder {
    trace_id: String,
    started: Instant,
    inner: Mutex<RecorderInner>,
}

impl RequestRecorder {
    /// A recorder for one request with the given trace id.
    pub fn new(trace_id: String) -> RequestRecorder {
        RequestRecorder {
            trace_id,
            started: Instant::now(),
            inner: Mutex::new(RecorderInner {
                root: SpanNode::new("request".to_string(), 0),
                stacks: HashMap::new(),
            }),
        }
    }

    /// The id this recorder was created with.
    pub fn trace_id(&self) -> &str {
        &self.trace_id
    }

    /// Seals the tree into a [`RequestTrace`]. Spans still open (a
    /// panicking handler, say) keep `elapsed_ns == 0`.
    pub fn finish(self, method: &str, path: &str, status: u16) -> RequestTrace {
        let total_ns = self.started.elapsed().as_nanos() as u64;
        let mut inner = self.inner.into_inner().unwrap_or_else(|e| e.into_inner());
        inner.root.elapsed_ns = total_ns;
        RequestTrace {
            trace_id: self.trace_id,
            method: method.to_string(),
            path: path.to_string(),
            status,
            total_ns,
            root: inner.root,
        }
    }
}

impl Observer for RequestRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, event: Event) {
        let offset_ns = self.started.elapsed().as_nanos() as u64;
        let thread = std::thread::current().id();
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        match event {
            Event::SpanStart { name } => {
                let path = inner.stacks.entry(thread).or_default().clone();
                let parent = inner.node_at(&path);
                parent.children.push(SpanNode::new(name, offset_ns));
                let child = parent.children.len() - 1;
                inner
                    .stacks
                    .get_mut(&thread)
                    .expect("stack just inserted")
                    .push(child);
            }
            Event::SpanEnd { elapsed_ns, .. } => {
                if let Some(stack) = inner.stacks.get_mut(&thread) {
                    if let Some(idx) = stack.pop() {
                        let path = stack.clone();
                        let parent = inner.node_at(&path);
                        if let Some(child) = parent.children.get_mut(idx) {
                            // 0 means "never closed"; clamp real spans
                            // up to 1 ns so the sentinel stays unique.
                            child.elapsed_ns = elapsed_ns.max(1);
                        }
                    }
                }
            }
            Event::Counter { name, value } => {
                let path = inner.stacks.get(&thread).cloned().unwrap_or_default();
                inner.node_at(&path).counters.push((name, value));
            }
            Event::Gauge { name, value } => {
                let path = inner.stacks.get(&thread).cloned().unwrap_or_default();
                inner.node_at(&path).gauges.push((name, value));
            }
            Event::Iteration { .. } => {
                let path = inner.stacks.get(&thread).cloned().unwrap_or_default();
                inner.node_at(&path).iterations += 1;
            }
        }
    }
}

/// Fixed-capacity ring of the most recent completed request traces.
/// One mutex-guarded `VecDeque` — pushes move an owned trace, snapshots
/// clone, and neither happens on the solver hot path.
pub struct TraceRing {
    capacity: usize,
    inner: Mutex<std::collections::VecDeque<RequestTrace>>,
}

impl TraceRing {
    /// A ring keeping the last `capacity` traces (capacity is clamped to
    /// at least 1).
    pub fn new(capacity: usize) -> TraceRing {
        TraceRing {
            capacity: capacity.max(1),
            inner: Mutex::new(std::collections::VecDeque::new()),
        }
    }

    /// Appends a completed trace, evicting the oldest when full.
    pub fn push(&self, trace: RequestTrace) {
        let mut ring = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// All held traces, oldest first.
    pub fn snapshot(&self) -> Vec<RequestTrace> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// Number of traces currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------
// Wire format: one JSON object per trace, one trace per line.
// ---------------------------------------------------------------------

/// Serializes one trace as a single-line JSON object (no trailing
/// newline). Field order is fixed, floats use shortest round-trip `{:?}`
/// formatting (`NaN` / `inf` / `-inf` for non-finite), so
/// `parse_line(&emit(t)) == t` bit-for-bit.
pub fn emit(trace: &RequestTrace) -> String {
    let mut out = String::new();
    out.push_str("{\"trace_id\":");
    emit_str(&mut out, &trace.trace_id);
    out.push_str(",\"method\":");
    emit_str(&mut out, &trace.method);
    out.push_str(",\"path\":");
    emit_str(&mut out, &trace.path);
    out.push_str(&format!(
        ",\"status\":{},\"total_ns\":{},\"root\":",
        trace.status, trace.total_ns
    ));
    emit_node(&mut out, &trace.root);
    out.push('}');
    out
}

fn emit_node(out: &mut String, node: &SpanNode) {
    out.push_str("{\"name\":");
    emit_str(out, &node.name);
    out.push_str(&format!(
        ",\"start_ns\":{},\"elapsed_ns\":{},\"iterations\":{},\"counters\":[",
        node.start_ns, node.elapsed_ns, node.iterations
    ));
    for (i, (name, value)) in node.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        emit_str(out, name);
        out.push_str(&format!(",{value}]"));
    }
    out.push_str("],\"gauges\":[");
    for (i, (name, value)) in node.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        emit_str(out, name);
        out.push_str(&format!(",{value:?}]"));
    }
    out.push_str("],\"children\":[");
    for (i, child) in node.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        emit_node(out, child);
    }
    out.push_str("]}");
}

fn emit_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A lenient multi-line parse: traces that parse, plus a count of lines
/// that did not.
#[derive(Debug, Default)]
pub struct ParsedTraces {
    /// Successfully parsed traces, in file order.
    pub traces: Vec<RequestTrace>,
    /// Lines skipped as malformed (truncated, torn, or non-UTF8).
    pub skipped: usize,
}

/// Parses a slow-query / capture file leniently: blank lines are
/// ignored, malformed lines are counted and skipped, and nothing panics.
pub fn parse_lines(input: &str) -> ParsedTraces {
    let mut out = ParsedTraces::default();
    for line in input.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match parse_line(line) {
            Ok(trace) => out.traces.push(trace),
            Err(_) => out.skipped += 1,
        }
    }
    out
}

/// [`parse_lines`] over raw bytes: lines that are not valid UTF-8 are
/// counted as skipped rather than aborting the whole file.
pub fn parse_lines_bytes(input: &[u8]) -> ParsedTraces {
    let mut out = ParsedTraces::default();
    for line in input.split(|&b| b == b'\n') {
        match std::str::from_utf8(line) {
            Ok(line) => {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                match parse_line(line) {
                    Ok(trace) => out.traces.push(trace),
                    Err(_) => out.skipped += 1,
                }
            }
            Err(_) => out.skipped += 1,
        }
    }
    out
}

/// Strictly parses one line produced by [`emit`].
pub fn parse_line(line: &str) -> Result<RequestTrace, String> {
    let (value, rest) = JsonScanner::new(line).value(0)?;
    if !rest.trim().is_empty() {
        return Err(format!("trailing content {rest:?}"));
    }
    trace_from(&value)
}

// A tiny recursive JSON reader, private to this module. `jsonl` stays
// flat-object-only for solver event streams; span trees need nesting.
// Numbers are kept as raw text so u64 fields parse without a float
// round-trip and gauges keep the emit side's exact bits.

enum JVal {
    Num(String),
    Str(String),
    Arr(Vec<JVal>),
    Obj(Vec<(String, JVal)>),
}

impl JVal {
    fn field<'a>(&'a self, key: &str) -> Result<&'a JVal, String> {
        match self {
            JVal::Obj(pairs) => pairs
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field {key:?}")),
            _ => Err(format!("expected object for field {key:?}")),
        }
    }

    fn str(&self) -> Result<&str, String> {
        match self {
            JVal::Str(s) => Ok(s),
            _ => Err("expected string".into()),
        }
    }

    fn u64(&self) -> Result<u64, String> {
        match self {
            JVal::Num(n) => n.parse().map_err(|e| format!("bad integer {n}: {e}")),
            _ => Err("expected number".into()),
        }
    }

    fn f64(&self) -> Result<f64, String> {
        match self {
            JVal::Num(n) => match n.as_str() {
                "inf" => Ok(f64::INFINITY),
                "-inf" => Ok(f64::NEG_INFINITY),
                "NaN" => Ok(f64::NAN),
                n => n.parse().map_err(|e| format!("bad float {n}: {e}")),
            },
            _ => Err("expected number".into()),
        }
    }

    fn arr(&self) -> Result<&[JVal], String> {
        match self {
            JVal::Arr(items) => Ok(items),
            _ => Err("expected array".into()),
        }
    }
}

struct JsonScanner<'a> {
    rest: &'a str,
}

const MAX_DEPTH: usize = 64;

impl<'a> JsonScanner<'a> {
    fn new(input: &'a str) -> JsonScanner<'a> {
        JsonScanner { rest: input }
    }

    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start();
    }

    fn value(mut self, depth: usize) -> Result<(JVal, &'a str), String> {
        let v = self.scan_value(depth)?;
        Ok((v, self.rest))
    }

    fn scan_value(&mut self, depth: usize) -> Result<JVal, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        self.skip_ws();
        match self.rest.as_bytes().first() {
            Some(b'"') => Ok(JVal::Str(self.scan_string()?)),
            Some(b'{') => {
                self.rest = &self.rest[1..];
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.rest.starts_with('}') {
                    self.rest = &self.rest[1..];
                    return Ok(JVal::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.scan_string()?;
                    self.skip_ws();
                    if !self.rest.starts_with(':') {
                        return Err("expected ':'".into());
                    }
                    self.rest = &self.rest[1..];
                    let value = self.scan_value(depth + 1)?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.rest.as_bytes().first() {
                        Some(b',') => self.rest = &self.rest[1..],
                        Some(b'}') => {
                            self.rest = &self.rest[1..];
                            return Ok(JVal::Obj(pairs));
                        }
                        _ => return Err("expected ',' or '}'".into()),
                    }
                }
            }
            Some(b'[') => {
                self.rest = &self.rest[1..];
                let mut items = Vec::new();
                self.skip_ws();
                if self.rest.starts_with(']') {
                    self.rest = &self.rest[1..];
                    return Ok(JVal::Arr(items));
                }
                loop {
                    items.push(self.scan_value(depth + 1)?);
                    self.skip_ws();
                    match self.rest.as_bytes().first() {
                        Some(b',') => self.rest = &self.rest[1..],
                        Some(b']') => {
                            self.rest = &self.rest[1..];
                            return Ok(JVal::Arr(items));
                        }
                        _ => return Err("expected ',' or ']'".into()),
                    }
                }
            }
            Some(_) => Ok(JVal::Num(self.scan_number()?)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn scan_string(&mut self) -> Result<String, String> {
        if !self.rest.starts_with('"') {
            return Err("expected '\"'".into());
        }
        let mut chars = self.rest[1..].char_indices();
        let mut s = String::new();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    self.rest = &self.rest[1 + i + 1..];
                    return Ok(s);
                }
                '\\' => match chars.next().map(|(_, c)| c) {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('/') => s.push('/'),
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('r') => s.push('\r'),
                    Some('b') => s.push('\u{0008}'),
                    Some('f') => s.push('\u{000C}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let c = chars.next().map(|(_, c)| c).ok_or("truncated \\u")?;
                            code = code * 16 + c.to_digit(16).ok_or("bad hex digit")?;
                        }
                        s.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                c => s.push(c),
            }
        }
        Err("unterminated string".into())
    }

    fn scan_number(&mut self) -> Result<String, String> {
        let end = self
            .rest
            .bytes()
            .position(|b| !(b.is_ascii_alphanumeric() || matches!(b, b'-' | b'+' | b'.')))
            .unwrap_or(self.rest.len());
        if end == 0 {
            return Err("expected a number".into());
        }
        let (num, rest) = self.rest.split_at(end);
        self.rest = rest;
        Ok(num.to_string())
    }
}

fn trace_from(v: &JVal) -> Result<RequestTrace, String> {
    Ok(RequestTrace {
        trace_id: v.field("trace_id")?.str()?.to_string(),
        method: v.field("method")?.str()?.to_string(),
        path: v.field("path")?.str()?.to_string(),
        status: v.field("status")?.u64()? as u16,
        total_ns: v.field("total_ns")?.u64()?,
        root: node_from(v.field("root")?)?,
    })
}

fn node_from(v: &JVal) -> Result<SpanNode, String> {
    fn pair(item: &JVal) -> Result<(String, &JVal), String> {
        let items = item.arr()?;
        if items.len() != 2 {
            return Err("expected a [name, value] pair".into());
        }
        Ok((items[0].str()?.to_string(), &items[1]))
    }
    let mut counters = Vec::new();
    for item in v.field("counters")?.arr()? {
        let (name, value) = pair(item)?;
        counters.push((name, value.u64()?));
    }
    let mut gauges = Vec::new();
    for item in v.field("gauges")?.arr()? {
        let (name, value) = pair(item)?;
        gauges.push((name, value.f64()?));
    }
    let mut children = Vec::new();
    for item in v.field("children")?.arr()? {
        children.push(node_from(item)?);
    }
    Ok(SpanNode {
        name: v.field("name")?.str()?.to_string(),
        start_ns: v.field("start_ns")?.u64()?,
        elapsed_ns: v.field("elapsed_ns")?.u64()?,
        iterations: v.field("iterations")?.u64()?,
        counters,
        gauges,
        children,
    })
}

// ---------------------------------------------------------------------
// Aggregation & rendering (shared by `subrank report --requests` and
// loadgen's `--capture` mode).
// ---------------------------------------------------------------------

/// Per-layer self-time totals across a set of traces.
#[derive(Clone, Debug, PartialEq)]
pub struct LayerStat {
    /// Layer name: the span-name prefix before the first `.` (`"http"`,
    /// `"router"`, `"engine"`, `"store"`), or `"solver"` for undotted
    /// solver spans, `"other"` for the root's own untracked time.
    pub layer: String,
    /// Spans attributed to this layer.
    pub spans: u64,
    /// Summed self time (elapsed minus children).
    pub total_ns: u64,
    /// Largest single-span self time.
    pub max_ns: u64,
}

/// The layer a span name belongs to (see [`LayerStat::layer`]).
pub fn layer_of(name: &str) -> &str {
    match name.split_once('.') {
        Some((prefix, _))
            if matches!(
                prefix,
                "http" | "router" | "engine" | "store" | "serve" | "rpc"
            ) =>
        {
            prefix
        }
        _ if name == "request" => "other",
        _ => "solver",
    }
}

/// Folds a set of traces into per-layer self-time totals, largest total
/// first.
pub fn layer_breakdown(traces: &[RequestTrace]) -> Vec<LayerStat> {
    let mut layers: std::collections::BTreeMap<&str, LayerStat> = std::collections::BTreeMap::new();
    for trace in traces {
        trace.root.walk(&mut |node| {
            let layer = layer_of(&node.name);
            let stat = layers.entry(layer).or_insert_with(|| LayerStat {
                layer: layer.to_string(),
                spans: 0,
                total_ns: 0,
                max_ns: 0,
            });
            let own = node.self_ns();
            stat.spans += 1;
            stat.total_ns += own;
            stat.max_ns = stat.max_ns.max(own);
        });
    }
    let mut out: Vec<LayerStat> = layers.into_values().collect();
    out.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.layer.cmp(&b.layer)));
    out
}

/// Renders a span tree as indented text, one span per line:
/// `name  elapsed  [iterations / counters]`.
pub fn render_tree(node: &SpanNode) -> String {
    let mut out = String::new();
    render_node(&mut out, node, 0);
    out
}

fn render_node(out: &mut String, node: &SpanNode, depth: usize) {
    out.push_str(&"  ".repeat(depth));
    out.push_str(&format!("{} {}", node.name, fmt_ns(node.elapsed_ns)));
    if node.iterations > 0 {
        out.push_str(&format!("  ({} iterations)", node.iterations));
    }
    for (name, value) in &node.counters {
        out.push_str(&format!("  {name}={value}"));
    }
    out.push('\n');
    for child in &node.children {
        render_node(out, child, depth + 1);
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> RequestTrace {
        let rec = RequestRecorder::new("00c0ffee00c0ffee".into());
        {
            let obs: &dyn Observer = &rec;
            let _outer = obs.span("http.rank");
            {
                let _inner = obs.span("engine.solve");
                obs.counter("solve_iterations", 12);
                obs.gauge("residual", 1e-9);
                obs.iteration(crate::IterationEvent {
                    solver: "power",
                    iteration: 0,
                    residual: 0.5,
                    dangling_mass: 0.0,
                    elapsed_ns: 10,
                });
            }
        }
        rec.finish("POST", "/rank", 200)
    }

    #[test]
    fn trace_ids_are_hex_and_distinct() {
        let a = TraceId::generate();
        let b = TraceId::generate();
        assert_eq!(a.len(), 16);
        assert!(a.bytes().all(|c| c.is_ascii_hexdigit()));
        assert_ne!(a, b);
        assert!(TraceId::is_valid(&a));
        assert!(!TraceId::is_valid(""));
        assert!(!TraceId::is_valid("has space"));
        assert!(!TraceId::is_valid(&"x".repeat(65)));
    }

    #[test]
    fn recorder_builds_a_nested_tree() {
        let trace = sample_trace();
        assert_eq!(trace.trace_id, "00c0ffee00c0ffee");
        assert_eq!(trace.status, 200);
        assert_eq!(trace.root.name, "request");
        assert_eq!(trace.root.children.len(), 1);
        let outer = &trace.root.children[0];
        assert_eq!(outer.name, "http.rank");
        assert!(outer.elapsed_ns > 0);
        let inner = &outer.children[0];
        assert_eq!(inner.name, "engine.solve");
        assert_eq!(inner.counters, vec![("solve_iterations".to_string(), 12)]);
        assert_eq!(inner.iterations, 1);
        assert_eq!(inner.gauges.len(), 1);
    }

    #[test]
    fn fanout_thread_spans_parent_to_root() {
        let rec = RequestRecorder::new("f".repeat(16));
        {
            let obs: &dyn Observer = &rec;
            let _outer = obs.span("http.rank");
            std::thread::scope(|scope| {
                for shard in 0..2 {
                    let rec = &rec;
                    scope.spawn(move || {
                        let obs: &dyn Observer = rec;
                        let _s = obs.span(&format!("router.shard{shard}"));
                        obs.counter("engine_cache_probe_us", shard);
                    });
                }
            });
        }
        let trace = rec.finish("POST", "/rank", 200);
        // http.rank from the request thread plus one labeled span per
        // fan-out lane, all directly under the root.
        let names: Vec<&str> = trace
            .root
            .children
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(trace.root.children.len(), 3, "{names:?}");
        assert!(names.contains(&"http.rank"));
        assert!(names.contains(&"router.shard0"));
        assert!(names.contains(&"router.shard1"));
    }

    #[test]
    fn emit_parse_round_trips() {
        let trace = sample_trace();
        let line = emit(&trace);
        assert_eq!(parse_line(&line).unwrap(), trace);
    }

    #[test]
    fn non_finite_gauges_round_trip() {
        let mut trace = sample_trace();
        trace.root.gauges.push(("inf".into(), f64::INFINITY));
        trace.root.gauges.push(("ninf".into(), f64::NEG_INFINITY));
        let parsed = parse_line(&emit(&trace)).unwrap();
        assert_eq!(parsed.root.gauges[0].1, f64::INFINITY);
        assert_eq!(parsed.root.gauges[1].1, f64::NEG_INFINITY);
    }

    #[test]
    fn lenient_parse_skips_and_counts() {
        let good = emit(&sample_trace());
        let torn = &good[..good.len() / 2];
        let input = format!("{good}\n{torn}\nnot json at all\n\n{good}\n");
        let parsed = parse_lines(&input);
        assert_eq!(parsed.traces.len(), 2);
        assert_eq!(parsed.skipped, 2);
    }

    #[test]
    fn lenient_byte_parse_survives_non_utf8() {
        let good = emit(&sample_trace());
        let mut bytes = good.clone().into_bytes();
        bytes.push(b'\n');
        bytes.extend_from_slice(&[0xff, 0xfe, 0x80, b'\n']);
        bytes.extend_from_slice(good.as_bytes());
        let parsed = parse_lines_bytes(&bytes);
        assert_eq!(parsed.traces.len(), 2);
        assert_eq!(parsed.skipped, 1);
    }

    #[test]
    fn ring_evicts_oldest() {
        let ring = TraceRing::new(2);
        for status in [200u16, 201, 202] {
            let mut t = sample_trace();
            t.status = status;
            ring.push(t);
        }
        let held = ring.snapshot();
        assert_eq!(held.len(), 2);
        assert_eq!(held[0].status, 201);
        assert_eq!(held[1].status, 202);
    }

    #[test]
    fn layer_breakdown_attributes_self_time() {
        let trace = sample_trace();
        let total_ns = trace.total_ns;
        let layers = layer_breakdown(&[trace]);
        let names: Vec<&str> = layers.iter().map(|l| l.layer.as_str()).collect();
        assert!(names.contains(&"http"), "{names:?}");
        assert!(names.contains(&"engine"), "{names:?}");
        assert!(names.contains(&"other"), "{names:?}");
        // Self times partition the root's elapsed (no double counting) —
        // compared against the SAME trace's wall clock, not a re-timed one.
        let total: u64 = layers.iter().map(|l| l.total_ns).sum();
        assert!(total <= total_ns * 2, "{total} vs {total_ns}");
    }

    #[test]
    fn layer_of_prefixes() {
        assert_eq!(layer_of("http.rank"), "http");
        assert_eq!(layer_of("router.shard0"), "router");
        assert_eq!(layer_of("engine.cache_probe"), "engine");
        assert_eq!(layer_of("store.wal_append"), "store");
        assert_eq!(layer_of("serve.global_pagerank"), "serve");
        assert_eq!(layer_of("rpc.rank"), "rpc");
        assert_eq!(layer_of("solve"), "solver");
        assert_eq!(layer_of("collapse_lambda.extra"), "solver");
        assert_eq!(layer_of("request"), "other");
    }

    #[test]
    fn render_tree_indents() {
        let trace = sample_trace();
        let text = render_tree(&trace.root);
        assert!(text.contains("request"), "{text}");
        assert!(text.contains("  http.rank"), "{text}");
        assert!(text.contains("    engine.solve"), "{text}");
        assert!(text.contains("(1 iterations)"), "{text}");
    }
}
