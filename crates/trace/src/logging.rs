//! Structured leveled logging — hand-rolled, zero-dependency JSONL.
//!
//! One process-wide logger writes one JSON object per line to stderr (the
//! default) or a file. Every line carries a millisecond timestamp, the
//! level, a target (the emitting layer: `"serve"`, `"engine"`, `"store"`,
//! …), the message, and — when the emitting thread is inside a request —
//! the active `trace_id`, so a slow-query trace can be grepped straight
//! to its log lines.
//!
//! The trace id rides a thread-local set by the serving layer for the
//! duration of request dispatch ([`trace_scope`]); fan-out pool lanes
//! attribute through the request recorder instead, so the thread-local
//! never needs to cross threads.

use std::cell::RefCell;
use std::io::Write;
use std::sync::Mutex;

/// Log severity, least to most severe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Diagnostic chatter, off by default.
    Debug,
    /// Normal operational events (boot, recovery, shutdown).
    Info,
    /// Unexpected but survivable conditions.
    Warn,
    /// Failures that lost work (WAL append errors, snapshot failures).
    Error,
}

impl Level {
    fn label(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parses `debug` / `info` / `warn` / `error` (case-insensitive).
    pub fn parse(s: &str) -> Result<Level, String> {
        match s.to_ascii_lowercase().as_str() {
            "debug" => Ok(Level::Debug),
            "info" => Ok(Level::Info),
            "warn" => Ok(Level::Warn),
            "error" => Ok(Level::Error),
            other => Err(format!("unknown log level {other:?}")),
        }
    }
}

enum Sink {
    Stderr,
    File(std::fs::File),
    /// Test sink: lines accumulate in memory.
    Buffer(Vec<u8>),
}

struct LoggerState {
    min_level: Level,
    sink: Sink,
}

static LOGGER: Mutex<LoggerState> = Mutex::new(LoggerState {
    min_level: Level::Info,
    sink: Sink::Stderr,
});

thread_local! {
    static CURRENT_TRACE: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Sets the minimum level emitted (default [`Level::Info`]).
pub fn set_level(level: Level) {
    LOGGER.lock().unwrap_or_else(|e| e.into_inner()).min_level = level;
}

/// Redirects log output to a file (appending), e.g. for servers whose
/// stderr is already carrying operator banners.
pub fn log_to_file(path: &std::path::Path) -> std::io::Result<()> {
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    LOGGER.lock().unwrap_or_else(|e| e.into_inner()).sink = Sink::File(file);
    Ok(())
}

/// Routes log output to an in-memory buffer and returns what had
/// accumulated before — test plumbing for asserting on emitted lines.
pub fn capture_for_test() -> Vec<u8> {
    let mut logger = LOGGER.lock().unwrap_or_else(|e| e.into_inner());
    match std::mem::replace(&mut logger.sink, Sink::Buffer(Vec::new())) {
        Sink::Buffer(buf) => buf,
        _ => Vec::new(),
    }
}

/// RAII guard restoring the thread's previous trace id on drop.
pub struct TraceScope {
    prior: Option<String>,
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        CURRENT_TRACE.with(|cell| *cell.borrow_mut() = self.prior.take());
    }
}

/// Marks `trace_id` as the active request on this thread until the guard
/// drops. Nested scopes restore the outer id.
pub fn trace_scope(trace_id: &str) -> TraceScope {
    let prior = CURRENT_TRACE.with(|cell| cell.borrow_mut().replace(trace_id.to_string()));
    TraceScope { prior }
}

/// The trace id of the request this thread is currently handling, if any.
pub fn current_trace_id() -> Option<String> {
    CURRENT_TRACE.with(|cell| cell.borrow().clone())
}

thread_local! {
    static CURRENT_TENANT: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// RAII guard restoring the thread's previous tenant on drop.
pub struct TenantScope {
    prior: Option<String>,
}

impl Drop for TenantScope {
    fn drop(&mut self) {
        CURRENT_TENANT.with(|cell| *cell.borrow_mut() = self.prior.take());
    }
}

/// Marks `tenant` as the active tenant on this thread until the guard
/// drops, mirroring [`trace_scope`]. The serving layer sets it after
/// admission control so downstream layers (the RPC client in
/// particular) can attribute work to the tenant without threading a
/// parameter through every call.
pub fn tenant_scope(tenant: &str) -> TenantScope {
    let prior = CURRENT_TENANT.with(|cell| cell.borrow_mut().replace(tenant.to_string()));
    TenantScope { prior }
}

/// The tenant of the request this thread is currently handling, if any.
pub fn current_tenant() -> Option<String> {
    CURRENT_TENANT.with(|cell| cell.borrow().clone())
}

/// Emits one structured line. Prefer [`log_with`] when there are
/// key/value fields to attach.
pub fn log(level: Level, target: &str, message: &str) {
    log_with(level, target, message, &[]);
}

/// Emits one structured line with extra string fields:
/// `{"ts_ms":…,"level":"…","target":"…","msg":"…","trace_id":…,…}`.
pub fn log_with(level: Level, target: &str, message: &str, fields: &[(&str, &str)]) {
    let mut logger = LOGGER.lock().unwrap_or_else(|e| e.into_inner());
    if level < logger.min_level {
        return;
    }
    let ts_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let mut line = format!(
        "{{\"ts_ms\":{ts_ms},\"level\":\"{}\",\"target\":",
        level.label()
    );
    emit_str(&mut line, target);
    line.push_str(",\"msg\":");
    emit_str(&mut line, message);
    if let Some(trace_id) = current_trace_id() {
        line.push_str(",\"trace_id\":");
        emit_str(&mut line, &trace_id);
    }
    if let Some(tenant) = current_tenant() {
        line.push_str(",\"tenant\":");
        emit_str(&mut line, &tenant);
    }
    for (key, value) in fields {
        line.push(',');
        emit_str(&mut line, key);
        line.push(':');
        emit_str(&mut line, value);
    }
    line.push_str("}\n");
    match &mut logger.sink {
        Sink::Stderr => {
            let _ = std::io::stderr().write_all(line.as_bytes());
        }
        Sink::File(file) => {
            let _ = file.write_all(line.as_bytes());
        }
        Sink::Buffer(buf) => buf.extend_from_slice(line.as_bytes()),
    }
}

fn emit_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The logger is process-global, so all behaviors share one test to
    /// avoid cross-test sink races under the parallel test runner.
    #[test]
    fn lines_levels_and_trace_scope() {
        capture_for_test();
        set_level(Level::Info);

        log(Level::Debug, "test", "filtered out");
        log(Level::Info, "test", "plain line");
        {
            let _scope = trace_scope("abc123");
            assert_eq!(current_trace_id().as_deref(), Some("abc123"));
            {
                let _nested = trace_scope("inner");
                assert_eq!(current_trace_id().as_deref(), Some("inner"));
            }
            assert_eq!(current_trace_id().as_deref(), Some("abc123"));
            log_with(Level::Warn, "test", "with \"quotes\"", &[("session", "7")]);
        }
        assert_eq!(current_trace_id(), None);

        let output = String::from_utf8(capture_for_test()).unwrap();
        let lines: Vec<&str> = output.lines().collect();
        assert_eq!(lines.len(), 2, "{output}");
        assert!(lines[0].contains("\"level\":\"info\""), "{}", lines[0]);
        assert!(lines[0].contains("\"msg\":\"plain line\""), "{}", lines[0]);
        assert!(!lines[0].contains("trace_id"), "{}", lines[0]);
        assert!(lines[1].contains("\"trace_id\":\"abc123\""), "{}", lines[1]);
        assert!(lines[1].contains("\"session\":\"7\""), "{}", lines[1]);
        assert!(lines[1].contains("\\\"quotes\\\""), "{}", lines[1]);
    }
}
