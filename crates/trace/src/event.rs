//! The telemetry event vocabulary.

/// One telemetry event. Owned (no borrowed data) so collectors can store
/// and export events long after the instrumented call returned.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A named interval opened.
    SpanStart {
        /// Span name, e.g. `"collapse_lambda"`.
        name: String,
    },
    /// A named interval closed.
    SpanEnd {
        /// Span name matching the corresponding [`Event::SpanStart`].
        name: String,
        /// Wall-clock length of the interval.
        elapsed_ns: u64,
    },
    /// A named integer measurement (sizes, node counts, rounds).
    Counter {
        /// Counter name, e.g. `"boundary_nodes"`.
        name: String,
        /// The measured value.
        value: u64,
    },
    /// A named float measurement (masses, fractions, tolerances).
    Gauge {
        /// Gauge name, e.g. `"skipped_fraction"`.
        name: String,
        /// The measured value.
        value: f64,
    },
    /// One sweep of an iterative solver.
    Iteration {
        /// Solver name: `"power"`, `"parallel"`, `"gauss_seidel"`,
        /// `"adaptive"`, `"extrapolation"`, or `"extended"`.
        solver: String,
        /// Zero-based iteration index.
        iteration: usize,
        /// L1 change between successive score vectors.
        residual: f64,
        /// Probability mass on dangling pages this sweep.
        dangling_mass: f64,
        /// Wall-clock cost of this sweep.
        elapsed_ns: u64,
    },
}

impl Event {
    /// The event's name field: span/counter/gauge name, or the solver
    /// name for iterations.
    pub fn name(&self) -> &str {
        match self {
            Event::SpanStart { name }
            | Event::SpanEnd { name, .. }
            | Event::Counter { name, .. }
            | Event::Gauge { name, .. } => name,
            Event::Iteration { solver, .. } => solver,
        }
    }
}

/// Borrowed per-sweep measurements, passed to `obs.iteration(..)`.
///
/// Borrowing the solver name keeps the disabled path allocation-free;
/// the observer copies into an owned [`Event::Iteration`] only when
/// enabled.
#[derive(Clone, Copy, Debug)]
pub struct IterationEvent<'a> {
    /// Solver name (see [`Event::Iteration`]).
    pub solver: &'a str,
    /// Zero-based iteration index.
    pub iteration: usize,
    /// L1 change between successive score vectors.
    pub residual: f64,
    /// Probability mass on dangling pages this sweep.
    pub dangling_mass: f64,
    /// Wall-clock cost of this sweep.
    pub elapsed_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_accessor_covers_all_variants() {
        let events = [
            Event::SpanStart { name: "a".into() },
            Event::SpanEnd {
                name: "b".into(),
                elapsed_ns: 1,
            },
            Event::Counter {
                name: "c".into(),
                value: 2,
            },
            Event::Gauge {
                name: "d".into(),
                value: 3.0,
            },
            Event::Iteration {
                solver: "e".into(),
                iteration: 0,
                residual: 0.5,
                dangling_mass: 0.1,
                elapsed_ns: 4,
            },
        ];
        let names: Vec<&str> = events.iter().map(|e| e.name()).collect();
        assert_eq!(names, ["a", "b", "c", "d", "e"]);
    }
}
