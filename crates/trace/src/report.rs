//! Aggregation of raw event streams into human-readable run reports.

use std::collections::HashMap;

use crate::Event;

/// Aggregate statistics for one span name.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanSummary {
    /// The span name.
    pub name: String,
    /// How many times the span closed.
    pub count: u64,
    /// Sum of elapsed time across closings.
    pub total_ns: u64,
    /// Fastest single closing.
    pub min_ns: u64,
    /// Slowest single closing.
    pub max_ns: u64,
}

/// Aggregate statistics for one counter name.
#[derive(Clone, Debug, PartialEq)]
pub struct CounterSummary {
    /// The counter name.
    pub name: String,
    /// How many times it was recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub total: u64,
    /// The most recent value.
    pub last: u64,
}

/// Aggregate statistics for one gauge name.
#[derive(Clone, Debug, PartialEq)]
pub struct GaugeSummary {
    /// The gauge name.
    pub name: String,
    /// How many times it was recorded.
    pub count: u64,
    /// The most recent value.
    pub last: f64,
    /// Smallest recorded value.
    pub min: f64,
    /// Largest recorded value.
    pub max: f64,
}

/// Aggregate statistics for one solver's iteration stream.
#[derive(Clone, Debug, PartialEq)]
pub struct SolverSummary {
    /// The solver name.
    pub solver: String,
    /// Number of sweeps recorded.
    pub iterations: u64,
    /// Residual of the first sweep.
    pub first_residual: f64,
    /// Residual of the last sweep.
    pub final_residual: f64,
    /// Dangling mass of the last sweep.
    pub final_dangling_mass: f64,
    /// Total wall-clock time across sweeps.
    pub total_ns: u64,
}

/// A run's telemetry, aggregated per name in first-seen order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunReport {
    /// Per-span aggregates.
    pub spans: Vec<SpanSummary>,
    /// Per-counter aggregates.
    pub counters: Vec<CounterSummary>,
    /// Per-gauge aggregates.
    pub gauges: Vec<GaugeSummary>,
    /// Per-solver iteration aggregates.
    pub solvers: Vec<SolverSummary>,
}

impl RunReport {
    /// Aggregates an event stream. Unclosed spans (a `SpanStart` with no
    /// matching `SpanEnd`) contribute nothing to timing.
    pub fn from_events(events: &[Event]) -> Self {
        let mut report = RunReport::default();
        // name → index caches to keep first-seen order with O(1) lookup.
        let mut span_idx: HashMap<String, usize> = HashMap::new();
        let mut counter_idx: HashMap<String, usize> = HashMap::new();
        let mut gauge_idx: HashMap<String, usize> = HashMap::new();
        let mut solver_idx: HashMap<String, usize> = HashMap::new();
        for event in events {
            match event {
                Event::SpanStart { .. } => {}
                Event::SpanEnd { name, elapsed_ns } => {
                    let idx = *span_idx.entry(name.clone()).or_insert_with(|| {
                        report.spans.push(SpanSummary {
                            name: name.clone(),
                            count: 0,
                            total_ns: 0,
                            min_ns: u64::MAX,
                            max_ns: 0,
                        });
                        report.spans.len() - 1
                    });
                    let s = &mut report.spans[idx];
                    s.count += 1;
                    s.total_ns += elapsed_ns;
                    s.min_ns = s.min_ns.min(*elapsed_ns);
                    s.max_ns = s.max_ns.max(*elapsed_ns);
                }
                Event::Counter { name, value } => {
                    let idx = *counter_idx.entry(name.clone()).or_insert_with(|| {
                        report.counters.push(CounterSummary {
                            name: name.clone(),
                            count: 0,
                            total: 0,
                            last: 0,
                        });
                        report.counters.len() - 1
                    });
                    let c = &mut report.counters[idx];
                    c.count += 1;
                    c.total += value;
                    c.last = *value;
                }
                Event::Gauge { name, value } => {
                    let idx = *gauge_idx.entry(name.clone()).or_insert_with(|| {
                        report.gauges.push(GaugeSummary {
                            name: name.clone(),
                            count: 0,
                            last: 0.0,
                            min: f64::INFINITY,
                            max: f64::NEG_INFINITY,
                        });
                        report.gauges.len() - 1
                    });
                    let g = &mut report.gauges[idx];
                    g.count += 1;
                    g.last = *value;
                    g.min = g.min.min(*value);
                    g.max = g.max.max(*value);
                }
                Event::Iteration {
                    solver,
                    residual,
                    dangling_mass,
                    elapsed_ns,
                    ..
                } => {
                    let idx = *solver_idx.entry(solver.clone()).or_insert_with(|| {
                        report.solvers.push(SolverSummary {
                            solver: solver.clone(),
                            iterations: 0,
                            first_residual: *residual,
                            final_residual: *residual,
                            final_dangling_mass: *dangling_mass,
                            total_ns: 0,
                        });
                        report.solvers.len() - 1
                    });
                    let s = &mut report.solvers[idx];
                    s.iterations += 1;
                    s.final_residual = *residual;
                    s.final_dangling_mass = *dangling_mass;
                    s.total_ns += elapsed_ns;
                }
            }
        }
        report
    }

    /// Whether no events contributed anything.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.gauges.is_empty()
            && self.solvers.is_empty()
    }

    /// One-line parallel-efficiency summary, present when the run
    /// emitted work-pool telemetry (the `pool_*` counters and gauges the
    /// solvers publish through `emit_exec_stats`).
    pub fn parallel_summary(&self) -> Option<String> {
        let counter = |name: &str| self.counters.iter().find(|c| c.name == name);
        let threads = counter("pool_threads")?.last;
        let jobs = counter("pool_jobs").map_or(0, |c| c.last);
        let tasks = counter("pool_tasks").map_or(0, |c| c.last);
        let mut line = format!("parallel: {threads} worker(s), {jobs} job(s), {tasks} task(s)");
        if let Some(g) = self.gauges.iter().find(|g| g.name == "pool_imbalance") {
            line.push_str(&format!(
                ", chunk imbalance {:.2} (busiest lane / mean; 1.00 is perfect)",
                g.last
            ));
        }
        Some(line)
    }

    /// Renders aligned plain-text tables, one section per event kind
    /// with data.
    pub fn render(&self) -> String {
        if self.is_empty() {
            return "trace: no events recorded\n".to_string();
        }
        let mut out = String::new();
        if !self.solvers.is_empty() {
            out.push_str(&format!(
                "{:<16} {:>6} {:>13} {:>13} {:>10}\n",
                "solver", "iters", "residual", "dangling", "time"
            ));
            for s in &self.solvers {
                out.push_str(&format!(
                    "{:<16} {:>6} {:>13.3e} {:>13.3e} {:>10}\n",
                    s.solver,
                    s.iterations,
                    s.final_residual,
                    s.final_dangling_mass,
                    fmt_ns(s.total_ns)
                ));
            }
        }
        if !self.spans.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&format!(
                "{:<28} {:>6} {:>10} {:>10} {:>10}\n",
                "span", "count", "total", "min", "max"
            ));
            for s in &self.spans {
                out.push_str(&format!(
                    "{:<28} {:>6} {:>10} {:>10} {:>10}\n",
                    s.name,
                    s.count,
                    fmt_ns(s.total_ns),
                    fmt_ns(s.min_ns),
                    fmt_ns(s.max_ns)
                ));
            }
        }
        if !self.counters.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&format!(
                "{:<28} {:>6} {:>12} {:>12}\n",
                "counter", "count", "total", "last"
            ));
            for c in &self.counters {
                out.push_str(&format!(
                    "{:<28} {:>6} {:>12} {:>12}\n",
                    c.name, c.count, c.total, c.last
                ));
            }
        }
        if !self.gauges.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&format!(
                "{:<28} {:>6} {:>13} {:>13} {:>13}\n",
                "gauge", "count", "last", "min", "max"
            ));
            for g in &self.gauges {
                out.push_str(&format!(
                    "{:<28} {:>6} {:>13.4e} {:>13.4e} {:>13.4e}\n",
                    g.name, g.count, g.last, g.min, g.max
                ));
            }
        }
        if let Some(line) = self.parallel_summary() {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

/// Nanoseconds to a compact human unit.
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iteration(solver: &str, i: usize, residual: f64) -> Event {
        Event::Iteration {
            solver: solver.into(),
            iteration: i,
            residual,
            dangling_mass: 0.01,
            elapsed_ns: 100,
        }
    }

    #[test]
    fn aggregates_spans() {
        let events = vec![
            Event::SpanStart { name: "a".into() },
            Event::SpanEnd {
                name: "a".into(),
                elapsed_ns: 10,
            },
            Event::SpanEnd {
                name: "a".into(),
                elapsed_ns: 30,
            },
        ];
        let report = RunReport::from_events(&events);
        assert_eq!(report.spans.len(), 1);
        let s = &report.spans[0];
        assert_eq!((s.count, s.total_ns, s.min_ns, s.max_ns), (2, 40, 10, 30));
    }

    #[test]
    fn aggregates_solver_iterations() {
        let events = vec![
            iteration("power", 0, 0.5),
            iteration("power", 1, 0.1),
            iteration("power", 2, 0.01),
        ];
        let report = RunReport::from_events(&events);
        assert_eq!(report.solvers.len(), 1);
        let s = &report.solvers[0];
        assert_eq!(s.iterations, 3);
        assert_eq!(s.first_residual, 0.5);
        assert_eq!(s.final_residual, 0.01);
        assert_eq!(s.total_ns, 300);
    }

    #[test]
    fn preserves_first_seen_order() {
        let events = vec![
            Event::Counter {
                name: "b".into(),
                value: 1,
            },
            Event::Counter {
                name: "a".into(),
                value: 2,
            },
            Event::Counter {
                name: "b".into(),
                value: 3,
            },
        ];
        let report = RunReport::from_events(&events);
        let names: Vec<&str> = report.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["b", "a"]);
        assert_eq!(report.counters[0].total, 4);
        assert_eq!(report.counters[0].last, 3);
    }

    #[test]
    fn render_mentions_every_section() {
        let events = vec![
            iteration("power", 0, 0.5),
            Event::SpanEnd {
                name: "solve".into(),
                elapsed_ns: 500,
            },
            Event::Counter {
                name: "edges".into(),
                value: 9,
            },
            Event::Gauge {
                name: "mass".into(),
                value: 1.0,
            },
        ];
        let text = RunReport::from_events(&events).render();
        for needle in ["power", "solve", "edges", "mass"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn pool_telemetry_renders_parallel_summary() {
        let events = vec![
            Event::Counter {
                name: "pool_threads".into(),
                value: 4,
            },
            Event::Counter {
                name: "pool_jobs".into(),
                value: 12,
            },
            Event::Counter {
                name: "pool_tasks".into(),
                value: 96,
            },
            Event::Gauge {
                name: "pool_imbalance".into(),
                value: 1.25,
            },
        ];
        let report = RunReport::from_events(&events);
        let line = report.parallel_summary().expect("pool telemetry present");
        assert!(line.contains("4 worker(s)"), "{line}");
        assert!(line.contains("1.25"), "{line}");
        assert!(report.render().contains("parallel:"));
        // Without pool counters there is no summary line.
        assert!(RunReport::from_events(&[]).parallel_summary().is_none());
    }

    #[test]
    fn empty_report_renders_placeholder() {
        let report = RunReport::from_events(&[]);
        assert!(report.is_empty());
        assert!(report.render().contains("no events"));
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_000_000), "2.0ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
