//! Property-based tests for the ObjectRank substrate.

use approxrank_objectrank::subrank::{rank_focus_subgraph, rank_focus_subgraph_ideal};
use approxrank_objectrank::{
    synthetic_bibliography, BibliographyConfig, InstanceGraph, ObjectRank, SchemaGraph,
};
use approxrank_pagerank::authority::{authority_flow, FlowModel};
use approxrank_pagerank::PageRankOptions;
use proptest::prelude::*;

fn opts() -> PageRankOptions {
    PageRankOptions::paper().with_tolerance(1e-11)
}

/// Random small bibliographies.
fn bib_strategy() -> impl Strategy<Value = InstanceGraph> {
    (20usize..120, 5usize..40, 2usize..6, any::<u64>()).prop_map(
        |(papers, authors, conferences, seed)| {
            synthetic_bibliography(&BibliographyConfig {
                papers,
                authors,
                conferences,
                seed,
                ..BibliographyConfig::default()
            })
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn lowering_splits_rates_exactly(inst in bib_strategy()) {
        // Every object's out-weight, grouped by target type, must equal
        // the schema's transfer rate (when it has any such out-edges).
        let (schema, h) = SchemaGraph::dblp_like();
        let w = inst.to_weighted();
        for u in 0..inst.num_objects() as u32 {
            let (targets, weights) = w.out_edges(u);
            let mut per_type = [0.0f64; 3];
            for (&t, &wt) in targets.iter().zip(weights) {
                per_type[inst.object_type(t) as usize] += wt;
            }
            let uty = inst.object_type(u);
            for ty in 0..3u32 {
                if per_type[ty as usize] == 0.0 {
                    continue;
                }
                // Find the schema rate for uty → ty.
                let mut rate = 0.0;
                for e in [h.cites, h.writes, h.publishes] {
                    let se = schema.edge(e);
                    if se.from == uty && se.to == ty {
                        rate += se.forward_rate;
                    }
                    if se.to == uty && se.from == ty {
                        rate += se.backward_rate;
                    }
                }
                prop_assert!(
                    (per_type[ty as usize] - rate).abs() < 1e-9,
                    "object {u} emits {} to type {ty}, schema says {rate}",
                    per_type[ty as usize]
                );
            }
        }
    }

    #[test]
    fn objectrank_scores_positive_and_bounded(inst in bib_strategy()) {
        let r = ObjectRank::default().global(&inst);
        prop_assert!(r.converged);
        prop_assert!(r.scores.iter().all(|&s| s > 0.0 && s < 1.0));
        // Raw rates are sub-stochastic for this schema: mass leaks.
        prop_assert!(r.total_mass() <= 1.0 + 1e-9);
    }

    #[test]
    fn weighted_theorem1_on_random_bibliographies(inst in bib_strategy()) {
        let weighted = inst.to_weighted();
        let n = inst.num_objects();
        let p = vec![1.0 / n as f64; n];
        let truth = authority_flow(&weighted, &opts(), &p, FlowModel::Stochastic);
        let focus = inst.objects_of_type(0); // all papers
        let (r, nodes) = rank_focus_subgraph_ideal(&inst, &focus, &truth.scores, &opts());
        for (li, &g) in nodes.members().iter().enumerate() {
            prop_assert!(
                (r.local_scores[li] - truth.scores[g as usize]).abs() < 1e-7,
                "object {g}"
            );
        }
    }

    #[test]
    fn approx_focus_ranking_is_a_subdistribution(inst in bib_strategy()) {
        let focus = inst.objects_of_type(1); // all authors
        prop_assume!(!focus.is_empty());
        let (r, nodes) = rank_focus_subgraph(&inst, &focus, &opts());
        prop_assert_eq!(r.local_scores.len(), nodes.len());
        prop_assert!(r.local_scores.iter().all(|&s| s >= 0.0));
        let total = r.local_mass() + r.lambda_score.unwrap();
        prop_assert!((total - 1.0).abs() < 1e-7, "total {total}");
    }

    #[test]
    fn keyword_base_set_monotone(inst in bib_strategy()) {
        // A broader keyword (matching more objects) never yields an empty
        // result when a narrower one matched.
        let narrow = inst.base_set("paper-0000");
        let broad = inst.base_set("paper-");
        prop_assert!(broad.len() >= narrow.len());
        for o in &narrow {
            prop_assert!(broad.contains(o));
        }
    }
}
