//! Synthetic bibliographic instance graphs (the DBLP-like corpus the
//! semantic-ranking experiments and example use).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::instance::InstanceGraph;
use crate::schema::SchemaGraph;

/// Configuration of [`synthetic_bibliography`].
#[derive(Clone, Debug, PartialEq)]
pub struct BibliographyConfig {
    /// Number of papers.
    pub papers: usize,
    /// Number of authors.
    pub authors: usize,
    /// Number of conferences; papers cluster into conference communities
    /// with Zipf sizes.
    pub conferences: usize,
    /// Maximum citations per paper (drawn uniformly in `0..=max`).
    pub max_citations: usize,
    /// Probability a citation goes to an already-cited paper
    /// (preferential attachment on citations).
    pub citation_pref: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BibliographyConfig {
    fn default() -> Self {
        BibliographyConfig {
            papers: 3_000,
            authors: 900,
            conferences: 12,
            max_citations: 4,
            citation_pref: 0.5,
            seed: 42,
        }
    }
}

/// Generates a DBLP-like instance over [`SchemaGraph::dblp_like`]:
/// papers cite earlier papers (preferentially), have 1–3 authors and one
/// conference. Deterministic under the seed. Object ids: papers first,
/// then authors, then conferences.
pub fn synthetic_bibliography(config: &BibliographyConfig) -> InstanceGraph {
    assert!(config.papers >= 1 && config.authors >= 1 && config.conferences >= 1);
    let (schema, h) = SchemaGraph::dblp_like();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut inst = InstanceGraph::new(&schema);

    let papers: Vec<u32> = (0..config.papers)
        .map(|i| inst.add_object(h.paper, &format!("paper-{i:05}")))
        .collect();
    let authors: Vec<u32> = (0..config.authors)
        .map(|i| inst.add_object(h.author, &format!("author-{i:04}")))
        .collect();
    let conferences: Vec<u32> = (0..config.conferences)
        .map(|i| inst.add_object(h.conference, &format!("conf-{i:02}")))
        .collect();

    // Conference communities with Zipf-ish sizes via weighted sampling.
    let conf_weights: Vec<f64> = (1..=config.conferences)
        .map(|i| 1.0 / (i as f64).powf(1.3))
        .collect();
    let mut citation_pool: Vec<u32> = Vec::new();
    for (i, &p) in papers.iter().enumerate() {
        let c = crate::synth::sample_weighted(&mut rng, &conf_weights);
        inst.add_edge(conferences[c], p, h.publishes)
            .expect("schema types match");
        for _ in 0..rng.random_range(1..=3u32) {
            let a = authors[rng.random_range(0..config.authors)];
            inst.add_edge(a, p, h.writes).expect("schema types match");
        }
        if i > 0 {
            for _ in 0..rng.random_range(0..=config.max_citations) {
                let q = if !citation_pool.is_empty() && rng.random::<f64>() < config.citation_pref {
                    citation_pool[rng.random_range(0..citation_pool.len())]
                } else {
                    papers[rng.random_range(0..i)]
                };
                inst.add_edge(p, q, h.cites).expect("schema types match");
                citation_pool.push(q);
            }
        }
    }
    inst
}

/// Weighted index sampling (local copy to avoid a gen-crate dependency).
fn sample_weighted<R: rand::Rng>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut t = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        t -= w;
        if t <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_requested_counts() {
        let inst = synthetic_bibliography(&BibliographyConfig {
            papers: 100,
            authors: 30,
            conferences: 4,
            ..BibliographyConfig::default()
        });
        assert_eq!(inst.num_objects(), 134);
        assert_eq!(inst.objects_of_type(0).len(), 100, "papers are type 0");
        assert!(inst.num_edges() > 200, "venue + authors + citations");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = BibliographyConfig {
            papers: 50,
            authors: 20,
            conferences: 3,
            ..BibliographyConfig::default()
        };
        let a = synthetic_bibliography(&cfg);
        let b = synthetic_bibliography(&cfg);
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.to_weighted(), b.to_weighted());
    }

    #[test]
    fn citations_point_backward() {
        // Papers only cite earlier papers: the citation subgraph is a DAG,
        // so the weighted graph restricted to papers has no cycles through
        // increasing ids. Spot-check via weights: every citation edge
        // (u, v) with both papers satisfies v < u.
        let inst = synthetic_bibliography(&BibliographyConfig {
            papers: 80,
            authors: 10,
            conferences: 2,
            ..BibliographyConfig::default()
        });
        let w = inst.to_weighted();
        for u in 0..80u32 {
            let (targets, _) = w.out_edges(u);
            for &v in targets {
                if v < 80 {
                    assert!(v < u, "citation {u} -> {v} must point backward");
                }
            }
        }
    }
}
