//! Authority transfer schema graphs (the paper's Figure 2).

/// Identifier of an entity type in a schema graph.
pub type TypeId = u32;

/// Identifier of a schema edge (a semantic relationship).
pub type SchemaEdgeId = u32;

/// One semantic relationship between two entity types with its forward
/// and backward authority transfer rates (ObjectRank annotates both
/// directions — e.g. *cites* transfers 0.7 forward and 0 backward, while
/// *written-by* transfers 0.2 each way in the DBLP schema of Figure 2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SchemaEdge {
    /// Source entity type.
    pub from: TypeId,
    /// Target entity type.
    pub to: TypeId,
    /// Authority transfer rate along the edge.
    pub forward_rate: f64,
    /// Authority transfer rate against the edge.
    pub backward_rate: f64,
}

/// The authority transfer schema graph a domain expert configures.
#[derive(Clone, Debug, Default)]
pub struct SchemaGraph {
    type_names: Vec<String>,
    edges: Vec<SchemaEdge>,
}

impl SchemaGraph {
    /// An empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an entity type and returns its id.
    pub fn add_type(&mut self, name: &str) -> TypeId {
        self.type_names.push(name.to_string());
        (self.type_names.len() - 1) as TypeId
    }

    /// Registers a semantic relationship with its transfer rates.
    ///
    /// # Panics
    /// Panics on unknown types or rates outside `[0, 1]`.
    pub fn add_edge(
        &mut self,
        from: TypeId,
        to: TypeId,
        forward_rate: f64,
        backward_rate: f64,
    ) -> SchemaEdgeId {
        assert!((from as usize) < self.type_names.len(), "unknown from-type");
        assert!((to as usize) < self.type_names.len(), "unknown to-type");
        for r in [forward_rate, backward_rate] {
            assert!((0.0..=1.0).contains(&r), "transfer rate {r} out of range");
        }
        self.edges.push(SchemaEdge {
            from,
            to,
            forward_rate,
            backward_rate,
        });
        (self.edges.len() - 1) as SchemaEdgeId
    }

    /// Number of entity types.
    pub fn num_types(&self) -> usize {
        self.type_names.len()
    }

    /// Number of semantic relationships.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Name of a type.
    pub fn type_name(&self, t: TypeId) -> &str {
        &self.type_names[t as usize]
    }

    /// The schema edge record.
    pub fn edge(&self, e: SchemaEdgeId) -> &SchemaEdge {
        &self.edges[e as usize]
    }

    /// Total authority a type can emit if it has instances of every
    /// outgoing relationship — the expert's sanity check that rates out
    /// of a type do not exceed 1 (they may: ObjectRank tolerates it, but
    /// the walk then amplifies; see [`crate::rank`]).
    pub fn total_outgoing_rate(&self, t: TypeId) -> f64 {
        self.edges
            .iter()
            .map(|e| {
                let mut r = 0.0;
                if e.from == t {
                    r += e.forward_rate;
                }
                if e.to == t {
                    r += e.backward_rate;
                }
                r
            })
            .sum()
    }

    /// The DBLP-style schema of the paper's Figure 2: papers cite papers,
    /// authors write papers, conferences publish papers — with the
    /// authority transfer rates ObjectRank's authors use.
    pub fn dblp_like() -> (SchemaGraph, DblpSchema) {
        let mut s = SchemaGraph::new();
        let paper = s.add_type("Paper");
        let author = s.add_type("Author");
        let conference = s.add_type("Conference");
        let cites = s.add_edge(paper, paper, 0.7, 0.0);
        let writes = s.add_edge(author, paper, 0.2, 0.2);
        let publishes = s.add_edge(conference, paper, 0.3, 0.1);
        (
            s,
            DblpSchema {
                paper,
                author,
                conference,
                cites,
                writes,
                publishes,
            },
        )
    }
}

/// Handles into the canonical DBLP-like schema.
#[derive(Clone, Copy, Debug)]
pub struct DblpSchema {
    /// The Paper entity type.
    pub paper: TypeId,
    /// The Author entity type.
    pub author: TypeId,
    /// The Conference entity type.
    pub conference: TypeId,
    /// Paper → Paper citation relationship.
    pub cites: SchemaEdgeId,
    /// Author → Paper authorship relationship.
    pub writes: SchemaEdgeId,
    /// Conference → Paper publication relationship.
    pub publishes: SchemaEdgeId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut s = SchemaGraph::new();
        let a = s.add_type("A");
        let b = s.add_type("B");
        let e = s.add_edge(a, b, 0.5, 0.25);
        assert_eq!(s.num_types(), 2);
        assert_eq!(s.type_name(b), "B");
        assert_eq!(s.edge(e).forward_rate, 0.5);
        assert_eq!(s.total_outgoing_rate(a), 0.5);
        assert_eq!(s.total_outgoing_rate(b), 0.25);
    }

    #[test]
    fn dblp_schema_shape() {
        let (s, h) = SchemaGraph::dblp_like();
        assert_eq!(s.num_types(), 3);
        assert_eq!(s.num_edges(), 3);
        assert_eq!(s.edge(h.cites).forward_rate, 0.7);
        // Papers emit authority through citations, authorship, publication.
        assert!(s.total_outgoing_rate(h.paper) > 0.9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_rate() {
        let mut s = SchemaGraph::new();
        let a = s.add_type("A");
        s.add_edge(a, a, 1.5, 0.0);
    }
}
