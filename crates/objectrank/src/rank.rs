//! ObjectRank score computation: global and keyword-specific.

use approxrank_pagerank::authority::{authority_flow, FlowModel};
use approxrank_pagerank::{PageRankOptions, PageRankResult};

use crate::instance::{InstanceGraph, ObjectId};

/// The ObjectRank solver.
#[derive(Clone, Debug)]
pub struct ObjectRank {
    /// Damping and convergence settings (ObjectRank's authors use
    /// d = 0.85 like PageRank).
    pub options: PageRankOptions,
    /// Raw ObjectRank semantics (rates used as-is, mass may leak) or the
    /// stochastic normalization.
    pub model: FlowModel,
}

impl Default for ObjectRank {
    fn default() -> Self {
        ObjectRank {
            options: PageRankOptions::paper(),
            model: FlowModel::Raw,
        }
    }
}

impl ObjectRank {
    /// Global ObjectRank: uniform base set (every object teleport-worthy).
    pub fn global(&self, instance: &InstanceGraph) -> PageRankResult {
        let n = instance.num_objects();
        let p = vec![1.0 / n.max(1) as f64; n];
        authority_flow(&instance.to_weighted(), &self.options, &p, self.model)
    }

    /// Keyword-specific ObjectRank: the walk teleports uniformly into the
    /// base set of objects matching `keyword`.
    ///
    /// Returns `None` when no object matches (an empty base set makes the
    /// query meaningless rather than an error).
    pub fn keyword(&self, instance: &InstanceGraph, keyword: &str) -> Option<PageRankResult> {
        let base = instance.base_set(keyword);
        if base.is_empty() {
            return None;
        }
        Some(self.with_base_set(instance, &base))
    }

    /// ObjectRank with an explicit base set.
    ///
    /// # Panics
    /// Panics if the base set is empty or contains unknown objects.
    pub fn with_base_set(&self, instance: &InstanceGraph, base: &[ObjectId]) -> PageRankResult {
        let n = instance.num_objects();
        assert!(!base.is_empty(), "base set must be non-empty");
        let mut p = vec![0.0f64; n];
        let share = 1.0 / base.len() as f64;
        for &o in base {
            assert!((o as usize) < n, "unknown object {o}");
            p[o as usize] += share;
        }
        authority_flow(&instance.to_weighted(), &self.options, &p, self.model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaGraph;
    use crate::InstanceGraph;

    /// p3 → p2 → p1 citation chain plus two authors.
    fn chain() -> (InstanceGraph, [u32; 5]) {
        let (schema, h) = SchemaGraph::dblp_like();
        let mut inst = InstanceGraph::new(&schema);
        let p1 = inst.add_object(h.paper, "paper one: ranking");
        let p2 = inst.add_object(h.paper, "paper two: crawling");
        let p3 = inst.add_object(h.paper, "paper three: indexing");
        let alice = inst.add_object(h.author, "alice");
        let bob = inst.add_object(h.author, "bob");
        inst.add_edge(p2, p1, h.cites).unwrap();
        inst.add_edge(p3, p2, h.cites).unwrap();
        inst.add_edge(alice, p1, h.writes).unwrap();
        inst.add_edge(alice, p2, h.writes).unwrap();
        inst.add_edge(bob, p3, h.writes).unwrap();
        (inst, [p1, p2, p3, alice, bob])
    }

    #[test]
    fn citation_chain_orders_papers() {
        let (inst, [p1, p2, p3, ..]) = chain();
        let r = ObjectRank::default().global(&inst);
        assert!(r.converged);
        assert!(r.scores[p1 as usize] > r.scores[p2 as usize]);
        assert!(r.scores[p2 as usize] > r.scores[p3 as usize]);
    }

    #[test]
    fn prolific_author_outranks() {
        let (inst, [.., alice, bob]) = chain();
        let r = ObjectRank::default().global(&inst);
        // Alice wrote the two best papers; authority flows back to her.
        assert!(r.scores[alice as usize] > r.scores[bob as usize]);
    }

    #[test]
    fn keyword_biases_toward_base_set() {
        let (inst, [_, _, p3, ..]) = chain();
        let or = ObjectRank::default();
        let r = or.keyword(&inst, "indexing").expect("p3 matches");
        // All teleport mass lands on p3; its score rises relative to the
        // global query even though p1 still collects citation authority.
        let g = or.global(&inst);
        let rel = |r: &PageRankResult, o: u32| r.scores[o as usize] / r.total_mass();
        assert!(rel(&r, p3) > rel(&g, p3));
        assert!(or.keyword(&inst, "nonexistent-keyword").is_none());
    }

    #[test]
    fn raw_model_leaks_stochastic_conserves() {
        let (inst, _) = chain();
        let raw = ObjectRank::default().global(&inst);
        assert!(raw.total_mass() < 1.0, "sub-stochastic rates leak mass");
        let stoch = ObjectRank {
            model: FlowModel::Stochastic,
            ..ObjectRank::default()
        }
        .global(&inst);
        assert!((stoch.total_mass() - 1.0).abs() < 1e-6);
    }
}
