//! Typed instance graphs and their weighted lowering.
//!
//! The ObjectRank instance-level rule: if object `u` has `k` outgoing
//! instances of schema edge `e`, each carries weight
//! `rate(e) / k` — the type-level transfer rate is split evenly among
//! the concrete edges. Backward rates produce reverse instance edges
//! the same way.

use approxrank_pagerank::WeightedDiGraph;

use crate::schema::{SchemaEdgeId, SchemaGraph, TypeId};

/// Identifier of an object in an instance graph.
pub type ObjectId = u32;

/// The ObjectRank base-set rule over any label sequence: ids (in label
/// order) whose label contains `keyword`, case-insensitively. This is
/// the one matching function every keyword surface shares — the typed
/// [`InstanceGraph::base_set`], the served `POST /keyword` endpoint, and
/// the `subrank keyword` CLI — so a keyword resolves to the same base
/// set everywhere by construction.
pub fn base_set_from_labels<'a>(
    labels: impl IntoIterator<Item = &'a str>,
    keyword: &str,
) -> Vec<ObjectId> {
    let kw = keyword.to_lowercase();
    labels
        .into_iter()
        .enumerate()
        .filter(|(_, l)| l.to_lowercase().contains(&kw))
        .map(|(i, _)| i as ObjectId)
        .collect()
}

#[derive(Clone, Debug)]
struct InstanceEdge {
    from: ObjectId,
    to: ObjectId,
    schema_edge: SchemaEdgeId,
}

/// A typed instance graph over a schema.
#[derive(Clone, Debug)]
pub struct InstanceGraph {
    schema: SchemaGraph,
    types: Vec<TypeId>,
    labels: Vec<String>,
    edges: Vec<InstanceEdge>,
}

impl InstanceGraph {
    /// An empty instance of `schema`.
    pub fn new(schema: &SchemaGraph) -> Self {
        InstanceGraph {
            schema: schema.clone(),
            types: Vec::new(),
            labels: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Adds an object of the given type with a human-readable label
    /// (used for keyword matching).
    ///
    /// # Panics
    /// Panics on an unknown type.
    pub fn add_object(&mut self, ty: TypeId, label: &str) -> ObjectId {
        assert!((ty as usize) < self.schema.num_types(), "unknown type {ty}");
        self.types.push(ty);
        self.labels.push(label.to_string());
        (self.types.len() - 1) as ObjectId
    }

    /// Adds an instance of schema edge `e` from `u` to `v`.
    ///
    /// Returns an error if the endpoint types do not match the schema
    /// edge's declaration.
    pub fn add_edge(
        &mut self,
        from: ObjectId,
        to: ObjectId,
        schema_edge: SchemaEdgeId,
    ) -> Result<(), String> {
        let e = self.schema.edge(schema_edge);
        let (ft, tt) = (self.types[from as usize], self.types[to as usize]);
        if ft != e.from || tt != e.to {
            return Err(format!(
                "edge type mismatch: schema edge {}→{} applied to objects of type {}→{}",
                self.schema.type_name(e.from),
                self.schema.type_name(e.to),
                self.schema.type_name(ft),
                self.schema.type_name(tt),
            ));
        }
        self.edges.push(InstanceEdge {
            from,
            to,
            schema_edge,
        });
        Ok(())
    }

    /// Number of objects.
    pub fn num_objects(&self) -> usize {
        self.types.len()
    }

    /// Number of instance edges (forward declarations only; the weighted
    /// lowering doubles edges with nonzero backward rates).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The type of an object.
    pub fn object_type(&self, o: ObjectId) -> TypeId {
        self.types[o as usize]
    }

    /// The label of an object.
    pub fn label(&self, o: ObjectId) -> &str {
        &self.labels[o as usize]
    }

    /// The schema this instance conforms to.
    pub fn schema(&self) -> &SchemaGraph {
        &self.schema
    }

    /// Objects whose label contains `keyword` (case-insensitive) — the
    /// ObjectRank *base set*.
    pub fn base_set(&self, keyword: &str) -> Vec<ObjectId> {
        base_set_from_labels(self.labels.iter().map(String::as_str), keyword)
    }

    /// All objects of one type (e.g. every Paper).
    pub fn objects_of_type(&self, ty: TypeId) -> Vec<ObjectId> {
        (0..self.num_objects() as ObjectId)
            .filter(|&o| self.types[o as usize] == ty)
            .collect()
    }

    /// Lowers the typed instance into a weighted graph per the ObjectRank
    /// rule: forward instances of schema edge `e` out of `u` share
    /// `forward_rate(e)` evenly; backward instances share
    /// `backward_rate(e)` evenly.
    pub fn to_weighted(&self) -> WeightedDiGraph {
        let n = self.num_objects();
        // Count per (object, schema edge, direction) multiplicities.
        let mut fwd_count: std::collections::HashMap<(ObjectId, SchemaEdgeId), usize> =
            std::collections::HashMap::new();
        let mut bwd_count: std::collections::HashMap<(ObjectId, SchemaEdgeId), usize> =
            std::collections::HashMap::new();
        for e in &self.edges {
            *fwd_count.entry((e.from, e.schema_edge)).or_insert(0) += 1;
            *bwd_count.entry((e.to, e.schema_edge)).or_insert(0) += 1;
        }
        let mut weighted = Vec::with_capacity(self.edges.len() * 2);
        for e in &self.edges {
            let s = self.schema.edge(e.schema_edge);
            if s.forward_rate > 0.0 {
                let k = fwd_count[&(e.from, e.schema_edge)] as f64;
                weighted.push((e.from, e.to, s.forward_rate / k));
            }
            if s.backward_rate > 0.0 {
                let k = bwd_count[&(e.to, e.schema_edge)] as f64;
                weighted.push((e.to, e.from, s.backward_rate / k));
            }
        }
        WeightedDiGraph::from_edges(n, &weighted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaGraph;

    fn tiny() -> (InstanceGraph, ObjectId, ObjectId, ObjectId) {
        let (schema, h) = SchemaGraph::dblp_like();
        let mut inst = InstanceGraph::new(&schema);
        let p1 = inst.add_object(h.paper, "paper: subgraph ranking");
        let p2 = inst.add_object(h.paper, "paper: focused crawling");
        let a = inst.add_object(h.author, "alice");
        inst.add_edge(p2, p1, h.cites).unwrap();
        inst.add_edge(a, p1, h.writes).unwrap();
        inst.add_edge(a, p2, h.writes).unwrap();
        (inst, p1, p2, a)
    }

    #[test]
    fn transfer_rate_split_among_instances() {
        let (inst, p1, p2, a) = tiny();
        let w = inst.to_weighted();
        // Alice writes two papers: 0.2 forward split in half.
        let (targets, weights) = w.out_edges(a);
        let idx1 = targets.iter().position(|&t| t == p1).unwrap();
        assert!((weights[idx1] - 0.1).abs() < 1e-12);
        // p2 cites one paper: full 0.7 forward; plus 0.2 backward to alice.
        let (t2, w2) = w.out_edges(p2);
        let c = t2.iter().position(|&t| t == p1).unwrap();
        assert!((w2[c] - 0.7).abs() < 1e-12);
        let b = t2.iter().position(|&t| t == a).unwrap();
        assert!((w2[b] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn type_checked_edges() {
        let (schema, h) = SchemaGraph::dblp_like();
        let mut inst = InstanceGraph::new(&schema);
        let p = inst.add_object(h.paper, "p");
        let a = inst.add_object(h.author, "a");
        // A paper cannot "write" a paper.
        assert!(inst.add_edge(p, p, h.writes).is_err());
        assert!(inst.add_edge(a, p, h.writes).is_ok());
    }

    #[test]
    fn base_set_keyword_matching() {
        let (inst, p1, p2, _) = tiny();
        assert_eq!(inst.base_set("subgraph"), vec![p1]);
        assert_eq!(inst.base_set("PAPER"), vec![p1, p2]);
        assert!(inst.base_set("zebra").is_empty());
    }

    #[test]
    fn base_set_from_bare_labels_matches_instance_rule() {
        let (inst, _, _, _) = tiny();
        let labels: Vec<&str> = (0..inst.num_objects() as ObjectId)
            .map(|o| inst.label(o))
            .collect();
        for kw in ["subgraph", "PAPER", "alice", "zebra", ""] {
            assert_eq!(
                base_set_from_labels(labels.iter().copied(), kw),
                inst.base_set(kw),
                "{kw:?}"
            );
        }
    }

    #[test]
    fn objects_of_type() {
        let (inst, p1, p2, a) = tiny();
        assert_eq!(inst.objects_of_type(inst.object_type(p1)), vec![p1, p2]);
        assert_eq!(inst.objects_of_type(inst.object_type(a)), vec![a]);
    }
}
