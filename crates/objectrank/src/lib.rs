//! ObjectRank-style semantic ranking substrate (Balmin, Hristidis &
//! Papakonstantinou, VLDB'04 — the ApproxRank paper's reference \[8\] and
//! the motivation behind its Figures 2–3).
//!
//! ObjectRank generalizes PageRank from web pages to typed *objects*
//! (papers, authors, conferences …) connected by semantic edges. A
//! domain expert annotates the **schema graph** with *authority transfer
//! rates*; the **instance graph** inherits per-edge weights from those
//! rates; keyword queries personalize the walk through a **base set** of
//! matching objects.
//!
//! This crate provides that machinery and its bridge to the ApproxRank
//! framework: the paper's §I observes that a domain expert's interest
//! usually covers only a *subgraph* of the instance graph, and that the
//! IdealRank/ApproxRank collapse applies to ObjectRank unchanged —
//! [`subrank`] makes that concrete via
//! [`approxrank_core::weighted`].
//!
//! ```
//! use approxrank_objectrank::{SchemaGraph, InstanceGraph, ObjectRank};
//!
//! // Schema: Paper cites Paper (0.7), Paper written-by Author (0.2 each way).
//! let mut schema = SchemaGraph::new();
//! let paper = schema.add_type("Paper");
//! let author = schema.add_type("Author");
//! let cites = schema.add_edge(paper, paper, 0.7, 0.0);
//! let wrote = schema.add_edge(author, paper, 0.2, 0.2);
//!
//! let mut inst = InstanceGraph::new(&schema);
//! let p1 = inst.add_object(paper, "p1");
//! let p2 = inst.add_object(paper, "p2");
//! let a1 = inst.add_object(author, "alice");
//! inst.add_edge(p2, p1, cites).unwrap();
//! inst.add_edge(a1, p1, wrote).unwrap();
//! inst.add_edge(a1, p2, wrote).unwrap();
//!
//! let scores = ObjectRank::default().global(&inst);
//! assert!(scores.scores[p1 as usize] > scores.scores[p2 as usize],
//!         "the cited paper outranks the citing paper");
//! ```

pub mod instance;
pub mod rank;
pub mod schema;
pub mod subrank;
pub mod synth;

pub use instance::{base_set_from_labels, InstanceGraph};
pub use rank::ObjectRank;
pub use schema::{SchemaEdgeId, SchemaGraph, TypeId};
pub use subrank::rank_type_subgraph;
pub use synth::{synthetic_bibliography, BibliographyConfig};
