//! Ranking an expert's focus subgraph of an instance graph with the
//! ApproxRank framework — the paper's Figure-3 scenario.
//!
//! "If we can model a subgraph to contain the subset of pages associated
//! with the entity sets of interest to some domain expert, we can then
//! define the ObjectRank problem as a problem of ranking a subgraph"
//! (paper §I). The collapse is the weighted one of
//! [`approxrank_core::weighted`], applied to the instance graph's
//! weighted lowering under the stochastic flow model.

use approxrank_core::weighted::{weighted_approx_rank, weighted_ideal_rank, WeightedSubgraph};
use approxrank_core::RankScores;
use approxrank_graph::NodeSet;
use approxrank_pagerank::PageRankOptions;

use crate::instance::{InstanceGraph, ObjectId};

/// Ranks the subgraph made of the given objects with weighted ApproxRank
/// (no global scores needed). Returns the scores in the order of the
/// deduplicated, ascending `focus` list (see [`focus_node_set`]).
pub fn rank_focus_subgraph(
    instance: &InstanceGraph,
    focus: &[ObjectId],
    options: &PageRankOptions,
) -> (RankScores, NodeSet) {
    let weighted = instance.to_weighted();
    let nodes = focus_node_set(instance, focus);
    let sub = WeightedSubgraph::extract(&weighted, nodes.clone());
    (weighted_approx_rank(&weighted, &sub, options), nodes)
}

/// Ranks the focus subgraph with weighted IdealRank given known global
/// ObjectRank scores (the expert re-ranks after tuning rates inside the
/// focus area only).
pub fn rank_focus_subgraph_ideal(
    instance: &InstanceGraph,
    focus: &[ObjectId],
    global_scores: &[f64],
    options: &PageRankOptions,
) -> (RankScores, NodeSet) {
    let weighted = instance.to_weighted();
    let nodes = focus_node_set(instance, focus);
    let sub = WeightedSubgraph::extract(&weighted, nodes.clone());
    (
        weighted_ideal_rank(&weighted, &sub, global_scores, options),
        nodes,
    )
}

/// Convenience: rank every object of one entity type (e.g. "all Papers")
/// as the focus subgraph.
pub fn rank_type_subgraph(
    instance: &InstanceGraph,
    ty: crate::schema::TypeId,
    options: &PageRankOptions,
) -> (RankScores, NodeSet) {
    let focus = instance.objects_of_type(ty);
    rank_focus_subgraph(instance, &focus, options)
}

/// The node set for a focus list (deduplicated, ascending object order).
pub fn focus_node_set(instance: &InstanceGraph, focus: &[ObjectId]) -> NodeSet {
    NodeSet::from_sorted(instance.num_objects(), focus.iter().copied())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaGraph;
    use crate::synth::{synthetic_bibliography, BibliographyConfig};
    use approxrank_pagerank::authority::{authority_flow, FlowModel};

    fn opts() -> PageRankOptions {
        PageRankOptions::paper().with_tolerance(1e-12)
    }

    #[test]
    fn weighted_ideal_recovers_global_objectrank() {
        let inst = synthetic_bibliography(&BibliographyConfig {
            papers: 400,
            authors: 120,
            conferences: 6,
            seed: 11,
            ..BibliographyConfig::default()
        });
        let weighted = inst.to_weighted();
        let n = inst.num_objects();
        let p = vec![1.0 / n as f64; n];
        // Ground truth under the stochastic model (the collapse's model).
        let truth = authority_flow(&weighted, &opts(), &p, FlowModel::Stochastic);
        let (schema_paper, _) = (0u32, ());
        let focus = inst.objects_of_type(schema_paper);
        let (r, nodes) = rank_focus_subgraph_ideal(&inst, &focus, &truth.scores, &opts());
        assert!(r.converged);
        for (li, &g) in nodes.members().iter().enumerate() {
            assert!(
                (r.local_scores[li] - truth.scores[g as usize]).abs() < 1e-8,
                "object {g}"
            );
        }
    }

    #[test]
    fn approx_ranks_focus_sanely() {
        let inst = synthetic_bibliography(&BibliographyConfig {
            papers: 300,
            authors: 90,
            conferences: 5,
            seed: 3,
            ..BibliographyConfig::default()
        });
        let (schema, h) = SchemaGraph::dblp_like();
        let _ = schema;
        let (r, nodes) = rank_type_subgraph(&inst, h.paper, &opts());
        assert!(r.converged);
        assert_eq!(r.local_scores.len(), nodes.len());
        assert!(r.local_scores.iter().all(|&s| s > 0.0));
        // Mass splits with Λ (authors + conferences are external).
        assert!(r.local_mass() < 1.0);
        assert!(r.lambda_score.unwrap() > 0.0);
    }
}
