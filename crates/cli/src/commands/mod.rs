//! Subcommand implementations.

pub mod compare;
pub mod generate;
pub mod global;
pub mod keyword;
pub mod partition;
pub mod rank;
pub mod report;
pub mod serve;
pub mod stats;

use approxrank_graph::{io, DiGraph, GraphError};
use approxrank_trace::Event;

use crate::args::TraceOpts;

/// Loads a graph, auto-detecting the binary format by its magic bytes.
pub fn load_graph(path: &str) -> Result<DiGraph, String> {
    let try_binary = io::read_binary_file(path);
    match try_binary {
        Ok(g) => Ok(g),
        Err(GraphError::InvalidFormat(_)) | Err(GraphError::Io(_)) => {
            io::read_edge_list_file(path).map_err(|e| format!("cannot read {path}: {e}"))
        }
        Err(e) => Err(format!("cannot read {path}: {e}")),
    }
}

/// Reads a whitespace/newline-separated list of node ids.
pub fn load_node_ids(path: &str) -> Result<Vec<u32>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut ids = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        for tok in t.split_whitespace() {
            ids.push(
                tok.parse::<u32>()
                    .map_err(|e| format!("{path}:{}: bad node id {tok:?}: {e}", lineno + 1))?,
            );
        }
    }
    if ids.is_empty() {
        return Err(format!("{path} contains no node ids"));
    }
    Ok(ids)
}

/// Reads one floating-point score per line.
pub fn load_scores(path: &str) -> Result<Vec<f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut scores = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        scores.push(
            t.parse::<f64>()
                .map_err(|e| format!("{path}:{}: bad score {t:?}: {e}", lineno + 1))?,
        );
    }
    Ok(scores)
}

/// Honors the telemetry flags for a finished command: writes the JSONL
/// event file if `--trace-json` was given and returns the human-readable
/// run report as `#` comment lines if `--trace` was given.
pub fn render_trace(events: &[Event], trace: &TraceOpts) -> Result<String, String> {
    if let Some(path) = &trace.trace_json {
        std::fs::write(path, approxrank_trace::jsonl::emit(events))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if !trace.trace {
        return Ok(String::new());
    }
    let report = approxrank_trace::RunReport::from_events(events);
    let mut out = String::new();
    for line in report.render().lines() {
        out.push_str("# ");
        out.push_str(line);
        out.push('\n');
    }
    Ok(out)
}

/// Renders a `page<TAB>score` listing, optionally truncated to the top-k
/// by score. Total order (`total_cmp`) so NaN scores in user-supplied
/// files sort deterministically instead of panicking.
pub fn render_scores(pairs: &mut [(u32, f64)], top: usize) -> String {
    pairs.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let take = if top == 0 {
        pairs.len()
    } else {
        top.min(pairs.len())
    };
    let mut out = String::from("page\tscore\n");
    for &(page, score) in pairs.iter().take(take) {
        out.push_str(&format!("{page}\t{score:.10e}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str, contents: &str) -> String {
        let dir = std::env::temp_dir().join("subrank-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        std::fs::write(&p, contents).unwrap();
        p.to_string_lossy().into_owned()
    }

    #[test]
    fn node_ids_parsing() {
        let p = tmp("ids.txt", "# comment\n1 2\n3\n\n4\n");
        assert_eq!(load_node_ids(&p).unwrap(), vec![1, 2, 3, 4]);
        let bad = tmp("bad-ids.txt", "1\nxyz\n");
        assert!(load_node_ids(&bad).unwrap_err().contains("xyz"));
        let empty = tmp("empty-ids.txt", "# nothing\n");
        assert!(load_node_ids(&empty).is_err());
    }

    #[test]
    fn scores_parsing() {
        let p = tmp("scores.txt", "0.5\n# c\n1e-3\n");
        assert_eq!(load_scores(&p).unwrap(), vec![0.5, 1e-3]);
    }

    #[test]
    fn graph_loading_both_formats() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let dir = std::env::temp_dir().join("subrank-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let t = dir.join("g.edges");
        let b = dir.join("g.bin");
        io::write_edge_list_file(&g, &t).unwrap();
        io::write_binary_file(&g, &b).unwrap();
        assert_eq!(load_graph(&t.to_string_lossy()).unwrap(), g);
        assert_eq!(load_graph(&b.to_string_lossy()).unwrap(), g);
        assert!(load_graph("/nonexistent/file").is_err());
    }

    #[test]
    fn score_rendering_top_k() {
        let mut pairs = vec![(0, 0.1), (1, 0.5), (2, 0.3)];
        let out = render_scores(&mut pairs, 2);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 rows");
        assert!(lines[1].starts_with("1\t"));
        assert!(lines[2].starts_with("2\t"));
    }
}
