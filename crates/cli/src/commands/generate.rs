//! `subrank gen` — write a synthetic dataset to disk.

use approxrank_gen::{au_like, politics_like, AuConfig, PoliticsConfig};
use approxrank_graph::io;

use crate::args::GenArgs;

/// Runs the command; writes the edge list (plus a `.parts` sidecar file
/// mapping each page to its domain/topic name) and returns a summary.
pub fn run(args: &GenArgs) -> Result<String, String> {
    let (graph, parts): (approxrank_graph::DiGraph, Vec<String>) = match args.dataset.as_str() {
        "au" => {
            let d = au_like(&AuConfig {
                pages: args.pages,
                seed: args.seed,
                ..AuConfig::default()
            });
            let parts = (0..d.graph().num_nodes() as u32)
                .map(|u| d.domain_name(d.domain_of(u) as usize).to_string())
                .collect();
            (d.graph().clone(), parts)
        }
        "politics" => {
            let d = politics_like(&PoliticsConfig {
                pages: args.pages,
                seed: args.seed,
                ..PoliticsConfig::default()
            });
            let parts = (0..d.graph().num_nodes() as u32)
                .map(|u| d.topic_name(d.topic_of(u) as usize).to_string())
                .collect();
            (d.graph().clone(), parts)
        }
        other => return Err(format!("unknown dataset {other:?} (au|politics)")),
    };

    io::write_edge_list_file(&graph, &args.out)
        .map_err(|e| format!("cannot write {}: {e}", args.out))?;
    let parts_path = format!("{}.parts", args.out);
    let mut parts_text = String::with_capacity(parts.len() * 16);
    for (page, name) in parts.iter().enumerate() {
        parts_text.push_str(&format!("{page}\t{name}\n"));
    }
    std::fs::write(&parts_path, parts_text)
        .map_err(|e| format!("cannot write {parts_path}: {e}"))?;

    Ok(format!(
        "wrote {} ({} pages, {} links) and {} (page→part map)\n",
        args.out,
        graph.num_nodes(),
        graph.num_edges(),
        parts_path
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_and_reloads() {
        let dir = std::env::temp_dir().join("subrank-gen-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("au.edges").to_string_lossy().into_owned();
        let summary = run(&GenArgs {
            dataset: "au".into(),
            pages: 3_000,
            seed: 7,
            out: out.clone(),
        })
        .unwrap();
        assert!(summary.contains("3000 pages"));
        let g = io::read_edge_list_file(&out).unwrap();
        assert_eq!(g.num_nodes(), 3_000);
        let parts = std::fs::read_to_string(format!("{out}.parts")).unwrap();
        assert_eq!(parts.lines().count(), 3_000);
        assert!(parts.contains("edu.au"));
    }

    #[test]
    fn rejects_unknown_dataset() {
        let err = run(&GenArgs {
            dataset: "webscale".into(),
            pages: 100,
            seed: 0,
            out: "/tmp/x".into(),
        })
        .unwrap_err();
        assert!(err.contains("unknown dataset"));
    }
}
