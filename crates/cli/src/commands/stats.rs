//! `subrank stats` — descriptive statistics of a graph file.

use approxrank_graph::{assign_shards, strongly_connected_components, GraphStats, PartitionStats};

use crate::args::StatsArgs;
use crate::commands::load_graph;

/// Runs the command, returning the rendered report.
pub fn run(args: &StatsArgs) -> Result<String, String> {
    let graph = load_graph(&args.graph)?;
    let stats = GraphStats::compute(&graph);
    let scc = strongly_connected_components(&graph);
    let mut out = format!(
        "graph: {}\n\
         pages:            {}\n\
         links:            {}\n\
         avg out-degree:   {:.3}\n\
         max out-degree:   {}\n\
         max in-degree:    {}\n\
         dangling pages:   {} ({:.1}%)\n\
         isolated pages:   {}\n\
         strongly connected components: {} (largest {})\n",
        args.graph,
        stats.num_nodes,
        stats.num_edges,
        stats.avg_out_degree,
        stats.max_out_degree,
        stats.max_in_degree,
        stats.num_dangling,
        100.0 * stats.dangling_fraction(),
        stats.num_isolated,
        scc.count,
        scc.largest(),
    );
    if args.shards >= 2 {
        let shard_of = assign_shards(&graph, args.shards, args.partition);
        let p = PartitionStats::compute(&graph, &shard_of, args.shards);
        out.push_str(&format!(
            "partition ({} into {} shards):\n",
            args.partition.name(),
            args.shards
        ));
        for (k, shard) in p.shards.iter().enumerate() {
            out.push_str(&format!(
                "  shard {k}: {} pages ({:.1}%), {} internal links\n",
                shard.nodes,
                if stats.num_nodes == 0 {
                    0.0
                } else {
                    100.0 * shard.nodes as f64 / stats.num_nodes as f64
                },
                shard.internal_edges,
            ));
        }
        out.push_str(&format!(
            "  cross-shard links: {} ({:.1}%)\n  node imbalance:    {:.3}\n",
            p.cross_edges,
            100.0 * p.cross_fraction(),
            p.node_imbalance(),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxrank_graph::{io, DiGraph};

    #[test]
    fn reports_all_fields() {
        let dir = std::env::temp_dir().join("subrank-stats-tests");
        std::fs::create_dir_all(&dir).unwrap();
        // Note: the edge-list format cannot represent trailing isolated
        // nodes, so the fixture covers every node with an edge.
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 0), (1, 2), (3, 2)]);
        let p = dir.join("g.edges");
        io::write_edge_list_file(&g, &p).unwrap();
        let out = run(&StatsArgs {
            graph: p.to_string_lossy().into_owned(),
            ..StatsArgs::default()
        })
        .unwrap();
        assert!(out.contains("pages:            4"), "{out}");
        assert!(out.contains("links:            4"));
        assert!(out.contains("dangling pages:   1"));
        assert!(out.contains("components: 3 (largest 2)"));
        assert!(!out.contains("partition"), "off by default: {out}");
    }

    #[test]
    fn reports_partition_balance() {
        let dir = std::env::temp_dir().join("subrank-stats-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 0), (1, 2), (3, 2)]);
        let p = dir.join("g2.edges");
        io::write_edge_list_file(&g, &p).unwrap();
        let out = run(&StatsArgs {
            graph: p.to_string_lossy().into_owned(),
            shards: 2,
            ..StatsArgs::default()
        })
        .unwrap();
        // Range split of 4 nodes: {0,1} and {2,3}; edge 1→2 crosses.
        assert!(out.contains("partition (range into 2 shards):"), "{out}");
        assert!(
            out.contains("shard 0: 2 pages (50.0%), 2 internal links"),
            "{out}"
        );
        assert!(
            out.contains("shard 1: 2 pages (50.0%), 1 internal links"),
            "{out}"
        );
        assert!(out.contains("cross-shard links: 1 (25.0%)"), "{out}");
        assert!(out.contains("node imbalance:    1.000"), "{out}");
    }
}
