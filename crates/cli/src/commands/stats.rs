//! `subrank stats` — descriptive statistics of a graph file.

use approxrank_graph::{strongly_connected_components, GraphStats};

use crate::args::StatsArgs;
use crate::commands::load_graph;

/// Runs the command, returning the rendered report.
pub fn run(args: &StatsArgs) -> Result<String, String> {
    let graph = load_graph(&args.graph)?;
    let stats = GraphStats::compute(&graph);
    let scc = strongly_connected_components(&graph);
    Ok(format!(
        "graph: {}\n\
         pages:            {}\n\
         links:            {}\n\
         avg out-degree:   {:.3}\n\
         max out-degree:   {}\n\
         max in-degree:    {}\n\
         dangling pages:   {} ({:.1}%)\n\
         isolated pages:   {}\n\
         strongly connected components: {} (largest {})\n",
        args.graph,
        stats.num_nodes,
        stats.num_edges,
        stats.avg_out_degree,
        stats.max_out_degree,
        stats.max_in_degree,
        stats.num_dangling,
        100.0 * stats.dangling_fraction(),
        stats.num_isolated,
        scc.count,
        scc.largest(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxrank_graph::{io, DiGraph};

    #[test]
    fn reports_all_fields() {
        let dir = std::env::temp_dir().join("subrank-stats-tests");
        std::fs::create_dir_all(&dir).unwrap();
        // Note: the edge-list format cannot represent trailing isolated
        // nodes, so the fixture covers every node with an edge.
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 0), (1, 2), (3, 2)]);
        let p = dir.join("g.edges");
        io::write_edge_list_file(&g, &p).unwrap();
        let out = run(&StatsArgs {
            graph: p.to_string_lossy().into_owned(),
        })
        .unwrap();
        assert!(out.contains("pages:            4"), "{out}");
        assert!(out.contains("links:            4"));
        assert!(out.contains("dangling pages:   1"));
        assert!(out.contains("components: 3 (largest 2)"));
    }
}
