//! `subrank compare` — run every subgraph algorithm side by side.

use std::time::Instant;

use approxrank_core::baselines::{LocalPageRank, Lpr2};
use approxrank_core::{ApproxRank, StochasticComplementation, SubgraphRanker};
use approxrank_graph::{NodeSet, Subgraph};
use approxrank_metrics::footrule::footrule_from_scores;
use approxrank_metrics::l1_distance;
use approxrank_pagerank::{pagerank, PageRankOptions};

use crate::args::CompareArgs;
use crate::commands::{load_graph, load_node_ids};

/// Runs the command: every algorithm on the same subgraph, one row each,
/// optionally scored against a freshly computed global PageRank.
pub fn run(args: &CompareArgs) -> Result<String, String> {
    let graph = load_graph(&args.graph)?;
    let ids = load_node_ids(&args.subgraph)?;
    for &id in &ids {
        if id as usize >= graph.num_nodes() {
            return Err(format!(
                "subgraph id {id} out of range (graph has {} nodes)",
                graph.num_nodes()
            ));
        }
    }
    let nodes = NodeSet::from_sorted(graph.num_nodes(), ids);
    let subgraph = Subgraph::extract(&graph, nodes);
    let options = PageRankOptions::paper()
        .with_damping(args.damping)
        .with_tolerance(args.tolerance);

    // Ground truth (optional; costs a global solve).
    let truth_restricted = if args.with_truth {
        let t0 = Instant::now();
        let truth = pagerank(&graph, &options);
        let secs = t0.elapsed().as_secs_f64();
        Some((subgraph.nodes().restrict(&truth.scores), secs))
    } else {
        None
    };

    let rankers: Vec<Box<dyn SubgraphRanker>> = vec![
        Box::new(ApproxRank::new(options.clone())),
        Box::new(LocalPageRank::new(options.clone())),
        Box::new(Lpr2::new(options.clone())),
        Box::new(StochasticComplementation {
            options: options.clone(),
            ..StochasticComplementation::default()
        }),
    ];

    let mut out = format!(
        "# comparing {} algorithms on {} local pages of {}\n",
        rankers.len(),
        subgraph.len(),
        graph.num_nodes()
    );
    if let Some((_, secs)) = &truth_restricted {
        out.push_str(&format!("# global PageRank (for scoring): {secs:.3}s\n"));
    }
    out.push_str("algorithm\tseconds\titerations\tfootrule\tL1(normalized)\n");
    let normalize = |v: &[f64]| -> Vec<f64> {
        let m: f64 = v.iter().sum();
        v.iter().map(|x| x / m.max(f64::MIN_POSITIVE)).collect()
    };
    for ranker in &rankers {
        let t0 = Instant::now();
        let r = ranker.rank(&graph, &subgraph);
        let secs = t0.elapsed().as_secs_f64();
        let (fr, l1) = match &truth_restricted {
            Some((truth, _)) => (
                format!("{:.6}", footrule_from_scores(&r.local_scores, truth)),
                format!(
                    "{:.6}",
                    l1_distance(&normalize(&r.local_scores), &normalize(truth))
                ),
            ),
            None => ("-".into(), "-".into()),
        };
        out.push_str(&format!(
            "{}\t{secs:.3}\t{}\t{fr}\t{l1}\n",
            ranker.name(),
            r.iterations
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxrank_graph::{io, DiGraph};

    fn setup() -> (String, String) {
        let dir = std::env::temp_dir().join("subrank-compare-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let mut edges = Vec::new();
        for i in 0..60u32 {
            edges.push((i, (i + 1) % 60));
            edges.push((i, (i * 7 + 2) % 60));
        }
        let g = DiGraph::from_edges(60, &edges);
        let gpath = dir.join("g.edges");
        io::write_edge_list_file(&g, &gpath).unwrap();
        let spath = dir.join("s.txt");
        std::fs::write(
            &spath,
            (0..20)
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join("\n"),
        )
        .unwrap();
        (
            gpath.to_string_lossy().into_owned(),
            spath.to_string_lossy().into_owned(),
        )
    }

    #[test]
    fn compares_all_algorithms_with_truth() {
        let (g, s) = setup();
        let out = run(&CompareArgs {
            graph: g,
            subgraph: s,
            damping: 0.85,
            tolerance: 1e-8,
            with_truth: true,
        })
        .unwrap();
        let data_lines: Vec<&str> = out
            .lines()
            .filter(|l| !l.starts_with('#') && !l.starts_with("algorithm"))
            .collect();
        assert_eq!(data_lines.len(), 4, "{out}");
        for l in &data_lines {
            assert!(!l.contains("\t-\t"), "truth columns must be filled: {l}");
        }
        assert!(out.contains("ApproxRank"));
        assert!(out.contains("SC"));
    }

    #[test]
    fn compare_without_truth_leaves_dashes() {
        let (g, s) = setup();
        let out = run(&CompareArgs {
            graph: g,
            subgraph: s,
            damping: 0.85,
            tolerance: 1e-8,
            with_truth: false,
        })
        .unwrap();
        assert!(out.contains("\t-\t-"), "{out}");
        assert!(!out.contains("global PageRank (for scoring)"));
    }
}
